file(REMOVE_RECURSE
  "CMakeFiles/cuped_demo.dir/cuped_demo.cpp.o"
  "CMakeFiles/cuped_demo.dir/cuped_demo.cpp.o.d"
  "cuped_demo"
  "cuped_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cuped_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
