# Empty compiler generated dependencies file for cuped_demo.
# This may be replaced when dependencies are built.
