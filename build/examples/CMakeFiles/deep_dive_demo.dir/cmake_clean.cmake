file(REMOVE_RECURSE
  "CMakeFiles/deep_dive_demo.dir/deep_dive_demo.cpp.o"
  "CMakeFiles/deep_dive_demo.dir/deep_dive_demo.cpp.o.d"
  "deep_dive_demo"
  "deep_dive_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_dive_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
