# Empty dependencies file for deep_dive_demo.
# This may be replaced when dependencies are built.
