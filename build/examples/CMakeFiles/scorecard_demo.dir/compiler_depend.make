# Empty compiler generated dependencies file for scorecard_demo.
# This may be replaced when dependencies are built.
