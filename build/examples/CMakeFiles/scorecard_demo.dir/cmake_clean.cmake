file(REMOVE_RECURSE
  "CMakeFiles/scorecard_demo.dir/scorecard_demo.cpp.o"
  "CMakeFiles/scorecard_demo.dir/scorecard_demo.cpp.o.d"
  "scorecard_demo"
  "scorecard_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scorecard_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
