# Empty dependencies file for query_demo.
# This may be replaced when dependencies are built.
