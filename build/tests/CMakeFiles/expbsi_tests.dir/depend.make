# Empty dependencies file for expbsi_tests.
# This may be replaced when dependencies are built.
