
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/block_compressor_test.cc" "tests/CMakeFiles/expbsi_tests.dir/block_compressor_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/block_compressor_test.cc.o.d"
  "/root/repo/tests/bsi_aggregate_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bsi_aggregate_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bsi_aggregate_test.cc.o.d"
  "/root/repo/tests/bsi_compare_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bsi_compare_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bsi_compare_test.cc.o.d"
  "/root/repo/tests/bsi_edge_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bsi_edge_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bsi_edge_test.cc.o.d"
  "/root/repo/tests/bsi_group_by_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bsi_group_by_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bsi_group_by_test.cc.o.d"
  "/root/repo/tests/bsi_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bsi_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bsi_test.cc.o.d"
  "/root/repo/tests/bucketed_engine_test.cc" "tests/CMakeFiles/expbsi_tests.dir/bucketed_engine_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/bucketed_engine_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/expbsi_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/expbsi_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/expbsi_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/container_test.cc" "tests/CMakeFiles/expbsi_tests.dir/container_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/container_test.cc.o.d"
  "/root/repo/tests/differential_test.cc" "tests/CMakeFiles/expbsi_tests.dir/differential_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/differential_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/expbsi_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/expdata_test.cc" "tests/CMakeFiles/expbsi_tests.dir/expdata_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/expdata_test.cc.o.d"
  "/root/repo/tests/generator_test.cc" "tests/CMakeFiles/expbsi_tests.dir/generator_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/generator_test.cc.o.d"
  "/root/repo/tests/preagg_tree_test.cc" "tests/CMakeFiles/expbsi_tests.dir/preagg_tree_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/preagg_tree_test.cc.o.d"
  "/root/repo/tests/query_error_test.cc" "tests/CMakeFiles/expbsi_tests.dir/query_error_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/query_error_test.cc.o.d"
  "/root/repo/tests/query_test.cc" "tests/CMakeFiles/expbsi_tests.dir/query_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/query_test.cc.o.d"
  "/root/repo/tests/raw_log_test.cc" "tests/CMakeFiles/expbsi_tests.dir/raw_log_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/raw_log_test.cc.o.d"
  "/root/repo/tests/roaring_test.cc" "tests/CMakeFiles/expbsi_tests.dir/roaring_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/roaring_test.cc.o.d"
  "/root/repo/tests/robustness_test.cc" "tests/CMakeFiles/expbsi_tests.dir/robustness_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/robustness_test.cc.o.d"
  "/root/repo/tests/session_dataset_test.cc" "tests/CMakeFiles/expbsi_tests.dir/session_dataset_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/session_dataset_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/expbsi_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/expbsi_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/expbsi_tests.dir/storage_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/expbsi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
