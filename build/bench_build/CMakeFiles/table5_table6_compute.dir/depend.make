# Empty dependencies file for table5_table6_compute.
# This may be replaced when dependencies are built.
