file(REMOVE_RECURSE
  "../bench/table5_table6_compute"
  "../bench/table5_table6_compute.pdb"
  "CMakeFiles/table5_table6_compute.dir/table5_table6_compute.cc.o"
  "CMakeFiles/table5_table6_compute.dir/table5_table6_compute.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_table6_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
