file(REMOVE_RECURSE
  "../bench/table3_core_metric_ranges"
  "../bench/table3_core_metric_ranges.pdb"
  "CMakeFiles/table3_core_metric_ranges.dir/table3_core_metric_ranges.cc.o"
  "CMakeFiles/table3_core_metric_ranges.dir/table3_core_metric_ranges.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_core_metric_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
