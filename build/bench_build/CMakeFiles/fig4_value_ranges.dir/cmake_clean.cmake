file(REMOVE_RECURSE
  "../bench/fig4_value_ranges"
  "../bench/fig4_value_ranges.pdb"
  "CMakeFiles/fig4_value_ranges.dir/fig4_value_ranges.cc.o"
  "CMakeFiles/fig4_value_ranges.dir/fig4_value_ranges.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_value_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
