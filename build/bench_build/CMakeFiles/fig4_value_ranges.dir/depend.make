# Empty dependencies file for fig4_value_ranges.
# This may be replaced when dependencies are built.
