# Empty dependencies file for table8_adhoc.
# This may be replaced when dependencies are built.
