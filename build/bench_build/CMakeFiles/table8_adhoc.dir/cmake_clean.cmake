file(REMOVE_RECURSE
  "../bench/table8_adhoc"
  "../bench/table8_adhoc.pdb"
  "CMakeFiles/table8_adhoc.dir/table8_adhoc.cc.o"
  "CMakeFiles/table8_adhoc.dir/table8_adhoc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_adhoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
