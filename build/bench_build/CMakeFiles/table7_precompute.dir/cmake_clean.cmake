file(REMOVE_RECURSE
  "../bench/table7_precompute"
  "../bench/table7_precompute.pdb"
  "CMakeFiles/table7_precompute.dir/table7_precompute.cc.o"
  "CMakeFiles/table7_precompute.dir/table7_precompute.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_precompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
