# Empty compiler generated dependencies file for table7_precompute.
# This may be replaced when dependencies are built.
