file(REMOVE_RECURSE
  "../bench/ablation_position_encoding"
  "../bench/ablation_position_encoding.pdb"
  "CMakeFiles/ablation_position_encoding.dir/ablation_position_encoding.cc.o"
  "CMakeFiles/ablation_position_encoding.dir/ablation_position_encoding.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_position_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
