file(REMOVE_RECURSE
  "../bench/table4_storage"
  "../bench/table4_storage.pdb"
  "CMakeFiles/table4_storage.dir/table4_storage.cc.o"
  "CMakeFiles/table4_storage.dir/table4_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
