# Empty dependencies file for fig5_value_distribution.
# This may be replaced when dependencies are built.
