file(REMOVE_RECURSE
  "../bench/fig5_value_distribution"
  "../bench/fig5_value_distribution.pdb"
  "CMakeFiles/fig5_value_distribution.dir/fig5_value_distribution.cc.o"
  "CMakeFiles/fig5_value_distribution.dir/fig5_value_distribution.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_value_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
