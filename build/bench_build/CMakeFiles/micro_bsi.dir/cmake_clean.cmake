file(REMOVE_RECURSE
  "../bench/micro_bsi"
  "../bench/micro_bsi.pdb"
  "CMakeFiles/micro_bsi.dir/micro_bsi.cc.o"
  "CMakeFiles/micro_bsi.dir/micro_bsi.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bsi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
