# Empty dependencies file for micro_bsi.
# This may be replaced when dependencies are built.
