file(REMOVE_RECURSE
  "../bench/micro_roaring"
  "../bench/micro_roaring.pdb"
  "CMakeFiles/micro_roaring.dir/micro_roaring.cc.o"
  "CMakeFiles/micro_roaring.dir/micro_roaring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_roaring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
