# Empty dependencies file for micro_roaring.
# This may be replaced when dependencies are built.
