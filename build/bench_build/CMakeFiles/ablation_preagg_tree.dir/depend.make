# Empty dependencies file for ablation_preagg_tree.
# This may be replaced when dependencies are built.
