file(REMOVE_RECURSE
  "../bench/ablation_preagg_tree"
  "../bench/ablation_preagg_tree.pdb"
  "CMakeFiles/ablation_preagg_tree.dir/ablation_preagg_tree.cc.o"
  "CMakeFiles/ablation_preagg_tree.dir/ablation_preagg_tree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_preagg_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
