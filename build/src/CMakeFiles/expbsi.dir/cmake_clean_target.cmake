file(REMOVE_RECURSE
  "libexpbsi.a"
)
