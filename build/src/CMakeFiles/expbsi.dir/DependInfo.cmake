
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bsi/bsi.cc" "src/CMakeFiles/expbsi.dir/bsi/bsi.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/bsi/bsi.cc.o.d"
  "/root/repo/src/bsi/bsi_aggregate.cc" "src/CMakeFiles/expbsi.dir/bsi/bsi_aggregate.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/bsi/bsi_aggregate.cc.o.d"
  "/root/repo/src/bsi/bsi_group_by.cc" "src/CMakeFiles/expbsi.dir/bsi/bsi_group_by.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/bsi/bsi_group_by.cc.o.d"
  "/root/repo/src/cluster/adhoc_cluster.cc" "src/CMakeFiles/expbsi.dir/cluster/adhoc_cluster.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/cluster/adhoc_cluster.cc.o.d"
  "/root/repo/src/cluster/precompute_pipeline.cc" "src/CMakeFiles/expbsi.dir/cluster/precompute_pipeline.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/cluster/precompute_pipeline.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/expbsi.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/expbsi.dir/common/status.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/common/status.cc.o.d"
  "/root/repo/src/common/threadpool.cc" "src/CMakeFiles/expbsi.dir/common/threadpool.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/common/threadpool.cc.o.d"
  "/root/repo/src/engine/deepdive.cc" "src/CMakeFiles/expbsi.dir/engine/deepdive.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/engine/deepdive.cc.o.d"
  "/root/repo/src/engine/experiment_data.cc" "src/CMakeFiles/expbsi.dir/engine/experiment_data.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/engine/experiment_data.cc.o.d"
  "/root/repo/src/engine/normal_engine.cc" "src/CMakeFiles/expbsi.dir/engine/normal_engine.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/engine/normal_engine.cc.o.d"
  "/root/repo/src/engine/preexperiment.cc" "src/CMakeFiles/expbsi.dir/engine/preexperiment.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/engine/preexperiment.cc.o.d"
  "/root/repo/src/engine/scorecard.cc" "src/CMakeFiles/expbsi.dir/engine/scorecard.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/engine/scorecard.cc.o.d"
  "/root/repo/src/expdata/bsi_builder.cc" "src/CMakeFiles/expbsi.dir/expdata/bsi_builder.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/expdata/bsi_builder.cc.o.d"
  "/root/repo/src/expdata/generator.cc" "src/CMakeFiles/expbsi.dir/expdata/generator.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/expdata/generator.cc.o.d"
  "/root/repo/src/expdata/position_encoder.cc" "src/CMakeFiles/expbsi.dir/expdata/position_encoder.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/expdata/position_encoder.cc.o.d"
  "/root/repo/src/expdata/raw_log.cc" "src/CMakeFiles/expbsi.dir/expdata/raw_log.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/expdata/raw_log.cc.o.d"
  "/root/repo/src/query/executor.cc" "src/CMakeFiles/expbsi.dir/query/executor.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/query/executor.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/expbsi.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/query/parser.cc.o.d"
  "/root/repo/src/query/token.cc" "src/CMakeFiles/expbsi.dir/query/token.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/query/token.cc.o.d"
  "/root/repo/src/reference/ref_column.cc" "src/CMakeFiles/expbsi.dir/reference/ref_column.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/reference/ref_column.cc.o.d"
  "/root/repo/src/reference/ref_data.cc" "src/CMakeFiles/expbsi.dir/reference/ref_data.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/reference/ref_data.cc.o.d"
  "/root/repo/src/reference/ref_engine.cc" "src/CMakeFiles/expbsi.dir/reference/ref_engine.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/reference/ref_engine.cc.o.d"
  "/root/repo/src/reference/ref_query.cc" "src/CMakeFiles/expbsi.dir/reference/ref_query.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/reference/ref_query.cc.o.d"
  "/root/repo/src/reference/ref_stats.cc" "src/CMakeFiles/expbsi.dir/reference/ref_stats.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/reference/ref_stats.cc.o.d"
  "/root/repo/src/roaring/container.cc" "src/CMakeFiles/expbsi.dir/roaring/container.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/roaring/container.cc.o.d"
  "/root/repo/src/roaring/roaring_bitmap.cc" "src/CMakeFiles/expbsi.dir/roaring/roaring_bitmap.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/roaring/roaring_bitmap.cc.o.d"
  "/root/repo/src/stats/bucket_stats.cc" "src/CMakeFiles/expbsi.dir/stats/bucket_stats.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/stats/bucket_stats.cc.o.d"
  "/root/repo/src/stats/cuped.cc" "src/CMakeFiles/expbsi.dir/stats/cuped.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/stats/cuped.cc.o.d"
  "/root/repo/src/stats/ttest.cc" "src/CMakeFiles/expbsi.dir/stats/ttest.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/stats/ttest.cc.o.d"
  "/root/repo/src/storage/block_compressor.cc" "src/CMakeFiles/expbsi.dir/storage/block_compressor.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/storage/block_compressor.cc.o.d"
  "/root/repo/src/storage/bsi_store.cc" "src/CMakeFiles/expbsi.dir/storage/bsi_store.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/storage/bsi_store.cc.o.d"
  "/root/repo/src/storage/column_store.cc" "src/CMakeFiles/expbsi.dir/storage/column_store.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/storage/column_store.cc.o.d"
  "/root/repo/src/storage/preagg_tree.cc" "src/CMakeFiles/expbsi.dir/storage/preagg_tree.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/storage/preagg_tree.cc.o.d"
  "/root/repo/src/storage/tiered_store.cc" "src/CMakeFiles/expbsi.dir/storage/tiered_store.cc.o" "gcc" "src/CMakeFiles/expbsi.dir/storage/tiered_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
