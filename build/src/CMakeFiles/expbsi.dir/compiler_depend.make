# Empty compiler generated dependencies file for expbsi.
# This may be replaced when dependencies are built.
