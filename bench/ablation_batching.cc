// Ablation (§5.2): "each job computes a batch of strategy-metric pairs" --
// batching lets every metric of a strategy reuse the same expose filter
// masks. This bench measures the scorecard CPU with and without that
// amortization (ExposeMaskCache vs recomputing the range searches per pair).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  const uint64_t users = bench_util::ScaledUsers(100000);
  const int kMetrics = 30;

  bench_util::PrintBanner(
      "Ablation: job batching (§5.2) -- expose filters amortized across a "
      "strategy's metrics",
      "batched jobs pay the expose range searches once per strategy, not "
      "once per pair");

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 4;
  config.num_days = 7;
  config.seed = 33;

  ExperimentConfig exp;
  exp.strategy_ids = {11, 12, 13};
  exp.arm_effects = {1.0, 1.03, 0.99};
  exp.traffic_salt = 9;

  const std::vector<MetricConfig> metrics =
      MakeCoreMetricPopulation(kMetrics, 1001, 9);
  std::printf("scale: %llu users, 3 strategies x %d metrics\n",
              static_cast<unsigned long long>(users), kMetrics);
  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {exp}, metrics, {});
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  // Unbatched: every pair recomputes its strategy's per-day expose masks.
  CpuTimer unbatched_timer;
  double checksum_a = 0;
  for (uint64_t strategy : {11, 12, 13}) {
    for (const MetricConfig& m : metrics) {
      checksum_a += ComputeStrategyMetricBsi(bsi, strategy, m.metric_id, 0, 6)
                        .total_sum();
    }
  }
  const double unbatched = unbatched_timer.ElapsedSeconds();

  // Batched: one mask cache per strategy serves all its metrics.
  CpuTimer batched_timer;
  double checksum_b = 0;
  for (uint64_t strategy : {11, 12, 13}) {
    const ExposeMaskCache cache = ExposeMaskCache::Build(bsi, strategy, 0, 6);
    for (const MetricConfig& m : metrics) {
      checksum_b +=
          ComputeStrategyMetricBsiCached(bsi, cache, m.metric_id, 0, 6)
              .total_sum();
    }
  }
  const double batched = batched_timer.ElapsedSeconds();

  if (checksum_a != checksum_b) {
    std::printf("CHECKSUM MISMATCH!\n");
    return 1;
  }
  std::printf("\n%-28s %12s\n", "mode", "CPU seconds");
  std::printf("%-28s %12.3f\n", "per-pair (no batching)", unbatched);
  std::printf("%-28s %12.3f\n", "batched per strategy", batched);
  std::printf("\nbatching speedup: %.2fx (results identical)\n",
              unbatched / batched);
  return 0;
}
