#ifndef EXPBSI_BENCH_ALLOC_COUNTER_H_
#define EXPBSI_BENCH_ALLOC_COUNTER_H_

// Replacement global operator new/delete that counts allocations and bytes.
// Include from exactly ONE translation unit of a benchmark binary (the
// replacement operators are program-wide); the counters then observe every
// heap allocation in the process, which is how the multi-operand kernel
// ablation demonstrates its "zero steady-state allocation" claim.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

// GCC flags free() inside the replacement operator delete as a mismatched
// pair; the replacement operator new above it is malloc-backed, so the pair
// is in fact matched.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace expbsi {
namespace allocstats {

inline std::atomic<uint64_t> g_bytes{0};
inline std::atomic<uint64_t> g_allocs{0};

struct Snapshot {
  uint64_t bytes = 0;
  uint64_t allocs = 0;
};

inline Snapshot Take() {
  return {g_bytes.load(std::memory_order_relaxed),
          g_allocs.load(std::memory_order_relaxed)};
}

// Allocation activity between two snapshots (frees are not tracked; the
// metric is allocation churn, not live footprint).
inline Snapshot Delta(const Snapshot& before, const Snapshot& after) {
  return {after.bytes - before.bytes, after.allocs - before.allocs};
}

inline void* CountedAlloc(std::size_t size, std::size_t align) noexcept {
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (align > alignof(std::max_align_t)) {
    const std::size_t padded = (size + align - 1) / align * align;
    return std::aligned_alloc(align, padded);
  }
  return std::malloc(size);
}

}  // namespace allocstats
}  // namespace expbsi

void* operator new(std::size_t size) {
  void* p = expbsi::allocstats::CountedAlloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = expbsi::allocstats::CountedAlloc(size, alignof(std::max_align_t));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = expbsi::allocstats::CountedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = expbsi::allocstats::CountedAlloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return expbsi::allocstats::CountedAlloc(size, alignof(std::max_align_t));
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return expbsi::allocstats::CountedAlloc(size, alignof(std::max_align_t));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t, std::size_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // EXPBSI_BENCH_ALLOC_COUNTER_H_
