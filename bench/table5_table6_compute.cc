// Tables 5 & 6: the three "typical metrics" A / B / C and the single-core
// computation time of a two-day per-user sum in the normal format vs BSI.
//
// Paper (Table 5): A = 316M rows, 140 MB, range (0,1]; B = 34M rows, 86 MB,
// range (0,50]; C = 510M rows, 2 GB, range (0,21600].
// Paper (Table 6): normal vs BSI seconds -- A: 59.2 / 0.6, B: 7.3 / 1.3,
// C: 94.3 / 10.5. Shapes: BSI wins 7x-100x; the binary metric A compresses
// to one slice and wins the most; the sparse metric B wins the least.
//
// Both paths compute sum-of-value-per-user over two days: sumBSI of two day
// BSIs per segment vs a hash group-by over the rows -- single-threaded, as
// in the paper's evaluation program.

#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "bsi/bsi_aggregate.h"
#include "common/timer.h"
#include "expdata/bsi_builder.h"
#include "expdata/generator.h"
#include "expdata/position_encoder.h"

using namespace expbsi;

namespace {

struct MetricData {
  // Normal format rows of both days, per segment.
  std::vector<std::vector<MetricRow>> rows_by_segment;
  // BSI format: [segment][day].
  std::vector<std::vector<Bsi>> bsi_by_segment;
  uint64_t rows_day1 = 0;
  size_t bsi_bytes = 0;
  size_t normal_bytes = 0;  // 18-byte rows, both days
  uint64_t value_range = 0;
};

}  // namespace

int main() {
  bench_util::OraclePreflight();
  const uint64_t users = bench_util::ScaledUsers(1u << 20);
  const int kSegments = 16;
  const int kRepeats = 5;

  bench_util::PrintBanner(
      "Tables 5+6: typical metrics A/B/C; two-day per-user sum, "
      "normal vs BSI (single core)",
      "BSI is 7x-100x faster; binary metric A wins the most, sparse B the "
      "least");
  std::printf("scale: %llu users, %d segments, 2 days, %d repeats\n\n",
              static_cast<unsigned long long>(users), kSegments, kRepeats);

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = kSegments;
  config.num_days = 2;
  config.seed = 555;

  const std::vector<MetricConfig> abc = MakeTypicalMetricsABC();
  Dataset ds = GenerateDataset(config, {}, abc, {});

  // Split per metric.
  std::map<uint64_t, MetricData> data;
  for (const MetricConfig& m : abc) {
    data[m.metric_id].rows_by_segment.resize(kSegments);
    data[m.metric_id].bsi_by_segment.assign(kSegments,
                                            std::vector<Bsi>(2));
    data[m.metric_id].value_range = m.value_range;
  }
  for (int seg = 0; seg < kSegments; ++seg) {
    PositionEncoder encoder;
    encoder.PreassignRanked(ds.users_by_engagement[seg]);
    std::map<std::pair<uint64_t, Date>, std::vector<MetricRow>> groups;
    for (const MetricRow& row : ds.segments[seg].metrics) {
      groups[{row.metric_id, row.date}].push_back(row);
      MetricData& md = data[row.metric_id];
      md.rows_by_segment[seg].push_back(row);
      if (row.date == 0) ++md.rows_day1;
    }
    for (auto& [key, rows] : groups) {
      MetricBsi bsi = BuildMetricBsi(rows, encoder);
      MetricData& md = data[key.first];
      md.bsi_bytes += bsi.value.SizeInBytes();
      md.bsi_by_segment[seg][key.second] = std::move(bsi.value);
    }
  }
  for (auto& [id, md] : data) {
    for (const auto& rows : md.rows_by_segment) {
      md.normal_bytes += rows.size() * 18;
    }
  }

  // ---- Table 5 ----
  std::printf("Table 5 (one day):\n");
  std::printf("%-7s %14s %14s %14s %16s\n", "Metric", "Rows", "Normal size",
              "BSI size", "Value range");
  const char* names[] = {"A", "B", "C"};
  int idx = 0;
  for (const MetricConfig& m : abc) {
    const MetricData& md = data.at(m.metric_id);
    std::printf("%-7s %14s %14s %14s %16llu\n", names[idx++],
                bench_util::HumanCount(
                    static_cast<double>(md.rows_day1)).c_str(),
                bench_util::HumanBytes(
                    static_cast<double>(md.rows_day1) * 18).c_str(),
                bench_util::HumanBytes(
                    static_cast<double>(md.bsi_bytes) / 2).c_str(),
                static_cast<unsigned long long>(m.value_range));
  }

  // ---- Table 6 ----
  std::printf("\nTable 6 (two-day per-user sum, avg of %d runs):\n",
              kRepeats);
  std::printf("%-7s %15s %15s %10s %22s\n", "Metric", "Normal", "BSI",
              "speedup", "paper normal/BSI");
  const char* paper[] = {"59.2s / 0.6s (99x)", "7.3s / 1.3s (5.6x)",
                         "94.3s / 10.5s (9x)"};
  idx = 0;
  for (const MetricConfig& m : abc) {
    MetricData& md = data.at(m.metric_id);
    // Normal: hash group-by user over both days' rows.
    double normal_seconds = 0;
    uint64_t normal_checksum = 0;
    for (int r = 0; r < kRepeats; ++r) {
      CpuTimer timer;
      for (int seg = 0; seg < kSegments; ++seg) {
        std::unordered_map<uint32_t, uint64_t> sums;
        sums.reserve(md.rows_by_segment[seg].size());
        for (const MetricRow& row : md.rows_by_segment[seg]) {
          sums[static_cast<uint32_t>(row.analysis_unit_id)] += row.value;
        }
        normal_checksum += sums.size();
      }
      normal_seconds += timer.ElapsedSeconds();
    }
    normal_seconds /= kRepeats;

    // BSI: sumBSI of the two day slices per segment.
    double bsi_seconds = 0;
    uint64_t bsi_checksum = 0;
    for (int r = 0; r < kRepeats; ++r) {
      CpuTimer timer;
      for (int seg = 0; seg < kSegments; ++seg) {
        Bsi sum = SumBsi(md.bsi_by_segment[seg][0],
                         md.bsi_by_segment[seg][1]);
        bsi_checksum += sum.Cardinality();
      }
      bsi_seconds += timer.ElapsedSeconds();
    }
    bsi_seconds /= kRepeats;

    if (normal_checksum / kRepeats != bsi_checksum / kRepeats) {
      std::printf("CHECKSUM MISMATCH for metric %s!\n", names[idx]);
      return 1;
    }
    std::printf("%-7s %13.1fms %13.1fms %9.1fx %22s\n", names[idx],
                normal_seconds * 1e3, bsi_seconds * 1e3,
                normal_seconds / bsi_seconds, paper[idx]);
    std::printf("BENCHJSON {\"op\": \"table6_normal_metric_%s\", "
                "\"ns_per_op\": %.0f}\n", names[idx], normal_seconds * 1e9);
    std::printf("BENCHJSON {\"op\": \"table6_bsi_metric_%s\", "
                "\"ns_per_op\": %.0f}\n", names[idx], bsi_seconds * 1e9);
    ++idx;
  }
  std::printf("\n(normal format must re-aggregate every row through a hash "
              "table; BSI adds compressed bit-slices word-at-a-time)\n");
  bench_util::EmitRegistrySnapshot("table5_table6_compute");
  return 0;
}
