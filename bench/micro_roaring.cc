// Microbenchmarks for the Roaring bitmap substrate (§2.1): the claim that
// operation speed tracks data density -- dense (compact-position) bitmaps
// run word-at-a-time, sparse ones element-at-a-time.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "roaring/roaring_bitmap.h"

namespace expbsi {
namespace {

RoaringBitmap MakeBitmap(uint64_t seed, uint32_t universe, double density) {
  Rng rng(seed);
  std::vector<uint32_t> values;
  values.reserve(static_cast<size_t>(universe * density));
  for (uint32_t v = 0; v < universe; ++v) {
    if (rng.NextBernoulli(density)) values.push_back(v);
  }
  return RoaringBitmap::FromSorted(values);
}

void BM_RoaringAnd(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  RoaringBitmap a = MakeBitmap(1, 1 << 22, density);
  RoaringBitmap b = MakeBitmap(2, 1 << 22, density);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::And(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(a.Cardinality()));
}
BENCHMARK(BM_RoaringAnd)->Arg(1)->Arg(50)->Arg(500);

void BM_RoaringOr(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0)) / 1000.0;
  RoaringBitmap a = MakeBitmap(1, 1 << 22, density);
  RoaringBitmap b = MakeBitmap(2, 1 << 22, density);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::Or(a, b));
  }
}
BENCHMARK(BM_RoaringOr)->Arg(1)->Arg(50)->Arg(500);

void BM_RoaringXor(benchmark::State& state) {
  RoaringBitmap a = MakeBitmap(1, 1 << 22, 0.3);
  RoaringBitmap b = MakeBitmap(2, 1 << 22, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::Xor(a, b));
  }
}
BENCHMARK(BM_RoaringXor);

void BM_RoaringAndNot(benchmark::State& state) {
  RoaringBitmap a = MakeBitmap(1, 1 << 22, 0.3);
  RoaringBitmap b = MakeBitmap(2, 1 << 22, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::AndNot(a, b));
  }
}
BENCHMARK(BM_RoaringAndNot);

void BM_RoaringAndCardinality(benchmark::State& state) {
  RoaringBitmap a = MakeBitmap(1, 1 << 22, 0.3);
  RoaringBitmap b = MakeBitmap(2, 1 << 22, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::AndCardinality(a, b));
  }
}
BENCHMARK(BM_RoaringAndCardinality);

void BM_RoaringContains(benchmark::State& state) {
  RoaringBitmap a = MakeBitmap(1, 1 << 22, 0.1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        a.Contains(static_cast<uint32_t>(rng.NextBounded(1 << 22))));
  }
}
BENCHMARK(BM_RoaringContains);

void BM_RoaringFromSorted(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint32_t> values;
  for (uint32_t v = 0; v < (1 << 20); ++v) {
    if (rng.NextBernoulli(0.2)) values.push_back(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::FromSorted(values));
  }
}
BENCHMARK(BM_RoaringFromSorted);

void BM_RoaringRunOptimizedAnd(benchmark::State& state) {
  // Dense prefix (engagement-ordered layout) in run form.
  RoaringBitmap a;
  a.AddRange(0, 1 << 20);
  RoaringBitmap b = MakeBitmap(5, 1 << 21, 0.4);
  a.RunOptimize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RoaringBitmap::And(a, b));
  }
}
BENCHMARK(BM_RoaringRunOptimizedAnd);

}  // namespace
}  // namespace expbsi

BENCHMARK_MAIN();
