// Table 7: CPU hours consumed by the daily pre-computation of scorecard
// results over all strategy-metric pairs, normal (Spark-SQL-style) vs BSI.
//
// Paper (production scale): 240,000 strategy-metric pairs, ~8,500
// strategies, 21M exposed users per strategy on average -- 22,712 CPU hours
// with the normal format vs 5,446 with BSI (a 4.17x saving). The shape to
// reproduce: BSI consumes a fraction of the normal method's CPU (and moves
// far fewer bytes from the warehouse).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/precompute_pipeline.h"
#include "engine/experiment_data.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  const uint64_t users = bench_util::ScaledUsers(100000);
  const int kSegments = 4;
  const int kDays = 7;
  const int kMetrics = 20;

  bench_util::PrintBanner(
      "Table 7: CPU for pre-computing all strategy-metric scorecards",
      "paper: 22712 CPU hours (normal) vs 5446 (BSI) -- BSI ~ 1/4.2 of "
      "normal");

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = kSegments;
  config.num_days = kDays;
  config.seed = 20231121;

  // Two concurrent experiments with 3 arms each -> 6 strategies.
  ExperimentConfig exp1;
  exp1.strategy_ids = {101, 102, 103};
  exp1.arm_effects = {1.0, 1.05, 0.97};
  exp1.traffic_salt = 1;
  ExperimentConfig exp2;
  exp2.strategy_ids = {201, 202, 203};
  exp2.arm_effects = {1.0, 1.02, 1.0};
  exp2.traffic_salt = 2;

  const std::vector<MetricConfig> metrics =
      MakeCoreMetricPopulation(kMetrics, 1001, 9);

  std::printf("scale: %llu users, %d segments, %d days, %d strategies x %d "
              "metrics = %d pairs\n",
              static_cast<unsigned long long>(users), kSegments, kDays, 6,
              kMetrics, 6 * kMetrics);
  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {exp1, exp2}, metrics, {});
  size_t total_rows = 0;
  for (const SegmentData& seg : dataset.segments) {
    total_rows += seg.metrics.size();
  }
  std::printf("  %s metric rows\n",
              bench_util::HumanCount(static_cast<double>(total_rows)).c_str());
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  std::vector<StrategyMetricPair> pairs;
  for (uint64_t strategy : {101, 102, 103, 201, 202, 203}) {
    for (const MetricConfig& m : metrics) {
      pairs.emplace_back(strategy, m.metric_id);
    }
  }

  PrecomputeConfig pipe_config;
  pipe_config.num_threads = 4;
  pipe_config.batch_size = 32;

  PrecomputePipeline normal_pipe(&dataset, &bsi, pipe_config);
  std::printf("\nrunning normal-format pipeline (%zu pairs) ...\n",
              pairs.size());
  const PrecomputeStats normal = normal_pipe.RunNormal(pairs, 0, kDays - 1);

  PrecomputePipeline bsi_pipe(&dataset, &bsi, pipe_config);
  std::printf("running BSI pipeline (%zu pairs) ...\n", pairs.size());
  const PrecomputeStats bsi_stats = bsi_pipe.RunBsi(pairs, 0, kDays - 1);

  // Sanity: both pipelines computed identical bucket values.
  for (const StrategyMetricPair& pair : pairs) {
    if (normal_pipe.GetResult(pair)->sums != bsi_pipe.GetResult(pair)->sums) {
      std::printf("RESULT MISMATCH for pair (%llu, %llu)!\n",
                  static_cast<unsigned long long>(pair.first),
                  static_cast<unsigned long long>(pair.second));
      return 1;
    }
  }

  std::printf("\n%-10s %16s %18s %14s\n", "Format", "CPU seconds",
              "warehouse bytes", "pairs");
  std::printf("%-10s %16.3f %18s %14d\n", "Normal", normal.cpu_seconds,
              bench_util::HumanBytes(
                  static_cast<double>(normal.bytes_read)).c_str(),
              normal.pairs_computed);
  std::printf("%-10s %16.3f %18s %14d\n", "BSI", bsi_stats.cpu_seconds,
              bench_util::HumanBytes(
                  static_cast<double>(bsi_stats.bytes_read)).c_str(),
              bsi_stats.pairs_computed);
  std::printf("\nshape checks vs paper:\n");
  std::printf("  normal CPU / BSI CPU     = %5.2fx   (paper: 4.17x)\n",
              normal.cpu_seconds / bsi_stats.cpu_seconds);
  std::printf("  normal bytes / BSI bytes = %5.2fx   (paper reports "
              "\"hundreds of PB\" of traffic for normal)\n",
              static_cast<double>(normal.bytes_read) /
                  static_cast<double>(bsi_stats.bytes_read));
  std::printf("  results verified identical across both pipelines\n");
  return 0;
}
