// Snapshot persistence: write + recover latency for a Table-4-sized BSI
// warehouse (the 105 core metrics over a 29-day month, one dense segment).
//
// The paper's daily build hands the warehouse to serving clusters through
// the storage system; this bench measures the crash-safe variant of that
// handoff: SnapshotWriter::Write (checksummed segment files + atomically
// renamed manifest, fsync'd) and BsiStore::Recover (manifest selection +
// CRC verification + fingerprint-preserving reload). Both scale with the
// warehouse byte size, so ns_per_op is reported per written/recovered byte
// batch alongside bytes_per_op for throughput math.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/file_io.h"
#include "common/timer.h"
#include "expdata/bsi_builder.h"
#include "expdata/generator.h"
#include "expdata/position_encoder.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"

using namespace expbsi;

int main() {
  const uint64_t users = bench_util::ScaledUsers(100000);
  const int kDays = 29;
  const int kMetrics = 105;
  const int kBatch = 15;  // metrics generated per pass (bounds memory)
  const int kRounds = 3;  // write/recover cycles; best round is reported

  bench_util::PrintBanner(
      "Snapshot persistence: write + recover of a Table-4-sized warehouse",
      "durability adds one sequential checksummed pass over the BSI bytes "
      "in each direction; recover verifies every block CRC and blob "
      "fingerprint it loads");
  std::printf("scale: %llu users, %d days, %d metrics, one segment\n\n",
              static_cast<unsigned long long>(users), kDays, kMetrics);

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 1;
  config.num_days = kDays;
  config.start_date = 0;
  config.seed = 20231121;

  const std::vector<MetricConfig> all_metrics =
      MakeCoreMetricPopulation(kMetrics, 1001, 9);

  // Same generation loop as table4_storage, keeping only the serialized
  // BSI blobs -- the warehouse content a daily build would publish.
  BsiStore store;
  Stopwatch build_wall;
  for (int batch_start = 0; batch_start < kMetrics; batch_start += kBatch) {
    std::vector<MetricConfig> batch(
        all_metrics.begin() + batch_start,
        all_metrics.begin() +
            std::min<size_t>(kMetrics, batch_start + kBatch));
    Dataset ds = GenerateDataset(config, {}, batch, {});
    const SegmentData& seg = ds.segments[0];
    PositionEncoder encoder;
    encoder.PreassignRanked(ds.users_by_engagement[0]);
    std::map<std::pair<uint64_t, Date>, std::vector<MetricRow>> groups;
    for (const MetricRow& row : seg.metrics) {
      groups[{row.metric_id, row.date}].push_back(row);
    }
    for (auto& [key, rows] : groups) {
      MetricBsi bsi = BuildMetricBsi(rows, encoder);
      bsi.value.RunOptimize();
      std::string bytes;
      bsi.Serialize(&bytes);
      BsiStoreKey store_key;
      store_key.segment = 0;
      store_key.kind = BsiKind::kMetric;
      store_key.id = key.first;
      store_key.date = key.second;
      store.Put(store_key, std::move(bytes));
    }
  }
  std::printf("warehouse built: %zu blobs, %s (%.1fs)\n\n", store.NumBlobs(),
              bench_util::HumanBytes(
                  static_cast<double>(store.TotalBytes())).c_str(),
              build_wall.ElapsedSeconds());

  const std::string dir = "/tmp/expbsi_bench_snapshot";
  if (!fileio::CreateDirIfMissing(dir).ok()) {
    std::fprintf(stderr, "error: cannot create %s\n", dir.c_str());
    return 1;
  }
  {
    const Result<std::vector<std::string>> stale = fileio::ListDir(dir);
    if (stale.ok()) {
      for (const std::string& entry : stale.value()) {
        fileio::RemoveFileIfExists(dir + "/" + entry);
      }
    }
  }

  double best_write_ns = 0, best_recover_ns = 0;
  uint64_t bytes_written = 0, bytes_recovered = 0;
  for (int round = 0; round < kRounds; ++round) {
    Stopwatch write_timer;
    const Result<SnapshotWriteStats> written =
        SnapshotWriter::Write(store, dir);
    const double write_ns = write_timer.ElapsedSeconds() * 1e9;
    if (!written.ok()) {
      std::fprintf(stderr, "error: snapshot write failed: %s\n",
                   written.status().ToString().c_str());
      return 1;
    }
    bytes_written = written.value().bytes_written;

    RecoveryReport report;
    Stopwatch recover_timer;
    const Result<BsiStore> recovered = BsiStore::Recover(dir, &report);
    const double recover_ns = recover_timer.ElapsedSeconds() * 1e9;
    if (!recovered.ok() || !report.fully_recovered() ||
        recovered.value().NumBlobs() != store.NumBlobs()) {
      std::fprintf(stderr, "error: recovery diverged from written store\n");
      return 1;
    }
    bytes_recovered = report.bytes_recovered;

    if (round == 0 || write_ns < best_write_ns) best_write_ns = write_ns;
    if (round == 0 || recover_ns < best_recover_ns) {
      best_recover_ns = recover_ns;
    }
    std::printf("  round %d: write v%llu %.1f ms (%s), recover %.1f ms\n",
                round + 1,
                static_cast<unsigned long long>(written.value().version),
                write_ns / 1e6,
                bench_util::HumanBytes(
                    static_cast<double>(bytes_written)).c_str(),
                recover_ns / 1e6);
  }

  std::printf("\nsnapshot write:   %8.1f ms  (%6.0f MB/s)\n",
              best_write_ns / 1e6,
              static_cast<double>(bytes_written) / best_write_ns * 1e3);
  std::printf("snapshot recover: %8.1f ms  (%6.0f MB/s)\n",
              best_recover_ns / 1e6,
              static_cast<double>(bytes_recovered) / best_recover_ns * 1e3);

  std::printf("BENCHJSON {\"op\": \"snapshot_write\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_write_ns,
              static_cast<unsigned long long>(bytes_written));
  std::printf("BENCHJSON {\"op\": \"snapshot_recover\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_recover_ns,
              static_cast<unsigned long long>(bytes_recovered));
  bench_util::EmitRegistrySnapshot("snapshot_persistence");
  return 0;
}
