// Table 4: storage of the 105 core metrics over a month (29 days), normal
// row format vs BSI format, both raw and LZ4-compressed.
//
// Paper (production scale): normal = 890 billion rows, 15.6 TB raw /
// 4.1 TB LZ4; BSI = 3.1 million rows, 1.7 TB raw / 1.6 TB LZ4. The shapes
// to reproduce: (a) BSI raw is ~9x smaller than normal raw, (b) BSI is
// already compressed -- LZ4 barely shrinks it further -- while normal rows
// compress ~3.8x, (c) compressed BSI is ~0.4x of compressed normal.
//
// Scaling note: the paper's 1024 segments each hold on the order of a
// million users, which is what makes the roaring containers dense (bitmap /
// run encoded). Storage cost per segment is independent of the segment
// count, so we reproduce ONE segment at the largest user count the bench
// budget allows (EXPBSI_BENCH_USERS, default 100k) rather than many
// unrealistically sparse segments.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "expdata/bsi_builder.h"
#include "expdata/generator.h"
#include "expdata/position_encoder.h"
#include "storage/block_compressor.h"
#include "storage/column_store.h"

using namespace expbsi;

int main() {
  const uint64_t users = bench_util::ScaledUsers(100000);
  const int kDays = 29;
  const int kMetrics = 105;
  const int kBatch = 15;  // metrics generated per pass (bounds memory)

  bench_util::PrintBanner(
      "Table 4: storage of 105 core metrics in a month (29 days)",
      "BSI raw ~9x smaller than normal raw; LZ4 shrinks normal ~3.8x but "
      "BSI only ~1.06x (already compressed); compressed BSI ~0.4x of "
      "compressed normal");
  std::printf("scale: %llu users in one dense segment, %d days, %d metrics\n\n",
              static_cast<unsigned long long>(users), kDays, kMetrics);

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 1;
  config.num_days = kDays;
  config.start_date = 0;
  config.seed = 20231121;

  const std::vector<MetricConfig> all_metrics =
      MakeCoreMetricPopulation(kMetrics, 1001, 9);

  uint64_t normal_rows = 0;
  size_t normal_raw = 0;
  size_t normal_compressed = 0;
  uint64_t bsi_rows = 0;
  size_t bsi_original = 0;
  size_t bsi_compressed = 0;
  Stopwatch wall;

  for (int batch_start = 0; batch_start < kMetrics; batch_start += kBatch) {
    std::vector<MetricConfig> batch(
        all_metrics.begin() + batch_start,
        all_metrics.begin() +
            std::min<size_t>(kMetrics, batch_start + kBatch));
    Dataset ds = GenerateDataset(config, {}, batch, {});
    const SegmentData& seg = ds.segments[0];

    // Normal format: columnar part sorted by (metric, date, unit), as a
    // ClickHouse primary key would cluster it; LZ4 per column.
    NormalMetricTable normal;
    normal.Reserve(seg.metrics.size());
    for (const MetricRow& row : seg.metrics) {
      normal.Append(0, row);
    }
    normal.SortForStorage();
    normal_rows += normal.NumRows();
    normal_raw += normal.RawBytes();
    normal_compressed += normal.CompressedBytes();

    // BSI format: one value BSI per (metric, date); engagement-ordered
    // position encoding; LZ4 chunk per metric-month.
    PositionEncoder encoder;
    encoder.PreassignRanked(ds.users_by_engagement[0]);
    std::map<std::pair<uint64_t, Date>, std::vector<MetricRow>> groups;
    for (const MetricRow& row : seg.metrics) {
      groups[{row.metric_id, row.date}].push_back(row);
    }
    std::map<uint64_t, std::string> chunk_per_metric;
    for (auto& [key, rows] : groups) {
      MetricBsi bsi = BuildMetricBsi(rows, encoder);
      bsi.value.RunOptimize();
      std::string bytes;
      bsi.Serialize(&bytes);
      bsi_original += bytes.size();
      chunk_per_metric[key.first] += bytes;
      ++bsi_rows;
    }
    for (const auto& [metric_id, chunk] : chunk_per_metric) {
      bsi_compressed += CompressedSize(chunk);
    }
    std::printf("  metrics %d-%zu done (%s normal rows so far, %.0fs)\n",
                batch_start + 1, batch_start + batch.size(),
                bench_util::HumanCount(
                    static_cast<double>(normal_rows)).c_str(),
                wall.ElapsedSeconds());
  }

  std::printf("\n%-8s %16s %18s %18s\n", "Format", "Rows",
              "Compressed(LZ4)", "Original");
  std::printf("%-8s %16s %18s %18s\n", "Normal",
              bench_util::HumanCount(
                  static_cast<double>(normal_rows)).c_str(),
              bench_util::HumanBytes(
                  static_cast<double>(normal_compressed)).c_str(),
              bench_util::HumanBytes(static_cast<double>(normal_raw)).c_str());
  std::printf("%-8s %16s %18s %18s\n", "BSI",
              bench_util::HumanCount(static_cast<double>(bsi_rows)).c_str(),
              bench_util::HumanBytes(
                  static_cast<double>(bsi_compressed)).c_str(),
              bench_util::HumanBytes(
                  static_cast<double>(bsi_original)).c_str());

  std::printf("\nshape checks vs paper:\n");
  std::printf("  normal raw / BSI raw           = %5.2fx   (paper: 9.2x)\n",
              static_cast<double>(normal_raw) / bsi_original);
  std::printf("  normal raw / normal compressed = %5.2fx   (paper: 3.8x)\n",
              static_cast<double>(normal_raw) / normal_compressed);
  std::printf("  BSI raw / BSI compressed       = %5.2fx   (paper: 1.06x; "
              "BSI is already compressed)\n",
              static_cast<double>(bsi_original) / bsi_compressed);
  std::printf("  BSI compressed / normal compr. = %5.2fx   (paper: 0.39x)\n",
              static_cast<double>(bsi_compressed) / normal_compressed);
  std::printf("\ntotal wall time: %.1fs\n", wall.ElapsedSeconds());
  return 0;
}
