// Figure 4: value-range cardinality distribution of the fleet's 5890
// user-level metrics in one day. We regenerate the published histogram from
// the calibrated metric population and print it as the figure's bar data.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  bench_util::PrintBanner(
      "Figure 4: value range cardinalities of 5890 real-world metrics",
      "most metrics have small ranges; 3979 of 5890 have cardinality <= 100");

  const std::vector<MetricConfig> metrics =
      MakeFleetMetricPopulation(5890, 1, /*seed=*/20240227);

  const uint64_t edges[] = {10,      100,      1000,     10000,
                            100000,  1000000,  10000000, 100000000};
  const char* labels[] = {"(0, 10]",      "(10, 10^2]",   "(10^2, 10^3]",
                          "(10^3, 10^4]", "(10^4, 10^5]", "(10^5, 10^6]",
                          "(10^6, 10^7]", "(10^7, 10^8]"};
  int counts[8] = {0};
  for (const MetricConfig& m : metrics) {
    for (int b = 0; b < 8; ++b) {
      if (m.value_range <= edges[b]) {
        ++counts[b];
        break;
      }
    }
  }
  std::printf("%-14s %8s %12s  histogram\n", "range card", "metrics",
              "proportion");
  int le_100 = 0;
  for (int b = 0; b < 8; ++b) {
    std::printf("%-14s %8d %11.1f%%  ", labels[b], counts[b],
                100.0 * counts[b] / 5890);
    for (int star = 0; star < counts[b] / 40; ++star) std::printf("#");
    std::printf("\n");
    if (b < 2) le_100 += counts[b];
  }
  std::printf("\nmetrics with range cardinality <= 100: %d / 5890 "
              "(paper: 3979 / 5890)\n",
              le_100);
  return 0;
}
