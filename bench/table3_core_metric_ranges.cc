// Table 3: value-range cardinality distribution of the 105 core metrics.
// Regenerates the table from the calibrated core-metric population; the
// proportions are exact by construction (largest-remainder apportionment).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  bench_util::PrintBanner(
      "Table 3: value range cardinalities of the 105 core metrics",
      "31.4% <= 10, 3.8% in (10,100], ..., 1.9% in (10^7,10^8]");

  const std::vector<MetricConfig> metrics =
      MakeCoreMetricPopulation(105, 1001, /*seed=*/9);

  const uint64_t edges[] = {10,      100,      1000,     10000,
                            100000,  1000000,  10000000, 100000000};
  const char* labels[] = {"(0, 10]",      "(10, 100]",    "(10^2, 10^3]",
                          "(10^3, 10^4]", "(10^4, 10^5]", "(10^5, 10^6]",
                          "(10^6, 10^7]", "(10^7, 10^8]"};
  const int paper_counts[] = {33, 4, 26, 18, 12, 5, 5, 2};
  int counts[8] = {0};
  for (const MetricConfig& m : metrics) {
    for (int b = 0; b < 8; ++b) {
      if (m.value_range <= edges[b]) {
        ++counts[b];
        break;
      }
    }
  }
  std::printf("%-14s %10s %12s %10s %12s\n", "range card", "metrics",
              "proportion", "paper", "paper prop");
  for (int b = 0; b < 8; ++b) {
    std::printf("%-14s %10d %11.1f%% %10d %11.1f%%\n", labels[b], counts[b],
                100.0 * counts[b] / 105, paper_counts[b],
                100.0 * paper_counts[b] / 105);
  }
  return 0;
}
