// Serving-path latency (DESIGN.md §9): what the multi-process split costs
// on top of the in-process engine. Three layers are timed separately so a
// regression is attributable:
//
//   net_codec_roundtrip   encode + decode of a realistic scorecard
//                         response payload inside one envelope -- the pure
//                         CPU cost of the wire format, no sockets;
//   net_ping_roundtrip    one framed ping/pong over a real loopback TCP
//                         connection -- transport + framing + scheduling,
//                         no query execution;
//   net_query_scatter     a full scorecard query through the coordinator
//                         against three in-process node servers, reported
//                         per query -- the end-to-end serving latency the
//                         cross-process differential test verifies for
//                         bit-identity;
//   net_query_scatter_r{1,2}  the same query against *pruned* fleets under
//                         replica placement (DESIGN.md §11) -- what R-way
//                         replication costs on the fault-free fast path;
//   net_query_{unhedged,hedged}_slow_node  tail latency with one node's
//                         responses stalled 50 ms: the unhedged query eats
//                         the stall, the hedged one covers it from the
//                         replica.
//
// The inline oracle gate compares the scattered result against the direct
// engine before any timing is recorded, same contract as every other bench.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/adhoc_cluster.h"
#include "cluster/placement.h"
#include "common/fault_injector.h"
#include "common/timer.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "net/coordinator.h"
#include "net/node_server.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/fleet.h"
#include "storage/bsi_store.h"
#include "wire/envelope.h"
#include "wire/messages.h"

using namespace expbsi;

namespace {

constexpr int kNumNodes = 3;
constexpr Date kLo = 50;
constexpr int kDays = 7;

// A response payload shaped like one node's share of a real scorecard
// wave: a handful of segments, each carrying strategy x metric partials.
wire::WireQueryResponse MakeCodecPayload() {
  wire::WireQueryResponse resp;
  resp.segments.resize(4);
  uint32_t seg_id = 0;
  for (wire::WireSegmentResult& seg : resp.segments) {
    seg.segment = seg_id++;
    for (int i = 0; i < 3 * 2; ++i) {  // 3 strategies x 2 metrics
      seg.sums.push_back(1234.5 * (i + 1));
      seg.counts.push_back(100.0 * (i + 1));
    }
  }
  resp.retries = 1;
  resp.bytes_from_cold = 1u << 20;
  resp.hot_hits = 17;
  resp.cpu_seconds = 0.0125;
  return resp;
}

// One node's warehouse slice under replica placement.
BsiStore PrunedStore(const BsiStore& cold, const Placement& placement,
                     int node_id) {
  const std::vector<uint32_t> owned = placement.SegmentsOf(node_id);
  BsiStore store;
  cold.ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                        uint64_t fingerprint) {
    if (std::find(owned.begin(), owned.end(), key.segment) != owned.end()) {
      store.PutRecovered(key, bytes, fingerprint);
    }
  });
  return store;
}

struct ReplicatedFleet {
  std::vector<std::unique_ptr<BsiStore>> stores;
  std::vector<std::unique_ptr<net::NodeServer>> nodes;
  net::CoordinatorOptions options;
  ~ReplicatedFleet() {
    for (auto& node : nodes) node->Stop();
  }
};

bool StartReplicatedFleet(const BsiStore& cold, int num_segments,
                          int replication_factor, ReplicatedFleet* fleet) {
  const Placement placement(kNumNodes, num_segments, replication_factor);
  for (int i = 0; i < kNumNodes; ++i) {
    net::NodeServerOptions node_options;
    node_options.node_id = i;
    node_options.owned_segments = placement.SegmentsOf(i);
    fleet->stores.push_back(
        std::make_unique<BsiStore>(PrunedStore(cold, placement, i)));
    auto node =
        std::make_unique<net::NodeServer>(fleet->stores.back().get(),
                                          node_options);
    if (!node->Start().ok()) return false;
    fleet->options.node_ports.push_back(node->port());
    fleet->nodes.push_back(std::move(node));
  }
  fleet->options.num_segments = num_segments;
  fleet->options.replication_factor = replication_factor;
  return true;
}

}  // namespace

int main() {
  bench_util::OraclePreflight();
  const uint64_t users = bench_util::ScaledUsers(20000);

  bench_util::PrintBanner(
      "Serving path: wire codec, transport round-trip, scatter/gather query",
      "the paper's serving clusters answer scorecard queries over "
      "segment-sharded nodes; this measures the protocol overhead of that "
      "split against the in-process engine");
  std::printf("scale: %llu users, %d nodes, %d segments, %d days\n\n",
              static_cast<unsigned long long>(users), kNumNodes, 8, kDays);

  // ---- warehouse -----------------------------------------------------------
  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 8;
  config.num_days = kDays;
  config.start_date = kLo;
  config.seed = 20260808;
  ExperimentConfig exp;
  exp.strategy_ids = {801, 802, 803};
  exp.arm_effects = {1.0, 1.05, 0.97};
  exp.traffic_salt = 3;
  MetricConfig m1;
  m1.metric_id = 901;
  m1.value_range = 21600;
  m1.daily_participation = 0.6;
  MetricConfig m2;
  m2.metric_id = 902;
  m2.value_range = 1;
  m2.daily_participation = 0.7;
  const Dataset dataset = GenerateDataset(config, {exp}, {m1, m2}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const BsiStore cold = BuildColdStore(bsi);

  const std::vector<uint64_t> strategies = {801, 802, 803};
  const std::vector<uint64_t> metrics = {901, 902};
  const Date hi = static_cast<Date>(kLo + kDays - 1);

  // ---- codec: encode + decode, no sockets ---------------------------------
  {
    const wire::WireQueryResponse payload = MakeCodecPayload();
    std::string encoded;
    wire::EncodeQueryResponse(payload, &encoded);
    wire::Envelope env;
    env.type = wire::MsgType::kQueryResponse;
    env.request_id = 42;
    env.payload = encoded;
    constexpr int kIters = 20000;
    double best_ns = 0;
    size_t frame_bytes = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kIters; ++i) {
        std::string frame;
        wire::EncodeEnvelope(env, &frame);
        frame_bytes = frame.size();
        const Result<wire::Envelope> back = wire::DecodeEnvelope(frame);
        if (!back.ok() ||
            !wire::DecodeQueryResponse(back.value().payload).ok()) {
          std::fprintf(stderr, "codec round-trip failed\n");
          return 1;
        }
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kIters;
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    std::printf("codec round-trip: %.0f ns/frame (%zu-byte frame)\n",
                best_ns, frame_bytes);
    std::printf("BENCHJSON {\"op\": \"net_codec_roundtrip\", "
                "\"ns_per_op\": %.0f, \"bytes_per_op\": %zu}\n",
                best_ns, frame_bytes);
  }

  // ---- the serving fleet ---------------------------------------------------
  std::vector<std::unique_ptr<net::NodeServer>> nodes;
  net::CoordinatorOptions options;
  for (int i = 0; i < kNumNodes; ++i) {
    net::NodeServerOptions node_options;
    node_options.node_id = i;
    auto node = std::make_unique<net::NodeServer>(&cold, node_options);
    if (!node->Start().ok()) {
      std::fprintf(stderr, "node %d failed to start\n", i);
      return 1;
    }
    options.node_ports.push_back(node->port());
    nodes.push_back(std::move(node));
  }
  options.num_segments = config.num_segments;
  net::Coordinator coordinator(options);

  // ---- transport ping round-trip ------------------------------------------
  {
    Result<net::Socket> conn =
        net::Connect(options.node_ports[0], net::Deadline::After(5.0));
    if (!conn.ok()) {
      std::fprintf(stderr, "ping connect failed\n");
      return 1;
    }
    net::Socket sock = std::move(conn.value());
    net::FaultyEndpoint endpoint(/*endpoint_id=*/999);
    constexpr int kPings = 2000;
    double best_ns = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kPings; ++i) {
        wire::Envelope ping;
        ping.type = wire::MsgType::kPing;
        ping.request_id = static_cast<uint64_t>(i + 1);
        const net::Deadline deadline = net::Deadline::After(5.0);
        if (!net::SendEnvelope(sock, ping, deadline, &endpoint).ok() ||
            !net::RecvEnvelope(sock, deadline, ping.request_id).ok()) {
          std::fprintf(stderr, "ping round-trip failed\n");
          return 1;
        }
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kPings;
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    std::printf("ping round-trip:  %.0f ns over loopback TCP\n", best_ns);
    std::printf("BENCHJSON {\"op\": \"net_ping_roundtrip\", "
                "\"ns_per_op\": %.0f}\n",
                best_ns);
  }

  // ---- scatter/gather scorecard query -------------------------------------
  {
    // Oracle gate: the scattered answer must be bit-identical to the
    // direct engine before its latency means anything.
    const Result<AdhocCluster::QueryStats> remote =
        coordinator.QueryBsi(strategies, metrics, kLo, hi);
    if (!remote.ok()) {
      std::fprintf(stderr, "scatter query failed: %s\n",
                   remote.status().ToString().c_str());
      return 1;
    }
    for (const auto& [pair, values] : remote.value().results) {
      const BucketValues direct =
          ComputeStrategyMetricBsi(bsi, pair.first, pair.second, kLo, hi);
      if (values.sums != direct.sums || values.counts != direct.counts) {
        std::fprintf(stderr,
                     "[preflight] FAILED: scattered scorecard diverged from "
                     "the direct engine for %llu/%llu\n",
                     static_cast<unsigned long long>(pair.first),
                     static_cast<unsigned long long>(pair.second));
        return 1;
      }
    }
    std::printf("[preflight] scattered scorecard == direct engine\n");

    constexpr int kQueries = 30;
    double best_ns = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kQueries; ++i) {
        const Result<AdhocCluster::QueryStats> r =
            coordinator.QueryBsi(strategies, metrics, kLo, hi);
        if (!r.ok()) {
          std::fprintf(stderr, "scatter query failed mid-bench\n");
          return 1;
        }
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kQueries;
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    // In-process baseline on the same warehouse, for the overhead line.
    AdhocClusterConfig cluster_config;
    cluster_config.num_nodes = kNumNodes;
    AdhocCluster cluster(&dataset, &bsi, cluster_config);
    double local_best_ns = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kQueries; ++i) {
        if (!cluster.QueryBsi(strategies, metrics, kLo, hi).ok()) {
          std::fprintf(stderr, "in-process query failed mid-bench\n");
          return 1;
        }
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kQueries;
      if (local_best_ns == 0 || ns < local_best_ns) local_best_ns = ns;
    }
    std::printf("scatter/gather:   %.2f ms/query over %d nodes "
                "(in-process: %.2f ms; protocol overhead %.2f ms)\n",
                best_ns / 1e6, kNumNodes, local_best_ns / 1e6,
                (best_ns - local_best_ns) / 1e6);
    std::printf("BENCHJSON {\"op\": \"net_query_scatter\", "
                "\"ns_per_op\": %.0f}\n",
                best_ns);
    std::printf("BENCHJSON {\"op\": \"net_query_inprocess\", "
                "\"ns_per_op\": %.0f}\n",
                local_best_ns);
  }

  // ---- fleet scrape: merged stats from every node -------------------------
  // One observability wave over the live 3-node fleet: kStatsFetch to every
  // node plus the coordinator's self row, merged and rendered as Prometheus
  // text. This is what a monitoring pull against the coordinator costs, and
  // it shares the serving sockets -- it should stay far below query latency.
  {
    obs::FleetScraperOptions scrape_options;
    scrape_options.node_ports.assign(options.node_ports.begin(),
                                     options.node_ports.end());
    obs::FleetScraper scraper(scrape_options);
    constexpr int kScrapes = 50;
    double best_ns = 0;
    size_t exposition_bytes = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kScrapes; ++i) {
        const obs::FleetView view = scraper.Scrape();
        for (const obs::FleetNodeSnapshot& snap : view.nodes) {
          if (snap.label != "coordinator" && !snap.reachable) {
            std::fprintf(stderr, "fleet scrape lost node %s: %s\n",
                         snap.label.c_str(), snap.error.c_str());
            return 1;
          }
        }
        exposition_bytes = obs::FleetScraper::RenderPrometheus(view).size();
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kScrapes;
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    std::printf("fleet scrape:     %.2f ms over %d nodes "
                "(%zu-byte exposition)\n",
                best_ns / 1e6, kNumNodes, exposition_bytes);
    std::printf("BENCHJSON {\"op\": \"net_fleet_scrape\", "
                "\"ns_per_op\": %.0f, \"bytes_per_op\": %zu}\n",
                best_ns, exposition_bytes);
  }

  for (auto& node : nodes) node->Stop();
  nodes.clear();

  // ---- replicated scatter: R=1 vs R=2 pruned fleets -----------------------
  // Same query, but each node serves only its placement slice and the
  // coordinator routes by replica set. The R=1/R=2 pair prices what
  // replication costs on the fault-free fast path (wave-1 routing dials
  // primaries only, and primaries are independent of R, so the answer
  // should be "almost nothing").
  for (int replicas = 1; replicas <= 2; ++replicas) {
    ReplicatedFleet fleet;
    if (!StartReplicatedFleet(cold, config.num_segments, replicas, &fleet)) {
      std::fprintf(stderr, "replicated fleet (R=%d) failed to start\n",
                   replicas);
      return 1;
    }
    net::Coordinator coordinator_r(fleet.options);
    const Result<AdhocCluster::QueryStats> remote =
        coordinator_r.QueryBsi(strategies, metrics, kLo, hi);
    if (!remote.ok()) {
      std::fprintf(stderr, "replicated scatter (R=%d) failed: %s\n", replicas,
                   remote.status().ToString().c_str());
      return 1;
    }
    for (const auto& [pair, values] : remote.value().results) {
      const BucketValues direct =
          ComputeStrategyMetricBsi(bsi, pair.first, pair.second, kLo, hi);
      if (values.sums != direct.sums || values.counts != direct.counts) {
        std::fprintf(stderr,
                     "[preflight] FAILED: replicated scorecard (R=%d) "
                     "diverged from the direct engine\n",
                     replicas);
        return 1;
      }
    }
    constexpr int kQueries = 30;
    double best_ns = 0;
    for (int round = 0; round < 3; ++round) {
      Stopwatch watch;
      for (int i = 0; i < kQueries; ++i) {
        if (!coordinator_r.QueryBsi(strategies, metrics, kLo, hi).ok()) {
          std::fprintf(stderr, "replicated scatter failed mid-bench\n");
          return 1;
        }
      }
      const double ns = watch.ElapsedSeconds() * 1e9 / kQueries;
      if (best_ns == 0 || ns < best_ns) best_ns = ns;
    }
    std::printf("replicated scatter (R=%d): %.2f ms/query over %d pruned "
                "nodes\n",
                replicas, best_ns / 1e6, kNumNodes);
    std::printf("BENCHJSON {\"op\": \"net_query_scatter_r%d\", "
                "\"ns_per_op\": %.0f}\n",
                replicas, best_ns);
  }

  // ---- hedged reads: tail latency with one stalled node -------------------
  // Every response send from node 0 is delayed 50 ms (scheduled one-shots
  // on its send endpoint, so nothing else slows down). The unhedged query
  // eats the stall; the hedged one re-issues to the replica after 5 ms and
  // takes whichever answer lands first.
  {
    constexpr double kStallSeconds = 0.05;
    constexpr int kQueries = 10;
    double tail_ns[2] = {0, 0};  // [0] unhedged, [1] hedged
    for (int hedged = 0; hedged <= 1; ++hedged) {
      ReplicatedFleet fleet;
      if (!StartReplicatedFleet(cold, config.num_segments, 2, &fleet)) {
        std::fprintf(stderr, "hedge fleet failed to start\n");
        return 1;
      }
      fleet.options.hedge_reads = hedged == 1;
      fleet.options.hedge_delay_seconds = 0.005;
      net::Coordinator coordinator_h(fleet.options);
      FaultInjector injector(/*seed=*/20260808);
      injector.SetDelayProbability(fault_sites::kNetSend, 0.0, kStallSeconds);
      for (uint64_t op = 0; op < 4096; ++op) {
        // Node 0's server send endpoint is its node id, so its per-endpoint
        // op indices start at 0 * kNetOpStride.
        injector.ScheduleFault(fault_sites::kNetSend, op, FaultKind::kDelay);
      }
      double best_ns = 0;
      {
        ScopedFaultInjection scoped(&injector);
        for (int round = 0; round < 3; ++round) {
          Stopwatch watch;
          for (int i = 0; i < kQueries; ++i) {
            const Result<AdhocCluster::QueryStats> r =
                coordinator_h.QueryBsi(strategies, metrics, kLo, hi);
            if (!r.ok() || !r.value().degraded.lost_segments.empty()) {
              std::fprintf(stderr, "slow-node query failed mid-bench\n");
              return 1;
            }
          }
          const double ns = watch.ElapsedSeconds() * 1e9 / kQueries;
          if (best_ns == 0 || ns < best_ns) best_ns = ns;
        }
      }
      tail_ns[hedged] = best_ns;
    }
    std::printf("slow-node query:  unhedged %.2f ms, hedged %.2f ms "
                "(one node stalled %.0f ms per response)\n",
                tail_ns[0] / 1e6, tail_ns[1] / 1e6, kStallSeconds * 1e3);
    std::printf("BENCHJSON {\"op\": \"net_query_unhedged_slow_node\", "
                "\"ns_per_op\": %.0f}\n",
                tail_ns[0]);
    std::printf("BENCHJSON {\"op\": \"net_query_hedged_slow_node\", "
                "\"ns_per_op\": %.0f}\n",
                tail_ns[1]);
  }

  bench_util::EmitRegistrySnapshot("net_query");
  return 0;
}
