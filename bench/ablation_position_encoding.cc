// Ablation (§3.4.1): engagement-ordered position encoding vs adversarially
// shuffled encoding. The paper encodes high-engagement users to small
// positions "to make the roaring bitmaps in BSI more compact and efficient".
//
// The effect needs a realistic per-segment population: with engagement
// ordering, the daily-active users occupy a dense prefix of the position
// space, so whole roaring containers become run/dense encoded, while a
// shuffled encoding smears the same users across every container at medium
// density. Below ~65536 positions per segment a permutation cannot change
// container shapes at all, which is why this bench runs ONE large segment
// (the paper's segments hold ~10^6 users each).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"

using namespace expbsi;

namespace {

void RunOptimizeAll(ExperimentBsiData& data) {
  for (SegmentBsiData& seg : data.segments) {
    for (auto& [id, expose] : seg.expose) {
      expose.offset.RunOptimize();
      expose.bucket.RunOptimize();
    }
    for (auto& [key, metric] : seg.metrics) metric.value.RunOptimize();
  }
}

size_t TotalBsiBytes(const ExperimentBsiData& data) {
  size_t total = 0;
  for (const SegmentBsiData& seg : data.segments) {
    for (const auto& [id, expose] : seg.expose) total += expose.SizeInBytes();
    for (const auto& [key, metric] : seg.metrics) {
      total += metric.SizeInBytes();
    }
  }
  return total;
}

double TimeScorecard(const ExperimentBsiData& data) {
  CpuTimer timer;
  for (int r = 0; r < 3; ++r) {
    ComputeStrategyMetricBsi(data, 11, 424242, 0, 6);
    ComputeStrategyMetricBsi(data, 12, 424242, 0, 6);
  }
  return timer.ElapsedSeconds() / 3;
}

}  // namespace

int main() {
  const uint64_t users = bench_util::ScaledUsers(1500000);

  bench_util::PrintBanner(
      "Ablation: position encoding order (§3.4.1)",
      "engagement-ordered positions give denser roaring containers, hence "
      "smaller BSIs and faster operations");

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 1;  // one production-sized segment
  config.num_days = 7;
  config.seed = 6;

  ExperimentConfig exp;
  exp.strategy_ids = {11, 12};
  exp.arm_effects = {1.0, 1.05};
  exp.traffic_salt = 4;

  MetricConfig metric;
  metric.metric_id = 424242;
  metric.value_range = 300;
  metric.daily_participation = 0.12;

  std::printf("scale: %llu users in one segment, 7 days\n\n",
              static_cast<unsigned long long>(users));
  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {exp}, {metric}, {});

  struct Row {
    const char* name;
    size_t bytes;
    double seconds;
  };
  std::vector<Row> rows;

  {
    ExperimentBsiData engaged = BuildExperimentBsiData(dataset, true);
    RunOptimizeAll(engaged);
    rows.push_back({"engagement-ordered", TotalBsiBytes(engaged),
                    TimeScorecard(engaged)});
  }
  {
    // Adversarial: shuffle the preassignment so active users scatter
    // uniformly over the position space.
    Dataset shuffled = dataset;
    Rng rng(123);
    for (auto& ranked : shuffled.users_by_engagement) {
      for (size_t i = ranked.size(); i > 1; --i) {
        std::swap(ranked[i - 1], ranked[rng.NextBounded(i)]);
      }
    }
    ExperimentBsiData random = BuildExperimentBsiData(shuffled, true);
    RunOptimizeAll(random);
    rows.push_back({"shuffled", TotalBsiBytes(random),
                    TimeScorecard(random)});
  }

  std::printf("\n%-20s %14s %16s %18s\n", "encoding", "BSI bytes",
              "scorecard(ms)", "bytes vs engaged");
  for (const Row& row : rows) {
    std::printf("%-20s %14s %16.2f %17.2fx\n", row.name,
                bench_util::HumanBytes(static_cast<double>(row.bytes)).c_str(),
                row.seconds * 1e3,
                static_cast<double>(row.bytes) /
                    static_cast<double>(rows[0].bytes));
  }
  std::printf("\n(the paper's recommendation corresponds to the first row; "
              "shuffling the encoding inflates container sizes and op time)\n");
  return 0;
}
