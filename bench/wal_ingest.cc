// Streaming ingestion: WAL append / replay / end-to-end ingest throughput
// (DESIGN.md §8).
//
// The paper's platform ingests expose/metric/dimension events continuously;
// this bench measures the reproduction's write path at a pinned scale:
//
//   wal_append   append-only WalWriter throughput, fsync per record (the
//                product default -- the durability-honest number);
//   wal_replay   ReplayWal over the segments just written (CRC validation
//                + record decode, no BSI work);
//   wal_ingest   IngestStore::Ingest end to end: log first, then delta-BSI
//                build + MergeAppend into the live warehouse;
//   wal_recover  IngestStore::Open cold recovery: full replay + delta merge
//                (the crash-restart cost when no snapshot shortens the log).
//
// All four scale with the event volume, so ns_per_op is the whole pass with
// bytes_per_op the WAL byte size, plus an events/s line for intuition.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/file_io.h"
#include "common/timer.h"
#include "expdata/generator.h"
#include "wal/event_stream.h"
#include "wal/ingest_store.h"
#include "wal/wal.h"

using namespace expbsi;

namespace {

bool CleanDir(const std::string& dir) {
  if (!fileio::CreateDirIfMissing(dir).ok()) return false;
  const Result<std::vector<std::string>> entries = fileio::ListDir(dir);
  if (!entries.ok()) return false;
  for (const std::string& entry : entries.value()) {
    if (!fileio::RemoveFileIfExists(dir + "/" + entry).ok()) return false;
  }
  return true;
}

}  // namespace

int main() {
  const uint64_t users = bench_util::ScaledUsers(100000);
  const int kDays = 7;
  const size_t kBatchEvents = 512;
  const int kRounds = 3;  // best round is reported

  bench_util::PrintBanner(
      "WAL ingestion: append, replay and incremental-merge throughput",
      "the streaming write path: CRC-framed fsync'd appends, replay "
      "validates every record CRC, ingest adds the delta-BSI merge into "
      "the live warehouse");

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = 4;
  config.num_days = kDays;
  config.start_date = 0;
  config.seed = 20240301;
  ExperimentConfig experiment;
  experiment.strategy_ids = {801, 802};
  experiment.arm_effects = {1.0, 1.05};
  experiment.traffic_fraction = 0.9;
  MetricConfig m1;
  m1.metric_id = 1001;
  m1.value_range = 200;
  MetricConfig m2;
  m2.metric_id = 1002;
  m2.value_range = 30;
  m2.daily_participation = 0.6;
  MetricConfig m3;
  m3.metric_id = 1003;
  m3.value_range = 1;
  m3.daily_participation = 0.8;
  DimensionConfig dim;
  dim.dimension_id = 11;
  dim.cardinality = 8;

  const Dataset dataset =
      GenerateDataset(config, {experiment}, {m1, m2, m3}, {dim});
  const std::vector<WalEvent> stream = MakeWalEventStream(dataset);
  const std::vector<std::vector<WalEvent>> batches =
      BatchWalEvents(stream, kBatchEvents);
  uint64_t wal_bytes = kWalSegmentHeaderBytes;
  for (const std::vector<WalEvent>& batch : batches) {
    wal_bytes += kWalRecordHeaderBytes + batch.size() * kWalEventBytes + 4;
  }
  std::printf("scale: %llu users, %d days, 4 segments -> %zu events in "
              "%zu records (%s framed)\n\n",
              static_cast<unsigned long long>(users), kDays, stream.size(),
              batches.size(),
              bench_util::HumanBytes(static_cast<double>(wal_bytes)).c_str());

  const std::string wal_dir = "/tmp/expbsi_bench_wal";
  const std::string snap_dir = "/tmp/expbsi_bench_wal_snap";
  WalOptions wal_options;  // defaults: 4 MB segments, fsync per append
  IngestOptions ingest_options;
  ingest_options.wal = wal_options;
  ingest_options.num_segments = config.num_segments;
  ingest_options.bucket_equals_segment = true;

  double best_append_ns = 0, best_replay_ns = 0;
  double best_ingest_ns = 0, best_recover_ns = 0;
  for (int round = 0; round < kRounds; ++round) {
    // Append-only: the raw log throughput.
    if (!CleanDir(wal_dir)) {
      std::fprintf(stderr, "error: cannot prepare %s\n", wal_dir.c_str());
      return 1;
    }
    {
      Result<std::unique_ptr<WalWriter>> writer =
          WalWriter::Open(wal_dir, wal_options);
      if (!writer.ok()) {
        std::fprintf(stderr, "error: wal open failed: %s\n",
                     writer.status().ToString().c_str());
        return 1;
      }
      Stopwatch append_timer;
      for (const std::vector<WalEvent>& batch : batches) {
        const Result<uint64_t> seq = writer.value()->Append(batch);
        if (!seq.ok()) {
          std::fprintf(stderr, "error: append failed: %s\n",
                       seq.status().ToString().c_str());
          return 1;
        }
      }
      const double append_ns = append_timer.ElapsedSeconds() * 1e9;
      if (round == 0 || append_ns < best_append_ns) {
        best_append_ns = append_ns;
      }
    }

    // Replay: CRC validation + record decode over what was just written.
    {
      WalRecoveryReport report;
      Stopwatch replay_timer;
      const Result<std::vector<WalRecord>> replayed =
          ReplayWal(wal_dir, &report);
      const double replay_ns = replay_timer.ElapsedSeconds() * 1e9;
      if (!replayed.ok() || replayed.value().size() != batches.size() ||
          report.tail_torn) {
        std::fprintf(stderr, "error: replay diverged from what was written\n");
        return 1;
      }
      if (round == 0 || replay_ns < best_replay_ns) {
        best_replay_ns = replay_ns;
      }
    }

    // End-to-end ingest: log + delta build + MergeAppend into live BSIs.
    if (!CleanDir(wal_dir) || !CleanDir(snap_dir)) {
      std::fprintf(stderr, "error: cannot prepare ingest dirs\n");
      return 1;
    }
    {
      Result<std::unique_ptr<IngestStore>> store =
          IngestStore::Open(wal_dir, snap_dir, ingest_options);
      if (!store.ok()) {
        std::fprintf(stderr, "error: ingest open failed: %s\n",
                     store.status().ToString().c_str());
        return 1;
      }
      Stopwatch ingest_timer;
      for (const std::vector<WalEvent>& batch : batches) {
        const Result<uint64_t> seq = store.value()->Ingest(batch);
        if (!seq.ok()) {
          std::fprintf(stderr, "error: ingest failed: %s\n",
                       seq.status().ToString().c_str());
          return 1;
        }
      }
      const double ingest_ns = ingest_timer.ElapsedSeconds() * 1e9;
      if (round == 0 || ingest_ns < best_ingest_ns) {
        best_ingest_ns = ingest_ns;
      }
    }

    // Cold recovery: replay the full log and rebuild the live warehouse.
    {
      IngestRecoveryReport report;
      Stopwatch recover_timer;
      Result<std::unique_ptr<IngestStore>> store =
          IngestStore::Open(wal_dir, snap_dir, ingest_options, &report);
      const double recover_ns = recover_timer.ElapsedSeconds() * 1e9;
      if (!store.ok() ||
          store.value()->last_sequence() != batches.size() ||
          report.records_applied != batches.size()) {
        std::fprintf(stderr, "error: recovery diverged from the ingest\n");
        return 1;
      }
      if (round == 0 || recover_ns < best_recover_ns) {
        best_recover_ns = recover_ns;
      }
    }
    std::printf("  round %d: append %.1f ms, replay %.1f ms, ingest %.1f "
                "ms, recover %.1f ms\n",
                round + 1, best_append_ns / 1e6, best_replay_ns / 1e6,
                best_ingest_ns / 1e6, best_recover_ns / 1e6);
  }

  const double events = static_cast<double>(stream.size());
  std::printf("\nwal append:  %8.1f ms  (%7.0f MB/s, %9.0f events/s)\n",
              best_append_ns / 1e6,
              static_cast<double>(wal_bytes) / best_append_ns * 1e3,
              events / best_append_ns * 1e9);
  std::printf("wal replay:  %8.1f ms  (%7.0f MB/s, %9.0f events/s)\n",
              best_replay_ns / 1e6,
              static_cast<double>(wal_bytes) / best_replay_ns * 1e3,
              events / best_replay_ns * 1e9);
  std::printf("wal ingest:  %8.1f ms  (%9.0f events/s)\n",
              best_ingest_ns / 1e6, events / best_ingest_ns * 1e9);
  std::printf("wal recover: %8.1f ms  (%9.0f events/s)\n",
              best_recover_ns / 1e6, events / best_recover_ns * 1e9);

  std::printf("BENCHJSON {\"op\": \"wal_append\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_append_ns, static_cast<unsigned long long>(wal_bytes));
  std::printf("BENCHJSON {\"op\": \"wal_replay\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_replay_ns, static_cast<unsigned long long>(wal_bytes));
  std::printf("BENCHJSON {\"op\": \"wal_ingest\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_ingest_ns, static_cast<unsigned long long>(wal_bytes));
  std::printf("BENCHJSON {\"op\": \"wal_recover\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %llu}\n",
              best_recover_ns, static_cast<unsigned long long>(wal_bytes));
  bench_util::EmitRegistrySnapshot("wal_ingest");
  return 0;
}
