#ifndef EXPBSI_BENCH_BENCH_UTIL_H_
#define EXPBSI_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bsi/bsi.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "engine/experiment_data.h"
#include "engine/scorecard.h"
#include "expdata/generator.h"
#include "reference/ref_column.h"
#include "reference/ref_data.h"
#include "reference/ref_engine.h"

namespace expbsi {
namespace bench_util {

// Benchmarks run at a laptop-scale fraction of the paper's production
// deployment; the env var below scales the synthetic user base so the same
// binaries can run larger reproductions on bigger machines.
inline uint64_t ScaledUsers(uint64_t default_users) {
  const char* env = std::getenv("EXPBSI_BENCH_USERS");
  if (env == nullptr) return default_users;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : default_users;
}

inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2f TB", bytes / 1e12);
  } else if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

inline std::string HumanCount(double n) {
  char buf[64];
  if (n >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f billion", n / 1e9);
  } else if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f million", n / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

// Differential-oracle pre-flight: before a benchmark times anything, the
// optimized path is checked against the scalar reference (src/reference/)
// on a small workload. A benchmark that produces wrong numbers fast is
// worse than useless, so a mismatch aborts the binary. Costs well under a
// second. Set EXPBSI_PREFLIGHT_ONLY=1 to exit right after the check (CI
// uses this as a standalone correctness gate).
inline void OraclePreflight() {
  // Raw BSI arithmetic vs the scalar column.
  Rng rng(20260805);
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  for (uint32_t pos = 0; pos < 40000; ++pos) {
    if (rng.NextBernoulli(0.35)) {
      pairs.emplace_back(pos, 1 + rng.NextBounded(21600));
    }
  }
  const Bsi bsi_col = Bsi::FromPairs(pairs);
  const RefColumn ref_col = RefColumn::FromPairs(pairs);
  bool ok = bsi_col.Sum() == ref_col.Sum() &&
            bsi_col.RangeLe(5000).ToVector() == ref_col.RangeLe(5000) &&
            bsi_col.Quantile(0.9) == ref_col.Quantile(0.9);

  // Scorecard kernel vs the scalar engine (bit-for-bit).
  DatasetConfig config;
  config.num_users = 300;
  config.num_segments = 3;
  config.num_days = 3;
  config.seed = 97;
  ExperimentConfig experiment;
  experiment.strategy_ids = {800, 801};
  experiment.arm_effects = {1.0, 1.1};
  MetricConfig metric;
  metric.metric_id = 11;
  metric.value_range = 21600;
  const Dataset dataset =
      GenerateDataset(config, {experiment}, {metric}, {});
  const ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);
  const RefExperimentData ref = BuildRefExperimentData(dataset);
  for (const uint64_t strategy : {800, 801}) {
    const BucketValues got =
        ComputeStrategyMetricBsi(bsi, strategy, 11, 0, 2);
    const BucketValues want = RefComputeStrategyMetric(ref, strategy, 11, 0, 2);
    ok = ok && got.sums == want.sums && got.counts == want.counts;
  }

  if (!ok) {
    std::fprintf(stderr,
                 "[preflight] FAILED: optimized engine disagrees with the "
                 "scalar oracle; benchmark numbers would be meaningless. "
                 "Run the differential tests for a minimal repro.\n");
    std::abort();
  }
  std::printf("[preflight] oracle check passed (BSI == scalar reference)\n");
  const char* only = std::getenv("EXPBSI_PREFLIGHT_ONLY");
  if (only != nullptr && only[0] != '\0' && std::string(only) != "0") {
    std::exit(0);
  }
}

// Registry scrape at bench exit (docs/OBSERVABILITY.md "Bench
// integration"). Emits one `REGISTRYJSON {...}` line that
// scripts/run_benches.sh folds into the collected BENCH file alongside the
// timing measurements, and -- when EXPBSI_PROM_DIR is set -- writes the
// Prometheus text exposition to $EXPBSI_PROM_DIR/<bench>.prom for
// scripts/check_metrics.py to validate. Under EXPBSI_NO_METRICS the dump
// degenerates to the compiled-out marker, which the collector records
// verbatim, so the committed BENCH pair documents both modes.
inline void EmitRegistrySnapshot(const char* bench_name) {
  std::printf("REGISTRYJSON {\"bench\": \"%s\", \"registry\": %s}\n",
              bench_name,
              obs::MetricsRegistry::Global().RenderJson().c_str());
  const char* dir = std::getenv("EXPBSI_PROM_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + bench_name + ".prom";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  const std::string text = obs::MetricsRegistry::Global().RenderPrometheus();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
}

inline void PrintBanner(const char* experiment, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

}  // namespace bench_util
}  // namespace expbsi

#endif  // EXPBSI_BENCH_BENCH_UTIL_H_
