#ifndef EXPBSI_BENCH_BENCH_UTIL_H_
#define EXPBSI_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace expbsi {
namespace bench_util {

// Benchmarks run at a laptop-scale fraction of the paper's production
// deployment; the env var below scales the synthetic user base so the same
// binaries can run larger reproductions on bigger machines.
inline uint64_t ScaledUsers(uint64_t default_users) {
  const char* env = std::getenv("EXPBSI_BENCH_USERS");
  if (env == nullptr) return default_users;
  const uint64_t v = std::strtoull(env, nullptr, 10);
  return v > 0 ? v : default_users;
}

inline std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes >= 1e12) {
    std::snprintf(buf, sizeof(buf), "%.2f TB", bytes / 1e12);
  } else if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f KB", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

inline std::string HumanCount(double n) {
  char buf[64];
  if (n >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f billion", n / 1e9);
  } else if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f million", n / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

inline void PrintBanner(const char* experiment, const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

}  // namespace bench_util
}  // namespace expbsi

#endif  // EXPBSI_BENCH_BENCH_UTIL_H_
