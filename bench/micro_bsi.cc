// Microbenchmarks for BSI arithmetic (§2.3, §4.1): cost of the slice-wise
// operations that the scorecard pipeline composes, as a function of value
// range (slice count) and density.

#include <benchmark/benchmark.h>

#include "bsi/bsi.h"
#include "bsi/bsi_group_by.h"
#include "common/rng.h"

namespace expbsi {
namespace {

Bsi MakeBsi(uint64_t seed, uint32_t universe, double density,
            uint64_t max_value) {
  Rng rng(seed);
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  for (uint32_t pos = 0; pos < universe; ++pos) {
    if (rng.NextBernoulli(density)) {
      pairs.emplace_back(pos, 1 + rng.NextBounded(max_value));
    }
  }
  return Bsi::FromPairs(std::move(pairs));
}

// Value range drives the slice count, which the paper's complexity analysis
// says addition scales with.
void BM_BsiAdd(benchmark::State& state) {
  const uint64_t max_value = static_cast<uint64_t>(state.range(0));
  Bsi x = MakeBsi(1, 1 << 20, 0.4, max_value);
  Bsi y = MakeBsi(2, 1 << 20, 0.4, max_value);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bsi::Add(x, y));
  }
}
BENCHMARK(BM_BsiAdd)->Arg(1)->Arg(50)->Arg(21600)->Arg(100000000);

void BM_BsiMultiplyByBinary(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  RoaringBitmap mask = MakeBsi(2, 1 << 20, 0.5, 1).existence();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bsi::MultiplyByBinary(x, mask));
  }
}
BENCHMARK(BM_BsiMultiplyByBinary);

void BM_BsiSumUnderMask(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  RoaringBitmap mask = MakeBsi(2, 1 << 20, 0.5, 1).existence();
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.SumUnderMask(mask));
  }
}
BENCHMARK(BM_BsiSumUnderMask);

void BM_BsiRangeLe(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.RangeLe(5000));
  }
}
BENCHMARK(BM_BsiRangeLe);

void BM_BsiCompareLt(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 19, 0.4, 21600);
  Bsi y = MakeBsi(2, 1 << 19, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bsi::Lt(x, y));
  }
}
BENCHMARK(BM_BsiCompareLt);

void BM_BsiEq(benchmark::State& state) {
  // Small value range so Eq has real hits (equal draws are likely).
  Bsi x = MakeBsi(1, 1 << 19, 0.4, 50);
  Bsi y = MakeBsi(2, 1 << 19, 0.4, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bsi::Eq(x, y));
  }
}
BENCHMARK(BM_BsiEq);

void BM_BsiNe(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 19, 0.4, 21600);
  Bsi y = MakeBsi(2, 1 << 19, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bsi::Ne(x, y));
  }
}
BENCHMARK(BM_BsiNe);

void BM_BsiRangeBetween(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.RangeBetween(5000, 15000));
  }
}
BENCHMARK(BM_BsiRangeBetween);

void BM_BsiMinMax(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.MinValue());
    benchmark::DoNotOptimize(x.MaxValue());
  }
}
BENCHMARK(BM_BsiMinMax);

void BM_BsiSum(benchmark::State& state) {
  Bsi x = MakeBsi(1, 1 << 20, 0.4, 21600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.Sum());
  }
}
BENCHMARK(BM_BsiSum);

void BM_BsiGroupSumByBucket(benchmark::State& state) {
  const int buckets = static_cast<int>(state.range(0));
  Bsi value = MakeBsi(1, 1 << 18, 0.4, 1000);
  Rng rng(9);
  std::vector<std::pair<uint32_t, uint64_t>> bucket_pairs;
  for (uint32_t pos = 0; pos < (1 << 18); ++pos) {
    bucket_pairs.emplace_back(pos, 1 + rng.NextBounded(buckets));
  }
  Bsi bucket = Bsi::FromPairs(std::move(bucket_pairs));
  RoaringBitmap universe;
  universe.AddRange(0, 1 << 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GroupSumByBucket(value, bucket, buckets, universe));
  }
}
BENCHMARK(BM_BsiGroupSumByBucket)->Arg(16)->Arg(1024);

void BM_BsiFromPairs(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  for (uint32_t pos = 0; pos < (1 << 20); ++pos) {
    if (rng.NextBernoulli(0.3)) {
      pairs.emplace_back(pos, 1 + rng.NextBounded(21600));
    }
  }
  for (auto _ : state) {
    auto copy = pairs;
    benchmark::DoNotOptimize(Bsi::FromPairs(std::move(copy)));
  }
}
BENCHMARK(BM_BsiFromPairs);

}  // namespace
}  // namespace expbsi

BENCHMARK_MAIN();
