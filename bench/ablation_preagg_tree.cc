// Ablation (Fig. 6): the pre-aggregate tree vs folding the metric log day
// by day. The tree merges O(log C) nodes for a C-day range, so the
// pre-experiment computation's sumBSI step speeds up accordingly.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bsi/bsi_aggregate.h"
#include "common/rng.h"
#include "common/timer.h"
#include "storage/preagg_tree.h"

using namespace expbsi;

namespace {

std::vector<Bsi> MakeDailyLeaves(uint64_t users, int days) {
  Rng rng(99);
  std::vector<Bsi> leaves;
  leaves.reserve(days);
  for (int d = 0; d < days; ++d) {
    std::vector<std::pair<uint32_t, uint64_t>> pairs;
    for (uint32_t pos = 0; pos < users; ++pos) {
      if (rng.NextBernoulli(0.4)) {
        pairs.emplace_back(pos, 1 + rng.NextBounded(500));
      }
    }
    leaves.push_back(Bsi::FromPairs(std::move(pairs)));
  }
  return leaves;
}

}  // namespace

int main() {
  const uint64_t users = bench_util::ScaledUsers(200000);
  const int kDays = 28;

  bench_util::PrintBanner(
      "Ablation: pre-aggregate tree (Fig. 6) vs day-by-day sumBSI",
      "aggregating C days should merge O(log C) tree nodes instead of C");
  std::printf("scale: %llu positions/day, %d days of metric log\n\n",
              static_cast<unsigned long long>(users), kDays);

  Stopwatch build_watch;
  PreAggTree tree(
      MakeDailyLeaves(users, kDays),
      [](const Bsi& a, const Bsi& b) { return SumBsi(a, b); },
      [](const std::vector<const Bsi*>& nodes) { return SumBsi(nodes); });
  std::printf("tree build (one-time): %.2fs\n\n", build_watch.ElapsedSeconds());

  std::printf("%-12s %10s %12s %12s %9s\n", "range(days)", "nodes",
              "tree(ms)", "linear(ms)", "speedup");
  for (int c : {4, 7, 14, 21, 28}) {
    const int lo = kDays - c, hi = kDays - 1;
    int nodes = 0;
    CpuTimer tree_timer;
    Bsi via_tree = tree.Query(lo, hi, &nodes);
    const double tree_ms = tree_timer.ElapsedSeconds() * 1e3;
    CpuTimer linear_timer;
    Bsi via_linear = tree.QueryLinear(lo, hi);
    const double linear_ms = linear_timer.ElapsedSeconds() * 1e3;
    if (!via_tree.Equals(via_linear)) {
      std::printf("MISMATCH for range of %d days!\n", c);
      return 1;
    }
    std::printf("%-12d %10d %12.1f %12.1f %8.1fx\n", c, nodes, tree_ms,
                linear_ms, linear_ms / tree_ms);
    std::printf("BENCHJSON {\"op\": \"preagg_tree_query_c%d\", "
                "\"ns_per_op\": %.0f}\n", c, tree_ms * 1e6);
    std::printf("BENCHJSON {\"op\": \"preagg_linear_query_c%d\", "
                "\"ns_per_op\": %.0f}\n", c, linear_ms * 1e6);
  }
  std::printf("\n(the Fig. 6 example: a 7-day range merges 3 nodes instead "
              "of folding 7 leaves)\n");
  bench_util::EmitRegistrySnapshot("ablation_preagg_tree");
  return 0;
}
