// Ablation: multi-operand kernels (CSA sumBSI, lazy union accumulation) vs
// the legacy pairwise-chain folds, on the workloads the paper's wins reduce
// to -- the Fig. 6 pre-aggregate sum over N days and the Table 6 per-user
// multi-day aggregation. Reports time per op AND heap allocation churn per
// op (this binary replaces global operator new to count every allocation),
// since the pairwise chain's cost is mostly re-materializing containers.
//
// Machine-readable output: one BENCHJSON line per measurement,
//   BENCHJSON {"op": ..., "ns_per_op": ..., "bytes_per_op": ...,
//              "allocs_per_op": ...}
// scraped by scripts/run_benches.sh into BENCH_pr2.json.

#include "bench/alloc_counter.h"  // must precede use of new/delete

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "bsi/bsi_aggregate.h"
#include "common/rng.h"
#include "common/timer.h"

using namespace expbsi;

namespace {

// Per-day metric BSIs in the Fig. 6 shape: a fraction of users participates
// each day with a zipf-ish small value.
std::vector<Bsi> MakeDailyBsis(uint64_t users, int days, double p) {
  Rng rng(20260805);
  std::vector<Bsi> out;
  out.reserve(days);
  for (int d = 0; d < days; ++d) {
    std::vector<std::pair<uint32_t, uint64_t>> pairs;
    for (uint32_t pos = 0; pos < users; ++pos) {
      if (rng.NextBernoulli(p)) {
        pairs.emplace_back(pos, 1 + rng.NextBounded(500));
      }
    }
    out.push_back(Bsi::FromPairs(std::move(pairs)));
  }
  return out;
}

// Daily visitor BSIs in the scorecard's strategy-unique-visitors shape: a
// sparse slice of a wide position universe is present each day (binary
// metric, value 1), so the existences are array containers spread over many
// chunks. This is the union workload where the pairwise chain re-merges a
// growing array per chunk per day while the lazy accumulator expands each
// chunk exactly once.
std::vector<Bsi> MakeSparseVisitorBsis(uint64_t universe, int days,
                                       double p) {
  Rng rng(77);
  std::vector<Bsi> out;
  out.reserve(days);
  for (int d = 0; d < days; ++d) {
    std::vector<std::pair<uint32_t, uint64_t>> pairs;
    for (uint32_t pos = 0; pos < universe; ++pos) {
      if (rng.NextBernoulli(p)) pairs.emplace_back(pos, 1);
    }
    out.push_back(Bsi::FromPairs(std::move(pairs)));
  }
  return out;
}

struct Measurement {
  double ns_per_op = 0;
  double bytes_per_op = 0;
  double allocs_per_op = 0;
};

// Times fn() over `reps` runs (after one warm-up that also primes the
// scratch arena) and averages both wall time and allocation churn.
template <typename Fn>
Measurement Measure(int reps, Fn&& fn) {
  fn();  // warm-up: thread-local scratch buffers get pooled here
  const allocstats::Snapshot before = allocstats::Take();
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) fn();
  const double secs = watch.ElapsedSeconds();
  const allocstats::Snapshot delta =
      allocstats::Delta(before, allocstats::Take());
  Measurement m;
  m.ns_per_op = secs * 1e9 / reps;
  m.bytes_per_op = static_cast<double>(delta.bytes) / reps;
  m.allocs_per_op = static_cast<double>(delta.allocs) / reps;
  return m;
}

void Report(const std::string& op, const Measurement& m) {
  std::printf("%-28s %12.2f ms %14s %10.0f allocs\n", op.c_str(),
              m.ns_per_op / 1e6, bench_util::HumanBytes(m.bytes_per_op).c_str(),
              m.allocs_per_op);
  std::printf("BENCHJSON {\"op\": \"%s\", \"ns_per_op\": %.0f, "
              "\"bytes_per_op\": %.0f, \"allocs_per_op\": %.0f}\n",
              op.c_str(), m.ns_per_op, m.bytes_per_op, m.allocs_per_op);
}

}  // namespace

int main() {
  bench_util::OraclePreflight();
  const uint64_t users = bench_util::ScaledUsers(200000);
  const int kDays = 28;

  bench_util::PrintBanner(
      "Ablation: multi-operand kernels vs pairwise chains",
      "sumBSI over N days (Fig. 6 / Table 6) is the platform's hot loop");
  std::printf("scale: %llu positions/day, %d days\n\n",
              static_cast<unsigned long long>(users), kDays);

  const std::vector<Bsi> days = MakeDailyBsis(users, kDays, 0.4);
  std::vector<const Bsi*> all_days;
  for (const Bsi& b : days) all_days.push_back(&b);
  const std::vector<const Bsi*> eight_days(all_days.begin(),
                                           all_days.begin() + 8);

  // The two paths under comparison must agree bit for bit on this exact
  // workload, or the timings below are meaningless.
  if (!(SumBsiCsa(all_days) == SumBsiPairwise(all_days)) ||
      !(DistinctPosLazy(all_days) == DistinctPosPairwise(all_days))) {
    std::printf("KERNEL MISMATCH: CSA/lazy disagrees with pairwise!\n");
    return 1;
  }

  std::printf("%-28s %15s %14s %17s\n", "op", "time/op", "alloc/op",
              "allocs/op");

  // N-operand sumBSI, N = 8 (the acceptance-criteria workload) and N = 28.
  const Measurement csa8 =
      Measure(5, [&] { SumBsiCsa(eight_days).Sum(); });
  Report("sum_bsi_csa_n8", csa8);
  const Measurement pair8 =
      Measure(5, [&] { SumBsiPairwise(eight_days).Sum(); });
  Report("sum_bsi_pairwise_n8", pair8);

  const Measurement csa28 = Measure(3, [&] { SumBsiCsa(all_days).Sum(); });
  Report("sum_bsi_csa_n28", csa28);
  const Measurement pair28 =
      Measure(3, [&] { SumBsiPairwise(all_days).Sum(); });
  Report("sum_bsi_pairwise_n28", pair28);

  // Multi-way union (distinctPos across 28 days of existence bitmaps), on
  // the dense metric existences above and on sparse visitor masks spread
  // over an 8x wider position universe.
  const Measurement lazy =
      Measure(5, [&] { DistinctPosLazy(all_days).Cardinality(); });
  Report("distinct_pos_lazy_n28", lazy);
  const Measurement pairwise_or =
      Measure(5, [&] { DistinctPosPairwise(all_days).Cardinality(); });
  Report("distinct_pos_pairwise_n28", pairwise_or);

  const std::vector<Bsi> visitors =
      MakeSparseVisitorBsis(users * 8, kDays, 0.015);
  std::vector<const Bsi*> visitor_days;
  for (const Bsi& b : visitors) visitor_days.push_back(&b);
  if (!(DistinctPosLazy(visitor_days) == DistinctPosPairwise(visitor_days))) {
    std::printf("KERNEL MISMATCH: lazy union disagrees on sparse masks!\n");
    return 1;
  }
  const Measurement lazy_sparse =
      Measure(5, [&] { DistinctPosLazy(visitor_days).Cardinality(); });
  Report("distinct_pos_lazy_sparse_n28", lazy_sparse);
  const Measurement pairwise_sparse =
      Measure(5, [&] { DistinctPosPairwise(visitor_days).Cardinality(); });
  Report("distinct_pos_pairwise_sparse_n28", pairwise_sparse);

  // Weighted sum, N = 8 (preference-query / covariance shapes).
  std::vector<WeightedBsi> weighted;
  for (int i = 0; i < 8; ++i) {
    weighted.push_back({&days[i], static_cast<uint64_t>(1 + 3 * i)});
  }
  const Measurement wcsa =
      Measure(5, [&] { WeightedSumBsiCsa(weighted).Sum(); });
  Report("weighted_sum_csa_n8", wcsa);
  const Measurement wpair =
      Measure(5, [&] { WeightedSumBsiPairwise(weighted).Sum(); });
  Report("weighted_sum_pairwise_n8", wpair);

  std::printf("\nspeedups (pairwise / multi-operand):\n");
  std::printf("  sum n=8:    %5.2fx   sum n=28:  %5.2fx\n",
              pair8.ns_per_op / csa8.ns_per_op,
              pair28.ns_per_op / csa28.ns_per_op);
  std::printf("  union n=28: %5.2fx   wsum n=8:  %5.2fx\n",
              pairwise_or.ns_per_op / lazy.ns_per_op,
              wpair.ns_per_op / wcsa.ns_per_op);
  std::printf("  sparse union n=28: %5.2fx, %.1fx fewer bytes allocated\n",
              pairwise_sparse.ns_per_op / lazy_sparse.ns_per_op,
              pairwise_sparse.bytes_per_op /
                  (lazy_sparse.bytes_per_op > 0 ? lazy_sparse.bytes_per_op
                                                : 1.0));
  bench_util::EmitRegistrySnapshot("ablation_multiop_kernels");
  return 0;
}
