// Table 8: latency of ad-hoc queries computing the core-metric results of a
// 3-strategy experiment over one week, on the ClickHouse-like cluster
// (§5.3, Fig. 8), normal expose-bitmap baseline vs BSI -- repeated 10x as
// in the paper.
//
// Paper (production scale, 200M exposed users per strategy): 22.3 s average
// latency with the normal format vs 6.0 s with BSI (~3.7x). The shape to
// reproduce: the BSI method answers the same query several times faster,
// and repeat queries run entirely from the hot tier.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "cluster/adhoc_cluster.h"
#include "engine/experiment_data.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  bench_util::OraclePreflight();
  const uint64_t users = bench_util::ScaledUsers(200000);
  const int kSegments = 4;
  const int kDays = 7;
  const int kMetrics = 40;
  const int kRepeats = 10;

  bench_util::PrintBanner(
      "Table 8: ad-hoc query latency, normal expose-bitmap scan vs BSI",
      "paper: 22.3s (normal) vs 6.0s (BSI) average -- BSI ~3.7x faster");

  DatasetConfig config;
  config.num_users = users;
  config.num_segments = kSegments;
  config.num_days = kDays;
  config.seed = 314;

  ExperimentConfig exp;  // "a huge experiment": 3 strategies, full traffic
  exp.strategy_ids = {8764293, 8764294, 8764295};
  exp.arm_effects = {1.0, 1.03, 0.99};
  exp.traffic_salt = 7;

  const std::vector<MetricConfig> metrics =
      MakeCoreMetricPopulation(kMetrics, 1001, 9);

  std::printf("scale: %llu users, %d segments, %d metrics x %d days, "
              "3 strategies, %d repeats\n",
              static_cast<unsigned long long>(users), kSegments, kMetrics,
              kDays, kRepeats);
  std::printf("generating dataset ...\n");
  Dataset dataset = GenerateDataset(config, {exp}, metrics, {});
  ExperimentBsiData bsi = BuildExperimentBsiData(dataset, true);

  AdhocClusterConfig cluster_config;
  cluster_config.num_nodes = 4;
  cluster_config.threads_per_node = 4;
  AdhocCluster cluster(&dataset, &bsi, cluster_config);

  std::vector<uint64_t> metric_ids;
  for (const MetricConfig& m : metrics) metric_ids.push_back(m.metric_id);
  const std::vector<uint64_t> strategies = {8764293, 8764294, 8764295};

  double normal_total = 0, bsi_total = 0;
  double bsi_first = 0;
  uint64_t bsi_cold_bytes_first = 0;
  for (int r = 0; r < kRepeats; ++r) {
    const auto bsi_result = cluster.QueryBsi(strategies, metric_ids, 0, 6);
    if (!bsi_result.ok()) {
      std::printf("BSI query failed: %s\n",
                  bsi_result.status().ToString().c_str());
      return 1;
    }
    const auto& bsi_stats = bsi_result.value();
    bsi_total += bsi_stats.latency_seconds;
    if (r == 0) {
      bsi_first = bsi_stats.latency_seconds;
      bsi_cold_bytes_first = bsi_stats.bytes_from_cold;
    }
    const auto normal_result =
        cluster.QueryNormalBitmap(strategies, metric_ids, 0, 6);
    if (!normal_result.ok()) {
      std::printf("normal query failed: %s\n",
                  normal_result.status().ToString().c_str());
      return 1;
    }
    const auto& normal_stats = normal_result.value();
    normal_total += normal_stats.latency_seconds;
    // Verify both methods agree on every result.
    for (const auto& [pair, result] : bsi_stats.results) {
      if (result.sums != normal_stats.results.at(pair).sums) {
        std::printf("RESULT MISMATCH (%llu, %llu)\n",
                    static_cast<unsigned long long>(pair.first),
                    static_cast<unsigned long long>(pair.second));
        return 1;
      }
    }
  }
  const double normal_avg = normal_total / kRepeats;
  const double bsi_avg = bsi_total / kRepeats;

  std::printf("\n%-10s %22s\n", "Format", "Average latency");
  std::printf("%-10s %20.1f ms\n", "Normal", normal_avg * 1e3);
  std::printf("%-10s %20.1f ms\n", "BSI", bsi_avg * 1e3);
  std::printf("\nshape checks vs paper:\n");
  std::printf("  normal latency / BSI latency = %5.2fx   (paper: 3.7x)\n",
              normal_avg / bsi_avg);
  std::printf("  first BSI query: %.1f ms (pulled %s from the cold "
              "warehouse); repeats run from the hot tier\n",
              bsi_first * 1e3,
              bench_util::HumanBytes(
                  static_cast<double>(bsi_cold_bytes_first)).c_str());
  std::printf("  results verified identical across both methods\n");
  return 0;
}
