// Figure 5: example metric value distributions. The paper shows that values
// concentrate near zero (Pareto principle); we sample four representative
// metric profiles and print their distribution mass per value band.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "expdata/generator.h"

using namespace expbsi;

int main() {
  bench_util::PrintBanner(
      "Figure 5: metric value distribution examples",
      "values are Pareto-like: the vast majority of mass sits near zero");

  struct Example {
    const char* name;
    uint64_t range;
    double s;
  };
  const Example examples[] = {
      {"click-count", 100, 1.5},
      {"forward-count", 1000, 1.3},
      {"stay-seconds", 21600, 1.2},
      {"revenue-cents", 10000000, 1.4},
  };
  const int kSamples = 200000;

  for (const Example& ex : examples) {
    Rng rng(777);
    ZipfDistribution dist(ex.range, ex.s);
    // Log-scale bands: [1], (1,10], (10,100], ...
    const int bands = static_cast<int>(std::log10(ex.range)) + 1;
    std::vector<int> counts(bands + 1, 0);
    for (int i = 0; i < kSamples; ++i) {
      const uint64_t v = dist.Sample(rng);
      if (v == 1) {
        ++counts[0];
      } else {
        ++counts[static_cast<int>(std::ceil(std::log10(
            static_cast<double>(v))))];
      }
    }
    std::printf("\n%s (range %llu, zipf s=%.1f):\n", ex.name,
                static_cast<unsigned long long>(ex.range), ex.s);
    double cumulative = 0;
    for (int b = 0; b <= bands; ++b) {
      if (counts[b] == 0) continue;
      const double pct = 100.0 * counts[b] / kSamples;
      cumulative += pct;
      if (b == 0) {
        std::printf("  value = 1        ");
      } else {
        std::printf("  value <= 10^%-2d   ", b);
      }
      std::printf("%6.2f%%  (cum %6.2f%%)  ", pct, cumulative);
      for (int star = 0; star < static_cast<int>(pct / 2); ++star) {
        std::printf("#");
      }
      std::printf("\n");
    }
  }
  std::printf("\nshape check: every profile puts most of its mass in the "
              "first band(s), matching Fig. 5.\n");
  return 0;
}
