#ifndef EXPBSI_REFERENCE_REF_DATA_H_
#define EXPBSI_REFERENCE_REF_DATA_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "expdata/generator.h"
#include "expdata/schema.h"

namespace expbsi {

// Reference (oracle) representation of one segment's experiment data:
// plain ordered maps keyed by analysis-unit-id, built directly from the
// normal-format rows. No position encoding, no bitmaps, no BSIs -- the
// scalar engines in ref_engine.h / ref_query.h scan these with naive loops.
//
// Unit ids are used where the BSI path uses encoded positions; since the
// position encoding is a bijection within a segment, every aggregate the
// engines compare (sums, counts, distinct counts, value multisets) is
// invariant under the renaming.
struct RefExpose {
  uint64_t strategy_id = 0;
  Date min_expose_date = 0;
  std::map<UnitId, Date> first_expose;  // unit -> first expose date
  std::map<UnitId, int> bucket;         // unit -> bucket id (if bucketed)

  // Units first exposed on or before `date`, sorted.
  std::vector<UnitId> ExposedOnOrBefore(Date date) const;
  // Offset value stored by the BSI path for `unit`:
  // first_expose_date - min_expose_date + 1; 0 if the unit is not exposed.
  uint64_t OffsetOf(UnitId unit) const;
};

struct RefSegment {
  std::map<uint64_t, RefExpose> expose;                       // by strategy
  std::map<std::pair<uint64_t, Date>, std::map<UnitId, uint64_t>> metrics;
  std::map<std::pair<uint32_t, Date>, std::map<UnitId, uint64_t>> dimensions;

  const RefExpose* FindExpose(uint64_t strategy_id) const;
  const std::map<UnitId, uint64_t>* FindMetric(uint64_t metric_id,
                                               Date date) const;
  const std::map<UnitId, uint64_t>* FindDimension(uint32_t dimension_id,
                                                  Date date) const;
};

struct RefExperimentData {
  int num_segments = 0;
  int num_buckets = 0;
  bool bucket_equals_segment = true;

  std::vector<RefSegment> segments;

  int effective_buckets() const {
    return bucket_equals_segment ? num_segments : num_buckets;
  }
};

// Builds the oracle representation from the same Dataset the BSI builders
// consume. Zero metric/dimension values are skipped (zero-is-absent); the
// expose bucket ids are re-derived from BucketOf(randomization_unit_id),
// the definition the BSI builder also follows.
RefExperimentData BuildRefExperimentData(const Dataset& dataset);

}  // namespace expbsi

#endif  // EXPBSI_REFERENCE_REF_DATA_H_
