#include "reference/ref_data.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "expdata/segmenter.h"

namespace expbsi {

std::vector<UnitId> RefExpose::ExposedOnOrBefore(Date date) const {
  std::vector<UnitId> out;
  for (const auto& [unit, first] : first_expose) {
    if (first <= date) out.push_back(unit);
  }
  return out;
}

uint64_t RefExpose::OffsetOf(UnitId unit) const {
  auto it = first_expose.find(unit);
  if (it == first_expose.end()) return 0;
  return static_cast<uint64_t>(it->second - min_expose_date) + 1;
}

const RefExpose* RefSegment::FindExpose(uint64_t strategy_id) const {
  auto it = expose.find(strategy_id);
  return it == expose.end() ? nullptr : &it->second;
}

const std::map<UnitId, uint64_t>* RefSegment::FindMetric(uint64_t metric_id,
                                                         Date date) const {
  auto it = metrics.find({metric_id, date});
  return it == metrics.end() ? nullptr : &it->second;
}

const std::map<UnitId, uint64_t>* RefSegment::FindDimension(
    uint32_t dimension_id, Date date) const {
  auto it = dimensions.find({dimension_id, date});
  return it == dimensions.end() ? nullptr : &it->second;
}

RefExperimentData BuildRefExperimentData(const Dataset& dataset) {
  RefExperimentData out;
  out.num_segments = dataset.config.num_segments;
  out.num_buckets = dataset.config.num_buckets;
  out.bucket_equals_segment = dataset.config.bucket_equals_segment;
  out.segments.resize(out.num_segments);
  CHECK_EQ(dataset.segments.size(), static_cast<size_t>(out.num_segments));
  for (int seg = 0; seg < out.num_segments; ++seg) {
    const SegmentData& rows = dataset.segments[seg];
    RefSegment& ref = out.segments[seg];
    for (const ExposeRow& row : rows.expose) {
      RefExpose& expose = ref.expose[row.strategy_id];
      expose.strategy_id = row.strategy_id;
      const bool inserted =
          expose.first_expose.emplace(row.analysis_unit_id,
                                      row.first_expose_date)
              .second;
      CHECK(inserted);  // one expose row per (strategy, unit)
      if (!out.bucket_equals_segment) {
        expose.bucket[row.analysis_unit_id] =
            BucketOf(row.randomization_unit_id, out.num_buckets);
      }
    }
    for (auto& [strategy_id, expose] : ref.expose) {
      Date min_date = std::numeric_limits<Date>::max();
      for (const auto& [unit, first] : expose.first_expose) {
        min_date = std::min(min_date, first);
      }
      expose.min_expose_date = min_date;
    }
    for (const MetricRow& row : rows.metrics) {
      if (row.value == 0) continue;
      auto& column = ref.metrics[{row.metric_id, row.date}];
      const bool inserted =
          column.emplace(row.analysis_unit_id, row.value).second;
      CHECK(inserted);  // one metric row per (metric, date, unit)
    }
    for (const DimensionRow& row : rows.dimensions) {
      if (row.value == 0) continue;
      auto& column = ref.dimensions[{row.dimension_id, row.date}];
      const bool inserted =
          column.emplace(row.analysis_unit_id, row.value).second;
      CHECK(inserted);
    }
  }
  return out;
}

}  // namespace expbsi
