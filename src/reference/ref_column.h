#ifndef EXPBSI_REFERENCE_REF_COLUMN_H_
#define EXPBSI_REFERENCE_REF_COLUMN_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

namespace expbsi {

// The reference (oracle) counterpart of a RoaringBitmap result: a sorted,
// duplicate-free list of positions. Kept as a plain vector so the oracle
// shares no container code with src/roaring.
using RefPositions = std::vector<uint32_t>;

// Scalar reference implementation of the Bsi public surface (the
// differential-testing oracle). One std::map from position to value, naive
// loops everywhere, no bitmaps, no slices -- deliberately the simplest
// possible definition of each operation so that any disagreement with Bsi
// points at the optimized path. Semantics mirror bsi/bsi.h exactly,
// including the zero-is-absent convention: storing value 0 removes the
// position, and binary comparisons only report positions present in BOTH
// operands.
class RefColumn {
 public:
  RefColumn() = default;

  // Zero values are skipped; duplicate positions abort (as in Bsi).
  static RefColumn FromPairs(
      const std::vector<std::pair<uint32_t, uint64_t>>& pairs);
  static RefColumn FromValues(const std::vector<uint64_t>& values);
  static RefColumn FromBinary(const RefPositions& positions);

  uint64_t Get(uint32_t pos) const;
  bool Exists(uint32_t pos) const;
  RefPositions Existence() const;
  uint64_t Cardinality() const { return values_.size(); }
  bool IsEmpty() const { return values_.empty(); }

  bool Equals(const RefColumn& other) const { return values_ == other.values_; }
  friend bool operator==(const RefColumn& a, const RefColumn& b) {
    return a.Equals(b);
  }

  // --- Arithmetic (mirrors Bsi) --------------------------------------------

  static RefColumn Add(const RefColumn& x, const RefColumn& y);
  // max(X[j] - Y[j], 0); zero results become absent.
  static RefColumn Subtract(const RefColumn& x, const RefColumn& y);
  static RefColumn Multiply(const RefColumn& x, const RefColumn& y);
  static RefColumn MultiplyByBinary(const RefColumn& x,
                                    const RefPositions& mask);
  static RefColumn AddScalar(const RefColumn& x, uint64_t k);
  static RefColumn MultiplyScalar(const RefColumn& x, uint64_t k);
  static RefColumn ShiftLeft(const RefColumn& x, int bits);

  // --- Comparisons (positions present in BOTH operands) --------------------

  static RefPositions Lt(const RefColumn& x, const RefColumn& y);
  static RefPositions Eq(const RefColumn& x, const RefColumn& y);
  static RefPositions Ne(const RefColumn& x, const RefColumn& y);
  static RefPositions Le(const RefColumn& x, const RefColumn& y);
  static RefPositions Gt(const RefColumn& x, const RefColumn& y);
  static RefPositions Ge(const RefColumn& x, const RefColumn& y);

  // --- Range searches against a constant ------------------------------------

  RefPositions RangeEq(uint64_t k) const;
  RefPositions RangeNe(uint64_t k) const;
  RefPositions RangeLt(uint64_t k) const;
  RefPositions RangeLe(uint64_t k) const;
  RefPositions RangeGt(uint64_t k) const;
  RefPositions RangeGe(uint64_t k) const;
  RefPositions RangeBetween(uint64_t lo, uint64_t hi) const;

  // --- In-column aggregates -------------------------------------------------

  // Aborts if the true sum exceeds uint64 range, matching Bsi::Sum.
  uint64_t Sum() const;
  uint64_t SumUnderMask(const RefPositions& mask) const;
  double Average() const;
  uint64_t MinValue() const;
  uint64_t MaxValue() const;
  // Same rank convention as Bsi::Quantile: the value at rank
  // clamp(ceil(q * n), 1, n) among the sorted present values.
  uint64_t Quantile(double q) const;
  uint64_t Median() const { return Quantile(0.5); }

  void SetValue(uint32_t pos, uint64_t value);

  const std::map<uint32_t, uint64_t>& values() const { return values_; }

 private:
  std::map<uint32_t, uint64_t> values_;  // only non-zero values
};

// Quantile over the combined multiset of several masked columns (the oracle
// for QuantileOverInputs). nullptr mask means all positions.
struct RefMaskedColumn {
  const RefColumn* column = nullptr;
  const RefPositions* mask = nullptr;
};
uint64_t RefQuantileOverInputs(const std::vector<RefMaskedColumn>& inputs,
                               double q);

// Sorted intersection / helper used by the oracle and the fuzz driver.
RefPositions RefIntersect(const RefPositions& a, const RefPositions& b);

}  // namespace expbsi

#endif  // EXPBSI_REFERENCE_REF_COLUMN_H_
