#ifndef EXPBSI_REFERENCE_REF_ENGINE_H_
#define EXPBSI_REFERENCE_REF_ENGINE_H_

#include <cstdint>
#include <vector>

#include "engine/deepdive.h"
#include "engine/scorecard.h"
#include "reference/ref_data.h"
#include "stats/bucket_stats.h"

namespace expbsi {

// Scalar reference engines mirroring engine/scorecard.h, engine/deepdive.h
// and engine/preexperiment.h, computed by naive row scans over the
// RefExperimentData maps. Each function is the literal SQL definition of its
// BSI counterpart (Tables 1-2 of the paper) and accumulates per-(segment,
// day) integer partials into doubles in the same order as the BSI engine, so
// the differential tests can assert bit-for-bit equality of BucketValues.
//
// The DimensionPredicate / ScorecardEntry structs from the production
// headers are reused as plain data types; no BSI computation is shared.

BucketValues RefComputeStrategyMetric(const RefExperimentData& data,
                                      uint64_t strategy_id,
                                      uint64_t metric_id, Date date_lo,
                                      Date date_hi);

BucketValues RefComputeStrategyRatioMetric(const RefExperimentData& data,
                                           uint64_t strategy_id,
                                           uint64_t numerator_metric_id,
                                           uint64_t denominator_metric_id,
                                           Date date_lo, Date date_hi);

BucketValues RefComputeStrategyUniqueVisitors(const RefExperimentData& data,
                                              uint64_t strategy_id,
                                              uint64_t metric_id,
                                              Date date_lo, Date date_hi);

BucketValues RefComputeStrategyMetricFiltered(
    const RefExperimentData& data, uint64_t strategy_id, uint64_t metric_id,
    Date date_lo, Date date_hi,
    const std::vector<DimensionPredicate>& preds, Date dim_date);

BucketValues RefComputePreExperiment(const RefExperimentData& data,
                                     uint64_t strategy_id, uint64_t metric_id,
                                     Date expt_start, int lookback_days,
                                     Date as_of_date);

// Statistical comparison built on the reference stats (ref_stats.h); agrees
// with CompareStrategies to floating-point tolerance.
ScorecardEntry RefCompareStrategies(uint64_t metric_id, uint64_t treatment_id,
                                    const BucketValues& treatment_buckets,
                                    uint64_t control_id,
                                    const BucketValues& control_buckets);

std::vector<ScorecardEntry> RefComputeScorecard(
    const RefExperimentData& data, uint64_t control_id,
    const std::vector<uint64_t>& treatment_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

std::vector<std::vector<double>> RefComputeMetricCovarianceMatrix(
    const RefExperimentData& data, uint64_t strategy_id,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

std::vector<ScorecardEntry> RefComputeDailyBreakdown(
    const RefExperimentData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi);

std::vector<DimensionBreakdownEntry> RefComputeDimensionBreakdown(
    const RefExperimentData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi, uint32_t dimension_id,
    const std::vector<uint64_t>& dim_values, Date dim_date);

}  // namespace expbsi

#endif  // EXPBSI_REFERENCE_REF_ENGINE_H_
