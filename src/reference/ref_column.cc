#include "reference/ref_column.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace expbsi {
namespace {

bool Compare(uint64_t a, uint64_t b, int op) {
  switch (op) {
    case 0:
      return a < b;
    case 1:
      return a == b;
    case 2:
      return a != b;
    case 3:
      return a <= b;
    case 4:
      return a > b;
    default:
      return a >= b;
  }
}

}  // namespace

RefColumn RefColumn::FromPairs(
    const std::vector<std::pair<uint32_t, uint64_t>>& pairs) {
  RefColumn out;
  for (const auto& [pos, value] : pairs) {
    if (value == 0) continue;
    const bool inserted = out.values_.emplace(pos, value).second;
    CHECK(inserted);  // duplicate positions are a caller bug, as in Bsi
  }
  return out;
}

RefColumn RefColumn::FromValues(const std::vector<uint64_t>& values) {
  RefColumn out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0) {
      out.values_.emplace(static_cast<uint32_t>(i), values[i]);
    }
  }
  return out;
}

RefColumn RefColumn::FromBinary(const RefPositions& positions) {
  RefColumn out;
  for (uint32_t pos : positions) out.values_[pos] = 1;
  return out;
}

uint64_t RefColumn::Get(uint32_t pos) const {
  auto it = values_.find(pos);
  return it == values_.end() ? 0 : it->second;
}

bool RefColumn::Exists(uint32_t pos) const { return values_.count(pos) > 0; }

RefPositions RefColumn::Existence() const {
  RefPositions out;
  out.reserve(values_.size());
  for (const auto& [pos, value] : values_) out.push_back(pos);
  return out;
}

RefColumn RefColumn::Add(const RefColumn& x, const RefColumn& y) {
  RefColumn out = x;
  for (const auto& [pos, value] : y.values_) out.values_[pos] += value;
  return out;
}

RefColumn RefColumn::Subtract(const RefColumn& x, const RefColumn& y) {
  RefColumn out;
  for (const auto& [pos, value] : x.values_) {
    const uint64_t sub = y.Get(pos);
    if (value > sub) out.values_[pos] = value - sub;
  }
  return out;
}

RefColumn RefColumn::Multiply(const RefColumn& x, const RefColumn& y) {
  RefColumn out;
  for (const auto& [pos, value] : x.values_) {
    const uint64_t other = y.Get(pos);
    if (other != 0) out.values_[pos] = value * other;
  }
  return out;
}

RefColumn RefColumn::MultiplyByBinary(const RefColumn& x,
                                      const RefPositions& mask) {
  RefColumn out;
  for (uint32_t pos : mask) {
    const uint64_t value = x.Get(pos);
    if (value != 0) out.values_[pos] = value;
  }
  return out;
}

RefColumn RefColumn::AddScalar(const RefColumn& x, uint64_t k) {
  RefColumn out;
  for (const auto& [pos, value] : x.values_) out.values_[pos] = value + k;
  return out;
}

RefColumn RefColumn::MultiplyScalar(const RefColumn& x, uint64_t k) {
  RefColumn out;
  if (k == 0) return out;
  for (const auto& [pos, value] : x.values_) out.values_[pos] = value * k;
  return out;
}

RefColumn RefColumn::ShiftLeft(const RefColumn& x, int bits) {
  CHECK_GE(bits, 0);
  RefColumn out;
  for (const auto& [pos, value] : x.values_) {
    out.values_[pos] = value << bits;
  }
  return out;
}

#define EXPBSI_REF_COMPARE(Name, op_index)                                   \
  RefPositions RefColumn::Name(const RefColumn& x, const RefColumn& y) {     \
    RefPositions out;                                                        \
    for (const auto& [pos, value] : x.values_) {                             \
      const uint64_t other = y.Get(pos);                                     \
      if (other != 0 && Compare(value, other, op_index)) out.push_back(pos); \
    }                                                                        \
    return out;                                                              \
  }

EXPBSI_REF_COMPARE(Lt, 0)
EXPBSI_REF_COMPARE(Eq, 1)
EXPBSI_REF_COMPARE(Ne, 2)
EXPBSI_REF_COMPARE(Le, 3)
EXPBSI_REF_COMPARE(Gt, 4)
EXPBSI_REF_COMPARE(Ge, 5)

#undef EXPBSI_REF_COMPARE

RefPositions RefColumn::RangeEq(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value == k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeNe(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value != k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeLt(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value < k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeLe(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value <= k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeGt(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value > k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeGe(uint64_t k) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value >= k) out.push_back(pos);
  }
  return out;
}

RefPositions RefColumn::RangeBetween(uint64_t lo, uint64_t hi) const {
  RefPositions out;
  for (const auto& [pos, value] : values_) {
    if (value >= lo && value <= hi) out.push_back(pos);
  }
  return out;
}

uint64_t RefColumn::Sum() const {
  unsigned __int128 total = 0;
  for (const auto& [pos, value] : values_) total += value;
  CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

uint64_t RefColumn::SumUnderMask(const RefPositions& mask) const {
  unsigned __int128 total = 0;
  for (uint32_t pos : mask) total += Get(pos);
  CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

double RefColumn::Average() const {
  if (values_.empty()) return 0.0;
  return static_cast<double>(Sum()) / static_cast<double>(values_.size());
}

uint64_t RefColumn::MinValue() const {
  CHECK(!IsEmpty());
  uint64_t best = ~uint64_t{0};
  for (const auto& [pos, value] : values_) best = std::min(best, value);
  return best;
}

uint64_t RefColumn::MaxValue() const {
  CHECK(!IsEmpty());
  uint64_t best = 0;
  for (const auto& [pos, value] : values_) best = std::max(best, value);
  return best;
}

uint64_t RefColumn::Quantile(double q) const {
  CHECK(!IsEmpty());
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  std::vector<uint64_t> sorted;
  sorted.reserve(values_.size());
  for (const auto& [pos, value] : values_) sorted.push_back(value);
  std::sort(sorted.begin(), sorted.end());
  const uint64_t n = sorted.size();
  uint64_t rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

void RefColumn::SetValue(uint32_t pos, uint64_t value) {
  if (value == 0) {
    values_.erase(pos);
  } else {
    values_[pos] = value;
  }
}

uint64_t RefQuantileOverInputs(const std::vector<RefMaskedColumn>& inputs,
                               double q) {
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  std::vector<uint64_t> sorted;
  for (const RefMaskedColumn& input : inputs) {
    CHECK(input.column != nullptr);
    if (input.mask == nullptr) {
      for (const auto& [pos, value] : input.column->values()) {
        sorted.push_back(value);
      }
    } else {
      for (uint32_t pos : *input.mask) {
        const uint64_t value = input.column->Get(pos);
        if (value != 0) sorted.push_back(value);
      }
    }
  }
  CHECK(!sorted.empty());
  std::sort(sorted.begin(), sorted.end());
  const uint64_t n = sorted.size();
  uint64_t rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;
  return sorted[rank - 1];
}

RefPositions RefIntersect(const RefPositions& a, const RefPositions& b) {
  RefPositions out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace expbsi
