#include "reference/ref_stats.h"

#include <cmath>

#include "common/check.h"

namespace expbsi {
namespace {

double LogTNorm(double df) {
  return std::lgamma((df + 1.0) / 2.0) - std::lgamma(df / 2.0) -
         0.5 * std::log(df * M_PI);
}

// Student-t density with `df` degrees of freedom.
double TDensity(double x, double df) {
  return std::exp(LogTNorm(df) -
                  (df + 1.0) / 2.0 * std::log1p(x * x / df));
}

// Integrand of the upper-tail integral after the u = 1/x substitution:
// integral_t^inf f(x) dx = integral_0^{1/t} f(1/u) / u^2 du. As u -> 0 the
// integrand behaves like u^{df-1}, so it is finite for the df >= 1 values
// the bucket replicates produce.
double TailIntegrand(double u, double df) {
  if (u <= 0.0) return df > 1.0 ? 0.0 : std::exp(LogTNorm(df));
  return std::exp(LogTNorm(df) -
                  (df + 1.0) / 2.0 * std::log1p(1.0 / (u * u * df)) -
                  2.0 * std::log(u));
}

double Simpson(double a, double b, double fa, double fm, double fb) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

// Adaptive Simpson on integrand `f`; whole = current estimate on [a, b].
template <typename F>
double AdaptiveSimpson(const F& f, double a, double b, double fa, double fm,
                       double fb, double whole, double eps, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = f(lm);
  const double frm = f(rm);
  const double left = Simpson(a, m, fa, flm, fm);
  const double right = Simpson(m, b, fm, frm, fb);
  if (depth <= 0 || std::fabs(left + right - whole) <= 15.0 * eps) {
    return left + right + (left + right - whole) / 15.0;
  }
  return AdaptiveSimpson(f, a, m, fa, flm, fm, left, eps / 2.0, depth - 1) +
         AdaptiveSimpson(f, m, b, fm, frm, fb, right, eps / 2.0, depth - 1);
}

template <typename F>
double Integrate(const F& f, double a, double b) {
  const double fa = f(a);
  const double fb = f(b);
  const double fm = f(0.5 * (a + b));
  const double whole = Simpson(a, b, fa, fm, fb);
  return AdaptiveSimpson(f, a, b, fa, fm, fb, whole, 1e-13, 48);
}

// Integral of the t density over [0, t], t >= 0. Only used for moderate t;
// for large t the interval dwarfs the density's support and Simpson panels
// straddle the spike at 0, so the tail form below takes over instead.
double IntegrateDensity(double t, double df) {
  if (t <= 0.0) return 0.0;
  return Integrate([df](double x) { return TDensity(x, df); }, 0.0, t);
}

// Upper-tail mass integral_t^inf f, via the 1/x substitution (t > 0). The
// domain [0, 1/t] is short and the integrand smooth, so this stays accurate
// out to arbitrarily large t -- including t where the CDF rounds to 1 and
// naive 1 - cdf would lose everything to cancellation.
double IntegrateTail(double t, double df) {
  if (!(t > 0.0) || std::isinf(t)) return 0.0;
  return Integrate([df](double u) { return TailIntegrand(u, df); }, 0.0,
                   1.0 / t);
}

}  // namespace

double RefMean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double RefSampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = RefMean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

double RefSampleCovariance(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  CHECK_EQ(xs.size(), ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = RefMean(xs);
  const double my = RefMean(ys);
  double ss = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) ss += (xs[i] - mx) * (ys[i] - my);
  return ss / static_cast<double>(xs.size() - 1);
}

MetricEstimate RefEstimateRatio(const BucketValues& buckets) {
  CHECK_EQ(buckets.sums.size(), buckets.counts.size());
  MetricEstimate est;
  const int b = buckets.num_buckets();
  for (double s : buckets.sums) est.total_sum += s;
  for (double c : buckets.counts) est.total_count += c;
  est.df = b > 1 ? b - 1 : 0;
  if (est.total_count <= 0.0) return est;
  est.mean = est.total_sum / est.total_count;
  if (b < 2) return est;
  const double nbar = est.total_count / b;
  const double r = est.mean;
  // Var(R) = (Var(s) + R^2 Var(n) - 2 R Cov(s, n)) / (B * nbar^2).
  const double var = RefSampleVariance(buckets.sums) +
                     r * r * RefSampleVariance(buckets.counts) -
                     2.0 * r * RefSampleCovariance(buckets.sums,
                                                   buckets.counts);
  est.var_of_mean = std::max(0.0, var / (static_cast<double>(b) * nbar * nbar));
  return est;
}

double RefEstimateRatioCovariance(const BucketValues& x,
                                  const BucketValues& y) {
  CHECK_EQ(x.sums.size(), y.sums.size());
  const int b = x.num_buckets();
  if (b < 2) return 0.0;
  double sx = 0.0, nx = 0.0, sy = 0.0, ny = 0.0;
  for (int i = 0; i < b; ++i) {
    sx += x.sums[i];
    nx += x.counts[i];
    sy += y.sums[i];
    ny += y.counts[i];
  }
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  const double rx = sx / nx;
  const double ry = sy / ny;
  // Covariance of the linearized residuals (S - r N), per bucket.
  std::vector<double> ex(b), ey(b);
  for (int i = 0; i < b; ++i) {
    ex[i] = x.sums[i] - rx * x.counts[i];
    ey[i] = y.sums[i] - ry * y.counts[i];
  }
  const double cov = RefSampleCovariance(ex, ey);
  return cov / (static_cast<double>(b) * (nx / b) * (ny / b));
}

double RefStudentTCdf(double t, double df) {
  CHECK_GT(df, 0.0);
  const double at = std::fabs(t);
  const double half =
      at <= 8.0 ? IntegrateDensity(at, df) : 0.5 - IntegrateTail(at, df);
  return t >= 0.0 ? 0.5 + half : 0.5 - half;
}

TTestResult RefWelchTTest(double mean_treat, double var_of_mean_treat,
                          double df_treat, double mean_control,
                          double var_of_mean_control, double df_control) {
  TTestResult r;
  r.mean_diff = mean_treat - mean_control;
  r.relative_diff = mean_control != 0.0 ? r.mean_diff / mean_control : 0.0;
  const double var_sum = var_of_mean_treat + var_of_mean_control;
  r.std_error = std::sqrt(std::max(0.0, var_sum));
  if (r.std_error <= 0.0) {
    r.t_stat = 0.0;
    r.df = df_treat + df_control;
    r.p_value = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_stat = r.mean_diff / r.std_error;
  double denom = 0.0;
  if (df_treat > 0.0) {
    denom += var_of_mean_treat * var_of_mean_treat / df_treat;
  }
  if (df_control > 0.0) {
    denom += var_of_mean_control * var_of_mean_control / df_control;
  }
  r.df = denom > 0.0 ? var_sum * var_sum / denom : df_treat + df_control;
  r.p_value = 2.0 * (1.0 - RefStudentTCdf(std::fabs(r.t_stat), r.df));
  return r;
}

CupedResult RefApplyCuped(const BucketValues& y, const BucketValues& x,
                          double theta_override) {
  CHECK_EQ(y.sums.size(), x.sums.size());
  CupedResult result;
  // Paired per-bucket ratios; buckets with a zero denominator in either
  // series are excluded (the convention of stats/cuped.cc).
  std::vector<double> ys, xs;
  for (size_t b = 0; b < y.sums.size(); ++b) {
    if (y.counts[b] > 0.0 && x.counts[b] > 0.0) {
      ys.push_back(y.sums[b] / y.counts[b]);
      xs.push_back(x.sums[b] / x.counts[b]);
    }
  }
  auto replicate_estimate = [](const std::vector<double>& values) {
    MetricEstimate est;
    const int b = static_cast<int>(values.size());
    est.mean = RefMean(values);
    est.df = b > 1 ? b - 1 : 0;
    est.var_of_mean = b > 1 ? RefSampleVariance(values) / b : 0.0;
    est.total_count = b;
    est.total_sum = est.mean * b;
    return est;
  };
  if (ys.size() < 2) {
    std::vector<double> all_ratios(y.sums.size(), 0.0);
    for (size_t b = 0; b < y.sums.size(); ++b) {
      all_ratios[b] = y.counts[b] > 0.0 ? y.sums[b] / y.counts[b] : 0.0;
    }
    result.unadjusted = replicate_estimate(all_ratios);
    result.adjusted = result.unadjusted;
    return result;
  }
  const double var_x = RefSampleVariance(xs);
  const double cov_yx = RefSampleCovariance(ys, xs);
  result.theta = theta_override >= 0.0
                     ? theta_override
                     : (var_x > 0.0 ? cov_yx / var_x : 0.0);
  const double mean_x = RefMean(xs);
  std::vector<double> adjusted(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    adjusted[i] = ys[i] - result.theta * (xs[i] - mean_x);
  }
  result.unadjusted = replicate_estimate(ys);
  result.adjusted = replicate_estimate(adjusted);
  if (result.unadjusted.var_of_mean > 0.0) {
    result.variance_reduction =
        1.0 - result.adjusted.var_of_mean / result.unadjusted.var_of_mean;
  }
  return result;
}

double RefPooledCupedTheta(const std::vector<const BucketValues*>& ys,
                           const std::vector<const BucketValues*>& xs) {
  CHECK_EQ(ys.size(), xs.size());
  double cov_total = 0.0;
  double var_total = 0.0;
  for (size_t arm = 0; arm < ys.size(); ++arm) {
    std::vector<double> y_vals, x_vals;
    for (size_t b = 0; b < ys[arm]->sums.size(); ++b) {
      if (ys[arm]->counts[b] > 0.0 && xs[arm]->counts[b] > 0.0) {
        y_vals.push_back(ys[arm]->sums[b] / ys[arm]->counts[b]);
        x_vals.push_back(xs[arm]->sums[b] / xs[arm]->counts[b]);
      }
    }
    if (y_vals.size() < 2) continue;
    const double weight = static_cast<double>(y_vals.size() - 1);
    cov_total += RefSampleCovariance(y_vals, x_vals) * weight;
    var_total += RefSampleVariance(x_vals) * weight;
  }
  return var_total > 0.0 ? cov_total / var_total : 0.0;
}

}  // namespace expbsi
