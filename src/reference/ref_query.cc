#include "reference/ref_query.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include "common/check.h"
#include "query/parser.h"

namespace expbsi {
namespace {

bool CompareHolds(uint64_t v, CompareOp op, uint64_t k) {
  switch (op) {
    case CompareOp::kEq:
      return v == k;
    case CompareOp::kNe:
      return v != k;
    case CompareOp::kLt:
      return v < k;
    case CompareOp::kLe:
      return v <= k;
    case CompareOp::kGt:
      return v > k;
    case CompareOp::kGe:
      return v >= k;
  }
  return false;
}

// Execution state of one (segment, scan-day) cell; the scalar mirror of the
// production executor's SegmentScan.
struct RefScan {
  bool has_source = false;
  std::map<UnitId, uint64_t> source;       // materialized source values
  std::set<UnitId> mask;                   // units passing all predicates
  const std::map<UnitId, int>* bucket = nullptr;
};

// Same validation rules (and messages) as the production executor.
Status Validate(const RefExperimentData& data, const Query& query) {
  for (const QueryPredicate& pred : query.predicates) {
    if (pred.kind == QueryPredicate::Kind::kOffset &&
        query.source != Query::Source::kExpose) {
      return Status::InvalidArgument(
          "offset predicates require an expose(...) source");
    }
  }
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  if (query.group_by_bucket) {
    for (const QueryAggregate& agg : query.aggregates) {
      if (agg.func != QueryAggregate::Func::kSum &&
          agg.func != QueryAggregate::Func::kCount &&
          agg.func != QueryAggregate::Func::kAvg) {
        return Status::InvalidArgument(
            "GROUP BY BUCKET supports sum/count/avg only");
      }
    }
    if (!data.bucket_equals_segment) {
      int exposed_preds = 0;
      for (const QueryPredicate& pred : query.predicates) {
        exposed_preds +=
            pred.kind == QueryPredicate::Kind::kExposed ? 1 : 0;
      }
      if (exposed_preds != 1) {
        return Status::InvalidArgument(
            "GROUP BY BUCKET with bucket != segment requires exactly one "
            "exposed(...) predicate (the bucket ids live in that strategy's "
            "expose log)");
      }
    }
  }
  return Status::OK();
}

RefScan BuildScan(const RefSegment& seg, const Query& query, Date scan_date) {
  RefScan scan;
  if (query.source == Query::Source::kMetric) {
    const std::map<UnitId, uint64_t>* metric =
        seg.FindMetric(query.source_id, scan_date);
    if (metric == nullptr) return scan;
    scan.source = *metric;
  } else if (query.source == Query::Source::kDimension) {
    const std::map<UnitId, uint64_t>* dim = seg.FindDimension(
        static_cast<uint32_t>(query.source_id), scan_date);
    if (dim == nullptr) return scan;
    scan.source = *dim;
  } else {
    const RefExpose* expose = seg.FindExpose(query.source_id);
    if (expose == nullptr) return scan;
    for (const auto& [unit, first] : expose->first_expose) {
      scan.source[unit] = expose->OffsetOf(unit);
    }
  }
  scan.has_source = true;
  for (const auto& [unit, value] : scan.source) scan.mask.insert(unit);
  for (const QueryPredicate& pred : query.predicates) {
    if (scan.mask.empty()) break;
    switch (pred.kind) {
      case QueryPredicate::Kind::kValue:
      case QueryPredicate::Kind::kOffset: {
        for (auto it = scan.mask.begin(); it != scan.mask.end();) {
          if (CompareHolds(scan.source.at(*it), pred.op, pred.constant)) {
            ++it;
          } else {
            it = scan.mask.erase(it);
          }
        }
        break;
      }
      case QueryPredicate::Kind::kDimension: {
        const std::map<UnitId, uint64_t>* dim =
            seg.FindDimension(pred.dimension_id, pred.dim_date);
        if (dim == nullptr) {
          scan.mask.clear();
          break;
        }
        for (auto it = scan.mask.begin(); it != scan.mask.end();) {
          auto dim_it = dim->find(*it);
          if (dim_it != dim->end() &&
              CompareHolds(dim_it->second, pred.op, pred.constant)) {
            ++it;
          } else {
            it = scan.mask.erase(it);
          }
        }
        break;
      }
      case QueryPredicate::Kind::kExposed: {
        const RefExpose* expose = seg.FindExpose(pred.strategy_id);
        if (expose == nullptr) {
          scan.mask.clear();
          break;
        }
        const Date cutoff =
            pred.per_scan_day ? scan_date : pred.on_or_before;
        for (auto it = scan.mask.begin(); it != scan.mask.end();) {
          auto exp_it = expose->first_expose.find(*it);
          if (exp_it != expose->first_expose.end() &&
              exp_it->second <= cutoff) {
            ++it;
          } else {
            it = scan.mask.erase(it);
          }
        }
        if (scan.bucket == nullptr && !expose->bucket.empty()) {
          scan.bucket = &expose->bucket;
        }
        break;
      }
    }
  }
  return scan;
}

uint64_t MaskedSum(const RefScan& scan) {
  unsigned __int128 total = 0;
  for (UnitId unit : scan.mask) total += scan.source.at(unit);
  CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

}  // namespace

Result<QueryResult> RefExecuteQuery(const RefExperimentData& data,
                                    const Query& query) {
  RETURN_IF_ERROR(Validate(data, query));

  std::vector<Date> days;
  if (query.source == Query::Source::kExpose) {
    days.push_back(0);
  } else {
    for (Date d = query.date; d <= query.date_to; ++d) days.push_back(d);
  }

  std::vector<std::vector<RefScan>> scans(data.num_segments);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    scans[seg].reserve(days.size());
    for (Date d : days) {
      scans[seg].push_back(BuildScan(data.segments[seg], query, d));
    }
  }

  const bool needs_quantile = std::any_of(
      query.aggregates.begin(), query.aggregates.end(),
      [](const QueryAggregate& a) {
        return a.func == QueryAggregate::Func::kMedian ||
               a.func == QueryAggregate::Func::kQuantile;
      });

  double total_sum = 0.0;
  double total_count = 0.0;
  double total_uv = 0.0;
  uint64_t global_min = std::numeric_limits<uint64_t>::max();
  uint64_t global_max = 0;
  bool any_value = false;
  std::vector<uint64_t> quantile_values;
  for (int seg = 0; seg < data.num_segments; ++seg) {
    std::set<UnitId> distinct;
    for (const RefScan& scan : scans[seg]) {
      if (!scan.has_source || scan.mask.empty()) continue;
      total_sum += static_cast<double>(MaskedSum(scan));
      total_count += static_cast<double>(scan.mask.size());
      distinct.insert(scan.mask.begin(), scan.mask.end());
      for (UnitId unit : scan.mask) {
        const uint64_t value = scan.source.at(unit);
        any_value = true;
        global_min = std::min(global_min, value);
        global_max = std::max(global_max, value);
        if (needs_quantile) quantile_values.push_back(value);
      }
    }
    total_uv += static_cast<double>(distinct.size());
  }

  QueryResult result;
  for (const QueryAggregate& agg : query.aggregates) {
    result.columns.push_back(agg.label);
    double value = 0.0;
    switch (agg.func) {
      case QueryAggregate::Func::kSum:
        value = total_sum;
        break;
      case QueryAggregate::Func::kCount:
        value = total_count;
        break;
      case QueryAggregate::Func::kAvg:
        value = total_count > 0 ? total_sum / total_count : 0.0;
        break;
      case QueryAggregate::Func::kUv:
        value = total_uv;
        break;
      case QueryAggregate::Func::kMin:
        value = any_value ? static_cast<double>(global_min) : 0.0;
        break;
      case QueryAggregate::Func::kMax:
        value = any_value ? static_cast<double>(global_max) : 0.0;
        break;
      case QueryAggregate::Func::kMedian:
      case QueryAggregate::Func::kQuantile: {
        if (quantile_values.empty()) {
          value = 0.0;
          break;
        }
        const double q =
            agg.func == QueryAggregate::Func::kMedian ? 0.5 : agg.quantile_q;
        std::vector<uint64_t> sorted = quantile_values;
        std::sort(sorted.begin(), sorted.end());
        const uint64_t n = sorted.size();
        uint64_t rank = static_cast<uint64_t>(
            std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
        if (rank > n) rank = n;
        value = static_cast<double>(sorted[rank - 1]);
        break;
      }
    }
    result.row.push_back(value);
  }

  if (query.group_by_bucket) {
    const int buckets = data.effective_buckets();
    std::vector<double> sums(buckets, 0.0), counts(buckets, 0.0);
    for (int seg = 0; seg < data.num_segments; ++seg) {
      for (const RefScan& scan : scans[seg]) {
        if (!scan.has_source || scan.mask.empty()) continue;
        if (data.bucket_equals_segment) {
          sums[seg] += static_cast<double>(MaskedSum(scan));
          counts[seg] += static_cast<double>(scan.mask.size());
        } else {
          if (scan.bucket == nullptr) continue;
          // Units without a bucket id never appear in a bucket partition,
          // matching GroupSumByBucket / GroupCountByBucket.
          std::vector<uint64_t> s(buckets, 0), c(buckets, 0);
          for (UnitId unit : scan.mask) {
            auto it = scan.bucket->find(unit);
            if (it == scan.bucket->end()) continue;
            s[it->second] += scan.source.at(unit);
            ++c[it->second];
          }
          for (int b = 0; b < buckets; ++b) {
            sums[b] += static_cast<double>(s[b]);
            counts[b] += static_cast<double>(c[b]);
          }
        }
      }
    }
    result.per_bucket.assign(buckets, {});
    for (int b = 0; b < buckets; ++b) {
      for (const QueryAggregate& agg : query.aggregates) {
        switch (agg.func) {
          case QueryAggregate::Func::kSum:
            result.per_bucket[b].push_back(sums[b]);
            break;
          case QueryAggregate::Func::kCount:
            result.per_bucket[b].push_back(counts[b]);
            break;
          case QueryAggregate::Func::kAvg:
            result.per_bucket[b].push_back(
                counts[b] > 0 ? sums[b] / counts[b] : 0.0);
            break;
          default:
            break;  // validated unreachable
        }
      }
    }
  }
  return result;
}

Result<QueryResult> RefRunQuery(const RefExperimentData& data,
                                const std::string& text) {
  Result<Query> query = ParseQuery(text);
  if (!query.ok()) return query.status();
  return RefExecuteQuery(data, query.value());
}

}  // namespace expbsi
