#ifndef EXPBSI_REFERENCE_REF_QUERY_H_
#define EXPBSI_REFERENCE_REF_QUERY_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "reference/ref_data.h"

namespace expbsi {

// Scalar reference executor for EQL queries, mirroring query/executor.h over
// the oracle data representation. The parser (and hence the Query AST) is
// shared -- both engines execute the same parse tree -- but execution is
// naive row scans over std::map columns, with the same validation rules and
// error messages as the production executor so differential tests can
// compare ok/error outcomes too.
//
// Integer partials are folded into doubles in the production engine's
// (segment, day) order, so successful results compare bit-for-bit.
Result<QueryResult> RefExecuteQuery(const RefExperimentData& data,
                                    const Query& query);

// Parses and executes in one step (shared ParseQuery + RefExecuteQuery).
Result<QueryResult> RefRunQuery(const RefExperimentData& data,
                                const std::string& text);

}  // namespace expbsi

#endif  // EXPBSI_REFERENCE_REF_QUERY_H_
