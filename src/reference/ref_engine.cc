#include "reference/ref_engine.h"

#include <set>

#include "common/check.h"
#include "reference/ref_stats.h"

namespace expbsi {
namespace {

BucketValues MakeEmptyBuckets(const RefExperimentData& data) {
  BucketValues out;
  out.sums.assign(data.effective_buckets(), 0.0);
  out.counts.assign(data.effective_buckets(), 0.0);
  return out;
}

// Bucket of an exposed unit: the segment itself, or the unit's stored
// bucket id.
int BucketOfUnit(const RefExperimentData& data, const RefExpose& expose,
                 int segment, UnitId unit) {
  if (data.bucket_equals_segment) return segment;
  auto it = expose.bucket.find(unit);
  CHECK(it != expose.bucket.end());
  return it->second;
}

bool IsExposedBy(const RefExpose& expose, UnitId unit, Date date) {
  auto it = expose.first_expose.find(unit);
  return it != expose.first_expose.end() && it->second <= date;
}

// Per-bucket integer sum of one (segment, day) cell: metric values of units
// exposed by `date`. Returned as integers so the caller can fold them into
// doubles in the same order the BSI engine does.
std::vector<uint64_t> SegmentDaySums(const RefExperimentData& data,
                                     int segment, const RefExpose& expose,
                                     const std::map<UnitId, uint64_t>& metric,
                                     Date date) {
  std::vector<uint64_t> sums(data.effective_buckets(), 0);
  for (const auto& [unit, value] : metric) {
    if (!IsExposedBy(expose, unit, date)) continue;
    sums[BucketOfUnit(data, expose, segment, unit)] += value;
  }
  return sums;
}

// Per-bucket count of units exposed by `date`.
std::vector<uint64_t> ExposedCounts(const RefExperimentData& data,
                                    int segment, const RefExpose& expose,
                                    Date date) {
  std::vector<uint64_t> counts(data.effective_buckets(), 0);
  for (const auto& [unit, first] : expose.first_expose) {
    if (first > date) continue;
    ++counts[BucketOfUnit(data, expose, segment, unit)];
  }
  return counts;
}

void AddToDoubles(const std::vector<uint64_t>& from,
                  std::vector<double>* to) {
  for (size_t b = 0; b < from.size(); ++b) {
    (*to)[b] += static_cast<double>(from[b]);
  }
}

// True if `unit` passes every dimension predicate on `dim_date`. A missing
// dimension value fails the predicate (zero-is-absent).
bool PassesDimensionFilter(const RefSegment& segment,
                           const std::vector<DimensionPredicate>& preds,
                           Date dim_date, UnitId unit) {
  for (const DimensionPredicate& pred : preds) {
    const std::map<UnitId, uint64_t>* dim =
        segment.FindDimension(pred.dimension_id, dim_date);
    if (dim == nullptr) return false;
    auto it = dim->find(unit);
    if (it == dim->end()) return false;
    const uint64_t v = it->second;
    bool holds = false;
    switch (pred.op) {
      case DimensionPredicate::Op::kEq:
        holds = v == pred.value;
        break;
      case DimensionPredicate::Op::kNe:
        holds = v != pred.value;
        break;
      case DimensionPredicate::Op::kLt:
        holds = v < pred.value;
        break;
      case DimensionPredicate::Op::kLe:
        holds = v <= pred.value;
        break;
      case DimensionPredicate::Op::kGt:
        holds = v > pred.value;
        break;
      case DimensionPredicate::Op::kGe:
        holds = v >= pred.value;
        break;
    }
    if (!holds) return false;
  }
  return true;
}

// True if any unit of the segment passes all predicates on `dim_date`
// (mirrors DimensionFilterMask's "empty mask -> segment contributes
// nothing", including its skipped exposed-count contribution).
bool AnyUnitPassesFilter(const RefSegment& segment,
                         const std::vector<DimensionPredicate>& preds,
                         Date dim_date) {
  if (preds.empty()) return true;
  const std::map<UnitId, uint64_t>* first_dim =
      segment.FindDimension(preds.front().dimension_id, dim_date);
  if (first_dim == nullptr) return false;
  for (const auto& [unit, value] : *first_dim) {
    if (PassesDimensionFilter(segment, preds, dim_date, unit)) return true;
  }
  return false;
}

}  // namespace

BucketValues RefComputeStrategyMetric(const RefExperimentData& data,
                                      uint64_t strategy_id,
                                      uint64_t metric_id, Date date_lo,
                                      Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const RefSegment& segment = data.segments[seg];
    const RefExpose* expose = segment.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const std::map<UnitId, uint64_t>* metric =
          segment.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      AddToDoubles(SegmentDaySums(data, seg, *expose, *metric, date),
                   &out.sums);
    }
    AddToDoubles(ExposedCounts(data, seg, *expose, date_hi), &out.counts);
  }
  return out;
}

BucketValues RefComputeStrategyRatioMetric(const RefExperimentData& data,
                                           uint64_t strategy_id,
                                           uint64_t numerator_metric_id,
                                           uint64_t denominator_metric_id,
                                           Date date_lo, Date date_hi) {
  BucketValues numerator = RefComputeStrategyMetric(
      data, strategy_id, numerator_metric_id, date_lo, date_hi);
  const BucketValues denominator = RefComputeStrategyMetric(
      data, strategy_id, denominator_metric_id, date_lo, date_hi);
  numerator.counts = denominator.sums;
  return numerator;
}

BucketValues RefComputeStrategyUniqueVisitors(const RefExperimentData& data,
                                              uint64_t strategy_id,
                                              uint64_t metric_id,
                                              Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const RefSegment& segment = data.segments[seg];
    const RefExpose* expose = segment.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    // Units with a value on some day d in range AND exposed by d.
    std::set<UnitId> visitors;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const std::map<UnitId, uint64_t>* metric =
          segment.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      for (const auto& [unit, value] : *metric) {
        if (IsExposedBy(*expose, unit, date)) visitors.insert(unit);
      }
    }
    std::vector<uint64_t> counts(data.effective_buckets(), 0);
    for (UnitId unit : visitors) {
      ++counts[BucketOfUnit(data, *expose, seg, unit)];
    }
    AddToDoubles(counts, &out.sums);
    AddToDoubles(ExposedCounts(data, seg, *expose, date_hi), &out.counts);
  }
  return out;
}

BucketValues RefComputeStrategyMetricFiltered(
    const RefExperimentData& data, uint64_t strategy_id, uint64_t metric_id,
    Date date_lo, Date date_hi,
    const std::vector<DimensionPredicate>& preds, Date dim_date) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const RefSegment& segment = data.segments[seg];
    const RefExpose* expose = segment.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    if (!AnyUnitPassesFilter(segment, preds, dim_date)) continue;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const std::map<UnitId, uint64_t>* metric =
          segment.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      std::vector<uint64_t> sums(data.effective_buckets(), 0);
      for (const auto& [unit, value] : *metric) {
        if (!IsExposedBy(*expose, unit, date)) continue;
        if (!PassesDimensionFilter(segment, preds, dim_date, unit)) continue;
        sums[BucketOfUnit(data, *expose, seg, unit)] += value;
      }
      AddToDoubles(sums, &out.sums);
    }
    std::vector<uint64_t> counts(data.effective_buckets(), 0);
    for (const auto& [unit, first] : expose->first_expose) {
      if (first > date_hi) continue;
      if (!PassesDimensionFilter(segment, preds, dim_date, unit)) continue;
      ++counts[BucketOfUnit(data, *expose, seg, unit)];
    }
    AddToDoubles(counts, &out.counts);
  }
  return out;
}

BucketValues RefComputePreExperiment(const RefExperimentData& data,
                                     uint64_t strategy_id, uint64_t metric_id,
                                     Date expt_start, int lookback_days,
                                     Date as_of_date) {
  CHECK_GT(lookback_days, 0);
  CHECK_GE(expt_start, static_cast<Date>(lookback_days));
  BucketValues out = MakeEmptyBuckets(data);
  const Date pre_lo = expt_start - lookback_days;
  const Date pre_hi = expt_start - 1;
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const RefSegment& segment = data.segments[seg];
    const RefExpose* expose = segment.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    // Per-unit pre-period totals (the scalar sumBSI fold).
    std::map<UnitId, uint64_t> pre_sum;
    for (Date date = pre_lo; date <= pre_hi; ++date) {
      const std::map<UnitId, uint64_t>* metric =
          segment.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      for (const auto& [unit, value] : *metric) pre_sum[unit] += value;
    }
    std::vector<uint64_t> sums(data.effective_buckets(), 0);
    std::vector<uint64_t> counts(data.effective_buckets(), 0);
    bool any_exposed = false;
    for (const auto& [unit, first] : expose->first_expose) {
      if (first > as_of_date) continue;
      any_exposed = true;
      const int bucket = BucketOfUnit(data, *expose, seg, unit);
      ++counts[bucket];
      auto it = pre_sum.find(unit);
      if (it != pre_sum.end()) sums[bucket] += it->second;
    }
    if (!any_exposed) continue;
    AddToDoubles(sums, &out.sums);
    AddToDoubles(counts, &out.counts);
  }
  return out;
}

ScorecardEntry RefCompareStrategies(uint64_t metric_id, uint64_t treatment_id,
                                    const BucketValues& treatment_buckets,
                                    uint64_t control_id,
                                    const BucketValues& control_buckets) {
  ScorecardEntry entry;
  entry.metric_id = metric_id;
  entry.treatment_id = treatment_id;
  entry.control_id = control_id;
  entry.treatment = RefEstimateRatio(treatment_buckets);
  entry.control = RefEstimateRatio(control_buckets);
  entry.ttest =
      RefWelchTTest(entry.treatment.mean, entry.treatment.var_of_mean,
                    entry.treatment.df, entry.control.mean,
                    entry.control.var_of_mean, entry.control.df);
  return entry;
}

std::vector<ScorecardEntry> RefComputeScorecard(
    const RefExperimentData& data, uint64_t control_id,
    const std::vector<uint64_t>& treatment_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  std::vector<ScorecardEntry> entries;
  entries.reserve(treatment_ids.size() * metric_ids.size());
  for (uint64_t metric_id : metric_ids) {
    const BucketValues control_buckets = RefComputeStrategyMetric(
        data, control_id, metric_id, date_lo, date_hi);
    for (uint64_t treatment_id : treatment_ids) {
      const BucketValues treatment_buckets = RefComputeStrategyMetric(
          data, treatment_id, metric_id, date_lo, date_hi);
      entries.push_back(RefCompareStrategies(metric_id, treatment_id,
                                             treatment_buckets, control_id,
                                             control_buckets));
    }
  }
  return entries;
}

std::vector<std::vector<double>> RefComputeMetricCovarianceMatrix(
    const RefExperimentData& data, uint64_t strategy_id,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  const size_t n = metric_ids.size();
  std::vector<BucketValues> buckets;
  buckets.reserve(n);
  for (uint64_t metric_id : metric_ids) {
    buckets.push_back(RefComputeStrategyMetric(data, strategy_id, metric_id,
                                               date_lo, date_hi));
  }
  std::vector<std::vector<double>> cov(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i; j < n; ++j) {
      const double c = RefEstimateRatioCovariance(buckets[i], buckets[j]);
      cov[i][j] = c;
      cov[j][i] = c;
    }
  }
  return cov;
}

std::vector<ScorecardEntry> RefComputeDailyBreakdown(
    const RefExperimentData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi) {
  std::vector<ScorecardEntry> out;
  out.reserve(date_hi - date_lo + 1);
  for (Date date = date_lo; date <= date_hi; ++date) {
    const BucketValues treat =
        RefComputeStrategyMetric(data, treatment_id, metric_id, date, date);
    const BucketValues control =
        RefComputeStrategyMetric(data, control_id, metric_id, date, date);
    out.push_back(RefCompareStrategies(metric_id, treatment_id, treat,
                                       control_id, control));
  }
  return out;
}

std::vector<DimensionBreakdownEntry> RefComputeDimensionBreakdown(
    const RefExperimentData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi, uint32_t dimension_id,
    const std::vector<uint64_t>& dim_values, Date dim_date) {
  std::vector<DimensionBreakdownEntry> out;
  out.reserve(dim_values.size());
  for (uint64_t value : dim_values) {
    const std::vector<DimensionPredicate> preds = {
        {dimension_id, DimensionPredicate::Op::kEq, value}};
    const BucketValues treat = RefComputeStrategyMetricFiltered(
        data, treatment_id, metric_id, date_lo, date_hi, preds, dim_date);
    const BucketValues control = RefComputeStrategyMetricFiltered(
        data, control_id, metric_id, date_lo, date_hi, preds, dim_date);
    out.push_back(DimensionBreakdownEntry{
        value, RefCompareStrategies(metric_id, treatment_id, treat,
                                    control_id, control)});
  }
  return out;
}

}  // namespace expbsi
