#ifndef EXPBSI_REFERENCE_REF_STATS_H_
#define EXPBSI_REFERENCE_REF_STATS_H_

#include <vector>

#include "stats/bucket_stats.h"
#include "stats/cuped.h"
#include "stats/ttest.h"

namespace expbsi {

// Reference implementations of the statistical layer, written from the
// formulas documented in stats/*.h rather than from the optimized code. The
// BucketValues / MetricEstimate / TTestResult / CupedResult structs are
// reused as plain data holders; everything computed here is independent:
// the t CDF in particular is evaluated by adaptive numerical integration of
// the density instead of the incomplete-beta continued fraction, so it
// cross-checks that whole code path.
//
// Floating-point results are expected to agree with the production stats to
// ~1e-9 relative (same formulas, possibly different association order); the
// differential tests compare with a tolerance, not bit-for-bit.

double RefMean(const std::vector<double>& xs);
double RefSampleVariance(const std::vector<double>& xs);
double RefSampleCovariance(const std::vector<double>& xs,
                           const std::vector<double>& ys);

// Ratio estimate from bucket replicates (delta method), as specified in
// bucket_stats.h.
MetricEstimate RefEstimateRatio(const BucketValues& buckets);
double RefEstimateRatioCovariance(const BucketValues& x,
                                  const BucketValues& y);

// Student-t CDF by adaptive Simpson integration of the density (lgamma-based
// normalization). Accurate to ~1e-12 for the df ranges used here.
double RefStudentTCdf(double t, double df);

TTestResult RefWelchTTest(double mean_treat, double var_of_mean_treat,
                          double df_treat, double mean_control,
                          double var_of_mean_control, double df_control);

CupedResult RefApplyCuped(const BucketValues& y, const BucketValues& x,
                          double theta_override = -1.0);
double RefPooledCupedTheta(const std::vector<const BucketValues*>& ys,
                           const std::vector<const BucketValues*>& xs);

}  // namespace expbsi

#endif  // EXPBSI_REFERENCE_REF_STATS_H_
