#ifndef EXPBSI_EXPDATA_SCHEMA_H_
#define EXPBSI_EXPDATA_SCHEMA_H_

#include <cstdint>

namespace expbsi {

// Identifier of an analysis / randomization unit (user-id, session-id,
// page-view-id, ... -- the platform is unit-agnostic).
using UnitId = uint64_t;

// Calendar date as a day index (0 = epoch of the dataset). The paper stores
// dates as UInt32; a day index keeps arithmetic (offsets, ranges) trivial.
using Date = uint32_t;

// Normal-format ("row") schemas, Table 1 of the paper. These are what the
// baseline engines scan and what the BSI builders consume.

// One exposed analysis unit of one experiment strategy.
struct ExposeRow {
  uint64_t strategy_id = 0;
  UnitId analysis_unit_id = 0;
  UnitId randomization_unit_id = 0;
  Date first_expose_date = 0;
};

// One analysis unit's metric value on one date. Zero values are not logged
// (zero means "no activity", matching the BSI zero-is-absent convention).
struct MetricRow {
  Date date = 0;
  uint64_t metric_id = 0;
  UnitId analysis_unit_id = 0;
  uint64_t value = 0;
};

// One analysis unit's attribute value on one date. Dimension names are
// interned as 32-bit ids by the dataset owner.
struct DimensionRow {
  Date date = 0;
  uint32_t dimension_id = 0;
  UnitId analysis_unit_id = 0;
  uint64_t value = 0;
};

}  // namespace expbsi

#endif  // EXPBSI_EXPDATA_SCHEMA_H_
