#include "expdata/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"
#include "common/rng.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

// Deterministic uniform [0,1) from an id and a salt (order-independent,
// unlike consuming an RNG stream).
double HashToUnit(uint64_t id, uint64_t salt) {
  return static_cast<double>(SaltedHash64(id, salt) >> 11) * 0x1.0p-53;
}

// Engagement multiplier for the user with engagement rank `rank` (0 = most
// engaged) among n users: ((n / (rank+1))^e, normalized to mean ~1 so the
// configured participation is the population average.
double EngagementFactor(uint64_t rank, uint64_t n, double e) {
  const double raw =
      std::pow(static_cast<double>(n) / static_cast<double>(rank + 1), e);
  return raw * (1.0 - e);  // mean of (n/x)^e over x in [1,n] is ~1/(1-e)
}

}  // namespace

Dataset GenerateDataset(const DatasetConfig& config,
                        std::vector<ExperimentConfig> experiments,
                        std::vector<MetricConfig> metrics,
                        std::vector<DimensionConfig> dimensions) {
  CHECK_GT(config.num_segments, 0);
  CHECK_GT(config.num_days, 0);
  for (const ExperimentConfig& e : experiments) {
    CHECK_EQ(e.strategy_ids.size(), e.arm_effects.size());
    CHECK(!e.strategy_ids.empty());
  }

  Dataset ds;
  ds.config = config;
  ds.experiments = std::move(experiments);
  ds.metrics = std::move(metrics);
  ds.dimensions = std::move(dimensions);
  ds.segments.resize(config.num_segments);
  ds.users_by_engagement.resize(config.num_segments);

  std::vector<ZipfDistribution> metric_value_dists;
  metric_value_dists.reserve(ds.metrics.size());
  for (const MetricConfig& m : ds.metrics) {
    metric_value_dists.emplace_back(std::max<uint64_t>(1, m.value_range),
                                    m.zipf_s);
  }
  std::vector<ZipfDistribution> dim_value_dists;
  dim_value_dists.reserve(ds.dimensions.size());
  for (const DimensionConfig& d : ds.dimensions) {
    dim_value_dists.emplace_back(std::max<uint64_t>(1, d.cardinality),
                                 d.zipf_s);
  }

  // Scratch per experiment: arm index and expose day (-1 = never exposed in
  // the window).
  std::vector<int> arm_of(ds.experiments.size());
  std::vector<int> expose_day(ds.experiments.size());

  // Unit ids: production user-ids are allocated roughly sequentially, so a
  // platform's id space is dense. Draw a random distinct subset of
  // [0, 4 * num_users) -- arbitrary-looking 32-bit ids (as in the paper's
  // UInt32 columns) that keep the realistic clustering. The id permutation
  // is independent of the engagement rank i.
  Rng id_rng(Mix64(config.seed ^ 0x1d5a11beefULL));
  const std::vector<uint64_t> uid_of =
      SampleDistinct(id_rng, config.num_users * 4, config.num_users);

  for (uint64_t i = 0; i < config.num_users; ++i) {
    // i is the engagement rank.
    const UnitId uid = uid_of[i];
    const int seg = SegmentOf(uid, config.num_segments);
    SegmentData& segment = ds.segments[seg];
    ds.users_by_engagement[seg].push_back(uid);

    Rng rng(Mix64(uid ^ config.seed));
    const double engagement = EngagementFactor(i, config.num_users,
                                               config.engagement_exponent);

    // --- Experiment assignment and exposure --------------------------------
    for (size_t x = 0; x < ds.experiments.size(); ++x) {
      const ExperimentConfig& exp = ds.experiments[x];
      arm_of[x] = -1;
      expose_day[x] = -1;
      if (HashToUnit(uid, exp.traffic_salt ^ 0x7a11f1cULL) >=
          exp.traffic_fraction) {
        continue;
      }
      arm_of[x] = StrategyArmOf(uid, exp.traffic_salt,
                                static_cast<int>(exp.strategy_ids.size()));
      // Highly engaged users show up (and get exposed) earlier.
      const uint64_t g = rng.NextGeometric(
          std::min(0.95, exp.expose_day_p * std::min(2.0, engagement)));
      if (g < static_cast<uint64_t>(config.num_days)) {
        expose_day[x] = static_cast<int>(g);
        segment.expose.push_back(
            ExposeRow{exp.strategy_ids[arm_of[x]], uid, uid,
                      config.start_date + static_cast<Date>(g)});
      }
    }

    // --- Per-user metric bases ---------------------------------------------
    // A stable per-user level makes values correlate across days, which is
    // what the CUPED pre-experiment adjustment exploits.
    std::vector<uint64_t> base_value(ds.metrics.size());
    for (size_t m = 0; m < ds.metrics.size(); ++m) {
      base_value[m] = metric_value_dists[m].Sample(rng);
    }
    std::vector<uint64_t> dim_value(ds.dimensions.size());
    for (size_t d = 0; d < ds.dimensions.size(); ++d) {
      dim_value[d] = dim_value_dists[d].Sample(rng);
    }

    // --- Daily rows ---------------------------------------------------------
    for (int day = 0; day < config.num_days; ++day) {
      const Date date = config.start_date + static_cast<Date>(day);
      // Treatment effect active for every experiment the user is already
      // exposed to on this day.
      double effect = 1.0;
      for (size_t x = 0; x < ds.experiments.size(); ++x) {
        if (expose_day[x] >= 0 && day >= expose_day[x]) {
          effect *= ds.experiments[x].arm_effects[arm_of[x]];
        }
      }
      for (size_t m = 0; m < ds.metrics.size(); ++m) {
        const MetricConfig& metric = ds.metrics[m];
        const double p =
            std::min(1.0, metric.daily_participation * engagement);
        if (!rng.NextBernoulli(p)) continue;
        const double noise = 0.6 + 0.8 * rng.NextDouble();
        const double raw =
            static_cast<double>(base_value[m]) * noise * effect;
        const uint64_t value = std::min<uint64_t>(
            metric.value_range,
            std::max<uint64_t>(1, static_cast<uint64_t>(std::llround(raw))));
        segment.metrics.push_back(
            MetricRow{date, metric.metric_id, uid, value});
      }
      for (size_t d = 0; d < ds.dimensions.size(); ++d) {
        // Attributes are mostly stable; 2% chance of change per day
        // (client upgrades etc.).
        if (rng.NextBernoulli(0.02)) {
          dim_value[d] = dim_value_dists[d].Sample(rng);
        }
        segment.dimensions.push_back(DimensionRow{
            date, ds.dimensions[d].dimension_id, uid, dim_value[d]});
      }
    }
  }
  return ds;
}

Dataset GenerateSessionDataset(const DatasetConfig& config,
                               std::vector<ExperimentConfig> experiments,
                               std::vector<MetricConfig> metrics,
                               double sessions_per_user_day) {
  CHECK_GT(config.num_segments, 0);
  CHECK_GT(config.num_days, 0);
  CHECK_GT(sessions_per_user_day, 0.0);
  for (const ExperimentConfig& e : experiments) {
    CHECK_EQ(e.strategy_ids.size(), e.arm_effects.size());
    CHECK(!e.strategy_ids.empty());
  }

  Dataset ds;
  ds.config = config;
  ds.config.bucket_equals_segment = false;  // session != user, always
  ds.experiments = std::move(experiments);
  ds.metrics = std::move(metrics);
  ds.segments.resize(config.num_segments);
  ds.users_by_engagement.resize(config.num_segments);

  std::vector<ZipfDistribution> metric_value_dists;
  metric_value_dists.reserve(ds.metrics.size());
  for (const MetricConfig& m : ds.metrics) {
    metric_value_dists.emplace_back(std::max<uint64_t>(1, m.value_range),
                                    m.zipf_s);
  }

  Rng id_rng(Mix64(config.seed ^ 0x5e5510u));
  const std::vector<uint64_t> uid_of =
      SampleDistinct(id_rng, config.num_users * 4, config.num_users);

  uint64_t next_session_id = 1;  // session ids are dense and sequential
  std::vector<int> arm_of(ds.experiments.size());
  std::vector<int> expose_day(ds.experiments.size());

  for (uint64_t i = 0; i < config.num_users; ++i) {
    const UnitId uid = uid_of[i];
    Rng rng(Mix64(uid ^ config.seed ^ 0x5e55ULL));
    const double engagement = EngagementFactor(i, config.num_users,
                                               config.engagement_exponent);

    for (size_t x = 0; x < ds.experiments.size(); ++x) {
      const ExperimentConfig& exp = ds.experiments[x];
      arm_of[x] = -1;
      expose_day[x] = -1;
      if (HashToUnit(uid, exp.traffic_salt ^ 0x7a11f1cULL) >=
          exp.traffic_fraction) {
        continue;
      }
      arm_of[x] = StrategyArmOf(uid, exp.traffic_salt,
                                static_cast<int>(exp.strategy_ids.size()));
      const uint64_t g = rng.NextGeometric(
          std::min(0.95, exp.expose_day_p * std::min(2.0, engagement)));
      if (g < static_cast<uint64_t>(config.num_days)) {
        expose_day[x] = static_cast<int>(g);
      }
    }

    // Sessions of one user share a per-user level (making them correlated,
    // the situation bucketing-by-user exists to handle).
    std::vector<uint64_t> base_value(ds.metrics.size());
    for (size_t m = 0; m < ds.metrics.size(); ++m) {
      base_value[m] = metric_value_dists[m].Sample(rng);
    }

    for (int day = 0; day < config.num_days; ++day) {
      const Date date = config.start_date + static_cast<Date>(day);
      double effect = 1.0;
      bool exposed_today = false;
      for (size_t x = 0; x < ds.experiments.size(); ++x) {
        if (expose_day[x] >= 0 && day >= expose_day[x]) {
          effect *= ds.experiments[x].arm_effects[arm_of[x]];
          exposed_today = true;
        }
      }
      // Session count per day scales with engagement.
      const double mean_sessions =
          sessions_per_user_day * std::min(3.0, engagement);
      const uint64_t sessions = rng.NextGeometric(
          1.0 / (1.0 + mean_sessions));  // geometric with this mean
      for (uint64_t s = 0; s < sessions; ++s) {
        const UnitId sid = next_session_id++;
        const int seg = SegmentOf(sid, config.num_segments);
        SegmentData& segment = ds.segments[seg];
        ds.users_by_engagement[seg].push_back(sid);
        if (exposed_today) {
          for (size_t x = 0; x < ds.experiments.size(); ++x) {
            if (expose_day[x] >= 0 && day >= expose_day[x]) {
              segment.expose.push_back(
                  ExposeRow{ds.experiments[x].strategy_ids[arm_of[x]], sid,
                            uid, date});
            }
          }
        }
        for (size_t m = 0; m < ds.metrics.size(); ++m) {
          const MetricConfig& metric = ds.metrics[m];
          if (!rng.NextBernoulli(metric.daily_participation)) continue;
          const double noise = 0.6 + 0.8 * rng.NextDouble();
          const double raw =
              static_cast<double>(base_value[m]) * noise * effect;
          const uint64_t value = std::min<uint64_t>(
              metric.value_range,
              std::max<uint64_t>(1,
                                 static_cast<uint64_t>(std::llround(raw))));
          segment.metrics.push_back(
              MetricRow{date, metric.metric_id, sid, value});
        }
      }
    }
  }
  return ds;
}

namespace {

// One histogram bucket of value-range cardinalities: `fraction` of metrics
// get a range drawn log-uniformly from (lo, hi].
struct RangeBucket {
  double fraction;
  uint64_t lo;
  uint64_t hi;
};

std::vector<MetricConfig> MakePopulation(int n, uint64_t first_metric_id,
                                         uint64_t seed,
                                         const std::vector<RangeBucket>& hist) {
  std::vector<MetricConfig> out;
  out.reserve(n);
  Rng rng(seed);
  // Largest-remainder apportionment of n metrics over the buckets.
  std::vector<int> counts(hist.size(), 0);
  std::vector<std::pair<double, size_t>> remainders;
  int assigned = 0;
  for (size_t b = 0; b < hist.size(); ++b) {
    const double exact = hist[b].fraction * n;
    counts[b] = static_cast<int>(exact);
    assigned += counts[b];
    remainders.emplace_back(exact - counts[b], b);
  }
  std::sort(remainders.rbegin(), remainders.rend());
  for (int k = 0; k < n - assigned; ++k) {
    counts[remainders[k % remainders.size()].second]++;
  }
  uint64_t metric_id = first_metric_id;
  for (size_t b = 0; b < hist.size(); ++b) {
    for (int k = 0; k < counts[b]; ++k) {
      const double log_lo = std::log(static_cast<double>(hist[b].lo) + 1.0);
      const double log_hi = std::log(static_cast<double>(hist[b].hi));
      const uint64_t range = std::max<uint64_t>(
          hist[b].lo + 1,
          static_cast<uint64_t>(
              std::exp(log_lo + rng.NextDouble() * (log_hi - log_lo))));
      MetricConfig m;
      m.metric_id = metric_id++;
      m.value_range = std::min(range, hist[b].hi);
      m.zipf_s = 1.1 + 0.6 * rng.NextDouble();
      // Wider-range metrics tend to be logged by fewer users per day.
      m.daily_participation =
          std::max(0.02, 0.5 / std::sqrt(1.0 + std::log10(
                                                    static_cast<double>(
                                                        m.value_range) +
                                                    1.0)));
      out.push_back(m);
    }
  }
  return out;
}

}  // namespace

std::vector<MetricConfig> MakeCoreMetricPopulation(int n,
                                                   uint64_t first_metric_id,
                                                   uint64_t seed) {
  // Table 3 proportions (105 core metrics).
  const std::vector<RangeBucket> hist = {
      {33.0 / 105, 0, 10},          {4.0 / 105, 10, 100},
      {26.0 / 105, 100, 1000},      {18.0 / 105, 1000, 10000},
      {12.0 / 105, 10000, 100000},  {5.0 / 105, 100000, 1000000},
      {5.0 / 105, 1000000, 10000000},
      {2.0 / 105, 10000000, 100000000},
  };
  return MakePopulation(n, first_metric_id, seed, hist);
}

std::vector<MetricConfig> MakeFleetMetricPopulation(int n,
                                                    uint64_t first_metric_id,
                                                    uint64_t seed) {
  // Figure 4 shape: 3979 of 5890 metrics (67.5%) have range <= 100, with a
  // long tail up to 10^8.
  const std::vector<RangeBucket> hist = {
      {0.440, 0, 10},        {0.235, 10, 100},
      {0.150, 100, 1000},    {0.080, 1000, 10000},
      {0.050, 10000, 100000}, {0.025, 100000, 1000000},
      {0.015, 1000000, 10000000},
      {0.005, 10000000, 100000000},
  };
  return MakePopulation(n, first_metric_id, seed, hist);
}

std::vector<MetricConfig> MakeTypicalMetricsABC() {
  // Table 5. Row counts in the paper are 316M (A), 34M (B), 510M (C) over
  // the same user base; participation ratios below mirror those densities.
  MetricConfig a;
  a.metric_id = 9001;
  a.value_range = 1;
  a.zipf_s = 1.0;
  a.daily_participation = 0.62;
  MetricConfig b;
  b.metric_id = 9002;
  b.value_range = 50;
  b.zipf_s = 1.2;
  b.daily_participation = 0.067;
  MetricConfig c;
  c.metric_id = 9003;
  c.value_range = 21600;
  c.zipf_s = 1.4;
  c.daily_participation = 1.0;
  return {a, b, c};
}

}  // namespace expbsi
