#ifndef EXPBSI_EXPDATA_GENERATOR_H_
#define EXPBSI_EXPDATA_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "expdata/schema.h"

namespace expbsi {

// Synthetic workload generator. The paper evaluates on WeChat production
// logs; we reproduce the published distributional shapes instead (DESIGN.md
// "Substitutions"):
//   * metric value-range cardinalities follow Fig. 4 / Table 3,
//   * metric values are Zipf-distributed near zero (Fig. 5, Pareto
//     principle),
//   * first-expose dates decay geometrically ("most users are exposed in the
//     beginning few days", §3.5),
//   * user activity is engagement-skewed so engagement-ordered position
//     encoding is compact (§3.4.1).
// All draws are deterministic in (seed, user-id), so datasets are
// reproducible and order-independent.

// Dataset-wide shape parameters.
struct DatasetConfig {
  uint64_t num_users = 100000;
  int num_segments = 16;
  // Statistical buckets (§3.3). When bucket_equals_segment is true the
  // engines use segments as buckets (the paper's common case) and no bucket
  // BSI is built.
  int num_buckets = 1024;
  bool bucket_equals_segment = true;
  Date start_date = 0;
  int num_days = 7;
  uint64_t seed = 42;
  // Exponent of the per-user engagement skew; higher = heavier head.
  double engagement_exponent = 0.5;
};

// One experiment: a traffic split over `strategy_ids` (arm 0 = control).
struct ExperimentConfig {
  std::vector<uint64_t> strategy_ids;
  // Per-arm multiplicative effect on metric values (1.0 = no effect);
  // size must match strategy_ids.
  std::vector<double> arm_effects;
  uint64_t traffic_salt = 1;      // identifies the randomization layer
  double traffic_fraction = 1.0;  // fraction of users in the experiment
  // P(first exposure happens on the n-th running day) ~ Geometric(p):
  // most exposures land on the first days, as in the paper.
  double expose_day_p = 0.6;
};

// One metric's value model.
struct MetricConfig {
  uint64_t metric_id = 0;
  // Values are drawn from [1, value_range] (the paper's "value range
  // cardinality" for one day).
  uint64_t value_range = 100;
  double zipf_s = 1.3;  // value skew; mass concentrates near 1
  // Base probability that a user logs this metric on a given day; scaled by
  // per-user engagement.
  double daily_participation = 0.3;
};

// One dimension's value model (values mostly stable per user across days).
struct DimensionConfig {
  uint32_t dimension_id = 0;
  uint64_t cardinality = 5;  // values in [1, cardinality]
  double zipf_s = 1.0;
};

// Normal-format rows of one segment.
struct SegmentData {
  std::vector<ExposeRow> expose;
  std::vector<MetricRow> metrics;
  std::vector<DimensionRow> dimensions;
};

// A full generated dataset.
struct Dataset {
  DatasetConfig config;
  std::vector<ExperimentConfig> experiments;
  std::vector<MetricConfig> metrics;
  std::vector<DimensionConfig> dimensions;
  std::vector<SegmentData> segments;
  // Per segment: unit ids ordered by engagement (most engaged first); feed
  // to PositionEncoder::PreassignRanked for the paper's compact encoding.
  std::vector<std::vector<UnitId>> users_by_engagement;
};

// Generates the dataset. Cost is O(users * days * (metrics + dimensions)).
Dataset GenerateDataset(const DatasetConfig& config,
                        std::vector<ExperimentConfig> experiments,
                        std::vector<MetricConfig> metrics,
                        std::vector<DimensionConfig> dimensions);

// Session-level dataset: the paper's unit-hierarchy case (§3.1.1) where the
// randomization unit (user) is HIGHER than the analysis unit (session).
// Sessions are short-lived analysis units: each is exposed on the day it
// happens (if its user is exposed by then), carries per-session metric
// values, and inherits its user's statistical bucket -- which is what makes
// bucket-based variance estimation valid under SUTVA when sessions of the
// same user are correlated.
//
// The returned dataset always has bucket_equals_segment == false: sessions
// are segmented by session-id while buckets come from the user id (the
// ExposeRow's randomization_unit_id).
Dataset GenerateSessionDataset(const DatasetConfig& config,
                               std::vector<ExperimentConfig> experiments,
                               std::vector<MetricConfig> metrics,
                               double sessions_per_user_day);

// Metric populations calibrated to the paper's published histograms.

// Table 3: the 105 "core metrics" value-range cardinality proportions
// (31.4% in (0,10], ..., 1.9% in (10^7,10^8]). `n` metrics, ids from
// `first_metric_id`.
std::vector<MetricConfig> MakeCoreMetricPopulation(int n,
                                                   uint64_t first_metric_id,
                                                   uint64_t seed);

// Figure 4: the fleet-wide 5890-metric population (3979 of 5890 with range
// cardinality <= 100).
std::vector<MetricConfig> MakeFleetMetricPopulation(int n,
                                                    uint64_t first_metric_id,
                                                    uint64_t seed);

// Table 5: the three "typical metrics" A (binary, dense), B (range 50,
// sparse), C (range 21600, dense).
std::vector<MetricConfig> MakeTypicalMetricsABC();

}  // namespace expbsi

#endif  // EXPBSI_EXPDATA_GENERATOR_H_
