#ifndef EXPBSI_EXPDATA_POSITION_ENCODER_H_
#define EXPBSI_EXPDATA_POSITION_ENCODER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "expdata/schema.h"

namespace expbsi {

// Position encoding (§3.4.1): maps each analysis-unit-id of one segment to a
// dense position 0, 1, 2, ... assigned in first-seen order. All BSIs of a
// segment share one encoder, which is what makes them join-free: the value of
// the same analysis unit lives at the same position in every BSI (§4.1.1).
//
// The paper prefers encoding high-engagement users to small positions so the
// roaring containers stay dense; achieve that by calling Encode() over units
// in engagement order before ingesting data (see PreassignRanked()).
class PositionEncoder {
 public:
  PositionEncoder() = default;

  // Returns the position for `id`, assigning the next free one if new.
  uint32_t Encode(UnitId id);

  // Position for `id` if already assigned.
  std::optional<uint32_t> Lookup(UnitId id) const;

  // The unit at `pos`; pos must have been assigned.
  UnitId Decode(uint32_t pos) const;

  // Assigns positions 0..n-1 to `ids_by_rank` in order (highest engagement
  // first). Must be called on an empty encoder.
  void PreassignRanked(const std::vector<UnitId>& ids_by_rank);

  uint32_t size() const { return static_cast<uint32_t>(reverse_.size()); }

  // Serialization (snapshot+WAL recovery needs the position assignment to
  // survive restarts, or replayed deltas would land at different
  // positions): [count u32][unit ids u64 ...] in position order. The
  // forward map is rebuilt on load.
  void Serialize(std::string* out) const;
  static Result<PositionEncoder> Deserialize(std::string_view bytes);

 private:
  std::unordered_map<UnitId, uint32_t> forward_;
  std::vector<UnitId> reverse_;
};

}  // namespace expbsi

#endif  // EXPBSI_EXPDATA_POSITION_ENCODER_H_
