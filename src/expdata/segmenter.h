#ifndef EXPBSI_EXPDATA_SEGMENTER_H_
#define EXPBSI_EXPDATA_SEGMENTER_H_

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"
#include "expdata/schema.h"

namespace expbsi {

// Deterministic segmentation (§3.2): segment-id = HASH(analysis-unit-id) % N.
// Segments are the unit of parallel computing and load balancing; all
// operations on a segment's data are independent of other segments.
inline int SegmentOf(UnitId analysis_unit_id, int num_segments) {
  DCHECK_GT(num_segments, 0);
  return static_cast<int>(SaltedHash64(analysis_unit_id, kSegmentHashSalt) %
                          static_cast<uint64_t>(num_segments));
}

// Deterministic bucketing (§3.3): assigns randomization units to buckets,
// independent of both segmentation and traffic randomization, so per-bucket
// metric values form independent replicates for variance estimation.
inline int BucketOf(UnitId randomization_unit_id, int num_buckets) {
  DCHECK_GT(num_buckets, 0);
  return static_cast<int>(SaltedHash64(randomization_unit_id,
                                       kBucketHashSalt) %
                          static_cast<uint64_t>(num_buckets));
}

// Deterministic traffic split (which strategy a unit sees), independent of
// the two hashes above; `salt` identifies the experiment layer.
inline int StrategyArmOf(UnitId randomization_unit_id, uint64_t experiment_salt,
                         int num_arms) {
  DCHECK_GT(num_arms, 0);
  return static_cast<int>(SaltedHash64(randomization_unit_id,
                                       experiment_salt) %
                          static_cast<uint64_t>(num_arms));
}

}  // namespace expbsi

#endif  // EXPBSI_EXPDATA_SEGMENTER_H_
