#include "expdata/bsi_builder.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "expdata/segmenter.h"

namespace expbsi {
namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::string_view bytes, size_t* cursor, uint32_t* v) {
  if (bytes.size() - *cursor < sizeof(uint32_t)) return false;
  std::memcpy(v, bytes.data() + *cursor, sizeof(uint32_t));
  *cursor += sizeof(uint32_t);
  return true;
}

bool ReadU64(std::string_view bytes, size_t* cursor, uint64_t* v) {
  if (bytes.size() - *cursor < sizeof(uint64_t)) return false;
  std::memcpy(v, bytes.data() + *cursor, sizeof(uint64_t));
  *cursor += sizeof(uint64_t);
  return true;
}

void PutBsi(std::string* out, const Bsi& bsi) {
  std::string block = bsi.SerializeToString();
  PutU32(out, static_cast<uint32_t>(block.size()));
  out->append(block);
}

Result<Bsi> ReadBsi(std::string_view bytes, size_t* cursor) {
  uint32_t len = 0;
  if (!ReadU32(bytes, cursor, &len) || bytes.size() - *cursor < len) {
    return Status::Corruption("bsi block truncated");
  }
  Result<Bsi> bsi = Bsi::Deserialize(bytes.substr(*cursor, len));
  if (bsi.ok()) *cursor += len;
  return bsi;
}

}  // namespace

RoaringBitmap ExposeBsi::ExposedOnOrBefore(Date date) const {
  if (date < min_expose_date) return RoaringBitmap();
  return offset.RangeLe(static_cast<uint64_t>(date - min_expose_date) + 1);
}

RoaringBitmap ExposeBsi::ExposedBetween(Date from, Date to) const {
  if (to < min_expose_date || from > to) return RoaringBitmap();
  const uint64_t lo =
      from <= min_expose_date
          ? 1
          : static_cast<uint64_t>(from - min_expose_date) + 1;
  const uint64_t hi = static_cast<uint64_t>(to - min_expose_date) + 1;
  return offset.RangeBetween(lo, hi);
}

size_t ExposeBsi::SizeInBytes() const {
  return offset.SizeInBytes() + bucket.SizeInBytes();
}

void ExposeBsi::Serialize(std::string* out) const {
  PutU64(out, strategy_id);
  PutU32(out, min_expose_date);
  PutBsi(out, offset);
  PutBsi(out, bucket);
}

Result<ExposeBsi> ExposeBsi::Deserialize(std::string_view bytes) {
  ExposeBsi out;
  size_t cursor = 0;
  uint32_t date = 0;
  if (!ReadU64(bytes, &cursor, &out.strategy_id) ||
      !ReadU32(bytes, &cursor, &date)) {
    return Status::Corruption("expose bsi: truncated header");
  }
  out.min_expose_date = date;
  Result<Bsi> offset = ReadBsi(bytes, &cursor);
  if (!offset.ok()) return offset.status();
  out.offset = std::move(offset).value();
  Result<Bsi> bucket = ReadBsi(bytes, &cursor);
  if (!bucket.ok()) return bucket.status();
  out.bucket = std::move(bucket).value();
  if (cursor != bytes.size()) {
    return Status::Corruption("expose bsi: trailing bytes");
  }
  return out;
}

void MetricBsi::Serialize(std::string* out) const {
  PutU32(out, date);
  PutU64(out, metric_id);
  PutBsi(out, value);
}

Result<MetricBsi> MetricBsi::Deserialize(std::string_view bytes) {
  MetricBsi out;
  size_t cursor = 0;
  uint32_t date = 0;
  if (!ReadU32(bytes, &cursor, &date) ||
      !ReadU64(bytes, &cursor, &out.metric_id)) {
    return Status::Corruption("metric bsi: truncated header");
  }
  out.date = date;
  Result<Bsi> value = ReadBsi(bytes, &cursor);
  if (!value.ok()) return value.status();
  out.value = std::move(value).value();
  if (cursor != bytes.size()) {
    return Status::Corruption("metric bsi: trailing bytes");
  }
  return out;
}

void DimensionBsi::Serialize(std::string* out) const {
  PutU32(out, date);
  PutU32(out, dimension_id);
  PutBsi(out, value);
}

Result<DimensionBsi> DimensionBsi::Deserialize(std::string_view bytes) {
  DimensionBsi out;
  size_t cursor = 0;
  uint32_t date = 0;
  if (!ReadU32(bytes, &cursor, &date) ||
      !ReadU32(bytes, &cursor, &out.dimension_id)) {
    return Status::Corruption("dimension bsi: truncated header");
  }
  out.date = date;
  Result<Bsi> value = ReadBsi(bytes, &cursor);
  if (!value.ok()) return value.status();
  out.value = std::move(value).value();
  if (cursor != bytes.size()) {
    return Status::Corruption("dimension bsi: trailing bytes");
  }
  return out;
}

ExposeBsi BuildExposeBsi(const std::vector<ExposeRow>& rows,
                         PositionEncoder& encoder, int num_buckets) {
  ExposeBsi out;
  if (rows.empty()) return out;
  out.strategy_id = rows.front().strategy_id;
  Date min_date = std::numeric_limits<Date>::max();
  for (const ExposeRow& row : rows) {
    DCHECK_EQ(row.strategy_id, out.strategy_id);
    min_date = std::min(min_date, row.first_expose_date);
  }
  out.min_expose_date = min_date;
  std::vector<std::pair<uint32_t, uint64_t>> offset_pairs;
  std::vector<std::pair<uint32_t, uint64_t>> bucket_pairs;
  offset_pairs.reserve(rows.size());
  if (num_buckets > 0) bucket_pairs.reserve(rows.size());
  for (const ExposeRow& row : rows) {
    const uint32_t pos = encoder.Encode(row.analysis_unit_id);
    offset_pairs.emplace_back(
        pos, static_cast<uint64_t>(row.first_expose_date - min_date) + 1);
    if (num_buckets > 0) {
      bucket_pairs.emplace_back(
          pos, static_cast<uint64_t>(
                   BucketOf(row.randomization_unit_id, num_buckets)) +
                   1);
    }
  }
  out.offset = Bsi::FromPairs(std::move(offset_pairs));
  if (num_buckets > 0) out.bucket = Bsi::FromPairs(std::move(bucket_pairs));
  return out;
}

MetricBsi BuildMetricBsi(const std::vector<MetricRow>& rows,
                         PositionEncoder& encoder) {
  MetricBsi out;
  if (rows.empty()) return out;
  out.date = rows.front().date;
  out.metric_id = rows.front().metric_id;
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  pairs.reserve(rows.size());
  for (const MetricRow& row : rows) {
    DCHECK_EQ(row.date, out.date);
    DCHECK_EQ(row.metric_id, out.metric_id);
    pairs.emplace_back(encoder.Encode(row.analysis_unit_id), row.value);
  }
  out.value = Bsi::FromPairs(std::move(pairs));
  return out;
}

DimensionBsi BuildDimensionBsi(const std::vector<DimensionRow>& rows,
                               PositionEncoder& encoder) {
  DimensionBsi out;
  if (rows.empty()) return out;
  out.date = rows.front().date;
  out.dimension_id = rows.front().dimension_id;
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  pairs.reserve(rows.size());
  for (const DimensionRow& row : rows) {
    DCHECK_EQ(row.date, out.date);
    DCHECK_EQ(row.dimension_id, out.dimension_id);
    pairs.emplace_back(encoder.Encode(row.analysis_unit_id), row.value);
  }
  out.value = Bsi::FromPairs(std::move(pairs));
  return out;
}

}  // namespace expbsi
