#include "expdata/raw_log.h"

#include <algorithm>

#include "common/check.h"

namespace expbsi {

std::vector<ExposeRow> AggregateRawExposeEvents(
    std::vector<RawExposeEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const RawExposeEvent& a, const RawExposeEvent& b) {
              if (a.strategy_id != b.strategy_id) {
                return a.strategy_id < b.strategy_id;
              }
              if (a.analysis_unit_id != b.analysis_unit_id) {
                return a.analysis_unit_id < b.analysis_unit_id;
              }
              return a.date < b.date;
            });
  std::vector<ExposeRow> rows;
  for (const RawExposeEvent& event : events) {
    if (!rows.empty() && rows.back().strategy_id == event.strategy_id &&
        rows.back().analysis_unit_id == event.analysis_unit_id) {
      // Same unit: the first (minimum) date already won; later events must
      // carry the same randomization unit.
      CHECK_EQ(rows.back().randomization_unit_id,
               event.randomization_unit_id);
      continue;
    }
    rows.push_back(ExposeRow{event.strategy_id, event.analysis_unit_id,
                             event.randomization_unit_id, event.date});
  }
  return rows;
}

std::vector<MetricRow> AggregateRawMetricEvents(
    std::vector<RawMetricEvent> events) {
  std::sort(events.begin(), events.end(),
            [](const RawMetricEvent& a, const RawMetricEvent& b) {
              if (a.metric_id != b.metric_id) return a.metric_id < b.metric_id;
              if (a.date != b.date) return a.date < b.date;
              return a.analysis_unit_id < b.analysis_unit_id;
            });
  std::vector<MetricRow> rows;
  for (const RawMetricEvent& event : events) {
    if (!rows.empty() && rows.back().metric_id == event.metric_id &&
        rows.back().date == event.date &&
        rows.back().analysis_unit_id == event.analysis_unit_id) {
      rows.back().value += event.value;
      continue;
    }
    rows.push_back(MetricRow{event.date, event.metric_id,
                             event.analysis_unit_id, event.value});
  }
  // Zero-sum rows carry no information under the zero-is-absent convention.
  rows.erase(std::remove_if(rows.begin(), rows.end(),
                            [](const MetricRow& row) { return row.value == 0; }),
             rows.end());
  return rows;
}

}  // namespace expbsi
