#include "expdata/position_encoder.h"

#include <cstring>

#include "common/check.h"

namespace expbsi {

uint32_t PositionEncoder::Encode(UnitId id) {
  auto [it, inserted] =
      forward_.try_emplace(id, static_cast<uint32_t>(reverse_.size()));
  if (inserted) reverse_.push_back(id);
  return it->second;
}

std::optional<uint32_t> PositionEncoder::Lookup(UnitId id) const {
  auto it = forward_.find(id);
  if (it == forward_.end()) return std::nullopt;
  return it->second;
}

UnitId PositionEncoder::Decode(uint32_t pos) const {
  CHECK_LT(pos, reverse_.size());
  return reverse_[pos];
}

void PositionEncoder::PreassignRanked(const std::vector<UnitId>& ids_by_rank) {
  CHECK_EQ(reverse_.size(), 0u);
  forward_.reserve(ids_by_rank.size());
  reverse_.reserve(ids_by_rank.size());
  for (UnitId id : ids_by_rank) Encode(id);
  CHECK_EQ(reverse_.size(), ids_by_rank.size());  // ranked ids must be unique
}

void PositionEncoder::Serialize(std::string* out) const {
  const uint32_t count = size();
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (UnitId id : reverse_) {
    out->append(reinterpret_cast<const char*>(&id), sizeof(id));
  }
}

Result<PositionEncoder> PositionEncoder::Deserialize(std::string_view bytes) {
  uint32_t count = 0;
  if (bytes.size() < sizeof(count)) {
    return Status::Corruption("position_encoder: truncated");
  }
  std::memcpy(&count, bytes.data(), sizeof(count));
  if ((bytes.size() - sizeof(count)) / sizeof(UnitId) < count) {
    return Status::Corruption("position_encoder: count exceeds payload");
  }
  if (bytes.size() != sizeof(count) + count * sizeof(UnitId)) {
    return Status::Corruption("position_encoder: trailing bytes");
  }
  PositionEncoder out;
  out.forward_.reserve(count);
  out.reverse_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    UnitId id = 0;
    std::memcpy(&id, bytes.data() + sizeof(count) + i * sizeof(UnitId),
                sizeof(id));
    auto [it, inserted] = out.forward_.try_emplace(id, i);
    (void)it;
    if (!inserted) {
      return Status::Corruption("position_encoder: duplicate unit id");
    }
    out.reverse_.push_back(id);
  }
  return out;
}

}  // namespace expbsi
