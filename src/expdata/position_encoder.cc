#include "expdata/position_encoder.h"

#include "common/check.h"

namespace expbsi {

uint32_t PositionEncoder::Encode(UnitId id) {
  auto [it, inserted] =
      forward_.try_emplace(id, static_cast<uint32_t>(reverse_.size()));
  if (inserted) reverse_.push_back(id);
  return it->second;
}

std::optional<uint32_t> PositionEncoder::Lookup(UnitId id) const {
  auto it = forward_.find(id);
  if (it == forward_.end()) return std::nullopt;
  return it->second;
}

UnitId PositionEncoder::Decode(uint32_t pos) const {
  CHECK_LT(pos, reverse_.size());
  return reverse_[pos];
}

void PositionEncoder::PreassignRanked(const std::vector<UnitId>& ids_by_rank) {
  CHECK_EQ(reverse_.size(), 0u);
  forward_.reserve(ids_by_rank.size());
  reverse_.reserve(ids_by_rank.size());
  for (UnitId id : ids_by_rank) Encode(id);
  CHECK_EQ(reverse_.size(), ids_by_rank.size());  // ranked ids must be unique
}

}  // namespace expbsi
