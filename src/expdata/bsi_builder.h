#ifndef EXPBSI_EXPDATA_BSI_BUILDER_H_
#define EXPBSI_EXPDATA_BSI_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bsi/bsi.h"
#include "expdata/position_encoder.h"
#include "expdata/schema.h"

namespace expbsi {

// BSI representations of the three experiment-data categories (Table 2).
// Each instance covers ONE segment; positions refer to that segment's
// PositionEncoder.

// Expose log of one strategy in one segment: a constant min-expose-date plus
// two BSIs (§3.4.2). `offset` stores first_expose_date - min_expose_date + 1
// (starting at 1 because zero means absent); `bucket` stores bucket_id + 1
// for the same reason, and is left empty when bucketing coincides with
// segmentation (the common case, §3.3).
struct ExposeBsi {
  uint64_t strategy_id = 0;
  Date min_expose_date = 0;
  Bsi offset;
  Bsi bucket;

  // Units first exposed on or before `date` (the scorecard's
  // "expose-date <= t2.date" filter rewritten as a range search on offset).
  RoaringBitmap ExposedOnOrBefore(Date date) const;

  // Units first exposed in [from, to] relative to min_expose_date as
  // absolute dates (the paper's "first exposed between 2nd and 5th day").
  RoaringBitmap ExposedBetween(Date from, Date to) const;

  // All exposed units.
  const RoaringBitmap& Exposed() const { return offset.existence(); }

  size_t SizeInBytes() const;
  void Serialize(std::string* out) const;
  static Result<ExposeBsi> Deserialize(std::string_view bytes);
};

// Metric log of one (metric, date) in one segment: a single value BSI.
struct MetricBsi {
  Date date = 0;
  uint64_t metric_id = 0;
  Bsi value;

  size_t SizeInBytes() const { return value.SizeInBytes(); }
  void Serialize(std::string* out) const;
  static Result<MetricBsi> Deserialize(std::string_view bytes);
};

// Dimension log of one (dimension, date) in one segment.
struct DimensionBsi {
  Date date = 0;
  uint32_t dimension_id = 0;
  Bsi value;

  size_t SizeInBytes() const { return value.SizeInBytes(); }
  void Serialize(std::string* out) const;
  static Result<DimensionBsi> Deserialize(std::string_view bytes);
};

// Builders: convert normal-format rows (already restricted to one segment
// and one strategy / metric / dimension / date) into the BSI form, encoding
// analysis-unit-ids through `encoder`.
//
// `num_buckets` <= 0 means bucketing == segmentation; no bucket BSI is built.
ExposeBsi BuildExposeBsi(const std::vector<ExposeRow>& rows,
                         PositionEncoder& encoder, int num_buckets);

MetricBsi BuildMetricBsi(const std::vector<MetricRow>& rows,
                         PositionEncoder& encoder);

DimensionBsi BuildDimensionBsi(const std::vector<DimensionRow>& rows,
                               PositionEncoder& encoder);

}  // namespace expbsi

#endif  // EXPBSI_EXPDATA_BSI_BUILDER_H_
