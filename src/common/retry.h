#ifndef EXPBSI_COMMON_RETRY_H_
#define EXPBSI_COMMON_RETRY_H_

#include <cstdint>
#include <limits>
#include <utility>

#include "common/status.h"

namespace expbsi {

// Bounded retry with exponential backoff and deterministic jitter, used by
// the ad-hoc cluster's cold-tier fetches and the pre-compute pipeline's
// executor tasks. Backoff time is *simulated* (accumulated into latency
// accounting, never slept), matching the rest of the cluster simulation.
struct RetryPolicy {
  int max_attempts = 3;                   // total attempts, >= 1
  double initial_backoff_seconds = 0.05;  // before the first retry
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  // Per-op deadline on accumulated simulated backoff: a retry that would
  // push the op past it is not taken and the last error is returned.
  double op_deadline_seconds = std::numeric_limits<double>::infinity();

  // Backoff before retry `attempt` (1-based: after the attempt-th failure),
  // jittered deterministically into [0.5, 1.0] of nominal by `jitter_token`
  // so two ops retrying in lockstep decorrelate but a seed still replays.
  double BackoffSeconds(int attempt, uint64_t jitter_token) const;
};

// Retry classification under the failure model (DESIGN.md "Failure model"):
// kUnavailable (node / network blip) and kCorruption (a re-read can return
// clean bytes) are transient; kNotFound is semantic absence and everything
// else is a permanent input/contract error.
bool IsRetryableStatus(const Status& status);

// Accounting for one retried op.
struct RetryStats {
  int attempts = 0;         // total attempts made
  int retries = 0;          // attempts beyond the first
  double backoff_seconds = 0.0;  // simulated backoff accumulated
  bool recovered = false;   // succeeded after at least one retryable failure
};

// Publishes one finished op's retry accounting to the metrics registry
// (retry.attempts, retry.retries, retry.recovered_ops, retry.failed_ops,
// retry.backoff_seconds). Out-of-line so the header template does not pull
// in the registry.
void RecordRetryMetrics(const RetryStats& op_stats, bool ok);

// Runs `op` (a callable returning Result<T>) under `policy`. Returns the
// first OK result, or the last error once attempts, the deadline, or a
// non-retryable status stop the loop. `stats` may be nullptr; it is
// accumulated into, so one struct can aggregate across ops.
template <typename T, typename Fn>
Result<T> RetryWithPolicy(const RetryPolicy& policy, uint64_t jitter_token,
                          RetryStats* stats, Fn&& op) {
  RetryStats local;  // this op only; merged into `stats` at the end
  double waited = 0.0;
  for (int attempt = 1;; ++attempt) {
    Result<T> result = op();
    ++local.attempts;
    bool done = false;
    if (result.ok()) {
      local.recovered = attempt > 1;
      done = true;
    } else if (!IsRetryableStatus(result.status()) ||
               attempt >= policy.max_attempts) {
      done = true;
    } else {
      const double backoff =
          policy.BackoffSeconds(attempt, jitter_token + attempt);
      if (waited + backoff > policy.op_deadline_seconds) {
        done = true;
      } else {
        waited += backoff;
        local.backoff_seconds += backoff;
        ++local.retries;
      }
    }
    if (done) {
      RecordRetryMetrics(local, result.ok());
      if (stats != nullptr) {
        stats->attempts += local.attempts;
        stats->retries += local.retries;
        stats->backoff_seconds += local.backoff_seconds;
        stats->recovered = stats->recovered || local.recovered;
      }
      return result;
    }
  }
}

}  // namespace expbsi

#endif  // EXPBSI_COMMON_RETRY_H_
