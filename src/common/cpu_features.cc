#include "common/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace expbsi {
namespace {

SimdTier DetectTier() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512f")) return SimdTier::kAvx512;
  if (__builtin_cpu_supports("avx2")) return SimdTier::kAvx2;
#endif
  return SimdTier::kPortable;
}

SimdTier ClampToDetected(SimdTier tier) {
  return static_cast<int>(tier) > static_cast<int>(DetectedSimdTier())
             ? DetectedSimdTier()
             : tier;
}

SimdTier TierFromEnv() {
  const char* env = std::getenv("EXPBSI_KERNEL");
  if (env == nullptr || env[0] == '\0') return DetectedSimdTier();
  if (std::strcmp(env, "portable") == 0) return SimdTier::kPortable;
  if (std::strcmp(env, "avx2") == 0) {
    return ClampToDetected(SimdTier::kAvx2);
  }
  if (std::strcmp(env, "avx512") == 0) {
    return ClampToDetected(SimdTier::kAvx512);
  }
  return DetectedSimdTier();  // unknown value: ignore
}

std::atomic<SimdTier>& ActiveFlag() {
  static std::atomic<SimdTier> flag{TierFromEnv()};
  return flag;
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kPortable:
      return "portable";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = DetectTier();
  return tier;
}

SimdTier ActiveSimdTier() {
  return ActiveFlag().load(std::memory_order_relaxed);
}

void SetSimdTierForTesting(SimdTier tier) {
  ActiveFlag().store(ClampToDetected(tier), std::memory_order_relaxed);
}

}  // namespace expbsi
