#include "common/word_ops.h"

#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
#define EXPBSI_HAVE_X86_SIMD 1
#include <immintrin.h>
#endif

namespace expbsi {
namespace {

constexpr size_t kWords = WordOps::kWords;

// ---------------------------------------------------------------------------
// Portable variants: plain word loops. The compiler autovectorizes these at
// -O2 for whatever the build's baseline ISA is; they are also the reference
// implementation every SIMD tier is differential-tested against.
// ---------------------------------------------------------------------------

void LtPassPortable(uint64_t* lt, const uint64_t* x, const uint64_t* y) {
  for (size_t w = 0; w < kWords; ++w) {
    lt[w] = (y[w] & lt[w]) | ((y[w] | lt[w]) & ~x[w]);
  }
}

bool EqPassPortable(uint64_t* eq, const uint64_t* x, const uint64_t* y) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    eq[w] &= ~(x[w] ^ y[w]);
    any |= eq[w];
  }
  return any != 0;
}

bool ScalarOnePassPortable(uint64_t* lt, uint64_t* eq, const uint64_t* s) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    lt[w] |= eq[w] & ~s[w];
    eq[w] &= s[w];
    any |= eq[w];
  }
  return any != 0;
}

bool ScalarZeroPassPortable(uint64_t* gt, uint64_t* eq, const uint64_t* s) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    gt[w] |= eq[w] & s[w];
    eq[w] &= ~s[w];
    any |= eq[w];
  }
  return any != 0;
}

bool CsaPassPortable(uint64_t* acc, const uint64_t* bits, uint64_t* carry) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    const uint64_t b = bits[w];
    const uint64_t c = acc[w] & b;
    acc[w] ^= b;
    carry[w] = c;
    any |= c;
  }
  return any != 0;
}

void MaskAndNot2PassPortable(uint64_t* dst, const uint64_t* mask,
                             const uint64_t* a, const uint64_t* b) {
  for (size_t w = 0; w < kWords; ++w) {
    dst[w] = mask[w] & ~a[w] & ~b[w];
  }
}

bool AndPassPortable(uint64_t* dst, const uint64_t* src) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    dst[w] &= src[w];
    any |= dst[w];
  }
  return any != 0;
}

bool AndNotPassPortable(uint64_t* dst, const uint64_t* src) {
  uint64_t any = 0;
  for (size_t w = 0; w < kWords; ++w) {
    dst[w] &= ~src[w];
    any |= dst[w];
  }
  return any != 0;
}

void OrPassPortable(uint64_t* dst, const uint64_t* src) {
  for (size_t w = 0; w < kWords; ++w) dst[w] |= src[w];
}

constexpr WordOps kPortableOps = {
    LtPassPortable,       EqPassPortable,     ScalarOnePassPortable,
    ScalarZeroPassPortable, CsaPassPortable,  MaskAndNot2PassPortable,
    AndPassPortable,      AndNotPassPortable, OrPassPortable,
};

#if defined(EXPBSI_HAVE_X86_SIMD)

// ---------------------------------------------------------------------------
// AVX2 variants: 256-bit lanes, 4 words per vector, 256 iterations per pass.
// Compiled with a function-level target attribute so the rest of the binary
// keeps the build's baseline ISA; only reachable after a CPUID check.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void LtPassAvx2(uint64_t* lt,
                                                const uint64_t* x,
                                                const uint64_t* y) {
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
    const __m256i yv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + w));
    const __m256i lv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lt + w));
    // (y & lt) | ((y | lt) & ~x); andnot(a, b) computes ~a & b.
    const __m256i keep = _mm256_and_si256(yv, lv);
    const __m256i gain = _mm256_andnot_si256(xv, _mm256_or_si256(yv, lv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lt + w),
                        _mm256_or_si256(keep, gain));
  }
}

__attribute__((target("avx2"))) bool EqPassAvx2(uint64_t* eq,
                                                const uint64_t* x,
                                                const uint64_t* y) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
    const __m256i yv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + w));
    const __m256i ev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(eq + w));
    const __m256i r = _mm256_andnot_si256(_mm256_xor_si256(xv, yv), ev);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(eq + w), r);
    any = _mm256_or_si256(any, r);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) bool ScalarOnePassAvx2(uint64_t* lt,
                                                       uint64_t* eq,
                                                       const uint64_t* s) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i sv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + w));
    const __m256i ev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(eq + w));
    const __m256i lv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lt + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lt + w),
                        _mm256_or_si256(lv, _mm256_andnot_si256(sv, ev)));
    const __m256i e = _mm256_and_si256(ev, sv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(eq + w), e);
    any = _mm256_or_si256(any, e);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) bool ScalarZeroPassAvx2(uint64_t* gt,
                                                        uint64_t* eq,
                                                        const uint64_t* s) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i sv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + w));
    const __m256i ev = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(eq + w));
    const __m256i gv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(gt + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(gt + w),
                        _mm256_or_si256(gv, _mm256_and_si256(ev, sv)));
    const __m256i e = _mm256_andnot_si256(sv, ev);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(eq + w), e);
    any = _mm256_or_si256(any, e);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) bool CsaPassAvx2(uint64_t* acc,
                                                 const uint64_t* bits,
                                                 uint64_t* carry) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i bv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + w));
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + w));
    const __m256i cv = _mm256_and_si256(av, bv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + w),
                        _mm256_xor_si256(av, bv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(carry + w), cv);
    any = _mm256_or_si256(any, cv);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) void MaskAndNot2PassAvx2(uint64_t* dst,
                                                         const uint64_t* mask,
                                                         const uint64_t* a,
                                                         const uint64_t* b) {
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i mv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + w));
    const __m256i av = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w));
    const __m256i bv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + w),
        _mm256_andnot_si256(bv, _mm256_andnot_si256(av, mv)));
  }
}

__attribute__((target("avx2"))) bool AndPassAvx2(uint64_t* dst,
                                                 const uint64_t* src) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i r = _mm256_and_si256(dv, sv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), r);
    any = _mm256_or_si256(any, r);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) bool AndNotPassAvx2(uint64_t* dst,
                                                    const uint64_t* src) {
  __m256i any = _mm256_setzero_si256();
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    const __m256i r = _mm256_andnot_si256(sv, dv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w), r);
    any = _mm256_or_si256(any, r);
  }
  return !_mm256_testz_si256(any, any);
}

__attribute__((target("avx2"))) void OrPassAvx2(uint64_t* dst,
                                                const uint64_t* src) {
  for (size_t w = 0; w < kWords; w += 4) {
    const __m256i sv =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + w));
    const __m256i dv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + w));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + w),
                        _mm256_or_si256(dv, sv));
  }
}

constexpr WordOps kAvx2Ops = {
    LtPassAvx2,       EqPassAvx2,     ScalarOnePassAvx2,
    ScalarZeroPassAvx2, CsaPassAvx2,  MaskAndNot2PassAvx2,
    AndPassAvx2,      AndNotPassAvx2, OrPassAvx2,
};

// ---------------------------------------------------------------------------
// AVX-512F variants: 512-bit lanes, 8 words per vector, and vpternlogq to
// fuse each three-input step into one instruction per vector. The ternary
// immediates index the truth table as (a << 2) | (b << 1) | c for
// _mm512_ternarylogic_epi64(a, b, c, imm).
// ---------------------------------------------------------------------------

__attribute__((target("avx512f"))) void LtPassAvx512(uint64_t* lt,
                                                     const uint64_t* x,
                                                     const uint64_t* y) {
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i xv = _mm512_loadu_si512(x + w);
    const __m512i yv = _mm512_loadu_si512(y + w);
    const __m512i lv = _mm512_loadu_si512(lt + w);
    // lt' = (y & lt) | ((y | lt) & ~x) with (a, b, c) = (lt, x, y): 0xB2.
    _mm512_storeu_si512(lt + w, _mm512_ternarylogic_epi64(lv, xv, yv, 0xB2));
  }
}

__attribute__((target("avx512f"))) bool EqPassAvx512(uint64_t* eq,
                                                     const uint64_t* x,
                                                     const uint64_t* y) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i xv = _mm512_loadu_si512(x + w);
    const __m512i yv = _mm512_loadu_si512(y + w);
    const __m512i ev = _mm512_loadu_si512(eq + w);
    // eq' = eq & ~(x ^ y) with (a, b, c) = (eq, x, y): 0x90.
    const __m512i r = _mm512_ternarylogic_epi64(ev, xv, yv, 0x90);
    _mm512_storeu_si512(eq + w, r);
    any = _mm512_or_si512(any, r);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) bool ScalarOnePassAvx512(uint64_t* lt,
                                                            uint64_t* eq,
                                                            const uint64_t* s) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i sv = _mm512_loadu_si512(s + w);
    const __m512i ev = _mm512_loadu_si512(eq + w);
    const __m512i lv = _mm512_loadu_si512(lt + w);
    // lt' = lt | (eq & ~s) with (a, b, c) = (lt, eq, s): 0xF4.
    _mm512_storeu_si512(lt + w, _mm512_ternarylogic_epi64(lv, ev, sv, 0xF4));
    const __m512i e = _mm512_and_si512(ev, sv);
    _mm512_storeu_si512(eq + w, e);
    any = _mm512_or_si512(any, e);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) bool ScalarZeroPassAvx512(
    uint64_t* gt, uint64_t* eq, const uint64_t* s) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i sv = _mm512_loadu_si512(s + w);
    const __m512i ev = _mm512_loadu_si512(eq + w);
    const __m512i gv = _mm512_loadu_si512(gt + w);
    // gt' = gt | (eq & s) with (a, b, c) = (gt, eq, s): 0xF8.
    _mm512_storeu_si512(gt + w, _mm512_ternarylogic_epi64(gv, ev, sv, 0xF8));
    const __m512i e = _mm512_andnot_si512(sv, ev);
    _mm512_storeu_si512(eq + w, e);
    any = _mm512_or_si512(any, e);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) bool CsaPassAvx512(uint64_t* acc,
                                                      const uint64_t* bits,
                                                      uint64_t* carry) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i bv = _mm512_loadu_si512(bits + w);
    const __m512i av = _mm512_loadu_si512(acc + w);
    const __m512i cv = _mm512_and_si512(av, bv);
    _mm512_storeu_si512(acc + w, _mm512_xor_si512(av, bv));
    _mm512_storeu_si512(carry + w, cv);
    any = _mm512_or_si512(any, cv);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) void MaskAndNot2PassAvx512(
    uint64_t* dst, const uint64_t* mask, const uint64_t* a, const uint64_t* b) {
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i mv = _mm512_loadu_si512(mask + w);
    const __m512i av = _mm512_loadu_si512(a + w);
    const __m512i bv = _mm512_loadu_si512(b + w);
    // dst = mask & ~a & ~b with (a, b, c) = (mask, a, b): 0x10.
    _mm512_storeu_si512(dst + w, _mm512_ternarylogic_epi64(mv, av, bv, 0x10));
  }
}

__attribute__((target("avx512f"))) bool AndPassAvx512(uint64_t* dst,
                                                      const uint64_t* src) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i r =
        _mm512_and_si512(_mm512_loadu_si512(dst + w), _mm512_loadu_si512(src + w));
    _mm512_storeu_si512(dst + w, r);
    any = _mm512_or_si512(any, r);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) bool AndNotPassAvx512(uint64_t* dst,
                                                         const uint64_t* src) {
  __m512i any = _mm512_setzero_si512();
  for (size_t w = 0; w < kWords; w += 8) {
    const __m512i r = _mm512_andnot_si512(_mm512_loadu_si512(src + w),
                                          _mm512_loadu_si512(dst + w));
    _mm512_storeu_si512(dst + w, r);
    any = _mm512_or_si512(any, r);
  }
  return _mm512_test_epi64_mask(any, any) != 0;
}

__attribute__((target("avx512f"))) void OrPassAvx512(uint64_t* dst,
                                                     const uint64_t* src) {
  for (size_t w = 0; w < kWords; w += 8) {
    _mm512_storeu_si512(dst + w, _mm512_or_si512(_mm512_loadu_si512(dst + w),
                                                 _mm512_loadu_si512(src + w)));
  }
}

constexpr WordOps kAvx512Ops = {
    LtPassAvx512,       EqPassAvx512,     ScalarOnePassAvx512,
    ScalarZeroPassAvx512, CsaPassAvx512,  MaskAndNot2PassAvx512,
    AndPassAvx512,      AndNotPassAvx512, OrPassAvx512,
};

#endif  // EXPBSI_HAVE_X86_SIMD

}  // namespace

const WordOps& WordOpsForTier(SimdTier tier) {
#if defined(EXPBSI_HAVE_X86_SIMD)
  // Never hand out a table the host cannot execute, even if a caller passes
  // a raw tier value that bypassed the ActiveSimdTier() clamp.
  if (static_cast<int>(tier) > static_cast<int>(DetectedSimdTier())) {
    tier = DetectedSimdTier();
  }
  switch (tier) {
    case SimdTier::kAvx512:
      return kAvx512Ops;
    case SimdTier::kAvx2:
      return kAvx2Ops;
    case SimdTier::kPortable:
      break;
  }
#else
  (void)tier;
#endif
  return kPortableOps;
}

}  // namespace expbsi
