#include "common/scratch_arena.h"

#include <cstring>
#include <vector>

#include "obs/metrics.h"

namespace expbsi {
namespace {

// One pool per thread; no locking anywhere on the lease path. Buffers are
// raw arrays (not std::vector) so the pool can hand out stable pointers.
struct Pool {
  std::vector<uint64_t*> free_buffers;

  ~Pool() {
    if (!free_buffers.empty()) {
      obs::GetGauge("arena.pooled_bytes")
          .Sub(static_cast<double>(free_buffers.size() *
                                   ScratchArena::kScratchWords *
                                   sizeof(uint64_t)));
    }
    for (uint64_t* buf : free_buffers) delete[] buf;
  }
};

Pool& ThreadPool() {
  static thread_local Pool pool;
  return pool;
}

}  // namespace

ScratchArena::Lease::Lease() {
  static obs::Counter& leases = obs::GetCounter("arena.leases");
  leases.Add();
  Pool& pool = ThreadPool();
  if (!pool.free_buffers.empty()) {
    words_ = pool.free_buffers.back();
    pool.free_buffers.pop_back();
    static obs::Gauge& pooled = obs::GetGauge("arena.pooled_bytes");
    pooled.Sub(static_cast<double>(kScratchWords * sizeof(uint64_t)));
  } else {
    words_ = new uint64_t[kScratchWords];
    static obs::Counter& allocs = obs::GetCounter("arena.buffer_allocations");
    allocs.Add();
  }
  std::memset(words_, 0, kScratchWords * sizeof(uint64_t));
}

ScratchArena::Lease::~Lease() {
  if (words_ != nullptr) {
    ThreadPool().free_buffers.push_back(words_);
    static obs::Gauge& pooled = obs::GetGauge("arena.pooled_bytes");
    pooled.Add(static_cast<double>(kScratchWords * sizeof(uint64_t)));
  }
}

ScratchArena::Lease& ScratchArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (words_ != nullptr) {
      ThreadPool().free_buffers.push_back(words_);
      static obs::Gauge& pooled = obs::GetGauge("arena.pooled_bytes");
      pooled.Add(static_cast<double>(kScratchWords * sizeof(uint64_t)));
    }
    words_ = other.words_;
    other.words_ = nullptr;
  }
  return *this;
}

size_t ScratchArena::PooledBuffersForTesting() {
  return ThreadPool().free_buffers.size();
}

void ScratchArena::ReleaseThreadLocalPool() {
  Pool& pool = ThreadPool();
  if (!pool.free_buffers.empty()) {
    static obs::Gauge& pooled = obs::GetGauge("arena.pooled_bytes");
    pooled.Sub(static_cast<double>(pool.free_buffers.size() * kScratchWords *
                                   sizeof(uint64_t)));
  }
  for (uint64_t* buf : pool.free_buffers) delete[] buf;
  pool.free_buffers.clear();
}

}  // namespace expbsi
