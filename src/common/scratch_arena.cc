#include "common/scratch_arena.h"

#include <cstring>
#include <vector>

namespace expbsi {
namespace {

// One pool per thread; no locking anywhere on the lease path. Buffers are
// raw arrays (not std::vector) so the pool can hand out stable pointers.
struct Pool {
  std::vector<uint64_t*> free_buffers;

  ~Pool() {
    for (uint64_t* buf : free_buffers) delete[] buf;
  }
};

Pool& ThreadPool() {
  static thread_local Pool pool;
  return pool;
}

}  // namespace

ScratchArena::Lease::Lease() {
  Pool& pool = ThreadPool();
  if (!pool.free_buffers.empty()) {
    words_ = pool.free_buffers.back();
    pool.free_buffers.pop_back();
  } else {
    words_ = new uint64_t[kScratchWords];
  }
  std::memset(words_, 0, kScratchWords * sizeof(uint64_t));
}

ScratchArena::Lease::~Lease() {
  if (words_ != nullptr) ThreadPool().free_buffers.push_back(words_);
}

ScratchArena::Lease& ScratchArena::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    if (words_ != nullptr) ThreadPool().free_buffers.push_back(words_);
    words_ = other.words_;
    other.words_ = nullptr;
  }
  return *this;
}

size_t ScratchArena::PooledBuffersForTesting() {
  return ThreadPool().free_buffers.size();
}

void ScratchArena::ReleaseThreadLocalPool() {
  Pool& pool = ThreadPool();
  for (uint64_t* buf : pool.free_buffers) delete[] buf;
  pool.free_buffers.clear();
}

}  // namespace expbsi
