#include "common/retry.h"

#include <algorithm>

#include "common/hash.h"

namespace expbsi {

double RetryPolicy::BackoffSeconds(int attempt, uint64_t jitter_token) const {
  double nominal = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
  nominal = std::min(nominal, max_backoff_seconds);
  // Deterministic jitter in [0.5, 1.0]: full jitter would let unlucky draws
  // retry instantly; half jitter keeps backoff monotone-ish yet decorrelated.
  const double unit =
      static_cast<double>(Mix64(jitter_token) >> 11) * 0x1.0p-53;
  return nominal * (0.5 + 0.5 * unit);
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kCorruption;
}

}  // namespace expbsi
