#include "common/retry.h"

#include <algorithm>

#include "common/hash.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace expbsi {

double RetryPolicy::BackoffSeconds(int attempt, uint64_t jitter_token) const {
  double nominal = initial_backoff_seconds;
  for (int i = 1; i < attempt; ++i) nominal *= backoff_multiplier;
  nominal = std::min(nominal, max_backoff_seconds);
  // Deterministic jitter in [0.5, 1.0]: full jitter would let unlucky draws
  // retry instantly; half jitter keeps backoff monotone-ish yet decorrelated.
  const double unit =
      static_cast<double>(Mix64(jitter_token) >> 11) * 0x1.0p-53;
  return nominal * (0.5 + 0.5 * unit);
}

bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kCorruption;
}

void RecordRetryMetrics(const RetryStats& op_stats, bool ok) {
  static obs::Counter& attempts = obs::GetCounter("retry.attempts");
  attempts.Add(static_cast<uint64_t>(op_stats.attempts));
  if (op_stats.retries > 0) {
    static obs::Counter& retries = obs::GetCounter("retry.retries");
    retries.Add(static_cast<uint64_t>(op_stats.retries));
    static obs::Gauge& backoff = obs::GetGauge("retry.backoff_seconds");
    backoff.Add(op_stats.backoff_seconds);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kRetry,
        static_cast<uint64_t>(op_stats.attempts),
        op_stats.recovered ? 1 : 0);
  }
  if (op_stats.recovered) {
    static obs::Counter& recovered = obs::GetCounter("retry.recovered_ops");
    recovered.Add();
  }
  if (!ok) {
    static obs::Counter& failed = obs::GetCounter("retry.failed_ops");
    failed.Add();
  }
}

}  // namespace expbsi
