#ifndef EXPBSI_COMMON_FAULT_INJECTOR_H_
#define EXPBSI_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace expbsi {

// Deterministic fault injection for chaos testing (docs/TESTING.md "Chaos
// tests"). Production nodes fail, go slow and serve corrupt bytes routinely
// (§5.2-§5.3 run on thousands of machines); this subsystem lets tests replay
// those failures as a pure function of a seed so every found schedule is a
// permanent regression test.
//
// Globally OFF by default: the only cost on an uninstrumented run is one
// relaxed atomic load and a predicted-not-taken branch per fault site
// (FaultInjector::Get() returning nullptr).
//
// A *fault site* is a named point in the code (see fault_sites:: below).
// Every evaluation of a site consumes one *op index* (0-based, counted per
// site, or supplied explicitly by concurrent callers). The decision for an
// op is a pure function of (injector seed, site name, op index) plus any
// one-shot fault scheduled at exactly that (site, op index) -- so a schedule
// replays identically across runs, builds and sanitizers.

// What the fault site is told to do for one operation.
struct FaultDecision {
  bool fail = false;           // surface Status::Unavailable
  bool corrupt = false;        // bit-flip the blob about to be returned
  bool crash = false;          // kill the containing node / executor task
  double delay_seconds = 0.0;  // extra simulated latency
  // Network-flavored outcomes (net.* sites): send the frame twice / send a
  // deterministic prefix of it and then close the connection.
  bool duplicate = false;
  bool truncate = false;

  bool any() const {
    return fail || corrupt || crash || duplicate || truncate ||
           delay_seconds > 0;
  }
};

enum class FaultKind : uint8_t {
  kFail = 0,
  kCorrupt = 1,
  kCrash = 2,
  kDelay = 3,
  kDuplicate = 4,
  kTruncate = 5,
};

// Canonical fault-site names. Keep docs/TESTING.md in sync.
namespace fault_sites {
// BsiStore::Get -- a warehouse read; supports kFail.
inline constexpr char kWarehouseGet[] = "warehouse.get";
// TieredStore cold-tier load -- the simulated network fetch; supports
// kFail, kCorrupt (the returned copy is corrupted and NOT cached, so a
// retry re-reads the warehouse) and kDelay.
inline constexpr char kTierFetch[] = "tier.fetch";
// AdhocCluster: evaluated once per (node, segment) step in coordinator
// order; kCrash kills the node mid-query (its in-flight wave is discarded
// and requeued), kDelay makes the node slow for that segment.
inline constexpr char kNodeSegment[] = "adhoc.node_segment";
// PrecomputePipeline executor task attempt. Indexed explicitly as
// pair_index * kPipelineAttemptStride + attempt so schedules are
// independent of worker-thread interleaving. kFail/kCrash fail the attempt.
inline constexpr char kPipelineTask[] = "pipeline.task";
// Snapshot persistence (fileio::WriteFileAtomic callers). kSnapshotWrite is
// evaluated once per file written: kFail aborts the write cleanly, kCrash
// simulates a process kill mid-write (a deterministic prefix of the bytes is
// left in the .tmp file, which is never renamed in), kCorrupt flips bits in
// the written bytes so a *committed* file carries a block that fails its
// CRC. kSnapshotRename is evaluated once per commit rename: kFail/kCrash
// kill the process after the temp file is durable but before it is renamed
// into place.
inline constexpr char kSnapshotWrite[] = "snapshot.write";
inline constexpr char kSnapshotRename[] = "snapshot.rename";
// SnapshotReader, evaluated once per snapshot file read during recovery:
// kFail makes the file unreadable (as if the sector were gone), kCorrupt
// flips bits in the bytes read back (caught by the checksums).
inline constexpr char kSnapshotRead[] = "snapshot.read";
// Write-ahead log (src/wal). kWalAppend is evaluated once per record
// append: kFail rejects the append cleanly (nothing written, the sequence
// number is not consumed, the writer stays usable), kCrash simulates a
// process kill mid-append (a deterministic prefix of the record bytes lands
// in the segment and the writer goes dead), kCorrupt flips bits in the
// record bytes but "succeeds" -- the corruption is only caught by the CRCs
// at replay. kWalFsync is evaluated once per durability barrier AFTER the
// bytes are flushed: kFail/kCrash kill the writer but the record survives
// (replay recovers through it). kWalRoll is evaluated once per segment-file
// creation (op 0 is the segment opened by WalWriter::Open, later ops are
// size-triggered rolls): kFail aborts the roll cleanly, kCrash leaves a
// torn segment header and kills the writer, kCorrupt flips header bits.
inline constexpr char kWalAppend[] = "wal.append";
inline constexpr char kWalFsync[] = "wal.fsync";
inline constexpr char kWalRoll[] = "wal.roll";
// Serving network (src/net, DESIGN.md §9). kNetSend is evaluated once per
// envelope about to be written to a socket, indexed explicitly as
// endpoint_id * kNetOpStride + per-endpoint send counter so schedules are
// independent of connection-thread interleaving: kFail drops the frame by
// closing the connection (the peer sees a clean EOF, not a timeout), kDelay
// sleeps before writing, kDuplicate writes the frame twice (the receiver
// must dedup by request_id), kTruncate writes a deterministic prefix and
// closes. kNetAccept is evaluated once per accepted connection (same
// indexing): kFail closes it immediately. kNetNodeCrash is evaluated once
// per query request a node admits, indexed endpoint_id * kNetOpStride +
// request counter: kCrash makes the node server drop the connection and
// stop serving, simulating a process kill mid-scatter.
inline constexpr char kNetSend[] = "net.send";
inline constexpr char kNetAccept[] = "net.accept";
inline constexpr char kNetNodeCrash[] = "net.node_crash";
// Replica repair (DESIGN.md §11), evaluated once per kSegmentFetch a peer
// serves, indexed endpoint_id * kNetOpStride + repair counter: kFail rejects
// the fetch with kError(kUnavailable) (the recovering node tries the next
// peer), kCrash kills the serving node mid-repair, kCorrupt flips bits in
// one pushed blob while keeping the claimed fingerprint -- the receiver's
// re-fingerprint must catch it -- and kDelay sleeps before replying.
inline constexpr char kNetRepair[] = "net.repair";
}  // namespace fault_sites

inline constexpr uint64_t kPipelineAttemptStride = 64;
// Per-endpoint op-index stride for the net.* sites; endpoint ids are small
// (node id, or kNetClientEndpointBase + node id for the coordinator side of
// the same node's link), so 2^20 ops per endpoint never collide.
inline constexpr uint64_t kNetOpStride = 1u << 20;
inline constexpr uint64_t kNetClientEndpointBase = 1000;
// Coordinator-side endpoints used for hedge RPCs. Hedged sends draw from
// their own endpoint range so enabling hedging does not perturb the op
// indices (and therefore the fault schedule) of the primary sends.
inline constexpr uint64_t kNetHedgeEndpointBase = 2000;

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : seed_(seed) {}

  // ---- configuration: call before installing -----------------------------
  // Per-site probabilities, each drawn independently per op index.
  void SetFailProbability(const std::string& site, double p);
  void SetCorruptProbability(const std::string& site, double p);
  void SetCrashProbability(const std::string& site, double p);
  void SetDelayProbability(const std::string& site, double p,
                           double delay_seconds);
  void SetDuplicateProbability(const std::string& site, double p);
  void SetTruncateProbability(const std::string& site, double p);
  // One-shot fault at exactly the `op_index`-th evaluation of `site`.
  void ScheduleFault(const std::string& site, uint64_t op_index,
                     FaultKind kind);

  // ---- runtime (thread-safe) ---------------------------------------------
  // Decision for the next operation at `site`, consuming the site's counter.
  FaultDecision Evaluate(const std::string& site);
  // Decision for an explicitly indexed operation; concurrent callers pass a
  // stable index so schedules do not depend on thread interleaving. Does not
  // advance the site counter.
  FaultDecision EvaluateAt(const std::string& site, uint64_t op_index);

  // Deterministically flips 1..8 bits of `bytes` (no-op when empty), keyed
  // by the injector seed and `token` so the corruption itself reproduces.
  void CorruptBlob(uint64_t token, std::string* bytes) const;

  struct Stats {
    uint64_t evaluations = 0;
    uint64_t fails = 0;
    uint64_t corruptions = 0;
    uint64_t crashes = 0;
    uint64_t delays = 0;
    uint64_t duplicates = 0;
    uint64_t truncations = 0;
    uint64_t any() const {
      return fails + corruptions + crashes + delays + duplicates +
             truncations;
    }
  };
  Stats stats() const;
  uint64_t seed() const { return seed_; }

  // ---- global installation -----------------------------------------------
  // The installed injector, or nullptr (the default; fault logic skipped).
  static FaultInjector* Get() {
    return installed_.load(std::memory_order_acquire);
  }
  // Installs `injector` (not owned) process-wide; nullptr disables again.
  // Returns the previous injector.
  static FaultInjector* Install(FaultInjector* injector) {
    return installed_.exchange(injector, std::memory_order_acq_rel);
  }

 private:
  struct SiteConfig {
    double fail_p = 0.0;
    double corrupt_p = 0.0;
    double crash_p = 0.0;
    double delay_p = 0.0;
    double delay_seconds = 0.0;
    double duplicate_p = 0.0;
    double truncate_p = 0.0;
    std::map<uint64_t, FaultKind> one_shots;  // by op index
  };

  SiteConfig& SiteFor(const std::string& site);  // caller holds mu_
  FaultDecision Decide(const SiteConfig& cfg, const std::string& site,
                       uint64_t op_index);  // caller holds mu_

  static std::atomic<FaultInjector*> installed_;

  const uint64_t seed_;
  mutable std::mutex mu_;
  std::map<std::string, SiteConfig> sites_;
  std::map<std::string, uint64_t> counters_;
  Stats stats_;
};

// RAII install/uninstall, restoring the previous injector on scope exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(FaultInjector* injector)
      : previous_(FaultInjector::Install(injector)) {}
  ~ScopedFaultInjection() { FaultInjector::Install(previous_); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace expbsi

#endif  // EXPBSI_COMMON_FAULT_INJECTOR_H_
