#ifndef EXPBSI_COMMON_CRC32C_H_
#define EXPBSI_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace expbsi {

// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) -- the checksum used
// by the snapshot format. Chosen over the fingerprint hash for on-disk
// integrity because its error-detection properties are known: Hamming
// distance >= 4 up to multi-KB payloads, so any 1-bit flip (and any burst up
// to 32 bits) in a checksummed block is guaranteed to be caught, which is
// exactly the contract the corrupt-bytes fuzzer asserts. Software
// slicing-by-4 tables; no hardware instruction dependency.

// CRC of `n` bytes starting from the standard initial state.
uint32_t Crc32c(const void* data, size_t n);

inline uint32_t Crc32c(std::string_view bytes) {
  return Crc32c(bytes.data(), bytes.size());
}

// Continues a CRC computed by Crc32c / Crc32cExtend over a further `n`
// bytes, as if the two ranges had been one contiguous buffer.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

}  // namespace expbsi

#endif  // EXPBSI_COMMON_CRC32C_H_
