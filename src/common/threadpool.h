#ifndef EXPBSI_COMMON_THREADPOOL_H_
#define EXPBSI_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace expbsi {

// Fixed-size worker pool. The cluster simulations (src/cluster) schedule
// per-segment tasks on it, mirroring Spark executors / ClickHouse per-node
// query threads. Tasks must not throw (the library does not use exceptions).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task; runs on some worker thread.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  // Queued work plus its enqueue timestamp (steady ns; 0 when the metrics
  // registry is compiled out) so the scrape can report queue wait times.
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::deque<Task> queue_;
  std::vector<std::thread> workers_;
  int in_flight_ = 0;  // queued + running
  bool shutdown_ = false;
};

// Runs fn(i) for i in [0, n) across the pool and waits for completion.
void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace expbsi

#endif  // EXPBSI_COMMON_THREADPOOL_H_
