#ifndef EXPBSI_COMMON_WORD_OPS_H_
#define EXPBSI_COMMON_WORD_OPS_H_

#include <cstddef>
#include <cstdint>

#include "common/cpu_features.h"

namespace expbsi {

// Fused logical passes over fixed-length 1024-word (65536-bit) buffers --
// exactly one Roaring container chunk, the unit every word-level kernel in
// src/bsi works in. Each pass fuses what would otherwise be two or three
// allocating container operations into a single sweep over the words, and
// each has portable / AVX2 / AVX-512 variants; ActiveWordOps() returns the
// table for the currently active dispatch tier (cpu_features.h), so callers
// fetch the table once per kernel invocation and stay branch-free inside
// their chunk loops.
//
// Passes that can enable an early exit return whether their primary
// accumulator still has any bit set (false == dead, caller may stop).
struct WordOps {
  // Words per buffer (one full Roaring container bitmap).
  static constexpr size_t kWords = 1024;

  // Algorithm 1 (Lt) inner step: lt = (y & lt) | ((y | lt) & ~x).
  void (*lt_pass)(uint64_t* lt, const uint64_t* x, const uint64_t* y);

  // Algorithm 2 (Eq) inner step: eq &= ~(x ^ y); returns any(eq).
  bool (*eq_pass)(uint64_t* eq, const uint64_t* x, const uint64_t* y);

  // Constant-compare step for a set key bit: lt |= eq & ~s; eq &= s;
  // returns any(eq).
  bool (*scalar_one_pass)(uint64_t* lt, uint64_t* eq, const uint64_t* s);

  // Constant-compare step for a clear key bit: gt |= eq & s; eq &= ~s;
  // returns any(eq).
  bool (*scalar_zero_pass)(uint64_t* gt, uint64_t* eq, const uint64_t* s);

  // Carry-save full-adder step: carry = acc & bits; acc ^= bits;
  // returns any(carry).
  bool (*csa_pass)(uint64_t* acc, const uint64_t* bits, uint64_t* carry);

  // Three-way combiner (Between): dst = mask & ~a & ~b.
  void (*mask_andnot2_pass)(uint64_t* dst, const uint64_t* mask,
                            const uint64_t* a, const uint64_t* b);

  // dst &= src; returns any(dst).
  bool (*and_pass)(uint64_t* dst, const uint64_t* src);

  // dst &= ~src; returns any(dst).
  bool (*andnot_pass)(uint64_t* dst, const uint64_t* src);

  // dst |= src.
  void (*or_pass)(uint64_t* dst, const uint64_t* src);
};

// Pass table for an explicit tier. Tiers above DetectedSimdTier() fall back
// to the widest supported table (never crash on unsupported instructions).
const WordOps& WordOpsForTier(SimdTier tier);

// Pass table for ActiveSimdTier().
inline const WordOps& ActiveWordOps() {
  return WordOpsForTier(ActiveSimdTier());
}

}  // namespace expbsi

#endif  // EXPBSI_COMMON_WORD_OPS_H_
