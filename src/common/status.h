#ifndef EXPBSI_COMMON_STATUS_H_
#define EXPBSI_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace expbsi {

// Error category for recoverable failures (bad arguments, corrupt bytes,
// missing keys). Invariant violations abort via CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kOutOfRange = 4,
  kAlreadyExists = 5,
  // Transient inability to serve (node down, simulated network failure);
  // retryable, unlike the permanent input errors above.
  kUnavailable = 6,
};

// Lightweight status object for fallible APIs; cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" form, e.g. "NotFound: key 42".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error return type. Access to value() requires ok().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    CHECK(!status_.ok());  // A Result built from a Status must carry an error.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok());
    return value_;
  }
  T& value() & {
    CHECK(ok());
    return value_;
  }
  T&& value() && {
    CHECK(ok());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

// Propagates a non-OK Status out of the calling function.
#define RETURN_IF_ERROR(expr)              \
  do {                                     \
    ::expbsi::Status _st = (expr);         \
    if (!_st.ok()) return _st;             \
  } while (0)

}  // namespace expbsi

#endif  // EXPBSI_COMMON_STATUS_H_
