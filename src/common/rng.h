#ifndef EXPBSI_COMMON_RNG_H_
#define EXPBSI_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace expbsi {

// Deterministic xoshiro256** PRNG. All synthetic-data generation flows
// through this so every test and benchmark is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound); bound > 0. Uses rejection-free multiply-shift.
  uint64_t NextBounded(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p.
  bool NextBernoulli(double p);

  // Geometric number of failures before first success, success prob p in
  // (0, 1]. Mean (1-p)/p.
  uint64_t NextGeometric(double p);

  // Standard normal via Box-Muller.
  double NextGaussian();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// Zipf(s) sampler on {1, ..., n}: P(k) proportional to k^-s. The paper's data
// follows the Pareto principle (§3.5, Fig. 5) -- metric values concentrate in a
// small range near zero -- which Zipf-distributed values model directly.
//
// Uses the rejection-inversion method of Hormann & Derflinger, O(1) per
// sample with no O(n) setup table, so large n is cheap.
class ZipfDistribution {
 public:
  // n >= 1; s > 0, s != 1 handled as well as s == 1.
  ZipfDistribution(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

// Samples without replacement k distinct values from [0, n).
std::vector<uint64_t> SampleDistinct(Rng& rng, uint64_t n, uint64_t k);

}  // namespace expbsi

#endif  // EXPBSI_COMMON_RNG_H_
