#ifndef EXPBSI_COMMON_FILE_IO_H_
#define EXPBSI_COMMON_FILE_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace expbsi {
namespace fileio {

// Small POSIX file helpers shared by the persistence layer. Everything
// reports through Status -- no exceptions, no silent partial results.

// Size of a regular file in bytes; NotFound if it does not exist.
Result<uint64_t> FileSizeOf(const std::string& path);

// Reads the whole file. A file larger than `max_bytes` is refused with
// Corruption *before* any allocation sized from untrusted metadata -- this
// is the allocation cap for every snapshot / store decode path.
Result<std::string> ReadFileToString(const std::string& path,
                                     uint64_t max_bytes);

struct AtomicWriteOptions {
  // Optional fault-site names (fault_sites::kSnapshotWrite / ...Rename).
  // Each is evaluated once per call when an injector is installed; nullptr
  // means the step is not instrumented.
  const char* write_fault_site = nullptr;
  const char* rename_fault_site = nullptr;
};

// Crash-consistent publish of `contents` at `path`: write `path + ".tmp"`,
// fflush + fsync it, then atomically rename over `path` and fsync the
// parent directory. A kill at any byte offset leaves either the old file
// (commit rename not reached -- at most a stale .tmp remains) or the new
// file, never a torn mix. Injected kCrash at the write site leaves a
// deterministic prefix of the bytes in the .tmp file to simulate exactly
// that torn in-flight state.
Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options = {});

// Renames src over dst (atomic within a filesystem).
Status RenameFile(const std::string& src, const std::string& dst);

// Removes the file if present; absence is not an error.
Status RemoveFileIfExists(const std::string& path);

// Names (not paths) of directory entries, excluding "." / "..", sorted.
Result<std::vector<std::string>> ListDir(const std::string& dir);

// mkdir -p for one level; an existing directory is not an error.
Status CreateDirIfMissing(const std::string& dir);

}  // namespace fileio
}  // namespace expbsi

#endif  // EXPBSI_COMMON_FILE_IO_H_
