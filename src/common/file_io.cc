#include "common/file_io.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>

#include "common/fault_injector.h"
#include "common/hash.h"

namespace expbsi {
namespace fileio {
namespace {

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::string ErrnoText() { return std::strerror(errno); }

// Flushes user-space buffers and asks the kernel to make the file durable.
Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::Unavailable("fileio: flush failed for " + path + ": " +
                               ErrnoText());
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::Unavailable("fileio: fsync failed for " + path + ": " +
                               ErrnoText());
  }
  return Status::OK();
}

// Best-effort fsync of the directory holding `path`, making a just-committed
// rename durable. Failure to open the directory is ignored (some filesystems
// refuse O_RDONLY on directories); a failed fsync on an open fd is not.
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::OK();
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("fileio: directory fsync failed for " + dir +
                               ": " + ErrnoText());
  }
  return Status::OK();
}

}  // namespace

Result<uint64_t> FileSizeOf(const std::string& path) {
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("fileio: cannot stat " + path + ": " +
                            ErrnoText());
  }
  if (!S_ISREG(st.st_mode)) {
    return Status::InvalidArgument("fileio: not a regular file: " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

Result<std::string> ReadFileToString(const std::string& path,
                                     uint64_t max_bytes) {
  Result<uint64_t> size = FileSizeOf(path);
  RETURN_IF_ERROR(size.status());
  if (size.value() > max_bytes) {
    return Status::Corruption("fileio: " + path + " is " +
                              std::to_string(size.value()) +
                              " bytes, over the read cap of " +
                              std::to_string(max_bytes));
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("fileio: cannot open " + path + ": " +
                            ErrnoText());
  }
  std::string bytes(static_cast<size_t>(size.value()), '\0');
  if (!bytes.empty() &&
      std::fread(bytes.data(), 1, bytes.size(), file.get()) != bytes.size()) {
    return Status::Corruption("fileio: short read of " + path);
  }
  return bytes;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options) {
  const std::string tmp = path + ".tmp";
  std::string_view to_write = contents;
  std::string corrupted;  // backing storage when a corrupt fault fires

  FaultInjector* const fi = FaultInjector::Get();
  size_t torn_prefix = contents.size();
  bool torn = false;
  if (fi != nullptr && options.write_fault_site != nullptr) {
    const FaultDecision fault = fi->Evaluate(options.write_fault_site);
    if (fault.fail) {
      return Status::Unavailable("fileio: injected write failure for " +
                                 path);
    }
    if (fault.corrupt) {
      corrupted.assign(contents.data(), contents.size());
      fi->CorruptBlob(Mix64(fi->seed() ^ contents.size()), &corrupted);
      to_write = corrupted;
    }
    if (fault.crash) {
      // Simulated process kill mid-write: a deterministic prefix of the
      // bytes reaches the .tmp file, the rename never happens.
      torn = true;
      torn_prefix = static_cast<size_t>(
          Mix64(fi->seed() ^ (contents.size() + 0x517cc1b727220a95ull)) %
          (contents.size() + 1));
    }
  }

  {
    FilePtr file(std::fopen(tmp.c_str(), "wb"));
    if (file == nullptr) {
      return Status::InvalidArgument("fileio: cannot open " + tmp +
                                     " for writing: " + ErrnoText());
    }
    const size_t n = torn ? torn_prefix : to_write.size();
    if (n > 0 && std::fwrite(to_write.data(), 1, n, file.get()) != n) {
      return Status::Unavailable("fileio: short write of " + tmp + ": " +
                                 ErrnoText());
    }
    RETURN_IF_ERROR(FlushAndSync(file.get(), tmp));
  }
  if (torn) {
    return Status::Unavailable("fileio: injected kill mid-write of " + path +
                               " (torn .tmp left behind)");
  }

  if (fi != nullptr && options.rename_fault_site != nullptr) {
    const FaultDecision fault = fi->Evaluate(options.rename_fault_site);
    if (fault.fail || fault.crash) {
      // Killed after the temp file is durable but before the commit rename:
      // the previous version of `path` stays fully intact.
      return Status::Unavailable("fileio: injected kill before rename of " +
                                 path);
    }
  }

  RETURN_IF_ERROR(RenameFile(tmp, path));
  return SyncParentDir(path);
}

Status RenameFile(const std::string& src, const std::string& dst) {
  if (std::rename(src.c_str(), dst.c_str()) != 0) {
    return Status::Unavailable("fileio: rename " + src + " -> " + dst +
                               " failed: " + ErrnoText());
  }
  return Status::OK();
}

Status RemoveFileIfExists(const std::string& path) {
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Unavailable("fileio: remove " + path + " failed: " +
                               ErrnoText());
  }
  return Status::OK();
}

Result<std::vector<std::string>> ListDir(const std::string& dir) {
  ::DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("fileio: cannot open directory " + dir + ": " +
                            ErrnoText());
  }
  std::vector<std::string> names;
  while (struct ::dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

Status CreateDirIfMissing(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::InvalidArgument("fileio: mkdir " + dir + " failed: " +
                                   ErrnoText());
  }
  return Status::OK();
}

}  // namespace fileio
}  // namespace expbsi
