#include "common/threadpool.h"

#include "common/check.h"

namespace expbsi {

ThreadPool::ThreadPool(int num_threads) {
  CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace expbsi
