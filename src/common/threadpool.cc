#include "common/threadpool.h"

#include "common/check.h"
#include "obs/metrics.h"

#if !defined(EXPBSI_NO_METRICS)
#include <chrono>
#endif

namespace expbsi {

namespace {

// Pool telemetry (docs/OBSERVABILITY.md): queue depth as a gauge, per-task
// queue wait and run time as histograms. The clock reads are skipped
// entirely when the registry is compiled out -- the pool's hot path must
// not pay for disabled telemetry.
#if !defined(EXPBSI_NO_METRICS)
uint64_t PoolNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

obs::Gauge& QueueDepthGauge() {
  static obs::Gauge& g = obs::GetGauge("pool.queue_depth");
  return g;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Task entry;
  entry.fn = std::move(task);
#if !defined(EXPBSI_NO_METRICS)
  entry.enqueue_ns = PoolNowNs();
#endif
  {
    std::unique_lock<std::mutex> lock(mu_);
    CHECK(!shutdown_);
    queue_.push_back(std::move(entry));
    ++in_flight_;
  }
  static obs::Counter& submitted = obs::GetCounter("pool.tasks_submitted");
  submitted.Add();
  QueueDepthGauge().Add(1.0);
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    QueueDepthGauge().Sub(1.0);
#if !defined(EXPBSI_NO_METRICS)
    const uint64_t start_ns = PoolNowNs();
    static obs::Histogram& wait_us = obs::GetHistogram("pool.task_wait_us");
    wait_us.Record((start_ns - task.enqueue_ns) / 1000);
#endif
    task.fn();
#if !defined(EXPBSI_NO_METRICS)
    static obs::Histogram& run_us = obs::GetHistogram("pool.task_run_us");
    run_us.Record((PoolNowNs() - start_ns) / 1000);
#endif
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  for (int i = 0; i < n; ++i) {
    pool.Submit([&fn, i] { fn(i); });
  }
  pool.Wait();
}

}  // namespace expbsi
