#include "common/fault_injector.h"

#include "common/check.h"
#include "common/hash.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace expbsi {
namespace {

// Flight-recorder hook: one event per injected fault, recorded AFTER mu_ is
// released (the recorder is lock-free but the callback ordering must not
// extend the injector's critical section). `a` is the first FaultKind the
// decision carries, `b` the stable fault-site id.
void RecordInjectedFlightEvent(const std::string& site,
                               const FaultDecision& d) {
  if (!d.any()) return;
  FaultKind kind = FaultKind::kFail;
  if (d.fail) {
    kind = FaultKind::kFail;
  } else if (d.corrupt) {
    kind = FaultKind::kCorrupt;
  } else if (d.crash) {
    kind = FaultKind::kCrash;
  } else if (d.duplicate) {
    kind = FaultKind::kDuplicate;
  } else if (d.truncate) {
    kind = FaultKind::kTruncate;
  } else {
    kind = FaultKind::kDelay;
  }
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kFaultInjected,
                                       static_cast<uint64_t>(kind),
                                       obs::FlightSiteId(site.c_str()));
}

// FNV-1a over the site name, mixed; stable across runs (std::hash is not
// guaranteed stable, and schedules must replay byte-for-byte).
uint64_t SiteHash(const std::string& site) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

// Uniform double in [0, 1) from one mixed draw.
double ToUnit(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::atomic<FaultInjector*> FaultInjector::installed_{nullptr};

FaultInjector::SiteConfig& FaultInjector::SiteFor(const std::string& site) {
  return sites_[site];
}

void FaultInjector::SetFailProbability(const std::string& site, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).fail_p = p;
}

void FaultInjector::SetCorruptProbability(const std::string& site, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).corrupt_p = p;
}

void FaultInjector::SetCrashProbability(const std::string& site, double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).crash_p = p;
}

void FaultInjector::SetDelayProbability(const std::string& site, double p,
                                        double delay_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteConfig& cfg = SiteFor(site);
  cfg.delay_p = p;
  cfg.delay_seconds = delay_seconds;
}

void FaultInjector::SetDuplicateProbability(const std::string& site,
                                            double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).duplicate_p = p;
}

void FaultInjector::SetTruncateProbability(const std::string& site,
                                           double p) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).truncate_p = p;
}

void FaultInjector::ScheduleFault(const std::string& site, uint64_t op_index,
                                  FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteFor(site).one_shots[op_index] = kind;
}

FaultDecision FaultInjector::Decide(const SiteConfig& cfg,
                                    const std::string& site,
                                    uint64_t op_index) {
  ++stats_.evaluations;
  FaultDecision d;
  // Independent per-(site, op) draws; one Mix64 chain per fault class so
  // adding a probability to one class never perturbs another's stream.
  const uint64_t base = Mix64(seed_ ^ SiteHash(site)) ^ op_index;
  if (cfg.fail_p > 0 && ToUnit(Mix64(base ^ 0x1)) < cfg.fail_p) d.fail = true;
  if (cfg.corrupt_p > 0 && ToUnit(Mix64(base ^ 0x2)) < cfg.corrupt_p) {
    d.corrupt = true;
  }
  if (cfg.crash_p > 0 && ToUnit(Mix64(base ^ 0x3)) < cfg.crash_p) {
    d.crash = true;
  }
  if (cfg.delay_p > 0 && ToUnit(Mix64(base ^ 0x4)) < cfg.delay_p) {
    d.delay_seconds = cfg.delay_seconds;
  }
  if (cfg.duplicate_p > 0 && ToUnit(Mix64(base ^ 0x5)) < cfg.duplicate_p) {
    d.duplicate = true;
  }
  if (cfg.truncate_p > 0 && ToUnit(Mix64(base ^ 0x6)) < cfg.truncate_p) {
    d.truncate = true;
  }
  const auto shot = cfg.one_shots.find(op_index);
  if (shot != cfg.one_shots.end()) {
    switch (shot->second) {
      case FaultKind::kFail:
        d.fail = true;
        break;
      case FaultKind::kCorrupt:
        d.corrupt = true;
        break;
      case FaultKind::kCrash:
        d.crash = true;
        break;
      case FaultKind::kDelay:
        d.delay_seconds =
            cfg.delay_seconds > 0 ? cfg.delay_seconds : 0.001;
        break;
      case FaultKind::kDuplicate:
        d.duplicate = true;
        break;
      case FaultKind::kTruncate:
        d.truncate = true;
        break;
    }
  }
  if (d.fail) ++stats_.fails;
  if (d.corrupt) ++stats_.corruptions;
  if (d.crash) ++stats_.crashes;
  if (d.delay_seconds > 0) ++stats_.delays;
  if (d.duplicate) ++stats_.duplicates;
  if (d.truncate) ++stats_.truncations;
  // Registry mirror: per-instance stats stay the source for the accessors
  // (chaos tests diff them per schedule); the process-wide counters make an
  // injected fault visible in the same scrape as the recovery it triggered.
  if (d.any()) {
    static obs::Counter& injected = obs::GetCounter("fault.injected");
    injected.Add();
    if (d.fail) {
      static obs::Counter& c = obs::GetCounter("fault.injected_fails");
      c.Add();
    }
    if (d.corrupt) {
      static obs::Counter& c = obs::GetCounter("fault.injected_corruptions");
      c.Add();
    }
    if (d.crash) {
      static obs::Counter& c = obs::GetCounter("fault.injected_crashes");
      c.Add();
    }
    if (d.delay_seconds > 0) {
      static obs::Counter& c = obs::GetCounter("fault.injected_delays");
      c.Add();
    }
    if (d.duplicate) {
      static obs::Counter& c = obs::GetCounter("fault.injected_duplicates");
      c.Add();
    }
    if (d.truncate) {
      static obs::Counter& c = obs::GetCounter("fault.injected_truncations");
      c.Add();
    }
  }
  return d;
}

FaultDecision FaultInjector::Evaluate(const std::string& site) {
  FaultDecision d;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t op_index = counters_[site]++;
    const auto it = sites_.find(site);
    if (it == sites_.end()) {
      ++stats_.evaluations;
      return FaultDecision{};
    }
    d = Decide(it->second, site, op_index);
  }
  RecordInjectedFlightEvent(site, d);
  return d;
}

FaultDecision FaultInjector::EvaluateAt(const std::string& site,
                                        uint64_t op_index) {
  FaultDecision d;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    if (it == sites_.end()) {
      ++stats_.evaluations;
      return FaultDecision{};
    }
    d = Decide(it->second, site, op_index);
  }
  RecordInjectedFlightEvent(site, d);
  return d;
}

void FaultInjector::CorruptBlob(uint64_t token, std::string* bytes) const {
  CHECK(bytes != nullptr);
  if (bytes->empty()) return;
  const uint64_t base = Mix64(seed_ ^ Mix64(token ^ 0xC0BB));
  const int flips = 1 + static_cast<int>(base % 8);
  const uint64_t nbits = static_cast<uint64_t>(bytes->size()) * 8;
  for (int i = 0; i < flips; ++i) {
    const uint64_t bit = Mix64(base + 1 + static_cast<uint64_t>(i)) % nbits;
    (*bytes)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  }
}

FaultInjector::Stats FaultInjector::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace expbsi
