#ifndef EXPBSI_COMMON_CPU_FEATURES_H_
#define EXPBSI_COMMON_CPU_FEATURES_H_

namespace expbsi {

// Runtime SIMD dispatch tiers for the word-level kernels (word_ops.h). The
// paper's production system ships hand-written SIMD JNI kernels; we mirror
// that with per-tier variants compiled into one binary and selected once at
// startup from CPUID, so the same build runs everywhere and uses the widest
// vectors the host offers.
//
// Ordering is meaningful: every tier is a strict superset of the previous
// one, so clamping a requested tier down to the detected tier is always
// safe.
enum class SimdTier : int {
  kPortable = 0,  // plain uint64_t loops (autovectorized by the compiler)
  kAvx2 = 1,      // 256-bit AVX2 intrinsics
  kAvx512 = 2,    // 512-bit AVX-512F intrinsics (vpternlogq fused passes)
};

// Human-readable tier name ("portable" / "avx2" / "avx512").
const char* SimdTierName(SimdTier tier);

// Widest tier the host CPU supports. Computed once (CPUID on x86; always
// kPortable elsewhere) and cached.
SimdTier DetectedSimdTier();

// The tier the kernels actually dispatch on: DetectedSimdTier() clamped by
// the EXPBSI_KERNEL environment variable (values: portable | avx2 | avx512,
// read once at first use; unknown values are ignored) or by the most recent
// SetSimdTierForTesting() call. Requesting a tier above the detected one
// clamps down rather than faulting, so tests can ask for every tier and
// silently exercise only what the host has.
SimdTier ActiveSimdTier();

// Overrides the active tier (clamped to DetectedSimdTier()). Test/bench
// hook; thread-safe but not synchronized with concurrent kernel calls.
void SetSimdTierForTesting(SimdTier tier);

}  // namespace expbsi

#endif  // EXPBSI_COMMON_CPU_FEATURES_H_
