#ifndef EXPBSI_COMMON_HASH_H_
#define EXPBSI_COMMON_HASH_H_

#include <cstdint>

namespace expbsi {

// SplitMix64 finalizer: a strong 64-bit mixing function. Used both for
// segmentation / bucketing (the paper's deterministic HASH, §3.2/§3.3) and as
// the stream-splitting step of the RNG. The segmentation hash and the
// bucketing hash must be independent of each other and of traffic
// randomization; we achieve that with distinct fixed salts.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hashes `id` under a salt identifying the hash's role (segment vs bucket).
inline uint64_t SaltedHash64(uint64_t id, uint64_t salt) {
  return Mix64(id ^ Mix64(salt));
}

// Salts for the two independent deterministic randomization processes.
inline constexpr uint64_t kSegmentHashSalt = 0x5e61e4a1c7a1u;
inline constexpr uint64_t kBucketHashSalt = 0xb0c4e7a93d15u;

}  // namespace expbsi

#endif  // EXPBSI_COMMON_HASH_H_
