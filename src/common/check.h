#ifndef EXPBSI_COMMON_CHECK_H_
#define EXPBSI_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros.
//
// The library does not use C++ exceptions (see DESIGN.md). Programming errors
// (broken invariants, out-of-contract calls) abort via CHECK; recoverable
// conditions (bad input data, corrupt serialized bytes) surface as Status.
//
// CHECK*   are always on.
// DCHECK*  compile away in NDEBUG builds and guard hot paths.

#define EXPBSI_CHECK_IMPL(cond, cond_str)                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,        \
                   __LINE__, cond_str);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define CHECK(cond) EXPBSI_CHECK_IMPL((cond), #cond)
#define CHECK_EQ(a, b) EXPBSI_CHECK_IMPL((a) == (b), #a " == " #b)
#define CHECK_NE(a, b) EXPBSI_CHECK_IMPL((a) != (b), #a " != " #b)
#define CHECK_LT(a, b) EXPBSI_CHECK_IMPL((a) < (b), #a " < " #b)
#define CHECK_LE(a, b) EXPBSI_CHECK_IMPL((a) <= (b), #a " <= " #b)
#define CHECK_GT(a, b) EXPBSI_CHECK_IMPL((a) > (b), #a " > " #b)
#define CHECK_GE(a, b) EXPBSI_CHECK_IMPL((a) >= (b), #a " >= " #b)

#ifdef NDEBUG
#define DCHECK(cond) \
  do {               \
  } while (0)
#define DCHECK_EQ(a, b) DCHECK((a) == (b))
#define DCHECK_NE(a, b) DCHECK((a) != (b))
#define DCHECK_LT(a, b) DCHECK((a) < (b))
#define DCHECK_LE(a, b) DCHECK((a) <= (b))
#define DCHECK_GT(a, b) DCHECK((a) > (b))
#define DCHECK_GE(a, b) DCHECK((a) >= (b))
#else
#define DCHECK(cond) CHECK(cond)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#endif

#endif  // EXPBSI_COMMON_CHECK_H_
