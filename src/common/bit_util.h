#ifndef EXPBSI_COMMON_BIT_UTIL_H_
#define EXPBSI_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace expbsi {

// Number of set bits in a 64-bit word.
inline int PopCount64(uint64_t x) { return std::popcount(x); }

// Number of bits needed to represent v (0 needs 0 bits, 5 needs 3, ...).
inline int BitWidth64(uint64_t v) { return std::bit_width(v); }

// Index of the lowest set bit; undefined for x == 0.
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

// Rounds up to the next multiple of `multiple` (a power of two).
inline uint64_t RoundUpPow2(uint64_t value, uint64_t multiple) {
  return (value + multiple - 1) & ~(multiple - 1);
}

}  // namespace expbsi

#endif  // EXPBSI_COMMON_BIT_UTIL_H_
