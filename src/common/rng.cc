#include "common/rng.h"

#include <cmath>
#include <unordered_set>

#include "common/hash.h"

namespace expbsi {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // Seed the four lanes with SplitMix64, per the xoshiro authors' advice.
  uint64_t s = seed;
  for (auto& lane : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    lane = Mix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Lemire's multiply-shift; bias is negligible for our bounds (<< 2^64).
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * bound) >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

uint64_t Rng::NextGeometric(double p) {
  CHECK_GT(p, 0.0);
  CHECK_LE(p, 1.0);
  if (p == 1.0) return 0;
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

ZipfDistribution::ZipfDistribution(uint64_t n, double s) : n_(n), s_(s) {
  CHECK_GE(n, 1u);
  CHECK_GT(s, 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  threshold_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s));
}

// H(x) = integral of x^-s: the rejection-inversion hat function.
double ZipfDistribution::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= threshold_ ||
        u >= H(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

std::vector<uint64_t> SampleDistinct(Rng& rng, uint64_t n, uint64_t k) {
  CHECK_LE(k, n);
  std::vector<uint64_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: partial Fisher-Yates over the full range.
    std::vector<uint64_t> all(n);
    for (uint64_t i = 0; i < n; ++i) all[i] = i;
    for (uint64_t i = 0; i < k; ++i) {
      const uint64_t j = i + rng.NextBounded(n - i);
      std::swap(all[i], all[j]);
      out.push_back(all[i]);
    }
    return out;
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const uint64_t v = rng.NextBounded(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace expbsi
