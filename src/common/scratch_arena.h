#ifndef EXPBSI_COMMON_SCRATCH_ARENA_H_
#define EXPBSI_COMMON_SCRATCH_ARENA_H_

#include <cstddef>
#include <cstdint>

namespace expbsi {

// Per-thread pool of 65536-bit word buffers for the multi-operand kernels
// (lazy union accumulation, CSA slice reduction). Buffers are recycled
// thread-locally, so steady-state aggregation performs zero heap allocation
// after warm-up: a kernel leases a buffer, fills it, converts it into a
// container, and the lease destructor returns it to the pool.
//
// A lease's words are zeroed on acquisition (the caller always wants a
// clean buffer to OR into) and the buffer memory itself is kept hot across
// leases. Leases are movable but not copyable, and must not outlive the
// thread that created them.
class ScratchArena {
 public:
  // Words per buffer: one full Roaring container bitmap (65536 bits).
  static constexpr size_t kScratchWords = 1024;

  class Lease {
   public:
    Lease();
    ~Lease();

    Lease(Lease&& other) noexcept : words_(other.words_) {
      other.words_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept;

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    uint64_t* words() { return words_; }
    const uint64_t* words() const { return words_; }

   private:
    uint64_t* words_;
  };

  // Number of buffers currently pooled on this thread (test/bench hook).
  static size_t PooledBuffersForTesting();

  // Drops all pooled buffers on this thread (test hook; leak hygiene).
  static void ReleaseThreadLocalPool();
};

}  // namespace expbsi

#endif  // EXPBSI_COMMON_SCRATCH_ARENA_H_
