#ifndef EXPBSI_COMMON_TIMER_H_
#define EXPBSI_COMMON_TIMER_H_

#include <chrono>
#include <ctime>

namespace expbsi {

// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// CPU time consumed by the calling thread, in seconds. The pre-compute
// pipeline sums this across tasks to report "CPU hours" the way the paper's
// Table 7 does (independent of scheduling and core count).
inline double ThreadCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// CPU-time stopwatch for the calling thread.
class CpuTimer {
 public:
  CpuTimer() : start_(ThreadCpuSeconds()) {}
  void Reset() { start_ = ThreadCpuSeconds(); }
  double ElapsedSeconds() const { return ThreadCpuSeconds() - start_; }

 private:
  double start_;
};

}  // namespace expbsi

#endif  // EXPBSI_COMMON_TIMER_H_
