#include "storage/preagg_tree.h"

#include <utility>

#include "common/check.h"

namespace expbsi {

PreAggTree::PreAggTree(std::vector<Bsi> leaves, MergeFn merge)
    : PreAggTree(std::move(leaves), std::move(merge), MultiMergeFn()) {}

PreAggTree::PreAggTree(std::vector<Bsi> leaves, MergeFn merge,
                       MultiMergeFn multi_merge)
    : num_leaves_(static_cast<int>(leaves.size())),
      merge_(std::move(merge)),
      multi_merge_(std::move(multi_merge)) {
  CHECK_GT(num_leaves_, 0);
  while (extent_ < num_leaves_) extent_ *= 2;
  nodes_.assign(2 * extent_, Bsi());
  for (int i = 0; i < num_leaves_; ++i) {
    nodes_[extent_ + i] = std::move(leaves[i]);
  }
  if (multi_merge_) {
    for (int node = extent_ - 1; node >= 1; --node) {
      nodes_[node] =
          multi_merge_({&nodes_[2 * node], &nodes_[2 * node + 1]});
    }
  } else {
    for (int node = extent_ - 1; node >= 1; --node) {
      nodes_[node] = merge_(nodes_[2 * node], nodes_[2 * node + 1]);
    }
  }
}

Bsi PreAggTree::Query(int lo, int hi, int* nodes_merged) const {
  CHECK_GE(lo, 0);
  CHECK_LE(lo, hi);
  CHECK_LT(hi, num_leaves_);
  if (multi_merge_) {
    // Collect the O(log C) covering nodes, then fold them in ONE
    // multi-operand merge instead of pairwise up the recursion.
    std::vector<const Bsi*> cover;
    int covered = 0;
    CollectCover(1, 0, extent_ - 1, lo, hi, &cover, &covered);
    if (nodes_merged != nullptr) *nodes_merged = covered;
    if (cover.empty()) return Bsi();
    if (cover.size() == 1) return *cover[0];
    return multi_merge_(cover);
  }
  if (nodes_merged != nullptr) *nodes_merged = 0;
  return QueryRecursive(1, 0, extent_ - 1, lo, hi, nodes_merged);
}

void PreAggTree::CollectCover(int node, int node_lo, int node_hi, int lo,
                              int hi, std::vector<const Bsi*>* cover,
                              int* covered) const {
  if (hi < node_lo || node_hi < lo) return;
  if (lo <= node_lo && node_hi <= hi) {
    ++*covered;
    if (!nodes_[node].IsEmpty()) cover->push_back(&nodes_[node]);
    return;
  }
  const int mid = (node_lo + node_hi) / 2;
  CollectCover(2 * node, node_lo, mid, lo, hi, cover, covered);
  CollectCover(2 * node + 1, mid + 1, node_hi, lo, hi, cover, covered);
}

Bsi PreAggTree::QueryRecursive(int node, int node_lo, int node_hi, int lo,
                               int hi, int* nodes_merged) const {
  if (hi < node_lo || node_hi < lo) return Bsi();
  if (lo <= node_lo && node_hi <= hi) {
    if (nodes_merged != nullptr) ++*nodes_merged;
    return nodes_[node];
  }
  const int mid = (node_lo + node_hi) / 2;
  Bsi left = QueryRecursive(2 * node, node_lo, mid, lo, hi, nodes_merged);
  Bsi right =
      QueryRecursive(2 * node + 1, mid + 1, node_hi, lo, hi, nodes_merged);
  if (left.IsEmpty()) return right;
  if (right.IsEmpty()) return left;
  return merge_(left, right);
}

Bsi PreAggTree::QueryLinear(int lo, int hi) const {
  CHECK_GE(lo, 0);
  CHECK_LE(lo, hi);
  CHECK_LT(hi, num_leaves_);
  Bsi acc = nodes_[extent_ + lo];
  for (int i = lo + 1; i <= hi; ++i) {
    acc = merge_(acc, nodes_[extent_ + i]);
  }
  return acc;
}

}  // namespace expbsi
