#include "storage/column_store.h"

#include <algorithm>
#include <numeric>
#include <string_view>

#include "common/check.h"
#include "storage/block_compressor.h"

namespace expbsi {
namespace {

template <typename T>
size_t CompressedColumnBytes(const std::vector<T>& column) {
  return CompressedSize(std::string_view(
      reinterpret_cast<const char*>(column.data()),
      column.size() * sizeof(T)));
}

template <typename T>
void ApplyPermutation(std::vector<T>& column,
                      const std::vector<uint32_t>& perm) {
  std::vector<T> tmp(column.size());
  for (size_t i = 0; i < perm.size(); ++i) tmp[i] = column[perm[i]];
  column = std::move(tmp);
}

}  // namespace

void NormalMetricTable::Append(uint16_t segment, const MetricRow& row) {
  segment_.push_back(segment);
  date_.push_back(row.date);
  metric_id_.push_back(static_cast<uint32_t>(row.metric_id));
  unit_id_.push_back(static_cast<uint32_t>(row.analysis_unit_id));
  value_.push_back(static_cast<uint32_t>(row.value));
}

void NormalMetricTable::Reserve(size_t rows) {
  segment_.reserve(rows);
  date_.reserve(rows);
  metric_id_.reserve(rows);
  unit_id_.reserve(rows);
  value_.reserve(rows);
}

void NormalMetricTable::SortForStorage() {
  std::vector<uint32_t> perm(NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [this](uint32_t a, uint32_t b) {
    if (segment_[a] != segment_[b]) return segment_[a] < segment_[b];
    if (metric_id_[a] != metric_id_[b]) return metric_id_[a] < metric_id_[b];
    if (date_[a] != date_[b]) return date_[a] < date_[b];
    return unit_id_[a] < unit_id_[b];
  });
  ApplyPermutation(segment_, perm);
  ApplyPermutation(date_, perm);
  ApplyPermutation(metric_id_, perm);
  ApplyPermutation(unit_id_, perm);
  ApplyPermutation(value_, perm);
}

size_t NormalMetricTable::CompressedBytes() const {
  return CompressedColumnBytes(segment_) + CompressedColumnBytes(date_) +
         CompressedColumnBytes(metric_id_) + CompressedColumnBytes(unit_id_) +
         CompressedColumnBytes(value_);
}

void NormalExposeTable::Append(uint16_t segment, uint16_t bucket,
                               const ExposeRow& row) {
  segment_.push_back(segment);
  strategy_id_.push_back(static_cast<uint32_t>(row.strategy_id));
  bucket_.push_back(bucket);
  first_expose_date_.push_back(row.first_expose_date);
  unit_id_.push_back(static_cast<uint32_t>(row.analysis_unit_id));
}

void NormalExposeTable::Reserve(size_t rows) {
  segment_.reserve(rows);
  strategy_id_.reserve(rows);
  bucket_.reserve(rows);
  first_expose_date_.reserve(rows);
  unit_id_.reserve(rows);
}

void NormalExposeTable::SortForStorage() {
  std::vector<uint32_t> perm(NumRows());
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [this](uint32_t a, uint32_t b) {
    if (segment_[a] != segment_[b]) return segment_[a] < segment_[b];
    if (strategy_id_[a] != strategy_id_[b]) {
      return strategy_id_[a] < strategy_id_[b];
    }
    return unit_id_[a] < unit_id_[b];
  });
  ApplyPermutation(segment_, perm);
  ApplyPermutation(strategy_id_, perm);
  ApplyPermutation(bucket_, perm);
  ApplyPermutation(first_expose_date_, perm);
  ApplyPermutation(unit_id_, perm);
}

size_t NormalExposeTable::CompressedBytes() const {
  return CompressedColumnBytes(segment_) +
         CompressedColumnBytes(strategy_id_) + CompressedColumnBytes(bucket_) +
         CompressedColumnBytes(first_expose_date_) +
         CompressedColumnBytes(unit_id_);
}

}  // namespace expbsi
