#ifndef EXPBSI_STORAGE_BLOCK_COMPRESSOR_H_
#define EXPBSI_STORAGE_BLOCK_COMPRESSOR_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace expbsi {

// LZ4-style byte compressor, built from scratch (no external codec is
// available offline). Same design space as the LZ4 the paper's Table 4 uses:
// greedy LZ77 with a hash table over 4-byte windows and a token format of
// [literal-run | match] pairs. It is a fast byte-level codec -- exactly what
// is needed to contrast "normal rows compress well" against "BSI bytes are
// already compressed" (§3.5, Table 4).

// Compresses `input`; output is the raw token stream (no header).
std::string Lz4LikeCompress(std::string_view input);

// Reverses Lz4LikeCompress; `original_size` must match the input size.
Result<std::string> Lz4LikeDecompress(std::string_view compressed,
                                      size_t original_size);

// Framed helpers: prepend the original size so blocks are self-describing.
std::string CompressBlock(std::string_view input);
Result<std::string> DecompressBlock(std::string_view block);

// Convenience for size accounting (Table 4): compressed byte count only.
inline size_t CompressedSize(std::string_view input) {
  return CompressBlock(input).size();
}

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_BLOCK_COMPRESSOR_H_
