#ifndef EXPBSI_STORAGE_TIERED_STORE_H_
#define EXPBSI_STORAGE_TIERED_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "storage/bsi_store.h"

namespace expbsi {

// Hot/cold tiering (§5.3): ad-hoc query nodes keep hot data (recent or
// recently visited) on fast local storage and pull cold data from the
// distributed warehouse on demand. Here the cold tier is a BsiStore and the
// hot tier an LRU cache with a byte budget; reads through the cold path are
// accounted as simulated network traffic.
//
// Thread-safe: Fetch / Warm / stats may be called concurrently (ad-hoc query
// nodes serve parallel queries against one shared tier).
class TieredStore {
 public:
  struct Stats {
    uint64_t hot_hits = 0;
    uint64_t cold_reads = 0;
    uint64_t bytes_from_cold = 0;
    uint64_t evictions = 0;
    // Blobs larger than the whole hot budget are served straight from cold
    // without being cached (caching one would evict the entire tier).
    uint64_t oversize_bypasses = 0;
    // Fault injection (chaos tests): injected fetch failures/corruptions
    // observed at this tier, and simulated latency added by kDelay faults.
    uint64_t injected_faults = 0;
    double injected_delay_seconds = 0.0;
    // Integrity gate: fingerprint checks run on cold copies (always for
    // recovery-loaded blobs, and for every copy under an installed
    // injector) and mismatches surfaced as Status::Corruption.
    uint64_t fingerprint_verifications = 0;
    uint64_t fingerprint_mismatches = 0;
  };

  // `cold` must outlive this object. hot_capacity_bytes bounds the hot tier.
  TieredStore(const BsiStore* cold, size_t hot_capacity_bytes);

  TieredStore(const TieredStore&) = delete;
  TieredStore& operator=(const TieredStore&) = delete;

  // Fetches a blob, preferring the hot tier. A cold read copies the blob
  // into the hot tier (evicting LRU entries beyond the budget) and adds its
  // size to bytes_from_cold. The returned pointer stays valid until the blob
  // is evicted AND released by all callers (shared ownership).
  Result<std::shared_ptr<const std::string>> Fetch(const BsiStoreKey& key);

  // Pre-warms the hot tier without counting toward query-time stats
  // (the paper keeps data with recent dates hot ahead of queries).
  Status Warm(const BsiStoreKey& key);

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = Stats();
  }

  size_t hot_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hot_bytes_;
  }

 private:
  struct HotEntry {
    std::shared_ptr<const std::string> blob;
    std::list<BsiStoreKey>::iterator lru_it;
  };

  // Loads from cold into hot; does not touch stats. Caller holds mu_.
  Result<std::shared_ptr<const std::string>> LoadFromCold(
      const BsiStoreKey& key);
  void EvictIfNeeded();

  mutable std::mutex mu_;
  const BsiStore* cold_;
  size_t hot_capacity_bytes_;
  size_t hot_bytes_ = 0;
  std::list<BsiStoreKey> lru_;  // front = most recent
  std::unordered_map<BsiStoreKey, HotEntry, BsiStoreKeyHash> hot_;
  Stats stats_;
};

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_TIERED_STORE_H_
