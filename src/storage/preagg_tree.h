#ifndef EXPBSI_STORAGE_PREAGG_TREE_H_
#define EXPBSI_STORAGE_PREAGG_TREE_H_

#include <functional>
#include <vector>

#include "bsi/bsi.h"

namespace expbsi {

// Pre-aggregate tree over consecutive dates (§4.3, Fig. 6): a segment tree
// whose leaves are per-day BSIs and whose inner nodes are merged from their
// two children by an aggregate function over BSIs (sumBSI, maxBSI, ...).
// Aggregating C successive days then merges O(log C) nodes instead of C.
//
// Used by the pre-experiment computation to fold the metric log of the C
// days before the experiment start into one covariate BSI.
class PreAggTree {
 public:
  using MergeFn = std::function<Bsi(const Bsi&, const Bsi&)>;
  // N-way merge (e.g. the CSA sumBSI kernel): called once with every
  // covering node of a query instead of pairwise up the recursion.
  using MultiMergeFn = std::function<Bsi(const std::vector<const Bsi*>&)>;

  // `leaves[i]` is the BSI of day i (relative to the tree's first day).
  PreAggTree(std::vector<Bsi> leaves, MergeFn merge);

  // As above, plus a multi-operand merge. Query() then collects the O(log C)
  // covering nodes and folds them in ONE multi_merge call; `merge` is still
  // used by QueryLinear (the ablation baseline). Both functions must compute
  // the same aggregate.
  PreAggTree(std::vector<Bsi> leaves, MergeFn merge, MultiMergeFn multi_merge);

  int num_days() const { return num_leaves_; }

  // Aggregate of days [lo, hi], inclusive. If `nodes_merged` is non-null it
  // receives the number of tree nodes combined (the Fig. 6 "3 nodes instead
  // of 7" effect, used by the ablation bench).
  Bsi Query(int lo, int hi, int* nodes_merged = nullptr) const;

  // The day-by-day fold the tree replaces (for the ablation baseline).
  Bsi QueryLinear(int lo, int hi) const;

 private:
  // Nodes in heap order over a power-of-two extent; missing leaves are empty.
  Bsi QueryRecursive(int node, int node_lo, int node_hi, int lo, int hi,
                     int* nodes_merged) const;

  // Gathers the canonical segment-tree cover of [lo, hi]: `covered` counts
  // every fully-covered node (matching QueryRecursive's nodes_merged), and
  // non-empty covering nodes are appended to `cover`.
  void CollectCover(int node, int node_lo, int node_hi, int lo, int hi,
                    std::vector<const Bsi*>* cover, int* covered) const;

  int num_leaves_ = 0;
  int extent_ = 1;  // power of two >= num_leaves_
  std::vector<Bsi> nodes_;  // 1-based heap; nodes_[1] is the root
  MergeFn merge_;
  MultiMergeFn multi_merge_;  // may be empty: fall back to pairwise recursion
};

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_PREAGG_TREE_H_
