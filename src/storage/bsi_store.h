#ifndef EXPBSI_STORAGE_BSI_STORE_H_
#define EXPBSI_STORAGE_BSI_STORE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"

namespace expbsi {

// 64-bit content fingerprint (word-at-a-time Mix64 chain, not
// cryptographic). The warehouse records it at Put time and the tiered store
// verifies every cold-tier transfer against it, so a corrupted transfer
// surfaces as Status::Corruption -- never as a silently wrong decode.
uint64_t BlobFingerprint(std::string_view bytes);

// What a stored blob represents. kState blobs carry non-BSI warehouse
// state that must survive a crash alongside the BSIs (the ingest store's
// checkpoint metadata and position encoders, src/wal/ingest_store.h); the
// query paths skip them.
enum class BsiKind : uint8_t {
  kExpose = 0,
  kMetric = 1,
  kDimension = 2,
  kState = 3,
};

// Key of one BSI blob in the warehouse: (segment, kind, id, date), where id
// is the strategy-id / metric-id / dimension-id and date is 0 for expose
// blobs (an expose log is per strategy, not per date -- Table 2).
struct BsiStoreKey {
  uint16_t segment = 0;
  BsiKind kind = BsiKind::kMetric;
  uint64_t id = 0;
  uint32_t date = 0;

  friend bool operator==(const BsiStoreKey& a, const BsiStoreKey& b) {
    return a.segment == b.segment && a.kind == b.kind && a.id == b.id &&
           a.date == b.date;
  }
};

struct BsiStoreKeyHash {
  size_t operator()(const BsiStoreKey& k) const;
};

struct RecoveryReport;  // see storage/snapshot.h

// In-memory stand-in for the "distributed data warehouse system" of Fig. 7:
// a keyed blob store holding serialized BSI representations. The ad-hoc
// cluster's cold tier reads from here (with simulated network accounting in
// TieredStore); the pre-compute pipeline reads from here directly.
class BsiStore {
 public:
  BsiStore() = default;

  BsiStore(const BsiStore&) = delete;
  BsiStore& operator=(const BsiStore&) = delete;
  BsiStore(BsiStore&&) = default;
  BsiStore& operator=(BsiStore&&) = default;

  // Stores `bytes` under `key`, replacing any previous blob.
  void Put(const BsiStoreKey& key, std::string bytes);

  // Put for the recovery path: the blob arrived from disk rather than from
  // a builder, so it keeps the fingerprint recorded before the crash and is
  // flagged so TieredStore re-verifies it unconditionally on first fetch.
  void PutRecovered(const BsiStoreKey& key, std::string bytes,
                    uint64_t fingerprint);

  // True iff the blob was loaded by Recover() rather than built in-process.
  bool WasRecovered(const BsiStoreKey& key) const;

  bool Contains(const BsiStoreKey& key) const;

  // Returns a view of the stored blob (valid until the next Put).
  Result<const std::string*> Get(const BsiStoreKey& key) const;

  // Fingerprint recorded when the blob was Put (metadata lookup; never
  // subject to fault injection), or NotFound.
  Result<uint64_t> Fingerprint(const BsiStoreKey& key) const;

  size_t NumBlobs() const { return blobs_.size(); }

  // Total stored bytes (the BSI "original size" of Table 4).
  size_t TotalBytes() const { return total_bytes_; }

  // Persistence: the warehouse contents as one file of length-prefixed
  // records. IO and format problems surface as Status.
  Status SaveToFile(const std::string& path) const;
  static Result<BsiStore> LoadFromFile(const std::string& path);

  // Rebuilds a store from the newest valid snapshot manifest in `dir`
  // (written by SnapshotWriter, storage/snapshot.h). Torn, truncated or
  // bitflipped segment files are quarantined and reported in `report`
  // (never silently absent); only a missing/unusable snapshot directory or
  // the absence of any valid manifest fails the whole recovery.
  static Result<BsiStore> Recover(const std::string& dir,
                                  RecoveryReport* report = nullptr);

  // Invokes fn(key, bytes) for every stored blob (unspecified order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& [key, entry] : blobs_) fn(key, entry.bytes);
  }

  // Metadata walk: fn(key, bytes, fingerprint). The snapshot writer uses
  // this to carry the Put-time fingerprint through to disk.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, entry] : blobs_) {
      fn(key, entry.bytes, entry.fingerprint);
    }
  }

 private:
  struct Entry {
    std::string bytes;
    uint64_t fingerprint = 0;
    bool recovered = false;
  };

  std::unordered_map<BsiStoreKey, Entry, BsiStoreKeyHash> blobs_;
  size_t total_bytes_ = 0;
};

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_BSI_STORE_H_
