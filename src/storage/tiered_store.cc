#include "storage/tiered_store.h"

#include "common/check.h"
#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace expbsi {

namespace {

// Registry mirror of the per-instance Stats (docs/OBSERVABILITY.md). The
// per-instance struct stays authoritative -- AdhocCluster diffs it per node
// to attribute cold bytes -- while these process-wide counters feed the
// scrape. Both are bumped at the same points.
struct TierMetrics {
  obs::Counter& hot_hits = obs::GetCounter("tier.hot_hits");
  obs::Counter& cold_reads = obs::GetCounter("tier.cold_reads");
  obs::Counter& bytes_from_cold = obs::GetCounter("tier.bytes_from_cold");
  obs::Counter& evictions = obs::GetCounter("tier.evictions");
  obs::Counter& oversize_bypasses = obs::GetCounter("tier.oversize_bypasses");
  obs::Counter& injected_faults = obs::GetCounter("tier.injected_faults");
  obs::Counter& fingerprint_verifications =
      obs::GetCounter("tier.fingerprint_verifications");
  obs::Counter& fingerprint_mismatches =
      obs::GetCounter("tier.fingerprint_mismatches");
  obs::Histogram& cold_blob_bytes = obs::GetHistogram("tier.cold_blob_bytes");
};

TierMetrics& Metrics() {
  static TierMetrics m;
  return m;
}

}  // namespace

TieredStore::TieredStore(const BsiStore* cold, size_t hot_capacity_bytes)
    : cold_(cold), hot_capacity_bytes_(hot_capacity_bytes) {
  CHECK(cold != nullptr);
}

Result<std::shared_ptr<const std::string>> TieredStore::Fetch(
    const BsiStoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hot_.find(key);
  if (it != hot_.end()) {
    ++stats_.hot_hits;
    Metrics().hot_hits.Add();
    // Move to the front of the LRU list.
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return it->second.blob;
  }
  // Cold path = the simulated network fetch; this is where chaos schedules
  // inject unavailability, latency and bit-flips.
  FaultDecision fault;
  FaultInjector* const fi = FaultInjector::Get();
  if (fi != nullptr) {
    fault = fi->Evaluate(fault_sites::kTierFetch);
    if (fault.delay_seconds > 0) {
      ++stats_.injected_faults;
      Metrics().injected_faults.Add();
      stats_.injected_delay_seconds += fault.delay_seconds;
    }
    if (fault.fail) {
      ++stats_.injected_faults;
      Metrics().injected_faults.Add();
      return Status::Unavailable("tiered store: injected cold-fetch failure");
    }
  }
  if (fault.corrupt) {
    // A corrupted transfer: the flipped copy fails the fingerprint check
    // below and is never cached, so a retry re-reads the warehouse and can
    // succeed. (The bytes still count as network traffic.)
    Result<const std::string*> cold_blob = cold_->Get(key);
    if (!cold_blob.ok()) return cold_blob.status();
    ++stats_.injected_faults;
    ++stats_.cold_reads;
    stats_.bytes_from_cold += cold_blob.value()->size();
    Metrics().injected_faults.Add();
    Metrics().cold_reads.Add();
    Metrics().bytes_from_cold.Add(cold_blob.value()->size());
    Metrics().cold_blob_bytes.Record(cold_blob.value()->size());
    auto corrupted = std::make_shared<std::string>(*cold_blob.value());
    fi->CorruptBlob(stats_.cold_reads, corrupted.get());
    const Result<uint64_t> want = cold_->Fingerprint(key);
    if (!want.ok()) return want.status();
    ++stats_.fingerprint_verifications;
    Metrics().fingerprint_verifications.Add();
    if (BlobFingerprint(*corrupted) != want.value()) {
      ++stats_.fingerprint_mismatches;
      Metrics().fingerprint_mismatches.Add();
      return Status::Corruption(
          "tiered store: transfer fingerprint mismatch");
    }
    // The flips cancelled out (possible but vanishingly rare): the bytes
    // are verified intact, serve them.
    return std::shared_ptr<const std::string>(std::move(corrupted));
  }
  Result<std::shared_ptr<const std::string>> blob = LoadFromCold(key);
  if (blob.ok()) {
    ++stats_.cold_reads;
    stats_.bytes_from_cold += blob.value()->size();
    Metrics().cold_reads.Add();
    Metrics().bytes_from_cold.Add(blob.value()->size());
    Metrics().cold_blob_bytes.Record(blob.value()->size());
  }
  return blob;
}

Status TieredStore::Warm(const BsiStoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hot_.find(key) != hot_.end()) return Status::OK();
  Result<std::shared_ptr<const std::string>> blob = LoadFromCold(key);
  return blob.ok() ? Status::OK() : blob.status();
}

Result<std::shared_ptr<const std::string>> TieredStore::LoadFromCold(
    const BsiStoreKey& key) {
  Result<const std::string*> cold_blob = cold_->Get(key);
  if (!cold_blob.ok()) return cold_blob.status();
  auto blob = std::make_shared<const std::string>(*cold_blob.value());
  // Integrity gate: the copy entering the tier must match the fingerprint
  // the warehouse recorded at Put time. An in-process warehouse built this
  // run cannot corrupt a transfer spontaneously, so for those blobs the
  // per-byte hash runs only under an installed injector -- an
  // uninstrumented run stays at one atomic load per fetch. Blobs that came
  // back from disk via Recover() ARE verified unconditionally: they crossed
  // a crash boundary, and the Put-time fingerprint carried through the
  // snapshot is the end-to-end check that recovery handed back the exact
  // pre-crash bytes.
  if (FaultInjector::Get() != nullptr || cold_->WasRecovered(key)) {
    const Result<uint64_t> want = cold_->Fingerprint(key);
    if (!want.ok()) return want.status();
    ++stats_.fingerprint_verifications;
    Metrics().fingerprint_verifications.Add();
    if (BlobFingerprint(*blob) != want.value()) {
      ++stats_.fingerprint_mismatches;
      Metrics().fingerprint_mismatches.Add();
      return Status::Corruption(
          "tiered store: transfer fingerprint mismatch");
    }
  }
  if (blob->size() > hot_capacity_bytes_) {
    // The blob cannot fit even in an empty hot tier; caching it would evict
    // everything else for nothing. Serve it directly from cold.
    ++stats_.oversize_bypasses;
    Metrics().oversize_bypasses.Add();
    return blob;
  }
  lru_.push_front(key);
  hot_.emplace(key, HotEntry{blob, lru_.begin()});
  hot_bytes_ += blob->size();
  EvictIfNeeded();
  return blob;
}

void TieredStore::EvictIfNeeded() {
  while (hot_bytes_ > hot_capacity_bytes_ && lru_.size() > 1) {
    const BsiStoreKey victim = lru_.back();
    lru_.pop_back();
    auto it = hot_.find(victim);
    CHECK(it != hot_.end());
    hot_bytes_ -= it->second.blob->size();
    hot_.erase(it);
    ++stats_.evictions;
    Metrics().evictions.Add();
  }
}

}  // namespace expbsi
