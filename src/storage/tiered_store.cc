#include "storage/tiered_store.h"

#include "common/check.h"

namespace expbsi {

TieredStore::TieredStore(const BsiStore* cold, size_t hot_capacity_bytes)
    : cold_(cold), hot_capacity_bytes_(hot_capacity_bytes) {
  CHECK(cold != nullptr);
}

Result<std::shared_ptr<const std::string>> TieredStore::Fetch(
    const BsiStoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hot_.find(key);
  if (it != hot_.end()) {
    ++stats_.hot_hits;
    // Move to the front of the LRU list.
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return it->second.blob;
  }
  Result<std::shared_ptr<const std::string>> blob = LoadFromCold(key);
  if (blob.ok()) {
    ++stats_.cold_reads;
    stats_.bytes_from_cold += blob.value()->size();
  }
  return blob;
}

Status TieredStore::Warm(const BsiStoreKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hot_.find(key) != hot_.end()) return Status::OK();
  Result<std::shared_ptr<const std::string>> blob = LoadFromCold(key);
  return blob.ok() ? Status::OK() : blob.status();
}

Result<std::shared_ptr<const std::string>> TieredStore::LoadFromCold(
    const BsiStoreKey& key) {
  Result<const std::string*> cold_blob = cold_->Get(key);
  if (!cold_blob.ok()) return cold_blob.status();
  auto blob = std::make_shared<const std::string>(*cold_blob.value());
  lru_.push_front(key);
  hot_.emplace(key, HotEntry{blob, lru_.begin()});
  hot_bytes_ += blob->size();
  EvictIfNeeded();
  return blob;
}

void TieredStore::EvictIfNeeded() {
  while (hot_bytes_ > hot_capacity_bytes_ && lru_.size() > 1) {
    const BsiStoreKey victim = lru_.back();
    lru_.pop_back();
    auto it = hot_.find(victim);
    CHECK(it != hot_.end());
    hot_bytes_ -= it->second.blob->size();
    hot_.erase(it);
    ++stats_.evictions;
  }
}

}  // namespace expbsi
