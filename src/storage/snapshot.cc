#include "storage/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <tuple>

#include "common/crc32c.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expbsi {
namespace {

// ---- little-endian scalar append / cursor read ---------------------------

template <typename T>
void AppendScalar(std::string* out, T v) {
  static_assert(std::is_integral_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;

  explicit ByteReader(std::string_view bytes)
      : p(reinterpret_cast<const uint8_t*>(bytes.data())),
        end(p + bytes.size()) {}

  size_t remaining() const { return static_cast<size_t>(end - p); }

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_integral_v<T>);
    if (remaining() < sizeof(T)) return false;
    std::memcpy(out, p, sizeof(T));
    p += sizeof(T);
    return true;
  }

  bool Skip(size_t n) {
    if (remaining() < n) return false;
    p += n;
    return true;
  }
};

// ---- file-name parsing ---------------------------------------------------

bool ParseHex16(std::string_view s, uint64_t* out) {
  if (s.size() != 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

bool ParseManifestName(const std::string& name, uint64_t* version) {
  constexpr std::string_view kPrefix = "MANIFEST-";
  if (name.size() != kPrefix.size() + 16 || name.rfind(kPrefix, 0) != 0) {
    return false;
  }
  return ParseHex16(std::string_view(name).substr(kPrefix.size()), version);
}

bool ParseSegmentFileName(const std::string& name, uint16_t* segment,
                          uint64_t* version) {
  // seg-<decimal segment>-<16 hex digits>.snap
  constexpr std::string_view kPrefix = "seg-";
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() < kPrefix.size() + 1 + 1 + 16 + kSuffix.size() ||
      name.rfind(kPrefix, 0) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  const size_t dash = name.find('-', kPrefix.size());
  if (dash == std::string::npos ||
      name.size() - kSuffix.size() - (dash + 1) != 16) {
    return false;
  }
  uint32_t seg = 0;
  for (size_t i = kPrefix.size(); i < dash; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    seg = seg * 10 + static_cast<uint32_t>(name[i] - '0');
    if (seg > 65535) return false;
  }
  if (dash == kPrefix.size()) return false;
  if (!ParseHex16(
          std::string_view(name).substr(dash + 1, 16), version)) {
    return false;
  }
  *segment = static_cast<uint16_t>(seg);
  return true;
}

// ---- manifest ------------------------------------------------------------

struct ManifestEntry {
  uint16_t segment = 0;
  std::string file_name;
  uint64_t file_size = 0;
  uint64_t blob_count = 0;
};

struct Manifest {
  uint64_t version = 0;
  std::vector<ManifestEntry> segments;
};

// Manifest layout: [magic u32][format u32][version u64][num_segments u32]
// then per segment [segment u16][name_len u32][name][file_size u64]
// [blob_count u64], closed by [crc32c u32] over all preceding bytes.
constexpr size_t kManifestHeaderBytes = 4 + 4 + 8 + 4;
constexpr size_t kManifestMinEntryBytes = 2 + 4 + 8 + 8;

Result<Manifest> ReadAndValidateManifest(const std::string& dir,
                                         uint64_t name_version) {
  const std::string name = SnapshotManifestName(name_version);
  Result<std::string> bytes =
      fileio::ReadFileToString(dir + "/" + name, kMaxManifestBytes);
  RETURN_IF_ERROR(bytes.status());
  const std::string& b = bytes.value();
  if (b.size() < kManifestHeaderBytes + sizeof(uint32_t)) {
    return Status::Corruption(name + ": truncated manifest (" +
                              std::to_string(b.size()) + " bytes)");
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, b.data() + b.size() - sizeof(uint32_t),
              sizeof(uint32_t));
  if (Crc32c(b.data(), b.size() - sizeof(uint32_t)) != stored_crc) {
    return Status::Corruption(name +
                              ": manifest checksum mismatch (torn write or "
                              "bitflip)");
  }
  ByteReader r(std::string_view(b).substr(0, b.size() - sizeof(uint32_t)));
  uint32_t magic = 0, format = 0, num_segments = 0;
  Manifest m;
  r.Read(&magic);
  r.Read(&format);
  r.Read(&m.version);
  r.Read(&num_segments);
  if (magic != kManifestFileMagic) {
    return Status::Corruption(name + ": bad manifest magic");
  }
  if (format != kSnapshotFormatVersion) {
    return Status::Corruption(name + ": manifest format version-mismatch (" +
                              std::to_string(format) + ", expected " +
                              std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (m.version != name_version) {
    return Status::Corruption(name + ": version field does not match name");
  }
  if (num_segments > r.remaining() / kManifestMinEntryBytes) {
    return Status::Corruption(name + ": segment count exceeds manifest size");
  }
  m.segments.reserve(num_segments);
  uint32_t prev_segment = 0;
  for (uint32_t i = 0; i < num_segments; ++i) {
    ManifestEntry e;
    uint32_t name_len = 0;
    if (!r.Read(&e.segment) || !r.Read(&name_len)) {
      return Status::Corruption(name + ": truncated segment entry");
    }
    if (name_len > r.remaining()) {
      return Status::Corruption(name + ": segment name exceeds manifest");
    }
    e.file_name.assign(reinterpret_cast<const char*>(r.p), name_len);
    r.Skip(name_len);
    if (!r.Read(&e.file_size) || !r.Read(&e.blob_count)) {
      return Status::Corruption(name + ": truncated segment entry");
    }
    // The writer derives the name from (segment, version); enforcing that
    // here pins the format and rules out path tricks in a crafted manifest.
    if (e.file_name != SnapshotSegmentFileName(e.segment, m.version)) {
      return Status::Corruption(name + ": unexpected segment file name \"" +
                                e.file_name + "\"");
    }
    if (i > 0 && e.segment <= prev_segment) {
      return Status::Corruption(name + ": segment ids not strictly " +
                                "increasing");
    }
    prev_segment = e.segment;
    if (e.file_size > kMaxSegmentFileBytes) {
      return Status::Corruption(name + ": segment file size over cap");
    }
    m.segments.push_back(std::move(e));
  }
  if (r.remaining() != 0) {
    return Status::Corruption(name + ": trailing garbage after entries");
  }
  return m;
}

// ---- segment files -------------------------------------------------------

struct DecodedRecord {
  BsiStoreKey key;
  std::string_view payload;
  uint64_t fingerprint = 0;
};

// Full validation of one segment file against its manifest entry. Any
// failure is a classified Status::Corruption; on success `out` holds views
// into `bytes`.
Status DecodeSegmentFile(std::string_view bytes, const ManifestEntry& entry,
                         uint64_t version,
                         std::vector<DecodedRecord>* out) {
  const std::string& fname = entry.file_name;
  if (bytes.size() != entry.file_size) {
    return Status::Corruption(
        fname + ": size " + std::to_string(bytes.size()) +
        " does not match manifest (" + std::to_string(entry.file_size) +
        ") -- truncated or torn write");
  }
  ByteReader r(bytes);
  uint32_t magic = 0, format = 0;
  uint16_t segment = 0;
  uint64_t file_version = 0, blob_count = 0;
  if (!r.Read(&magic) || !r.Read(&format) || !r.Read(&segment) ||
      !r.Read(&file_version) || !r.Read(&blob_count)) {
    return Status::Corruption(fname + ": truncated header");
  }
  if (magic != kSegmentFileMagic) {
    return Status::Corruption(fname + ": bad segment file magic");
  }
  if (format != kSnapshotFormatVersion) {
    return Status::Corruption(fname + ": format version-mismatch (" +
                              std::to_string(format) + ")");
  }
  if (segment != entry.segment) {
    return Status::Corruption(fname + ": segment id mismatch");
  }
  if (file_version != version) {
    return Status::Corruption(fname + ": snapshot version mismatch");
  }
  if (blob_count != entry.blob_count) {
    return Status::Corruption(fname + ": blob count mismatch vs manifest");
  }
  out->clear();
  if (blob_count > r.remaining() /
                       (kSnapshotRecordHeaderBytes + 2 * sizeof(uint32_t))) {
    return Status::Corruption(fname + ": blob count exceeds file size");
  }
  out->reserve(blob_count);
  for (uint64_t i = 0; i < blob_count; ++i) {
    if (r.remaining() < kSnapshotRecordHeaderBytes + sizeof(uint32_t)) {
      return Status::Corruption(fname + ": truncated record header");
    }
    const uint8_t* const header_start = r.p;
    DecodedRecord rec;
    uint8_t kind = 0;
    uint32_t len = 0, header_crc = 0;
    r.Read(&rec.key.segment);
    r.Read(&kind);
    r.Read(&rec.key.id);
    r.Read(&rec.key.date);
    r.Read(&len);
    r.Read(&rec.fingerprint);
    r.Read(&header_crc);
    // The header CRC is verified before `len` is trusted, so a bitflipped
    // length can never drive a huge read or allocation.
    if (Crc32c(header_start, kSnapshotRecordHeaderBytes) != header_crc) {
      return Status::Corruption(fname + ": record header checksum mismatch "
                                        "(bitflip)");
    }
    if (kind > 3) {
      return Status::Corruption(fname + ": bad kind byte");
    }
    rec.key.kind = static_cast<BsiKind>(kind);
    if (rec.key.segment != entry.segment) {
      return Status::Corruption(fname + ": record for foreign segment");
    }
    if (len > r.remaining() || r.remaining() - len < sizeof(uint32_t)) {
      return Status::Corruption(fname + ": record length exceeds file");
    }
    rec.payload =
        std::string_view(reinterpret_cast<const char*>(r.p), len);
    r.Skip(len);
    uint32_t payload_crc = 0;
    r.Read(&payload_crc);
    if (Crc32c(rec.payload) != payload_crc) {
      return Status::Corruption(fname + ": payload checksum mismatch "
                                        "(bitflip)");
    }
    if (BlobFingerprint(rec.payload) != rec.fingerprint) {
      return Status::Corruption(fname + ": payload fingerprint mismatch");
    }
    out->push_back(std::move(rec));
  }
  if (r.remaining() != 0) {
    return Status::Corruption(fname + ": trailing garbage after records");
  }
  return Status::OK();
}

std::string BuildSegmentFile(
    uint16_t segment, uint64_t version,
    const std::vector<std::tuple<BsiStoreKey, const std::string*, uint64_t>>&
        records) {
  std::string out;
  size_t total = kSegmentFileHeaderBytes;
  for (const auto& [key, bytes, fp] : records) {
    total += kSnapshotRecordHeaderBytes + 2 * sizeof(uint32_t) +
             bytes->size();
  }
  out.reserve(total);
  AppendScalar(&out, kSegmentFileMagic);
  AppendScalar(&out, kSnapshotFormatVersion);
  AppendScalar(&out, segment);
  AppendScalar(&out, version);
  AppendScalar(&out, static_cast<uint64_t>(records.size()));
  for (const auto& [key, bytes, fp] : records) {
    const size_t header_start = out.size();
    AppendScalar(&out, key.segment);
    AppendScalar(&out, static_cast<uint8_t>(key.kind));
    AppendScalar(&out, key.id);
    AppendScalar(&out, key.date);
    AppendScalar(&out, static_cast<uint32_t>(bytes->size()));
    AppendScalar(&out, fp);
    AppendScalar(&out, Crc32c(out.data() + header_start,
                              kSnapshotRecordHeaderBytes));
    out += *bytes;
    AppendScalar(&out, Crc32c(*bytes));
  }
  return out;
}

// Renames a failed segment file out of the live set; best effort.
void Quarantine(const std::string& dir, const std::string& file_name,
                RecoveryReport* report) {
  const std::string from = dir + "/" + file_name;
  const std::string to = from + ".quarantine";
  if (fileio::FileSizeOf(from).ok() && fileio::RenameFile(from, to).ok()) {
    report->quarantined_files.push_back(file_name + ".quarantine");
  }
}

}  // namespace

std::string SnapshotManifestName(uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "MANIFEST-%016llx",
                static_cast<unsigned long long>(version));
  return buf;
}

std::string SnapshotSegmentFileName(uint16_t segment, uint64_t version) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "seg-%u-%016llx.snap",
                static_cast<unsigned>(segment),
                static_cast<unsigned long long>(version));
  return buf;
}

std::vector<uint64_t> SnapshotReader::ListManifestVersions(
    const std::string& dir) {
  std::vector<uint64_t> versions;
  Result<std::vector<std::string>> names = fileio::ListDir(dir);
  if (!names.ok()) return versions;
  for (const std::string& name : names.value()) {
    uint64_t v = 0;
    if (ParseManifestName(name, &v)) versions.push_back(v);
  }
  std::sort(versions.begin(), versions.end());
  return versions;
}

Result<SnapshotWriteStats> SnapshotWriter::Write(const BsiStore& store,
                                                 const std::string& dir) {
  obs::ScopedSpan span("snapshot_write");
  static obs::Counter& writes = obs::GetCounter("snapshot.writes");
  static obs::Counter& write_failures =
      obs::GetCounter("snapshot.write_failures");
  static obs::Counter& bytes_written =
      obs::GetCounter("snapshot.bytes_written");
  writes.Add();
  Result<SnapshotWriteStats> result = WriteImpl(store, dir);
  if (result.ok()) {
    bytes_written.Add(result.value().bytes_written);
    span.AddAttr("bytes_written", result.value().bytes_written);
    span.AddAttr("version", result.value().version);
  } else {
    write_failures.Add();
  }
  return result;
}

Result<SnapshotWriteStats> SnapshotWriter::WriteImpl(const BsiStore& store,
                                                     const std::string& dir) {
  RETURN_IF_ERROR(fileio::CreateDirIfMissing(dir));
  const std::vector<uint64_t> existing =
      SnapshotReader::ListManifestVersions(dir);
  const uint64_t version = existing.empty() ? 1 : existing.back() + 1;

  // Group blobs by segment, ordered within a segment by (kind, id, date),
  // so the same store contents always serialize to the same bytes.
  using RecordRef = std::tuple<BsiStoreKey, const std::string*, uint64_t>;
  std::map<uint16_t, std::vector<RecordRef>> by_segment;
  store.ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                         uint64_t fingerprint) {
    by_segment[key.segment].emplace_back(key, &bytes, fingerprint);
  });

  SnapshotWriteStats stats;
  stats.version = version;
  fileio::AtomicWriteOptions options;
  options.write_fault_site = fault_sites::kSnapshotWrite;
  options.rename_fault_site = fault_sites::kSnapshotRename;

  std::string manifest;
  AppendScalar(&manifest, kManifestFileMagic);
  AppendScalar(&manifest, kSnapshotFormatVersion);
  AppendScalar(&manifest, version);
  AppendScalar(&manifest, static_cast<uint32_t>(by_segment.size()));
  for (auto& [segment, records] : by_segment) {
    std::sort(records.begin(), records.end(),
              [](const RecordRef& a, const RecordRef& b) {
                const BsiStoreKey& ka = std::get<0>(a);
                const BsiStoreKey& kb = std::get<0>(b);
                return std::tie(ka.kind, ka.id, ka.date) <
                       std::tie(kb.kind, kb.id, kb.date);
              });
    const std::string bytes = BuildSegmentFile(segment, version, records);
    const std::string name = SnapshotSegmentFileName(segment, version);
    RETURN_IF_ERROR(fileio::WriteFileAtomic(dir + "/" + name, bytes,
                                            options));
    AppendScalar(&manifest, segment);
    AppendScalar(&manifest, static_cast<uint32_t>(name.size()));
    manifest += name;
    AppendScalar(&manifest, static_cast<uint64_t>(bytes.size()));
    AppendScalar(&manifest, static_cast<uint64_t>(records.size()));
    ++stats.segment_files;
    stats.bytes_written += bytes.size();
  }
  AppendScalar(&manifest, Crc32c(manifest));
  // The commit point: once this rename lands, version `version` is live.
  RETURN_IF_ERROR(fileio::WriteFileAtomic(
      dir + "/" + SnapshotManifestName(version), manifest, options));
  stats.bytes_written += manifest.size();

  // GC after a durable commit: keep the new version and the one before it;
  // everything older (and stray .tmp files of aborted attempts) goes. Best
  // effort -- leftovers are ignored by recovery and retried next Write.
  const uint64_t keep_floor = existing.empty() ? version : existing.back();
  Result<std::vector<std::string>> names = fileio::ListDir(dir);
  if (names.ok()) {
    for (const std::string& name : names.value()) {
      uint64_t v = 0;
      uint16_t seg = 0;
      bool expired = false;
      if (ParseManifestName(name, &v) || ParseSegmentFileName(name, &seg, &v)) {
        expired = v < keep_floor;
      } else if (name.size() > 4 &&
                 name.compare(name.size() - 4, 4, ".tmp") == 0) {
        expired = true;
      }
      if (expired && fileio::RemoveFileIfExists(dir + "/" + name).ok()) {
        ++stats.gc_removed;
      }
    }
  }
  return stats;
}

Result<BsiStore> SnapshotReader::Recover(const std::string& dir,
                                         RecoveryReport* report) {
  obs::ScopedSpan span("snapshot_recover");
  static obs::Counter& recoveries = obs::GetCounter("snapshot.recoveries");
  recoveries.Add();
  RecoveryReport local;
  RecoveryReport* const rep = report != nullptr ? report : &local;
  *rep = RecoveryReport{};

  Result<std::vector<std::string>> names = fileio::ListDir(dir);
  RETURN_IF_ERROR(names.status());
  std::vector<uint64_t> versions;
  for (const std::string& name : names.value()) {
    uint64_t v = 0;
    if (ParseManifestName(name, &v)) versions.push_back(v);
  }
  if (versions.empty()) {
    return Status::NotFound("snapshot: no manifest in " + dir);
  }
  std::sort(versions.rbegin(), versions.rend());

  Manifest manifest;
  bool have_manifest = false;
  for (uint64_t v : versions) {
    Result<Manifest> m = ReadAndValidateManifest(dir, v);
    if (m.ok()) {
      manifest = std::move(m).value();
      have_manifest = true;
      break;
    }
    // A torn commit of a newer version: fall back past it, but keep the
    // classified reason.
    ++rep->manifests_skipped;
    rep->errors.push_back(m.status().message());
  }
  if (!have_manifest) {
    return Status::Corruption(
        "snapshot: no valid manifest in " + dir + " (" +
        std::to_string(versions.size()) + " candidates, all corrupt)");
  }
  rep->manifest_version = manifest.version;

  BsiStore store;
  FaultInjector* const fi = FaultInjector::Get();
  for (const ManifestEntry& entry : manifest.segments) {
    Status status = Status::OK();
    Result<std::string> bytes = fileio::ReadFileToString(
        dir + "/" + entry.file_name, kMaxSegmentFileBytes);
    if (fi != nullptr) {
      const FaultDecision fault = fi->Evaluate(fault_sites::kSnapshotRead);
      if (fault.fail) {
        bytes = Status::Unavailable(entry.file_name +
                                    ": injected unreadable file");
      } else if (fault.corrupt && bytes.ok() && !bytes.value().empty()) {
        std::string flipped = std::move(bytes).value();
        fi->CorruptBlob(Mix64(manifest.version) ^ entry.segment, &flipped);
        bytes = std::move(flipped);
      }
    }
    std::vector<DecodedRecord> records;
    if (!bytes.ok()) {
      status = bytes.status();
    } else {
      status = DecodeSegmentFile(bytes.value(), entry, manifest.version,
                                 &records);
    }
    if (!status.ok()) {
      rep->lost_segments.push_back(entry.segment);
      rep->errors.push_back(status.message());
      Quarantine(dir, entry.file_name, rep);
      continue;
    }
    // Only a fully validated file populates the store -- a late corrupt
    // record never leaves a half-loaded segment behind.
    for (DecodedRecord& rec : records) {
      rep->bytes_recovered += rec.payload.size();
      ++rep->blobs_recovered;
      store.PutRecovered(rec.key, std::string(rec.payload),
                         rec.fingerprint);
    }
    rep->segments_recovered.push_back(entry.segment);
  }
  std::sort(rep->lost_segments.begin(), rep->lost_segments.end());
  std::sort(rep->segments_recovered.begin(), rep->segments_recovered.end());
  static obs::Counter& blobs_recovered =
      obs::GetCounter("snapshot.blobs_recovered");
  static obs::Counter& bytes_recovered =
      obs::GetCounter("snapshot.bytes_recovered");
  static obs::Counter& lost = obs::GetCounter("snapshot.lost_segments");
  static obs::Counter& skipped =
      obs::GetCounter("snapshot.manifests_skipped");
  blobs_recovered.Add(rep->blobs_recovered);
  bytes_recovered.Add(rep->bytes_recovered);
  lost.Add(rep->lost_segments.size());
  skipped.Add(static_cast<uint64_t>(rep->manifests_skipped));
  span.AddAttr("blobs_recovered", rep->blobs_recovered);
  span.AddAttr("lost_segments", rep->lost_segments.size());
  return store;
}

Result<BsiStore> BsiStore::Recover(const std::string& dir,
                                   RecoveryReport* report) {
  return SnapshotReader::Recover(dir, report);
}

}  // namespace expbsi
