#include "storage/block_compressor.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace expbsi {
namespace {

constexpr int kMinMatch = 4;
constexpr int kHashBits = 16;
constexpr int kMaxOffset = 65535;
// The last bytes of a block are always emitted as literals so the
// decompressor's wild copies stay in bounds.
constexpr size_t kTailLiterals = 12;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t HashWindow(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

// Writes a length using LZ4's 255-chain extension scheme.
void PutExtendedLength(std::string* out, size_t len) {
  while (len >= 255) {
    out->push_back(static_cast<char>(255));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

void EmitSequence(std::string* out, const char* literals, size_t num_literals,
                  size_t match_len, size_t offset) {
  const size_t lit_token = num_literals < 15 ? num_literals : 15;
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_token = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_token << 4) | match_token));
  if (lit_token == 15) PutExtendedLength(out, num_literals - 15);
  out->append(literals, num_literals);
  if (match_len == 0) return;  // final literal-only sequence
  out->push_back(static_cast<char>(offset & 0xFF));
  out->push_back(static_cast<char>((offset >> 8) & 0xFF));
  if (match_token == 15) PutExtendedLength(out, match_code - 15);
}

}  // namespace

std::string Lz4LikeCompress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  const char* base = input.data();
  const size_t n = input.size();
  if (n <= kTailLiterals + kMinMatch) {
    EmitSequence(&out, base, n, 0, 0);
    return out;
  }
  std::vector<uint32_t> table(1u << kHashBits, 0);  // position + 1
  const size_t match_limit = n - kTailLiterals;
  size_t anchor = 0;  // start of pending literals
  size_t pos = 0;
  while (pos < match_limit) {
    const uint32_t h = HashWindow(Load32(base + pos));
    const uint32_t candidate_plus_one = table[h];
    table[h] = static_cast<uint32_t>(pos) + 1;
    if (candidate_plus_one != 0) {
      const size_t candidate = candidate_plus_one - 1;
      const size_t offset = pos - candidate;
      if (offset <= kMaxOffset && offset > 0 &&
          Load32(base + candidate) == Load32(base + pos)) {
        // Extend the match forward.
        size_t match_len = kMinMatch;
        while (pos + match_len < match_limit &&
               base[candidate + match_len] == base[pos + match_len]) {
          ++match_len;
        }
        EmitSequence(&out, base + anchor, pos - anchor, match_len, offset);
        pos += match_len;
        anchor = pos;
        continue;
      }
    }
    ++pos;
  }
  EmitSequence(&out, base + anchor, n - anchor, 0, 0);
  return out;
}

Result<std::string> Lz4LikeDecompress(std::string_view compressed,
                                      size_t original_size) {
  // A match token can expand at most ~255x per length byte; a claimed
  // original size beyond that bound (e.g. from a corrupted frame header)
  // cannot be genuine, and trusting it would let hostile input drive
  // allocation.
  if (original_size > compressed.size() * 255 + 64) {
    return Status::Corruption("lz4: implausible original size");
  }
  std::string out;
  out.reserve(original_size);
  size_t pos = 0;
  const size_t n = compressed.size();
  auto read_extended = [&](size_t* len) {
    while (pos < n) {
      const uint8_t b = static_cast<uint8_t>(compressed[pos++]);
      *len += b;
      if (b != 255) return true;
    }
    return false;
  };
  while (pos < n) {
    const uint8_t token = static_cast<uint8_t>(compressed[pos++]);
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !read_extended(&lit_len)) {
      return Status::Corruption("lz4: truncated literal length");
    }
    if (n - pos < lit_len) return Status::Corruption("lz4: truncated literals");
    if (out.size() + lit_len > original_size) {
      return Status::Corruption("lz4: output exceeds declared size");
    }
    out.append(compressed.data() + pos, lit_len);
    pos += lit_len;
    if (pos >= n) break;  // final sequence has no match part
    if (n - pos < 2) return Status::Corruption("lz4: truncated offset");
    const size_t offset = static_cast<uint8_t>(compressed[pos]) |
                          (static_cast<size_t>(
                               static_cast<uint8_t>(compressed[pos + 1]))
                           << 8);
    pos += 2;
    size_t match_len = (token & 0xF);
    if (match_len == 15 && !read_extended(&match_len)) {
      return Status::Corruption("lz4: truncated match length");
    }
    match_len += kMinMatch;
    if (offset == 0 || offset > out.size()) {
      return Status::Corruption("lz4: bad offset");
    }
    if (out.size() + match_len > original_size) {
      return Status::Corruption("lz4: output exceeds declared size");
    }
    // Byte-by-byte copy: offsets < match_len intentionally replicate.
    size_t src = out.size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      out.push_back(out[src + i]);
    }
  }
  if (out.size() != original_size) {
    return Status::Corruption("lz4: size mismatch after decompression");
  }
  return out;
}

std::string CompressBlock(std::string_view input) {
  std::string out;
  const uint64_t size = input.size();
  out.append(reinterpret_cast<const char*>(&size), sizeof(size));
  out += Lz4LikeCompress(input);
  return out;
}

Result<std::string> DecompressBlock(std::string_view block) {
  if (block.size() < sizeof(uint64_t)) {
    return Status::Corruption("block: truncated size header");
  }
  uint64_t size = 0;
  std::memcpy(&size, block.data(), sizeof(size));
  return Lz4LikeDecompress(block.substr(sizeof(size)),
                           static_cast<size_t>(size));
}

}  // namespace expbsi
