#include "storage/bsi_store.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "obs/metrics.h"

namespace expbsi {
namespace {

// File format: [magic u32][blob count u64] then per blob
// [segment u16][kind u8][id u64][date u32][len u32][bytes].
constexpr uint32_t kStoreMagic = 0x45425331;  // "EBS1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

}  // namespace

uint64_t BlobFingerprint(std::string_view bytes) {
  // Chained Mix64 over 8-byte words plus a zero-padded tail; seeding with
  // the length separates blobs that differ only by trailing zero bytes.
  uint64_t h = Mix64(bytes.size() + 0x9e3779b97f4a7c15ull);
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, bytes.data() + i, 8);
    h = Mix64(h ^ word);
  }
  if (i < bytes.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, bytes.data() + i, bytes.size() - i);
    h = Mix64(h ^ tail);
  }
  return h;
}

size_t BsiStoreKeyHash::operator()(const BsiStoreKey& k) const {
  uint64_t h = Mix64(k.id);
  h = Mix64(h ^ (static_cast<uint64_t>(k.segment) << 40) ^
            (static_cast<uint64_t>(k.kind) << 34) ^ k.date);
  return static_cast<size_t>(h);
}

void BsiStore::Put(const BsiStoreKey& key, std::string bytes) {
  static obs::Counter& puts = obs::GetCounter("store.puts");
  static obs::Counter& put_bytes = obs::GetCounter("store.put_bytes");
  puts.Add();
  put_bytes.Add(bytes.size());
  const uint64_t fingerprint = BlobFingerprint(bytes);
  auto it = blobs_.find(key);
  if (it != blobs_.end()) {
    total_bytes_ -= it->second.bytes.size();
    total_bytes_ += bytes.size();
    it->second.bytes = std::move(bytes);
    it->second.fingerprint = fingerprint;
    return;
  }
  total_bytes_ += bytes.size();
  blobs_.emplace(key, Entry{std::move(bytes), fingerprint});
}

void BsiStore::PutRecovered(const BsiStoreKey& key, std::string bytes,
                            uint64_t fingerprint) {
  auto it = blobs_.find(key);
  if (it != blobs_.end()) {
    total_bytes_ -= it->second.bytes.size();
    total_bytes_ += bytes.size();
    it->second = Entry{std::move(bytes), fingerprint, /*recovered=*/true};
    return;
  }
  total_bytes_ += bytes.size();
  blobs_.emplace(key, Entry{std::move(bytes), fingerprint,
                            /*recovered=*/true});
}

bool BsiStore::WasRecovered(const BsiStoreKey& key) const {
  auto it = blobs_.find(key);
  return it != blobs_.end() && it->second.recovered;
}

bool BsiStore::Contains(const BsiStoreKey& key) const {
  return blobs_.find(key) != blobs_.end();
}

Result<const std::string*> BsiStore::Get(const BsiStoreKey& key) const {
  static obs::Counter& gets = obs::GetCounter("store.gets");
  gets.Add();
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    if (fi->Evaluate(fault_sites::kWarehouseGet).fail) {
      return Status::Unavailable("bsi store: injected warehouse failure");
    }
  }
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("bsi store: no blob for key");
  }
  return &it->second.bytes;
}

Result<uint64_t> BsiStore::Fingerprint(const BsiStoreKey& key) const {
  auto it = blobs_.find(key);
  if (it == blobs_.end()) {
    return Status::NotFound("bsi store: no blob for key");
  }
  return it->second.fingerprint;
}

Status BsiStore::SaveToFile(const std::string& path) const {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("bsi store: cannot open " + path +
                                   " for writing");
  }
  const uint64_t count = blobs_.size();
  if (!WriteBytes(file.get(), &kStoreMagic, sizeof(kStoreMagic)) ||
      !WriteBytes(file.get(), &count, sizeof(count))) {
    return Status::Corruption("bsi store: short write of header");
  }
  for (const auto& [key, entry] : blobs_) {
    const std::string& bytes = entry.bytes;
    const uint8_t kind = static_cast<uint8_t>(key.kind);
    const uint32_t len = static_cast<uint32_t>(bytes.size());
    if (!WriteBytes(file.get(), &key.segment, sizeof(key.segment)) ||
        !WriteBytes(file.get(), &kind, sizeof(kind)) ||
        !WriteBytes(file.get(), &key.id, sizeof(key.id)) ||
        !WriteBytes(file.get(), &key.date, sizeof(key.date)) ||
        !WriteBytes(file.get(), &len, sizeof(len)) ||
        !WriteBytes(file.get(), bytes.data(), bytes.size())) {
      return Status::Corruption("bsi store: short write of blob");
    }
  }
  if (std::fflush(file.get()) != 0) {
    return Status::Corruption("bsi store: flush failed");
  }
  return Status::OK();
}

Result<BsiStore> BsiStore::LoadFromFile(const std::string& path) {
  Result<uint64_t> file_size = fileio::FileSizeOf(path);
  if (!file_size.ok()) {
    return Status::NotFound("bsi store: cannot open " + path);
  }
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::NotFound("bsi store: cannot open " + path);
  }
  uint32_t magic = 0;
  uint64_t count = 0;
  if (!ReadBytes(file.get(), &magic, sizeof(magic)) ||
      !ReadBytes(file.get(), &count, sizeof(count))) {
    return Status::Corruption("bsi store: truncated header");
  }
  if (magic != kStoreMagic) {
    return Status::Corruption("bsi store: bad magic");
  }
  // Every allocation below is bounded by what the file can actually hold:
  // a hostile count / len header fails here instead of driving a huge
  // resize.
  constexpr uint64_t kRecordHeaderBytes = 2 + 1 + 8 + 4 + 4;
  uint64_t remaining = file_size.value() - sizeof(magic) - sizeof(count);
  if (count > remaining / kRecordHeaderBytes) {
    return Status::Corruption("bsi store: blob count exceeds file size");
  }
  BsiStore store;
  for (uint64_t i = 0; i < count; ++i) {
    BsiStoreKey key;
    uint8_t kind = 0;
    uint32_t len = 0;
    if (!ReadBytes(file.get(), &key.segment, sizeof(key.segment)) ||
        !ReadBytes(file.get(), &kind, sizeof(kind)) ||
        !ReadBytes(file.get(), &key.id, sizeof(key.id)) ||
        !ReadBytes(file.get(), &key.date, sizeof(key.date)) ||
        !ReadBytes(file.get(), &len, sizeof(len))) {
      return Status::Corruption("bsi store: truncated record header");
    }
    remaining -= kRecordHeaderBytes;
    if (kind > 3) return Status::Corruption("bsi store: bad kind byte");
    key.kind = static_cast<BsiKind>(kind);
    if (len > remaining) {
      return Status::Corruption("bsi store: blob length exceeds file size");
    }
    std::string bytes(len, '\0');
    if (!ReadBytes(file.get(), bytes.data(), len)) {
      return Status::Corruption("bsi store: truncated blob body");
    }
    remaining -= len;
    store.Put(key, std::move(bytes));
  }
  return store;
}

}  // namespace expbsi
