#ifndef EXPBSI_STORAGE_COLUMN_STORE_H_
#define EXPBSI_STORAGE_COLUMN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "expdata/schema.h"

namespace expbsi {

// Columnar storage of the "normal format" tables the paper benchmarks
// against (§6.1): metric log rows as
//   (segment-id UInt16, date UInt32, metric-id UInt32, user-id UInt32,
//    value UInt32)
// and expose log rows as
//   (segment-id UInt16, strategy-id UInt32, bucket-id UInt16,
//    first-expose-date UInt32) + the user-id needed for the join.
//
// These stores exist for two purposes: measuring the storage cost of the
// normal representation (Table 4) and feeding the baseline engines
// (src/engine/normal_engine).

class NormalMetricTable {
 public:
  void Append(uint16_t segment, const MetricRow& row);
  void Reserve(size_t rows);

  size_t NumRows() const { return segment_.size(); }

  // Sorts rows by (segment, metric, date, unit): the clustered order a
  // ClickHouse-style primary key would give, which is what the paper's
  // compressed sizes reflect.
  void SortForStorage();

  // Raw (uncompressed) byte size: 18 bytes per row.
  size_t RawBytes() const { return NumRows() * 18; }

  // Byte size after LZ4-style compression of each column.
  size_t CompressedBytes() const;

  // Column accessors for scans.
  const std::vector<uint16_t>& segment() const { return segment_; }
  const std::vector<uint32_t>& date() const { return date_; }
  const std::vector<uint32_t>& metric_id() const { return metric_id_; }
  const std::vector<uint32_t>& unit_id() const { return unit_id_; }
  const std::vector<uint32_t>& value() const { return value_; }

 private:
  std::vector<uint16_t> segment_;
  std::vector<uint32_t> date_;
  std::vector<uint32_t> metric_id_;
  std::vector<uint32_t> unit_id_;
  std::vector<uint32_t> value_;
};

class NormalExposeTable {
 public:
  void Append(uint16_t segment, uint16_t bucket, const ExposeRow& row);
  void Reserve(size_t rows);

  size_t NumRows() const { return segment_.size(); }

  void SortForStorage();

  // 16 bytes per row (u16 + u32 + u16 + u32 + u32).
  size_t RawBytes() const { return NumRows() * 16; }
  size_t CompressedBytes() const;

  const std::vector<uint16_t>& segment() const { return segment_; }
  const std::vector<uint32_t>& strategy_id() const { return strategy_id_; }
  const std::vector<uint16_t>& bucket() const { return bucket_; }
  const std::vector<uint32_t>& first_expose_date() const {
    return first_expose_date_;
  }
  const std::vector<uint32_t>& unit_id() const { return unit_id_; }

 private:
  std::vector<uint16_t> segment_;
  std::vector<uint32_t> strategy_id_;
  std::vector<uint16_t> bucket_;
  std::vector<uint32_t> first_expose_date_;
  std::vector<uint32_t> unit_id_;
};

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_COLUMN_STORE_H_
