#ifndef EXPBSI_STORAGE_SNAPSHOT_H_
#define EXPBSI_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/bsi_store.h"

namespace expbsi {

// Crash-consistent persistence for the BSI warehouse (DESIGN.md §6).
//
// A snapshot of a BsiStore is a directory of per-segment files plus a
// versioned manifest:
//
//   seg-<segment>-<version>.snap   one file per warehouse segment
//   MANIFEST-<version>             the commit record for that version
//
// Every file is published with write-temp -> fsync -> atomic-rename
// (fileio::WriteFileAtomic), and a version is LIVE only once its manifest
// rename lands -- a kill at any byte offset leaves either the previous
// snapshot or the new one fully intact, never a torn mix. Recovery scans
// manifests newest-first and takes the first one that validates; segment
// files are checked block by block (CRC32C + the Put-time BlobFingerprint),
// and a bad file is quarantined and *reported*, never silently dropped.

// Everything Recover() observed, in the style of QueryStats::DegradedInfo:
// losses are explicit, enumerated and classified.
struct RecoveryReport {
  // Version of the manifest recovery loaded from (0 = none found).
  uint64_t manifest_version = 0;
  // Newer manifests that existed but failed validation (torn commit of a
  // later version; recovery fell back past them).
  uint32_t manifests_skipped = 0;
  // Segments loaded intact, and segments whose file was missing/corrupt.
  // Both sorted and unique; their union is the manifest's segment list.
  std::vector<uint16_t> segments_recovered;
  std::vector<uint16_t> lost_segments;
  // Files renamed to <name>.quarantine for offline inspection.
  std::vector<std::string> quarantined_files;
  // One classified line per validation failure (taxonomy: truncated /
  // torn / bitflip / version-mismatch / fingerprint mismatch).
  std::vector<std::string> errors;
  uint64_t blobs_recovered = 0;
  uint64_t bytes_recovered = 0;

  bool fully_recovered() const { return lost_segments.empty(); }
};

struct SnapshotWriteStats {
  uint64_t version = 0;
  uint32_t segment_files = 0;
  uint64_t bytes_written = 0;
  // Files of expired versions removed after the commit (best effort).
  uint32_t gc_removed = 0;
};

class SnapshotWriter {
 public:
  // Writes a new snapshot version of `store` into `dir` (created if
  // missing). On success the new version is durably committed and all but
  // the immediately preceding version is garbage-collected. On failure the
  // previously committed snapshot is untouched (at most stale .tmp /
  // uncommitted files remain, which recovery ignores and the next
  // successful Write cleans up).
  static Result<SnapshotWriteStats> Write(const BsiStore& store,
                                          const std::string& dir);

 private:
  // The write itself; the public wrapper adds the observability shell
  // (snapshot.* counters and the trace span).
  static Result<SnapshotWriteStats> WriteImpl(const BsiStore& store,
                                              const std::string& dir);
};

class SnapshotReader {
 public:
  // Rebuilds a store from the newest valid manifest in `dir`. See
  // BsiStore::Recover (which delegates here) for the contract. `report`
  // may be nullptr.
  static Result<BsiStore> Recover(const std::string& dir,
                                  RecoveryReport* report);

  // Versions that have a manifest file in `dir`, ascending. Purely
  // name-based (no validation); empty when the directory is missing.
  static std::vector<uint64_t> ListManifestVersions(const std::string& dir);
};

// Format constants, exposed for tests and the fuzz harness.
inline constexpr uint32_t kSnapshotFormatVersion = 1;
inline constexpr uint32_t kSegmentFileMagic = 0x45425353;   // "EBSS"
inline constexpr uint32_t kManifestFileMagic = 0x4542534D;  // "EBSM"
// Per-record header inside a segment file:
// [segment u16][kind u8][id u64][date u32][len u32][fingerprint u64].
inline constexpr size_t kSnapshotRecordHeaderBytes = 2 + 1 + 8 + 4 + 4 + 8;
// Segment-file header: [magic u32][format u32][segment u16][version u64]
// [blob count u64].
inline constexpr size_t kSegmentFileHeaderBytes = 4 + 4 + 2 + 8 + 8;
// Read caps: a snapshot file larger than this is refused before any
// allocation sized from its metadata.
inline constexpr uint64_t kMaxSegmentFileBytes = 1ull << 30;
inline constexpr uint64_t kMaxManifestBytes = 16ull << 20;

// File-name helpers (version rendered as 16 hex digits so lexicographic
// order matches numeric order).
std::string SnapshotManifestName(uint64_t version);
std::string SnapshotSegmentFileName(uint16_t segment, uint64_t version);

}  // namespace expbsi

#endif  // EXPBSI_STORAGE_SNAPSHOT_H_
