#ifndef EXPBSI_WAL_WAL_H_
#define EXPBSI_WAL_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "expdata/schema.h"

namespace expbsi {

// Append-only, segmented write-ahead log of experiment events (DESIGN.md
// §8). The WAL is the ingestion half of the snapshot+WAL recovery contract:
// a snapshot is a point-in-time image of the warehouse tagged with the last
// WAL sequence it contains, and recovery is "load the newest good snapshot,
// then replay the WAL tail with larger sequence numbers".
//
// On-disk layout of a WAL directory:
//
//   wal-<first_sequence:016x>.log    one segment per size-threshold roll
//
// A segment is a CRC-closed header followed by CRC-framed records:
//
//   segment header  [magic u32][format u32][first_seq u64][crc u32]
//   record          [len u32][seq u64][count u32][header crc u32]
//                   [count * 37 event bytes][payload crc u32]
//
// `len` is the payload length and must equal count * kWalEventBytes; the
// header CRC closes the 16 header bytes, the payload CRC the payload. The
// double framing means replay can classify exactly what it hit: a truncated
// header or payload (torn tail of a killed process), a CRC mismatch (torn
// write or bit rot), a sequence discontinuity. Replay stops cleanly at the
// first bad record, reports it in a RecoveryReport-style taxonomy, and
// WalWriter::Open never appends after a tear -- it repairs the tail down to
// its intact prefix and starts a fresh segment, so every record that ever
// replayed keeps replaying.

// What one WAL event describes -- the streaming mirror of the three
// normal-format row schemas (ExposeRow / MetricRow / DimensionRow).
enum class WalEventKind : uint8_t { kExpose = 0, kMetric = 1, kDimension = 2 };

struct WalEvent {
  WalEventKind kind = WalEventKind::kMetric;
  // strategy_id / metric_id / dimension_id, by kind.
  uint64_t id = 0;
  UnitId analysis_unit_id = 0;
  // Expose events only (the randomization unit the bucket derives from).
  UnitId randomization_unit_id = 0;
  // Event date; for expose events this is the first-expose date.
  Date date = 0;
  // Metric / dimension value; unused (0) for expose events.
  uint64_t value = 0;

  friend bool operator==(const WalEvent& a, const WalEvent& b) {
    return a.kind == b.kind && a.id == b.id &&
           a.analysis_unit_id == b.analysis_unit_id &&
           a.randomization_unit_id == b.randomization_unit_id &&
           a.date == b.date && a.value == b.value;
  }
};

// One appended batch: the atomic unit of the log. Either the whole record
// replays or none of it does.
struct WalRecord {
  uint64_t sequence = 0;
  std::vector<WalEvent> events;
};

// Everything replay observed, in the style of storage/snapshot.h's
// RecoveryReport: losses are explicit, enumerated and classified.
struct WalRecoveryReport {
  uint32_t segments_scanned = 0;
  // Segments abandoned after the first bad record (their records are NOT
  // replayed; a mid-log tear is reported, never silently skipped over).
  uint32_t segments_dropped = 0;
  uint64_t records_replayed = 0;
  uint64_t events_replayed = 0;
  uint64_t bytes_replayed = 0;
  // Sequence of the last replayed record (0 = empty log). An intact but
  // record-less trailing segment raises this to its first_sequence - 1, so
  // a reopened writer never reissues sequence numbers the segment name has
  // already promised.
  uint64_t last_sequence = 0;
  // True when replay stopped before the physical end of the log.
  bool tail_torn = false;
  // One classified line per validation failure (taxonomy: truncated header /
  // truncated payload / header crc / payload crc / length mismatch /
  // sequence gap / bad magic / version-mismatch / oversized).
  std::vector<std::string> errors;

  bool clean() const { return !tail_torn && errors.empty(); }
};

struct WalOptions {
  // Size threshold at which Append rolls to a new segment file. A record is
  // never split: the roll happens before the append that would cross it.
  uint64_t segment_bytes = 4ull << 20;
  // fsync after every append (the durable default). When off, durability
  // barriers are explicit Sync() calls and the roll/close points.
  bool sync_each_append = true;
  // Leader-based group commit: Append becomes thread-safe and concurrent
  // appends share fsync barriers. One appender at a time acts as the sync
  // leader; everyone whose record was written before the leader's flush
  // began is covered by that one fsync, and later writers wait for the
  // next leader. The durability contract is unchanged -- Append still
  // returns only once ITS record is on disk -- but a burst of N concurrent
  // appends costs far fewer than N fsyncs.
  bool group_commit = false;
};

// Format constants, exposed for tests and the fuzz harness.
inline constexpr uint32_t kWalSegmentMagic = 0x4542574C;  // "EBWL"
inline constexpr uint32_t kWalFormatVersion = 1;
// [magic u32][format u32][first_seq u64] + header crc u32.
inline constexpr size_t kWalSegmentHeaderBytes = 4 + 4 + 8 + 4;
// [kind u8][id u64][analysis u64][randomization u64][date u32][value u64].
inline constexpr size_t kWalEventBytes = 1 + 8 + 8 + 8 + 4 + 8;
// [len u32][seq u64][count u32] + header crc u32 (payload crc follows the
// payload).
inline constexpr size_t kWalRecordHeaderBytes = 4 + 8 + 4 + 4;
// Read cap: a segment file larger than this is refused before any
// allocation sized from its metadata.
inline constexpr uint64_t kMaxWalSegmentBytes = 1ull << 30;
// Event-count cap per record, checked before trusting `len`.
inline constexpr uint32_t kMaxWalEventsPerRecord = 1u << 22;

// "wal-<first_sequence:016x>.log" (hex-padded so lexicographic order is
// sequence order, like the snapshot version names).
std::string WalSegmentFileName(uint64_t first_sequence);
// Inverse; false if `name` is not a WAL segment file name.
bool ParseWalSegmentFileName(const std::string& name,
                             uint64_t* first_sequence);

// Replays every intact record in `dir`, ascending by sequence, stopping at
// the first torn or corrupt record (everything before the tear is returned;
// everything after is counted and classified in `report`, never silently
// skipped). A missing directory is an empty log, not an error. `report` may
// be nullptr.
Result<std::vector<WalRecord>> ReplayWal(const std::string& dir,
                                         WalRecoveryReport* report);

class WalWriter {
 public:
  // Opens (creating if missing) the WAL in `dir`: replays the existing log
  // to find its intact prefix, repairs a torn tail down to that prefix, and
  // starts a fresh segment at last_sequence + 1. The replayed records are
  // returned through `replayed` (and the scan through `report`) when
  // non-null, so recovery needs only one pass over the log.
  static Result<std::unique_ptr<WalWriter>> Open(
      const std::string& dir, const WalOptions& options,
      WalRecoveryReport* report = nullptr,
      std::vector<WalRecord>* replayed = nullptr);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one record holding `events` and returns its sequence number.
  // With options.sync_each_append the record is durable on return. On a
  // clean failure (injected kFail, roll failure) nothing is written and the
  // sequence is not consumed; after a simulated crash the writer is dead
  // and every further call returns Unavailable.
  Result<uint64_t> Append(const std::vector<WalEvent>& events);

  // Explicit durability barrier (no-op when nothing is pending).
  Status Sync();

  // Removes segments whose records all have sequence <= `sequence` (the
  // checkpoint trim after a snapshot commit). The active segment is never
  // removed. Returns the number of files removed.
  Result<uint32_t> TruncateThrough(uint64_t sequence);

  // Sequence the next Append will get.
  uint64_t next_sequence() const { return next_sequence_; }
  // First sequence of the active segment.
  uint64_t active_first_sequence() const { return active_first_sequence_; }
  uint64_t active_segment_bytes() const { return active_segment_bytes_; }
  bool dead() const { return dead_; }
  const std::string& dir() const { return dir_; }
  // Physical fsync barriers issued so far (group commit batches many acked
  // appends behind one of these; without batching it tracks the appends).
  uint64_t fsyncs_performed() const {
    return fsyncs_performed_.load(std::memory_order_relaxed);
  }

 private:
  WalWriter(std::string dir, WalOptions options);

  // Opens a new segment file starting at `first_sequence` (the wal.roll
  // fault site). Leaves the writer segment-less on failure.
  Status StartSegment(uint64_t first_sequence);
  Status CloseSegment();

  // The group-commit paths (options_.group_commit). AppendGrouped serializes
  // the write under mu_, then blocks in WaitDurableLocked until an fsync
  // covering `sequence` has completed -- either one it leads itself or one
  // a concurrent appender led while it waited.
  Result<uint64_t> AppendGrouped(const std::vector<WalEvent>& events);
  Status WaitDurableLocked(std::unique_lock<std::mutex>& lock,
                           uint64_t sequence);

  std::string dir_;
  WalOptions options_;
  std::FILE* file_ = nullptr;
  std::string active_path_;
  uint64_t active_first_sequence_ = 1;
  uint64_t active_segment_bytes_ = 0;
  uint64_t next_sequence_ = 1;
  bool dead_ = false;
  bool unsynced_ = false;

  // Group-commit state, all under mu_ except the relaxed counter.
  std::mutex mu_;
  std::condition_variable cv_;
  bool sync_in_flight_ = false;
  uint64_t durable_sequence_ = 0;  // highest sequence known to be on disk
  std::atomic<uint64_t> fsyncs_performed_{0};
};

}  // namespace expbsi

#endif  // EXPBSI_WAL_WAL_H_
