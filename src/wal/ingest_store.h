#ifndef EXPBSI_WAL_INGEST_STORE_H_
#define EXPBSI_WAL_INGEST_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/experiment_data.h"
#include "storage/snapshot.h"
#include "wal/delta_builder.h"
#include "wal/wal.h"

namespace expbsi {

// Snapshot + WAL point-in-time recovery (DESIGN.md §8.4): the streaming
// warehouse. An IngestStore owns
//   * a live ExperimentBsiData kept current by DeltaBuilder merges,
//   * a WalWriter every ingested batch is appended to BEFORE it is merged,
//   * a snapshot directory it checkpoints into.
//
// Recovery contract: Open() loads the newest good snapshot (whose meta blob
// records the WAL sequence it contains), then replays only the WAL records
// with a larger sequence. A crash between the snapshot commit and the WAL
// trim is therefore harmless -- the overlapping records are skipped by
// sequence, never applied twice. A crash mid-append loses at most the
// record being appended (WalWriter's torn-tail repair), and everything
// durable replays deterministically: same log, same store, bit for bit.
struct IngestOptions {
  WalOptions wal;
  // Shape of the live data; must stay fixed for the lifetime of the store
  // (it is persisted in the snapshot meta blob and validated on recovery).
  int num_segments = 1;
  int num_buckets = 0;
  bool bucket_equals_segment = true;
};

struct IngestRecoveryReport {
  RecoveryReport snapshot;
  WalRecoveryReport wal;
  // True when no usable snapshot existed and the store started empty.
  bool cold_start = false;
  // WAL sequence the snapshot contained (0 = cold start).
  uint64_t checkpoint_sequence = 0;
  // WAL records / events actually applied on top of the snapshot.
  uint64_t records_applied = 0;
  uint64_t events_applied = 0;
};

struct IngestCheckpointStats {
  SnapshotWriteStats snapshot;
  // WAL sequence the checkpoint covers and segment files trimmed after it.
  uint64_t sequence = 0;
  uint32_t wal_segments_removed = 0;
};

// Format of the snapshot meta blob (BsiKind::kState, id 0).
inline constexpr uint32_t kIngestMetaFormatVersion = 1;
// kState blob ids.
inline constexpr uint64_t kIngestMetaBlobId = 0;
inline constexpr uint64_t kIngestEncoderBlobId = 1;

class IngestStore {
 public:
  // Recovers (or cold-starts) the store: snapshot first, WAL tail second.
  // A snapshot that exists but is partially lost or shape-incompatible
  // fails with Corruption -- an ingest store must not silently serve from
  // a store missing segments it will keep appending to.
  static Result<std::unique_ptr<IngestStore>> Open(
      const std::string& wal_dir, const std::string& snapshot_dir,
      const IngestOptions& options, IngestRecoveryReport* report = nullptr);

  IngestStore(const IngestStore&) = delete;
  IngestStore& operator=(const IngestStore&) = delete;

  // Appends `events` as one WAL record, then merges them into the live
  // data. The merge happens only after the append succeeded: a rejected or
  // crashed append leaves the live data untouched, so memory never gets
  // ahead of the log. Returns the record's sequence number.
  Result<uint64_t> Ingest(const std::vector<WalEvent>& events);

  // Writes a snapshot of the live data (tagged with the last ingested
  // sequence) and trims WAL segments the snapshot covers. On failure the
  // previous snapshot and the full WAL stay intact.
  Result<IngestCheckpointStats> Checkpoint();

  const ExperimentBsiData& data() const { return live_; }
  uint64_t last_sequence() const { return last_sequence_; }
  uint64_t checkpoint_sequence() const { return checkpoint_sequence_; }
  const WalWriter& wal() const { return *wal_; }
  const std::string& snapshot_dir() const { return snapshot_dir_; }

 private:
  IngestStore(std::string snapshot_dir, IngestOptions options);

  // Serializes the live data plus the kState blobs (meta + encoders).
  BsiStore BuildSnapshotStore() const;

  std::string snapshot_dir_;
  IngestOptions options_;
  ExperimentBsiData live_;
  std::unique_ptr<WalWriter> wal_;
  uint64_t last_sequence_ = 0;        // last sequence merged into live_
  uint64_t checkpoint_sequence_ = 0;  // last sequence covered by a snapshot
};

}  // namespace expbsi

#endif  // EXPBSI_WAL_INGEST_STORE_H_
