#ifndef EXPBSI_WAL_DELTA_BUILDER_H_
#define EXPBSI_WAL_DELTA_BUILDER_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "engine/experiment_data.h"
#include "expdata/schema.h"
#include "wal/wal.h"

namespace expbsi {

// Accumulates replayed WAL events into per-segment deltas and merges them
// into a live ExperimentBsiData (DESIGN.md §8.3). The builder is the
// incremental counterpart of BuildExperimentBsiData: feeding the same
// events through Add()+MergeInto() -- in any batching -- yields BSIs that
// answer every query identically to a full batch rebuild.
//
// Merge semantics per event kind:
//   * metric     -- additive: multiple events for one (metric, date, unit)
//                   sum, and a merge ADDS to the live value (a unit's daily
//                   value can be delivered in increments).
//   * dimension  -- last write wins (an attribute is a state, not a flow).
//   * expose     -- earliest first-expose date wins; merging can REBASE the
//                   live strategy's min_expose_date when a late event
//                   carries an earlier date than anything seen so far.
//
// Late-arriving analysis units get fresh positions from the segment's
// PositionEncoder (the disjoint fast path of Bsi::MergeAppend); units
// already encoded merge at their existing positions.
class DeltaBuilder {
 public:
  DeltaBuilder(int num_segments, int num_buckets, bool bucket_equals_segment);

  // Routes one event to its segment accumulator (SegmentOf on the analysis
  // unit id, the same deterministic hash the batch builders use).
  void Add(const WalEvent& event);
  void AddRecord(const WalRecord& record);

  // Events accumulated since construction / the last MergeInto.
  uint64_t num_events() const { return num_events_; }

  // Merges every accumulated delta into `data` (whose shape must match the
  // builder's constructor arguments) and clears the accumulators.
  void MergeInto(ExperimentBsiData* data);

 private:
  struct SegmentDelta {
    // strategy -> unit -> (earliest first-expose date, randomization unit).
    std::map<uint64_t, std::map<UnitId, std::pair<Date, UnitId>>> expose;
    // (metric, date) -> unit -> summed value.
    std::map<std::pair<uint64_t, Date>, std::map<UnitId, uint64_t>> metrics;
    // (dimension, date) -> unit -> last value.
    std::map<std::pair<uint32_t, Date>, std::map<UnitId, uint64_t>>
        dimensions;

    bool empty() const {
      return expose.empty() && metrics.empty() && dimensions.empty();
    }
  };

  void MergeExpose(SegmentBsiData* segment, uint64_t strategy_id,
                   const std::map<UnitId, std::pair<Date, UnitId>>& units);

  int num_segments_;
  int num_buckets_;
  bool bucket_equals_segment_;
  uint64_t num_events_ = 0;
  std::vector<SegmentDelta> deltas_;
};

}  // namespace expbsi

#endif  // EXPBSI_WAL_DELTA_BUILDER_H_
