#ifndef EXPBSI_WAL_EVENT_STREAM_H_
#define EXPBSI_WAL_EVENT_STREAM_H_

#include <cstddef>
#include <vector>

#include "expdata/generator.h"
#include "wal/wal.h"

namespace expbsi {

// Flattens a generated dataset into the event stream a streaming collector
// would have delivered: every expose / metric / dimension row of every
// segment as one WalEvent, in a TOTAL deterministic order.
//
// Ordering is the exactness contract of WAL replay (ISSUE 6 satellite 4):
// the generator emits rows grouped by segment in per-user iteration order,
// so flattening them by date alone would leave same-date events in an
// order that depends on segment count and row layout. This function orders
// by the full key (date, kind, id, analysis_unit_id) -- a strict total
// order over the dataset's rows -- so two runs (or two machines) always
// produce byte-identical WAL contents for the same dataset. Duplicate full
// keys would make "last write wins" ambiguous; the generator never emits
// them, and this function CHECK-fails if one appears.
std::vector<WalEvent> MakeWalEventStream(const Dataset& dataset);

// Splits `events` into append-batches of at most `batch_events` (>= 1)
// events each, preserving order. Each batch is one WAL record: the atomic
// replay unit.
std::vector<std::vector<WalEvent>> BatchWalEvents(
    const std::vector<WalEvent>& events, size_t batch_events);

}  // namespace expbsi

#endif  // EXPBSI_WAL_EVENT_STREAM_H_
