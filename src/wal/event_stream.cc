#include "wal/event_stream.h"

#include <algorithm>
#include <tuple>

#include "common/check.h"

namespace expbsi {
namespace {

std::tuple<Date, uint8_t, uint64_t, UnitId> OrderKey(const WalEvent& e) {
  return {e.date, static_cast<uint8_t>(e.kind), e.id, e.analysis_unit_id};
}

}  // namespace

std::vector<WalEvent> MakeWalEventStream(const Dataset& dataset) {
  std::vector<WalEvent> events;
  size_t total = 0;
  for (const SegmentData& segment : dataset.segments) {
    total += segment.expose.size() + segment.metrics.size() +
             segment.dimensions.size();
  }
  events.reserve(total);
  for (const SegmentData& segment : dataset.segments) {
    for (const ExposeRow& row : segment.expose) {
      WalEvent e;
      e.kind = WalEventKind::kExpose;
      e.id = row.strategy_id;
      e.analysis_unit_id = row.analysis_unit_id;
      e.randomization_unit_id = row.randomization_unit_id;
      e.date = row.first_expose_date;
      events.push_back(e);
    }
    for (const MetricRow& row : segment.metrics) {
      WalEvent e;
      e.kind = WalEventKind::kMetric;
      e.id = row.metric_id;
      e.analysis_unit_id = row.analysis_unit_id;
      e.date = row.date;
      e.value = row.value;
      events.push_back(e);
    }
    for (const DimensionRow& row : segment.dimensions) {
      WalEvent e;
      e.kind = WalEventKind::kDimension;
      e.id = row.dimension_id;
      e.analysis_unit_id = row.analysis_unit_id;
      e.date = row.date;
      e.value = row.value;
      events.push_back(e);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const WalEvent& a, const WalEvent& b) {
              return OrderKey(a) < OrderKey(b);
            });
  for (size_t i = 1; i < events.size(); ++i) {
    // A duplicate (date, kind, id, unit) would make replay order ambiguous.
    CHECK(OrderKey(events[i - 1]) != OrderKey(events[i]));
  }
  return events;
}

std::vector<std::vector<WalEvent>> BatchWalEvents(
    const std::vector<WalEvent>& events, size_t batch_events) {
  CHECK_GE(batch_events, 1u);
  std::vector<std::vector<WalEvent>> batches;
  batches.reserve(events.size() / batch_events + 1);
  for (size_t i = 0; i < events.size(); i += batch_events) {
    const size_t n = std::min(batch_events, events.size() - i);
    batches.emplace_back(events.begin() + i, events.begin() + i + n);
  }
  return batches;
}

}  // namespace expbsi
