#include "wal/delta_builder.h"

#include <algorithm>

#include "common/check.h"
#include "expdata/bsi_builder.h"
#include "expdata/segmenter.h"
#include "obs/metrics.h"

namespace expbsi {

DeltaBuilder::DeltaBuilder(int num_segments, int num_buckets,
                           bool bucket_equals_segment)
    : num_segments_(num_segments),
      num_buckets_(num_buckets),
      bucket_equals_segment_(bucket_equals_segment) {
  CHECK_GT(num_segments, 0);
  deltas_.resize(static_cast<size_t>(num_segments));
}

void DeltaBuilder::Add(const WalEvent& event) {
  const int seg = SegmentOf(event.analysis_unit_id, num_segments_);
  SegmentDelta& delta = deltas_[static_cast<size_t>(seg)];
  switch (event.kind) {
    case WalEventKind::kExpose: {
      auto [it, inserted] = delta.expose[event.id].try_emplace(
          event.analysis_unit_id, event.date, event.randomization_unit_id);
      if (!inserted && event.date < it->second.first) {
        // Earliest first-expose date wins; the randomization unit rides
        // along with it (it is a property of the unit, not the date).
        it->second = {event.date, event.randomization_unit_id};
      }
      break;
    }
    case WalEventKind::kMetric: {
      delta.metrics[{event.id, event.date}][event.analysis_unit_id] +=
          event.value;
      break;
    }
    case WalEventKind::kDimension: {
      delta.dimensions[{static_cast<uint32_t>(event.id), event.date}]
                      [event.analysis_unit_id] = event.value;
      break;
    }
  }
  ++num_events_;
}

void DeltaBuilder::AddRecord(const WalRecord& record) {
  for (const WalEvent& event : record.events) Add(event);
}

void DeltaBuilder::MergeExpose(
    SegmentBsiData* segment, uint64_t strategy_id,
    const std::map<UnitId, std::pair<Date, UnitId>>& units) {
  auto it = segment->expose.find(strategy_id);
  if (it == segment->expose.end()) {
    // First sight of this strategy in this segment: the batch builder
    // already does exactly what we need.
    std::vector<ExposeRow> rows;
    rows.reserve(units.size());
    for (const auto& [unit, date_and_rand] : units) {
      ExposeRow row;
      row.strategy_id = strategy_id;
      row.analysis_unit_id = unit;
      row.randomization_unit_id = date_and_rand.second;
      row.first_expose_date = date_and_rand.first;
      rows.push_back(row);
    }
    segment->expose.emplace(
        strategy_id,
        BuildExposeBsi(rows, segment->encoder,
                       bucket_equals_segment_ ? 0 : num_buckets_));
    return;
  }

  ExposeBsi& live = it->second;
  Date delta_min = units.begin()->second.first;
  for (const auto& [unit, date_and_rand] : units) {
    delta_min = std::min(delta_min, date_and_rand.first);
  }
  if (delta_min < live.min_expose_date) {
    // A late event carries an earlier first-expose date than anything in
    // the live BSI: rebase every stored offset so the new minimum maps to
    // offset 1 and existing units keep their absolute dates.
    live.offset =
        Bsi::AddScalar(live.offset, live.min_expose_date - delta_min);
    live.min_expose_date = delta_min;
  }

  std::vector<std::pair<uint32_t, uint64_t>> offset_pairs;
  std::vector<std::pair<uint32_t, uint64_t>> bucket_pairs;
  for (const auto& [unit, date_and_rand] : units) {
    const uint32_t pos = segment->encoder.Encode(unit);
    const uint64_t offset = date_and_rand.first - live.min_expose_date + 1;
    if (!live.offset.Exists(pos)) {
      offset_pairs.emplace_back(pos, offset);
      if (!bucket_equals_segment_) {
        bucket_pairs.emplace_back(
            pos,
            static_cast<uint64_t>(
                BucketOf(date_and_rand.second, num_buckets_)) +
                1);
      }
    } else if (offset < live.offset.Get(pos)) {
      // The unit was already exposed but this delta saw an earlier date.
      live.offset.SetValue(pos, offset);
    }
  }
  live.offset.MergeAppend(Bsi::FromPairs(std::move(offset_pairs)));
  if (!bucket_equals_segment_) {
    live.bucket.MergeAppend(Bsi::FromPairs(std::move(bucket_pairs)));
  }
}

void DeltaBuilder::MergeInto(ExperimentBsiData* data) {
  CHECK_EQ(data->num_segments, num_segments_);
  CHECK_EQ(static_cast<int>(data->segments.size()), num_segments_);
  static obs::Counter& merges = obs::GetCounter("wal.delta_merges");
  static obs::Counter& merged_events =
      obs::GetCounter("wal.delta_merged_events");
  merges.Add();
  merged_events.Add(num_events_);
  for (int seg = 0; seg < num_segments_; ++seg) {
    SegmentDelta& delta = deltas_[static_cast<size_t>(seg)];
    if (delta.empty()) continue;
    SegmentBsiData& live = data->segments[static_cast<size_t>(seg)];

    for (const auto& [strategy_id, units] : delta.expose) {
      MergeExpose(&live, strategy_id, units);
    }

    for (const auto& [key, units] : delta.metrics) {
      std::vector<std::pair<uint32_t, uint64_t>> pairs;
      pairs.reserve(units.size());
      for (const auto& [unit, sum] : units) {
        pairs.emplace_back(live.encoder.Encode(unit), sum);
      }
      Bsi value = Bsi::FromPairs(std::move(pairs));
      auto it = live.metrics.find(key);
      if (it == live.metrics.end()) {
        MetricBsi bsi;
        bsi.metric_id = key.first;
        bsi.date = key.second;
        bsi.value = std::move(value);
        live.metrics.emplace(key, std::move(bsi));
      } else {
        it->second.value.MergeAppend(value);
      }
    }

    for (const auto& [key, units] : delta.dimensions) {
      auto it = live.dimensions.find(key);
      if (it == live.dimensions.end()) {
        std::vector<std::pair<uint32_t, uint64_t>> pairs;
        pairs.reserve(units.size());
        for (const auto& [unit, value] : units) {
          pairs.emplace_back(live.encoder.Encode(unit), value);
        }
        DimensionBsi bsi;
        bsi.dimension_id = key.first;
        bsi.date = key.second;
        bsi.value = Bsi::FromPairs(std::move(pairs));
        live.dimensions.emplace(key, std::move(bsi));
      } else {
        Bsi& value = it->second.value;
        std::vector<std::pair<uint32_t, uint64_t>> fresh;
        for (const auto& [unit, v] : units) {
          const uint32_t pos = live.encoder.Encode(unit);
          if (value.Exists(pos)) {
            value.SetValue(pos, v);  // last write wins
          } else if (v != 0) {
            fresh.emplace_back(pos, v);
          }
        }
        value.MergeAppend(Bsi::FromPairs(std::move(fresh)));
      }
    }

    delta = SegmentDelta{};
  }
  num_events_ = 0;
}

}  // namespace expbsi
