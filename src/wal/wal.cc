#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.h"
#include "common/crc32c.h"
#include "common/fault_injector.h"
#include "common/file_io.h"
#include "common/hash.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expbsi {
namespace {

constexpr char kWalFilePrefix[] = "wal-";
constexpr char kWalFileSuffix[] = ".log";

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

std::string ErrnoText() { return std::strerror(errno); }

// Flush + fsync (the fileio helpers are file-local to file_io.cc).
Status FlushAndSync(std::FILE* f, const std::string& path) {
  if (std::fflush(f) != 0) {
    return Status::Unavailable("wal: flush failed for " + path + ": " +
                               ErrnoText());
  }
  if (::fsync(::fileno(f)) != 0) {
    return Status::Unavailable("wal: fsync failed for " + path + ": " +
                               ErrnoText());
  }
  return Status::OK();
}

Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return Status::OK();
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("wal: directory fsync failed for " + dir +
                               ": " + ErrnoText());
  }
  return Status::OK();
}

void EncodeEvent(std::string* out, const WalEvent& event) {
  PutU8(out, static_cast<uint8_t>(event.kind));
  PutU64(out, event.id);
  PutU64(out, event.analysis_unit_id);
  PutU64(out, event.randomization_unit_id);
  PutU32(out, event.date);
  PutU64(out, event.value);
}

// Decodes one event from exactly kWalEventBytes bytes. The caller has
// already CRC-verified the payload; a bad kind byte here means the record
// was written corrupt (the wal.append kCorrupt path), so it is still a
// validation failure, not a CHECK.
bool DecodeEvent(const char* p, WalEvent* event) {
  const uint8_t kind = static_cast<uint8_t>(p[0]);
  if (kind > static_cast<uint8_t>(WalEventKind::kDimension)) return false;
  event->kind = static_cast<WalEventKind>(kind);
  event->id = ReadU64(p + 1);
  event->analysis_unit_id = ReadU64(p + 9);
  event->randomization_unit_id = ReadU64(p + 17);
  event->date = ReadU32(p + 25);
  event->value = ReadU64(p + 29);
  return true;
}

std::string EncodeRecord(uint64_t sequence,
                         const std::vector<WalEvent>& events) {
  std::string payload;
  payload.reserve(events.size() * kWalEventBytes);
  for (const WalEvent& event : events) EncodeEvent(&payload, event);
  std::string out;
  out.reserve(kWalRecordHeaderBytes + payload.size() + 4);
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  PutU64(&out, sequence);
  PutU32(&out, static_cast<uint32_t>(events.size()));
  PutU32(&out, Crc32c(out.data(), out.size()));
  out.append(payload);
  PutU32(&out, Crc32c(payload.data(), payload.size()));
  return out;
}

std::string EncodeSegmentHeader(uint64_t first_sequence) {
  std::string out;
  out.reserve(kWalSegmentHeaderBytes);
  PutU32(&out, kWalSegmentMagic);
  PutU32(&out, kWalFormatVersion);
  PutU64(&out, first_sequence);
  PutU32(&out, Crc32c(out.data(), out.size()));
  return out;
}

// Result of scanning one segment file's bytes.
struct SegmentScan {
  std::string name;
  uint64_t first_sequence = 0;
  size_t record_begin = 0;  // range into the replayed record vector
  size_t record_end = 0;
  bool clean = false;
};

// Parses one segment, appending intact records to `records`. Returns true
// when the whole segment validated; on a tear the classified error is
// appended to `report->errors` and parsing stops. `expected_first` is the
// continuity requirement (0 = first segment of the log, any start allowed,
// since checkpoints trim leading segments).
bool ScanSegment(const std::string& name, const std::string& bytes,
                 uint64_t expected_first, std::vector<WalRecord>* records,
                 WalRecoveryReport* report, uint64_t* first_out) {
  const auto tear = [&](const std::string& what) {
    report->errors.push_back(name + ": " + what);
    return false;
  };
  if (bytes.size() < kWalSegmentHeaderBytes) {
    return tear("truncated segment header (" + std::to_string(bytes.size()) +
                " bytes)");
  }
  const uint32_t header_crc = ReadU32(bytes.data() + 16);
  if (header_crc != Crc32c(bytes.data(), 16)) {
    return tear("segment header crc mismatch (torn or bitflipped header)");
  }
  const uint32_t magic = ReadU32(bytes.data());
  if (magic != kWalSegmentMagic) return tear("bad segment magic");
  const uint32_t format = ReadU32(bytes.data() + 4);
  if (format != kWalFormatVersion) {
    return tear("version-mismatch: segment format " + std::to_string(format));
  }
  const uint64_t first_sequence = ReadU64(bytes.data() + 8);
  *first_out = first_sequence;
  if (expected_first != 0 && first_sequence != expected_first) {
    return tear("sequence gap: segment starts at " +
                std::to_string(first_sequence) + ", expected " +
                std::to_string(expected_first));
  }
  if (first_sequence > 0) {
    // Even a record-less segment pins the sequence floor: a writer that
    // reopened (empty active segment) and died must not restart below the
    // sequences its name promises.
    report->last_sequence =
        std::max(report->last_sequence, first_sequence - 1);
  }
  uint64_t next_seq = first_sequence;
  size_t offset = kWalSegmentHeaderBytes;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kWalRecordHeaderBytes) {
      return tear("truncated record header at offset " +
                  std::to_string(offset));
    }
    const char* h = bytes.data() + offset;
    // The header CRC is verified BEFORE any field of the header is trusted
    // (the length in a torn header must never size a read or allocation).
    const uint32_t want_hcrc = ReadU32(h + 16);
    if (want_hcrc != Crc32c(h, 16)) {
      return tear("record header crc mismatch at offset " +
                  std::to_string(offset) + " (torn or bitflipped)");
    }
    const uint32_t len = ReadU32(h);
    const uint64_t seq = ReadU64(h + 4);
    const uint32_t count = ReadU32(h + 12);
    if (count > kMaxWalEventsPerRecord) {
      return tear("oversized record: " + std::to_string(count) + " events");
    }
    if (static_cast<uint64_t>(len) !=
        static_cast<uint64_t>(count) * kWalEventBytes) {
      return tear("record length mismatch at offset " +
                  std::to_string(offset));
    }
    if (remaining < kWalRecordHeaderBytes + static_cast<size_t>(len) + 4) {
      return tear("truncated record payload at offset " +
                  std::to_string(offset));
    }
    const char* payload = h + kWalRecordHeaderBytes;
    const uint32_t want_pcrc = ReadU32(payload + len);
    if (want_pcrc != Crc32c(payload, len)) {
      return tear("record payload crc mismatch at offset " +
                  std::to_string(offset) + " (bitflipped record)");
    }
    if (seq != next_seq) {
      return tear("sequence gap: record " + std::to_string(seq) +
                  ", expected " + std::to_string(next_seq));
    }
    WalRecord record;
    record.sequence = seq;
    record.events.resize(count);
    for (uint32_t i = 0; i < count; ++i) {
      if (!DecodeEvent(payload + static_cast<size_t>(i) * kWalEventBytes,
                       &record.events[i])) {
        return tear("bad event kind in record " + std::to_string(seq));
      }
    }
    report->events_replayed += count;
    ++report->records_replayed;
    report->last_sequence = seq;
    records->push_back(std::move(record));
    ++next_seq;
    offset += kWalRecordHeaderBytes + static_cast<size_t>(len) + 4;
    report->bytes_replayed = offset;  // per segment; summed by the caller
  }
  return true;
}

// Full-directory scan shared by ReplayWal and WalWriter::Open. Fills
// `segments` with per-file ranges so Open can repair the tail.
void ScanWal(const std::string& dir, std::vector<WalRecord>* records,
             WalRecoveryReport* report, std::vector<SegmentScan>* segments) {
  obs::ScopedSpan span("wal_replay");
  Result<std::vector<std::string>> listing = fileio::ListDir(dir);
  if (!listing.ok()) return;  // missing directory = empty log
  std::vector<std::string> names;
  for (const std::string& name : listing.value()) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) names.push_back(name);
  }
  // ListDir sorts and the 016x sequence padding makes lexicographic order
  // numeric order, so `names` is already ascending by first sequence.
  uint64_t bytes_replayed = 0;
  for (size_t i = 0; i < names.size(); ++i) {
    Result<std::string> bytes =
        fileio::ReadFileToString(dir + "/" + names[i], kMaxWalSegmentBytes);
    SegmentScan scan;
    scan.name = names[i];
    scan.record_begin = records->size();
    ++report->segments_scanned;
    bool ok = false;
    if (bytes.ok()) {
      report->bytes_replayed = 0;
      ok = ScanSegment(names[i], bytes.value(),
                       report->last_sequence == 0 ? 0
                                                  : report->last_sequence + 1,
                       records, report, &scan.first_sequence);
      bytes_replayed += report->bytes_replayed;
    } else {
      report->errors.push_back(names[i] + ": unreadable: " +
                               bytes.status().ToString());
    }
    scan.record_end = records->size();
    scan.clean = ok;
    segments->push_back(std::move(scan));
    if (!ok) {
      // Stop at the first bad record. Later segments are dropped -- counted
      // and named, never silently skipped past the tear.
      report->tail_torn = true;
      for (size_t j = i + 1; j < names.size(); ++j) {
        ++report->segments_dropped;
        SegmentScan dropped;
        dropped.name = names[j];
        dropped.record_begin = dropped.record_end = records->size();
        segments->push_back(std::move(dropped));
        report->errors.push_back(names[j] +
                                 ": dropped (follows the torn segment)");
      }
      break;
    }
  }
  report->bytes_replayed = bytes_replayed;
  static obs::Counter& replay_records =
      obs::GetCounter("wal.replay_records");
  static obs::Counter& replay_events = obs::GetCounter("wal.replay_events");
  static obs::Counter& torn_tails = obs::GetCounter("wal.torn_tails");
  replay_records.Add(report->records_replayed);
  replay_events.Add(report->events_replayed);
  if (report->tail_torn) torn_tails.Add();
  span.AddAttr("segments", report->segments_scanned);
  span.AddAttr("records", report->records_replayed);
  span.AddAttr("events", report->events_replayed);
  span.AddAttr("torn", report->tail_torn ? 1 : 0);
}

}  // namespace

std::string WalSegmentFileName(uint64_t first_sequence) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(first_sequence));
  return std::string(kWalFilePrefix) + buf + kWalFileSuffix;
}

bool ParseWalSegmentFileName(const std::string& name,
                             uint64_t* first_sequence) {
  const std::string prefix(kWalFilePrefix);
  const std::string suffix(kWalFileSuffix);
  if (name.size() != prefix.size() + 16 + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
    const char c = name[i];
    uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a') + 10;
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  *first_sequence = value;
  return true;
}

Result<std::vector<WalRecord>> ReplayWal(const std::string& dir,
                                         WalRecoveryReport* report) {
  WalRecoveryReport local;
  WalRecoveryReport* r = report != nullptr ? report : &local;
  *r = WalRecoveryReport{};
  std::vector<WalRecord> records;
  std::vector<SegmentScan> segments;
  ScanWal(dir, &records, r, &segments);
  return records;
}

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(options) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) {
    if (!dead_ && unsynced_) FlushAndSync(file_, active_path_);  // best effort
    std::fclose(file_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& dir, const WalOptions& options,
    WalRecoveryReport* report, std::vector<WalRecord>* replayed) {
  RETURN_IF_ERROR(fileio::CreateDirIfMissing(dir));
  WalRecoveryReport local;
  WalRecoveryReport* r = report != nullptr ? report : &local;
  *r = WalRecoveryReport{};
  std::vector<WalRecord> records;
  std::vector<SegmentScan> segments;
  ScanWal(dir, &records, r, &segments);

  // Never append after a tear: the torn segment is atomically rewritten
  // down to its intact prefix (or removed when nothing of it survived), and
  // every later segment is removed, so the next replay sees a clean log
  // ending exactly where this one did.
  bool repair_from_here = false;
  for (const SegmentScan& scan : segments) {
    if (repair_from_here || scan.record_begin == scan.record_end) {
      if (repair_from_here || !scan.clean) {
        RETURN_IF_ERROR(fileio::RemoveFileIfExists(dir + "/" + scan.name));
      }
    } else if (!scan.clean) {
      std::string bytes = EncodeSegmentHeader(scan.first_sequence);
      for (size_t i = scan.record_begin; i < scan.record_end; ++i) {
        bytes.append(EncodeRecord(records[i].sequence, records[i].events));
      }
      RETURN_IF_ERROR(
          fileio::WriteFileAtomic(dir + "/" + scan.name, bytes));
      static obs::Counter& repaired =
          obs::GetCounter("wal.repaired_segments");
      repaired.Add();
    }
    if (!scan.clean) repair_from_here = true;
  }

  std::unique_ptr<WalWriter> writer(new WalWriter(dir, options));
  writer->next_sequence_ = r->last_sequence + 1;
  RETURN_IF_ERROR(writer->StartSegment(writer->next_sequence_));
  if (replayed != nullptr) *replayed = std::move(records);
  return writer;
}

Status WalWriter::StartSegment(uint64_t first_sequence) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::string header = EncodeSegmentHeader(first_sequence);
  const std::string path = dir_ + "/" + WalSegmentFileName(first_sequence);

  size_t write_bytes = header.size();
  bool crash = false;
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultDecision d = fi->Evaluate(fault_sites::kWalRoll);
    if (d.fail) {
      return Status::Unavailable("wal: injected roll failure for " + path);
    }
    if (d.corrupt) {
      fi->CorruptBlob(Mix64(fi->seed() ^ first_sequence), &header);
    }
    if (d.crash) {
      crash = true;
      write_bytes = static_cast<size_t>(
          Mix64(fi->seed() ^ (header.size() + 0x517cc1b727220a95ull)) %
          (header.size() + 1));
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("wal: cannot create segment " + path + ": " +
                               ErrnoText());
  }
  if (write_bytes > 0 &&
      std::fwrite(header.data(), 1, write_bytes, f) != write_bytes) {
    std::fclose(f);
    return Status::Unavailable("wal: short write of segment header " + path);
  }
  const Status synced = FlushAndSync(f, path);
  if (!synced.ok()) {
    std::fclose(f);
    return synced;
  }
  if (crash) {
    std::fclose(f);
    dead_ = true;
    return Status::Unavailable("wal: injected kill mid-roll of " + path +
                               " (torn segment header left behind)");
  }
  RETURN_IF_ERROR(SyncParentDir(path));
  file_ = f;
  active_path_ = path;
  active_first_sequence_ = first_sequence;
  active_segment_bytes_ = header.size();
  unsynced_ = false;
  static obs::Counter& rolls = obs::GetCounter("wal.rolls");
  rolls.Add();
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kWalRoll,
                                       first_sequence);
  return Status::OK();
}

Status WalWriter::CloseSegment() {
  if (file_ == nullptr) return Status::OK();
  Status status = unsynced_ ? FlushAndSync(file_, active_path_)
                            : Status::OK();
  std::fclose(file_);
  file_ = nullptr;
  unsynced_ = false;
  return status;
}

Result<uint64_t> WalWriter::Append(const std::vector<WalEvent>& events) {
  if (options_.group_commit) return AppendGrouped(events);
  static obs::Counter& appends = obs::GetCounter("wal.appends");
  static obs::Counter& append_bytes = obs::GetCounter("wal.append_bytes");
  static obs::Counter& append_failures =
      obs::GetCounter("wal.append_failures");
  static obs::Counter& fsyncs = obs::GetCounter("wal.fsyncs");
  if (dead_) {
    append_failures.Add();
    return Status::Unavailable("wal: writer is dead after a crash");
  }
  if (events.size() > kMaxWalEventsPerRecord) {
    return Status::InvalidArgument("wal: record of " +
                                   std::to_string(events.size()) +
                                   " events exceeds the per-record cap");
  }
  const uint64_t sequence = next_sequence_;
  std::string record = EncodeRecord(sequence, events);

  // Roll before the append that would cross the size threshold; a record is
  // never split across segments.
  if (file_ != nullptr &&
      active_segment_bytes_ > kWalSegmentHeaderBytes &&
      active_segment_bytes_ + record.size() > options_.segment_bytes) {
    RETURN_IF_ERROR(CloseSegment());
  }
  if (file_ == nullptr) {
    const Status started = StartSegment(sequence);
    if (!started.ok()) {
      append_failures.Add();
      return started;
    }
  }

  size_t write_bytes = record.size();
  bool crash = false;
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultDecision d = fi->Evaluate(fault_sites::kWalAppend);
    if (d.fail) {
      append_failures.Add();
      return Status::Unavailable("wal: injected append failure");
    }
    if (d.corrupt) {
      fi->CorruptBlob(Mix64(fi->seed() ^ sequence), &record);
    }
    if (d.crash) {
      crash = true;
      write_bytes = static_cast<size_t>(
          Mix64(fi->seed() ^ (record.size() + 0x517cc1b727220a95ull)) %
          (record.size() + 1));
    }
  }

  if (write_bytes > 0 &&
      std::fwrite(record.data(), 1, write_bytes, file_) != write_bytes) {
    // A short physical write leaves the tail in an unknown state; the
    // writer refuses further appends and recovery sorts out the prefix.
    dead_ = true;
    append_failures.Add();
    return Status::Unavailable("wal: short write of record " +
                               std::to_string(sequence));
  }
  if (crash) {
    // Simulated process kill mid-append: the torn prefix reaches the file
    // (fsynced so replay sees what a real crash could have left), and the
    // writer is dead from here on.
    FlushAndSync(file_, active_path_);
    dead_ = true;
    append_failures.Add();
    return Status::Unavailable("wal: injected kill mid-append of record " +
                               std::to_string(sequence) +
                               " (torn tail left behind)");
  }
  unsynced_ = true;

  if (options_.sync_each_append) {
    if (std::fflush(file_) != 0) {
      dead_ = true;
      append_failures.Add();
      return Status::Unavailable("wal: flush failed for " + active_path_);
    }
    // The bytes are flushed before the barrier fault is evaluated: a killed
    // fsync still leaves the record on disk, so replay recovers THROUGH the
    // record whose barrier died (the fsync-kill invariant the chaos sweep
    // asserts).
    if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
      const FaultDecision d = fi->Evaluate(fault_sites::kWalFsync);
      if (d.fail || d.crash) {
        dead_ = true;
        append_failures.Add();
        return Status::Unavailable(
            "wal: injected fsync failure after record " +
            std::to_string(sequence));
      }
    }
    if (::fsync(::fileno(file_)) != 0) {
      dead_ = true;
      append_failures.Add();
      return Status::Unavailable("wal: fsync failed for " + active_path_);
    }
    unsynced_ = false;
    fsyncs_performed_.fetch_add(1, std::memory_order_relaxed);
    fsyncs.Add();
  }

  active_segment_bytes_ += record.size();
  next_sequence_ = sequence + 1;
  appends.Add();
  append_bytes.Add(record.size());
  return sequence;
}

Result<uint64_t> WalWriter::AppendGrouped(const std::vector<WalEvent>& events) {
  static obs::Counter& appends = obs::GetCounter("wal.appends");
  static obs::Counter& append_bytes = obs::GetCounter("wal.append_bytes");
  static obs::Counter& append_failures =
      obs::GetCounter("wal.append_failures");
  std::unique_lock<std::mutex> lock(mu_);
  if (dead_) {
    append_failures.Add();
    return Status::Unavailable("wal: writer is dead after a crash");
  }
  if (events.size() > kMaxWalEventsPerRecord) {
    return Status::InvalidArgument("wal: record of " +
                                   std::to_string(events.size()) +
                                   " events exceeds the per-record cap");
  }
  const uint64_t sequence = next_sequence_;
  std::string record = EncodeRecord(sequence, events);

  if (file_ != nullptr && active_segment_bytes_ > kWalSegmentHeaderBytes &&
      active_segment_bytes_ + record.size() > options_.segment_bytes) {
    // The roll closes file_, so wait out any fsync a leader is running
    // against it first.
    cv_.wait(lock, [&] { return !sync_in_flight_ || dead_; });
    if (dead_) {
      append_failures.Add();
      return Status::Unavailable("wal: writer died while waiting to roll");
    }
    const Status closed = CloseSegment();
    if (!closed.ok()) {
      append_failures.Add();
      return closed;
    }
    // CloseSegment fsynced the old segment: everything appended so far is
    // durable, so waiters piled up behind the roll can be released.
    durable_sequence_ = std::max(durable_sequence_, sequence - 1);
    cv_.notify_all();
  }
  if (file_ == nullptr) {
    const Status started = StartSegment(sequence);
    if (!started.ok()) {
      append_failures.Add();
      if (dead_) cv_.notify_all();
      return started;
    }
  }

  size_t write_bytes = record.size();
  bool crash = false;
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultDecision d = fi->Evaluate(fault_sites::kWalAppend);
    if (d.fail) {
      append_failures.Add();
      return Status::Unavailable("wal: injected append failure");
    }
    if (d.corrupt) {
      fi->CorruptBlob(Mix64(fi->seed() ^ sequence), &record);
    }
    if (d.crash) {
      crash = true;
      write_bytes = static_cast<size_t>(
          Mix64(fi->seed() ^ (record.size() + 0x517cc1b727220a95ull)) %
          (record.size() + 1));
    }
  }

  if (write_bytes > 0 &&
      std::fwrite(record.data(), 1, write_bytes, file_) != write_bytes) {
    dead_ = true;
    cv_.notify_all();
    append_failures.Add();
    return Status::Unavailable("wal: short write of record " +
                               std::to_string(sequence));
  }
  if (crash) {
    FlushAndSync(file_, active_path_);
    dead_ = true;
    cv_.notify_all();
    append_failures.Add();
    return Status::Unavailable("wal: injected kill mid-append of record " +
                               std::to_string(sequence) +
                               " (torn tail left behind)");
  }
  unsynced_ = true;
  active_segment_bytes_ += record.size();
  next_sequence_ = sequence + 1;
  appends.Add();
  append_bytes.Add(record.size());

  if (!options_.sync_each_append) return sequence;
  const Status durable = WaitDurableLocked(lock, sequence);
  if (!durable.ok()) {
    append_failures.Add();
    return durable;
  }
  return sequence;
}

Status WalWriter::WaitDurableLocked(std::unique_lock<std::mutex>& lock,
                                    uint64_t sequence) {
  static obs::Counter& fsyncs = obs::GetCounter("wal.fsyncs");
  while (true) {
    if (durable_sequence_ >= sequence) return Status::OK();
    if (dead_) {
      return Status::Unavailable("wal: group fsync failed before record " +
                                 std::to_string(sequence) +
                                 " was acknowledged");
    }
    if (!sync_in_flight_) {
      // Become the leader. The barrier covers every record written before
      // the flush starts, so capture the target under the lock.
      sync_in_flight_ = true;
      const uint64_t target = next_sequence_ - 1;
      std::FILE* f = file_;
      const std::string path = active_path_;
      lock.unlock();
      Status result = Status::OK();
      if (std::fflush(f) != 0) {
        result = Status::Unavailable("wal: flush failed for " + path);
      }
      if (result.ok()) {
        // Same barrier semantics as the single-append path: the bytes are
        // flushed before the fault is evaluated, so a killed fsync still
        // leaves every record of this batch replayable.
        if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
          const FaultDecision d = fi->Evaluate(fault_sites::kWalFsync);
          if (d.delay_seconds > 0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(d.delay_seconds));
          }
          if (d.fail || d.crash) {
            result = Status::Unavailable(
                "wal: injected fsync failure at the group barrier");
          }
        }
      }
      if (result.ok() && ::fsync(::fileno(f)) != 0) {
        result = Status::Unavailable("wal: fsync failed for " + path);
      }
      lock.lock();
      sync_in_flight_ = false;
      if (!result.ok()) {
        dead_ = true;
        cv_.notify_all();
        return result;
      }
      durable_sequence_ = std::max(durable_sequence_, target);
      if (durable_sequence_ >= next_sequence_ - 1) unsynced_ = false;
      fsyncs_performed_.fetch_add(1, std::memory_order_relaxed);
      fsyncs.Add();
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
}

Status WalWriter::Sync() {
  if (options_.group_commit) {
    std::unique_lock<std::mutex> lock(mu_);
    if (dead_) {
      return Status::Unavailable("wal: writer is dead after a crash");
    }
    if (file_ == nullptr || !unsynced_ || next_sequence_ == 1) {
      return Status::OK();
    }
    return WaitDurableLocked(lock, next_sequence_ - 1);
  }
  if (dead_) return Status::Unavailable("wal: writer is dead after a crash");
  if (file_ == nullptr || !unsynced_) return Status::OK();
  if (std::fflush(file_) != 0) {
    dead_ = true;
    return Status::Unavailable("wal: flush failed for " + active_path_);
  }
  if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
    const FaultDecision d = fi->Evaluate(fault_sites::kWalFsync);
    if (d.fail || d.crash) {
      dead_ = true;
      return Status::Unavailable("wal: injected fsync failure");
    }
  }
  if (::fsync(::fileno(file_)) != 0) {
    dead_ = true;
    return Status::Unavailable("wal: fsync failed for " + active_path_);
  }
  unsynced_ = false;
  fsyncs_performed_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& fsyncs = obs::GetCounter("wal.fsyncs");
  fsyncs.Add();
  return Status::OK();
}

Result<uint32_t> WalWriter::TruncateThrough(uint64_t sequence) {
  Result<std::vector<std::string>> listing = fileio::ListDir(dir_);
  RETURN_IF_ERROR(listing.status());
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const std::string& name : listing.value()) {
    uint64_t first = 0;
    if (ParseWalSegmentFileName(name, &first)) files.emplace_back(first, name);
  }
  std::sort(files.begin(), files.end());
  uint32_t removed = 0;
  for (size_t i = 0; i + 1 < files.size(); ++i) {
    // A segment's records all precede the next segment's first sequence, so
    // it is disposable exactly when that next-first is <= sequence + 1. The
    // active segment is last in the sorted order and never removed.
    if (files[i + 1].first > sequence + 1) break;
    if (dir_ + "/" + files[i].second == active_path_) break;
    RETURN_IF_ERROR(fileio::RemoveFileIfExists(dir_ + "/" + files[i].second));
    ++removed;
  }
  if (removed > 0) {
    static obs::Counter& counter = obs::GetCounter("wal.segments_removed");
    counter.Add(removed);
  }
  return removed;
}

}  // namespace expbsi
