#include "wal/ingest_store.h"

#include <cstring>

#include "cluster/adhoc_cluster.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expbsi {
namespace {

// Host-endian scalar framing, like the snapshot writer's record headers.
template <typename T>
void AppendScalar(std::string* out, T v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

// [format u32][checkpoint_seq u64][num_segments u32][num_buckets u32]
// [bucket_equals_segment u8].
constexpr size_t kMetaBlobBytes = 4 + 8 + 4 + 4 + 1;

std::string EncodeMetaBlob(uint64_t checkpoint_sequence,
                           const IngestOptions& options) {
  std::string out;
  out.reserve(kMetaBlobBytes);
  AppendScalar<uint32_t>(&out, kIngestMetaFormatVersion);
  AppendScalar<uint64_t>(&out, checkpoint_sequence);
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(options.num_segments));
  AppendScalar<uint32_t>(&out, static_cast<uint32_t>(options.num_buckets));
  AppendScalar<uint8_t>(&out, options.bucket_equals_segment ? 1 : 0);
  return out;
}

Status DecodeMetaBlob(const std::string& bytes, uint64_t* checkpoint_sequence,
                      const IngestOptions& options) {
  if (bytes.size() != kMetaBlobBytes) {
    return Status::Corruption("ingest: meta blob has wrong size");
  }
  uint32_t format = 0;
  uint32_t num_segments = 0;
  uint32_t num_buckets = 0;
  uint8_t bucket_eq = 0;
  const char* p = bytes.data();
  std::memcpy(&format, p, 4);
  std::memcpy(checkpoint_sequence, p + 4, 8);
  std::memcpy(&num_segments, p + 12, 4);
  std::memcpy(&num_buckets, p + 16, 4);
  std::memcpy(&bucket_eq, p + 20, 1);
  if (format != kIngestMetaFormatVersion) {
    return Status::Corruption("ingest: version-mismatch: meta format " +
                              std::to_string(format));
  }
  if (static_cast<int>(num_segments) != options.num_segments ||
      static_cast<int>(num_buckets) != options.num_buckets ||
      (bucket_eq != 0) != options.bucket_equals_segment) {
    return Status::Corruption(
        "ingest: snapshot shape does not match the configured shape");
  }
  return Status::OK();
}

}  // namespace

IngestStore::IngestStore(std::string snapshot_dir, IngestOptions options)
    : snapshot_dir_(std::move(snapshot_dir)), options_(options) {}

Result<std::unique_ptr<IngestStore>> IngestStore::Open(
    const std::string& wal_dir, const std::string& snapshot_dir,
    const IngestOptions& options, IngestRecoveryReport* report) {
  CHECK_GT(options.num_segments, 0);
  obs::ScopedSpan span("ingest_recover");
  IngestRecoveryReport local;
  IngestRecoveryReport* r = report != nullptr ? report : &local;
  *r = IngestRecoveryReport{};
  std::unique_ptr<IngestStore> store(
      new IngestStore(snapshot_dir, options));

  Result<BsiStore> snap = BsiStore::Recover(snapshot_dir, &r->snapshot);
  if (!snap.ok()) {
    if (snap.status().code() != StatusCode::kNotFound) return snap.status();
    // No snapshot yet: cold start from an empty store; the whole WAL (if
    // any survived a lost snapshot directory) replays below.
    r->cold_start = true;
    store->live_.num_segments = options.num_segments;
    store->live_.num_buckets = options.num_buckets;
    store->live_.bucket_equals_segment = options.bucket_equals_segment;
    store->live_.segments.resize(static_cast<size_t>(options.num_segments));
  } else {
    if (!r->snapshot.fully_recovered()) {
      // A query cluster can serve degraded; an ingest store cannot keep
      // appending to a warehouse missing segments it will merge into.
      return Status::Corruption(
          "ingest: snapshot recovered with lost segments; refusing to "
          "ingest on top of a partial store");
    }
    Result<const std::string*> meta = snap.value().Get(
        BsiStoreKey{0, BsiKind::kState, kIngestMetaBlobId, 0});
    if (!meta.ok()) {
      return Status::Corruption(
          "ingest: snapshot has no meta blob (not an ingest snapshot)");
    }
    RETURN_IF_ERROR(DecodeMetaBlob(*meta.value(),
                                   &store->checkpoint_sequence_, options));
    Result<ExperimentBsiData> data =
        ReconstructBsiData(snap.value(), options.num_segments,
                           options.num_buckets,
                           options.bucket_equals_segment);
    RETURN_IF_ERROR(data.status());
    store->live_ = std::move(data).value();
    // Re-attach the per-segment position encoders: replayed deltas must
    // land at the same positions the snapshotted BSIs used.
    for (int seg = 0; seg < options.num_segments; ++seg) {
      Result<const std::string*> blob = snap.value().Get(
          BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kState,
                      kIngestEncoderBlobId, 0});
      if (!blob.ok()) {
        return Status::Corruption("ingest: snapshot is missing the encoder "
                                  "blob of segment " + std::to_string(seg));
      }
      Result<PositionEncoder> encoder =
          PositionEncoder::Deserialize(*blob.value());
      RETURN_IF_ERROR(encoder.status());
      store->live_.segments[static_cast<size_t>(seg)].encoder =
          std::move(encoder).value();
    }
  }
  r->checkpoint_sequence = store->checkpoint_sequence_;
  store->last_sequence_ = store->checkpoint_sequence_;

  std::vector<WalRecord> records;
  Result<std::unique_ptr<WalWriter>> writer =
      WalWriter::Open(wal_dir, options.wal, &r->wal, &records);
  RETURN_IF_ERROR(writer.status());
  store->wal_ = std::move(writer).value();
  if (store->wal_->next_sequence() <= store->checkpoint_sequence_) {
    // The log is BEHIND the snapshot (a trimmed WAL can never be: the
    // active segment keeps the sequence). New appends would get sequence
    // numbers recovery skips as already-applied.
    return Status::Corruption(
        "ingest: wal sequence is behind the snapshot checkpoint");
  }

  DeltaBuilder builder(options.num_segments, options.num_buckets,
                       options.bucket_equals_segment);
  for (const WalRecord& record : records) {
    // Records at or below the checkpoint are already inside the snapshot
    // (the crash-between-snapshot-and-trim overlap); skip by sequence.
    if (record.sequence <= store->checkpoint_sequence_) continue;
    builder.AddRecord(record);
    ++r->records_applied;
    r->events_applied += record.events.size();
    store->last_sequence_ = record.sequence;
  }
  builder.MergeInto(&store->live_);
  span.AddAttr("cold_start", r->cold_start ? 1 : 0);
  span.AddAttr("checkpoint_sequence", r->checkpoint_sequence);
  span.AddAttr("records_applied", r->records_applied);
  span.AddAttr("events_applied", r->events_applied);
  return store;
}

Result<uint64_t> IngestStore::Ingest(const std::vector<WalEvent>& events) {
  obs::ScopedSpan span("ingest");
  span.AddAttr("events", events.size());
  // Log first, merge second: the merge runs only for a durably appended
  // record, so the in-memory state never gets ahead of what replay can
  // reconstruct.
  Result<uint64_t> sequence = wal_->Append(events);
  RETURN_IF_ERROR(sequence.status());
  DeltaBuilder builder(options_.num_segments, options_.num_buckets,
                       options_.bucket_equals_segment);
  for (const WalEvent& event : events) builder.Add(event);
  builder.MergeInto(&live_);
  last_sequence_ = sequence.value();
  span.AddAttr("sequence", last_sequence_);
  return sequence;
}

BsiStore IngestStore::BuildSnapshotStore() const {
  BsiStore store = BuildColdStore(live_);
  store.Put(BsiStoreKey{0, BsiKind::kState, kIngestMetaBlobId, 0},
            EncodeMetaBlob(last_sequence_, options_));
  for (int seg = 0; seg < options_.num_segments; ++seg) {
    std::string bytes;
    live_.segments[static_cast<size_t>(seg)].encoder.Serialize(&bytes);
    store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kState,
                          kIngestEncoderBlobId, 0},
              std::move(bytes));
  }
  return store;
}

Result<IngestCheckpointStats> IngestStore::Checkpoint() {
  obs::ScopedSpan span("ingest_checkpoint");
  IngestCheckpointStats stats;
  stats.sequence = last_sequence_;
  Result<SnapshotWriteStats> written =
      SnapshotWriter::Write(BuildSnapshotStore(), snapshot_dir_);
  RETURN_IF_ERROR(written.status());
  stats.snapshot = written.value();
  checkpoint_sequence_ = stats.sequence;
  // The trim is best-effort: if it fails (or we crash before it), the
  // leftover segments overlap the snapshot and replay skips them by
  // sequence -- the trim is space reclamation, not correctness.
  Result<uint32_t> removed = wal_->TruncateThrough(stats.sequence);
  if (removed.ok()) stats.wal_segments_removed = removed.value();
  static obs::Counter& checkpoints = obs::GetCounter("wal.checkpoints");
  checkpoints.Add();
  span.AddAttr("sequence", stats.sequence);
  span.AddAttr("wal_segments_removed", stats.wal_segments_removed);
  return stats;
}

}  // namespace expbsi
