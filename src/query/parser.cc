#include "query/parser.h"

#include <cmath>

#include "query/token.h"

namespace expbsi {
namespace {

// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query query;
    RETURN_IF_ERROR(ExpectKeyword("select"));
    RETURN_IF_ERROR(ParseAggregates(&query));
    RETURN_IF_ERROR(ExpectKeyword("from"));
    RETURN_IF_ERROR(ParseSource(&query));
    if (AcceptKeyword("where")) {
      RETURN_IF_ERROR(ParsePredicate(&query));
      while (AcceptKeyword("and")) {
        RETURN_IF_ERROR(ParsePredicate(&query));
      }
    }
    if (AcceptKeyword("group")) {
      RETURN_IF_ERROR(ExpectKeyword("by"));
      RETURN_IF_ERROR(ExpectKeyword("bucket"));
      query.group_by_bucket = true;
    }
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at offset " +
                                   std::to_string(Peek().position));
  }

  bool AcceptKeyword(const std::string& keyword) {
    if (Peek().type == TokenType::kIdentifier && Peek().text == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!AcceptKeyword(keyword)) {
      return Error("expected '" + keyword + "'");
    }
    return Status::OK();
  }

  Status Expect(TokenType type, const char* what) {
    if (Peek().type != type) return Error(std::string("expected ") + what);
    Advance();
    return Status::OK();
  }

  Status ParseNumber(double* out) {
    if (Peek().type != TokenType::kNumber) return Error("expected number");
    *out = Advance().number;
    return Status::OK();
  }

  Status ParseU64(uint64_t* out) {
    double v = 0;
    RETURN_IF_ERROR(ParseNumber(&v));
    if (v < 0 || v != std::floor(v)) {
      return Error("expected non-negative integer");
    }
    *out = static_cast<uint64_t>(v);
    return Status::OK();
  }

  // date = <number>
  Status ParseDateArg(Date* out) {
    RETURN_IF_ERROR(ExpectKeyword("date"));
    RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
    uint64_t v = 0;
    RETURN_IF_ERROR(ParseU64(&v));
    *out = static_cast<Date>(v);
    return Status::OK();
  }

  Status ParseAggregates(Query* query) {
    do {
      RETURN_IF_ERROR(ParseAggregate(query));
    } while (Peek().type == TokenType::kComma && (Advance(), true));
    return Status::OK();
  }

  Status ParseAggregate(Query* query) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected aggregate function");
    }
    const std::string func_name = Advance().text;
    QueryAggregate agg;
    if (func_name == "sum") {
      agg.func = QueryAggregate::Func::kSum;
    } else if (func_name == "count") {
      agg.func = QueryAggregate::Func::kCount;
    } else if (func_name == "avg") {
      agg.func = QueryAggregate::Func::kAvg;
    } else if (func_name == "min") {
      agg.func = QueryAggregate::Func::kMin;
    } else if (func_name == "max") {
      agg.func = QueryAggregate::Func::kMax;
    } else if (func_name == "median") {
      agg.func = QueryAggregate::Func::kMedian;
    } else if (func_name == "quantile") {
      agg.func = QueryAggregate::Func::kQuantile;
    } else if (func_name == "uv") {
      agg.func = QueryAggregate::Func::kUv;
    } else {
      return Error("unknown aggregate '" + func_name + "'");
    }
    RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (Peek().type == TokenType::kStar) {
      if (agg.func != QueryAggregate::Func::kCount) {
        return Error("'*' is only valid in count(*)");
      }
      Advance();
      agg.label = "count(*)";
    } else {
      RETURN_IF_ERROR(ExpectKeyword("value"));
      agg.label = func_name + "(value)";
    }
    if (agg.func == QueryAggregate::Func::kQuantile) {
      RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
      RETURN_IF_ERROR(ParseNumber(&agg.quantile_q));
      if (agg.quantile_q < 0.0 || agg.quantile_q > 1.0) {
        return Error("quantile must be in [0, 1]");
      }
      agg.label = "quantile(value, " + std::to_string(agg.quantile_q) + ")";
    }
    RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    query->aggregates.push_back(std::move(agg));
    return Status::OK();
  }

  // Shared tail of dated sources: '(' id ',' date = n [, to = n] ')'.
  Status ParseDatedSourceArgs(Query* query) {
    RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    RETURN_IF_ERROR(ParseU64(&query->source_id));
    RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
    RETURN_IF_ERROR(ParseDateArg(&query->date));
    query->date_to = query->date;
    if (Peek().type == TokenType::kComma) {
      Advance();
      RETURN_IF_ERROR(ExpectKeyword("to"));
      RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      uint64_t to = 0;
      RETURN_IF_ERROR(ParseU64(&to));
      query->date_to = static_cast<Date>(to);
      if (query->date_to < query->date) {
        return Error("date range end precedes start");
      }
    }
    return Expect(TokenType::kRParen, "')'");
  }

  Status ParseSource(Query* query) {
    if (AcceptKeyword("dim")) {
      query->source = Query::Source::kDimension;
      return ParseDatedSourceArgs(query);
    }
    if (AcceptKeyword("metric")) {
      query->source = Query::Source::kMetric;
      return ParseDatedSourceArgs(query);
    }
    if (AcceptKeyword("expose")) {
      query->source = Query::Source::kExpose;
      RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      RETURN_IF_ERROR(ParseU64(&query->source_id));
      RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return Status::OK();
    }
    return Error("expected source: metric(...), dim(...) or expose(...)");
  }

  Status ParseCompareOp(CompareOp* out) {
    switch (Peek().type) {
      case TokenType::kEq:
        *out = CompareOp::kEq;
        break;
      case TokenType::kNe:
        *out = CompareOp::kNe;
        break;
      case TokenType::kLt:
        *out = CompareOp::kLt;
        break;
      case TokenType::kLe:
        *out = CompareOp::kLe;
        break;
      case TokenType::kGt:
        *out = CompareOp::kGt;
        break;
      case TokenType::kGe:
        *out = CompareOp::kGe;
        break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    return Status::OK();
  }

  Status ParsePredicate(Query* query) {
    QueryPredicate pred;
    if (AcceptKeyword("exposed")) {
      pred.kind = QueryPredicate::Kind::kExposed;
      RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      RETURN_IF_ERROR(ParseU64(&pred.strategy_id));
      if (Peek().type == TokenType::kComma) {
        Advance();
        RETURN_IF_ERROR(ExpectKeyword("on_or_before"));
        RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
        uint64_t date = 0;
        RETURN_IF_ERROR(ParseU64(&date));
        pred.on_or_before = static_cast<Date>(date);
      } else {
        pred.per_scan_day = true;  // the scorecard's per-day expose filter
      }
      RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    } else if (AcceptKeyword("value")) {
      pred.kind = QueryPredicate::Kind::kValue;
      RETURN_IF_ERROR(ParseCompareOp(&pred.op));
      RETURN_IF_ERROR(ParseU64(&pred.constant));
    } else if (AcceptKeyword("offset")) {
      pred.kind = QueryPredicate::Kind::kOffset;
      RETURN_IF_ERROR(ParseCompareOp(&pred.op));
      RETURN_IF_ERROR(ParseU64(&pred.constant));
    } else if (AcceptKeyword("dim")) {
      pred.kind = QueryPredicate::Kind::kDimension;
      RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      uint64_t dim_id = 0;
      RETURN_IF_ERROR(ParseU64(&dim_id));
      pred.dimension_id = static_cast<uint32_t>(dim_id);
      RETURN_IF_ERROR(Expect(TokenType::kComma, "','"));
      RETURN_IF_ERROR(ParseDateArg(&pred.dim_date));
      RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      RETURN_IF_ERROR(ParseCompareOp(&pred.op));
      RETURN_IF_ERROR(ParseU64(&pred.constant));
    } else {
      return Error("expected predicate: exposed/value/offset/dim");
    }
    query->predicates.push_back(pred);
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace expbsi
