#include "query/token.h"

#include <cctype>

namespace expbsi {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& query) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = query.size();
  while (i < n) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = static_cast<int>(i);
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      while (end < n && (std::isdigit(static_cast<unsigned char>(query[end])) ||
                         query[end] == '.')) {
        ++end;
      }
      token.type = TokenType::kNumber;
      token.number = std::stod(query.substr(i, end - i));
      i = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = i;
      while (end < n && IsIdentChar(query[end])) ++end;
      token.type = TokenType::kIdentifier;
      token.text = query.substr(i, end - i);
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      i = end;
    } else {
      switch (c) {
        case ',':
          token.type = TokenType::kComma;
          ++i;
          break;
        case '(':
          token.type = TokenType::kLParen;
          ++i;
          break;
        case ')':
          token.type = TokenType::kRParen;
          ++i;
          break;
        case '*':
          token.type = TokenType::kStar;
          ++i;
          break;
        case '=':
          token.type = TokenType::kEq;
          ++i;
          break;
        case '!':
          if (i + 1 < n && query[i + 1] == '=') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument("lex error: lone '!' at offset " +
                                           std::to_string(i));
          }
          break;
        case '<':
          if (i + 1 < n && query[i + 1] == '=') {
            token.type = TokenType::kLe;
            i += 2;
          } else if (i + 1 < n && query[i + 1] == '>') {
            token.type = TokenType::kNe;
            i += 2;
          } else {
            token.type = TokenType::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && query[i + 1] == '=') {
            token.type = TokenType::kGe;
            i += 2;
          } else {
            token.type = TokenType::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument(
              std::string("lex error: unexpected character '") + c +
              "' at offset " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end_token;
  end_token.type = TokenType::kEnd;
  end_token.position = static_cast<int>(n);
  tokens.push_back(end_token);
  return tokens;
}

}  // namespace expbsi
