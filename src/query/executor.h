#ifndef EXPBSI_QUERY_EXECUTOR_H_
#define EXPBSI_QUERY_EXECUTOR_H_

#include <string>

#include "common/status.h"
#include "engine/experiment_data.h"
#include "obs/trace.h"
#include "query/ast.h"

namespace expbsi {

// Executes a parsed EQL query against the BSI data: per segment, the WHERE
// predicates become bitmap masks (range searches / expose filters /
// dimension filters), aggregates fold the source BSI under the combined
// mask, and segment partials merge into the result. Median/quantile merge
// exactly via the cross-input slice descent (non-decomposable aggregates,
// §4.2), not by approximation.
//
// Validation errors (unknown constructs for the source, unsupported grouped
// aggregates) return InvalidArgument. Missing data (unknown metric-id,
// strategy without exposure in a segment) is not an error -- those segments
// simply contribute nothing, as in the production system.
// Pass a QueryTrace to record the execution as a span tree (validate ->
// build_scans -> aggregate -> group_by_bucket, with per-layer byte and
// container counts); nullptr skips all tracing work. The trace is installed
// on the calling thread for the duration, so kernels and stores reached
// from here attach to it automatically.
Result<QueryResult> ExecuteQuery(const ExperimentBsiData& data,
                                 const Query& query,
                                 obs::QueryTrace* trace = nullptr);

// Parses and executes in one step.
Result<QueryResult> RunQuery(const ExperimentBsiData& data,
                             const std::string& text,
                             obs::QueryTrace* trace = nullptr);

}  // namespace expbsi

#endif  // EXPBSI_QUERY_EXECUTOR_H_
