#ifndef EXPBSI_QUERY_AST_H_
#define EXPBSI_QUERY_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "expdata/schema.h"

namespace expbsi {

// Abstract syntax of the experiment query language (EQL). The language
// covers the paper's fixed single-scan query paradigms (§4.1-§4.4): metric /
// expose sources, expose and dimension filters as BSI range searches, and
// the in-BSI aggregates, optionally grouped by statistical bucket.
//
// Grammar (keywords case-insensitive):
//   query  := SELECT aggs FROM source [WHERE pred (AND pred)*]
//             [GROUP BY BUCKET]
//   aggs   := agg (',' agg)*
//   agg    := (sum|count|avg|min|max|median|uv) '(' (value|'*') ')'
//           | quantile '(' value ',' number ')'
//   source := metric '(' metric_id ',' date '=' number [',' to '=' number] ')'
//           | dim    '(' dimension_id ',' date '=' number [',' to '=' number] ')'
//           | expose '(' strategy_id ')'
//   pred   := exposed '(' strategy_id [',' on_or_before '=' number] ')'
//           | value  cmp number
//           | offset cmp number
//           | dim '(' dimension_id ',' date '=' number ')' cmp number
//   cmp    := '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//
// A metric source may cover a date RANGE (date = a, to = b): sum/count/avg
// then fold every (unit, day) row in the range, uv(value) counts DISTINCT
// units with a value on any day (the paper's distinctPos merge of
// non-decomposable state, §4.2), and an `exposed(s)` predicate without an
// explicit date applies the scorecard's per-day filter
// "first-expose-date <= scan day".
//
// Examples (mirroring the paper's SQL):
//   SELECT sum(value), count(*) FROM metric(8371, date = 5)
//       WHERE exposed(8764293, on_or_before = 5)
//   SELECT count(*) FROM expose(8746325) WHERE offset >= 2 AND offset <= 5
//   SELECT sum(value) FROM metric(555, date = 3)
//       WHERE exposed(9002, on_or_before = 3)
//         AND dim(1, date = 3) = 1 AND dim(2, date = 3) > 134

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct QueryPredicate {
  enum class Kind { kValue, kOffset, kDimension, kExposed };

  Kind kind = Kind::kValue;
  CompareOp op = CompareOp::kEq;  // unused for kExposed
  uint64_t constant = 0;          // comparison constant

  // kDimension only.
  uint32_t dimension_id = 0;
  Date dim_date = 0;

  // kExposed only. per_scan_day means "exposed by the day being scanned"
  // (the scorecard filter); otherwise on_or_before is the fixed cutoff.
  uint64_t strategy_id = 0;
  Date on_or_before = 0;
  bool per_scan_day = false;
};

struct QueryAggregate {
  enum class Func { kSum, kCount, kAvg, kMin, kMax, kMedian, kQuantile, kUv };

  Func func = Func::kSum;
  double quantile_q = 0.5;  // kQuantile only
  std::string label;        // rendered column name, e.g. "sum(value)"
};

struct Query {
  enum class Source { kMetric, kExpose, kDimension };

  Source source = Source::kMetric;
  uint64_t source_id = 0;  // metric-id, strategy-id or dimension-id
  Date date = 0;           // dated sources: first day of the window
  Date date_to = 0;        // last day (== date for a single-day query)

  std::vector<QueryAggregate> aggregates;
  std::vector<QueryPredicate> predicates;
  bool group_by_bucket = false;
};

// The result table: one row of aggregate values, or (when grouped) one row
// per bucket plus the global row.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<double> row;
  // group_by_bucket: per_bucket[b][i] is column i of bucket b.
  std::vector<std::vector<double>> per_bucket;

  std::string ToString() const;
};

}  // namespace expbsi

#endif  // EXPBSI_QUERY_AST_H_
