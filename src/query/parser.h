#ifndef EXPBSI_QUERY_PARSER_H_
#define EXPBSI_QUERY_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace expbsi {

// Parses an EQL query (grammar in query/ast.h) into its AST. Returns
// InvalidArgument with a position-annotated message on syntax errors.
Result<Query> ParseQuery(const std::string& text);

}  // namespace expbsi

#endif  // EXPBSI_QUERY_PARSER_H_
