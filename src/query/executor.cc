#include "query/executor.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "bsi/bsi_aggregate.h"
#include "bsi/bsi_group_by.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "roaring/union_accumulator.h"

namespace expbsi {
namespace {

RoaringBitmap ApplyRange(const Bsi& bsi, CompareOp op, uint64_t k) {
  switch (op) {
    case CompareOp::kEq:
      return bsi.RangeEq(k);
    case CompareOp::kNe:
      return bsi.RangeNe(k);
    case CompareOp::kLt:
      return bsi.RangeLt(k);
    case CompareOp::kLe:
      return bsi.RangeLe(k);
    case CompareOp::kGt:
      return bsi.RangeGt(k);
    case CompareOp::kGe:
      return bsi.RangeGe(k);
  }
  return RoaringBitmap();
}

// Bound-pair fusion: normalize >=/> predicates to an inclusive lower bound
// and <=/< ones to an inclusive upper bound. A (lower, upper) pair over the
// same BSI collapses into one RangeBetween call -- a single three-way
// partition pass -- instead of two full range scans plus an intersection.
// The non-normalizable extremes (> UINT64_MAX, < 0) keep the single-
// predicate path, which returns empty for them anyway.
bool AsLowerBound(const QueryPredicate& pred, uint64_t* lo) {
  if (pred.op == CompareOp::kGe) {
    *lo = pred.constant;
    return true;
  }
  if (pred.op == CompareOp::kGt && pred.constant != ~uint64_t{0}) {
    *lo = pred.constant + 1;
    return true;
  }
  return false;
}

bool AsUpperBound(const QueryPredicate& pred, uint64_t* hi) {
  if (pred.op == CompareOp::kLe) {
    *hi = pred.constant;
    return true;
  }
  if (pred.op == CompareOp::kLt && pred.constant != 0) {
    *hi = pred.constant - 1;
    return true;
  }
  return false;
}

// True when the two predicates scan the same BSI (fusable): value and
// offset predicates both scan the query source, dimension predicates scan
// the same dimension log only if id and date agree.
bool SameRangeTarget(const QueryPredicate& a, const QueryPredicate& b) {
  if (a.kind == QueryPredicate::Kind::kExposed ||
      b.kind == QueryPredicate::Kind::kExposed) {
    return false;
  }
  const bool a_source = a.kind != QueryPredicate::Kind::kDimension;
  const bool b_source = b.kind != QueryPredicate::Kind::kDimension;
  if (a_source != b_source) return false;
  if (a_source) return true;
  return a.dimension_id == b.dimension_id && a.dim_date == b.dim_date;
}

// partner[i] = j > i when predicates i and j fuse into one Between scan;
// consumed[j] marks the absorbed upper/lower half.
void PlanRangeFusion(const std::vector<QueryPredicate>& preds,
                     std::vector<int>* partner,
                     std::vector<char>* consumed) {
  partner->assign(preds.size(), -1);
  consumed->assign(preds.size(), 0);
  for (size_t i = 0; i < preds.size(); ++i) {
    if ((*consumed)[i] ||
        preds[i].kind == QueryPredicate::Kind::kExposed) {
      continue;
    }
    uint64_t bound;
    const bool is_lo = AsLowerBound(preds[i], &bound);
    const bool is_hi = !is_lo && AsUpperBound(preds[i], &bound);
    if (!is_lo && !is_hi) continue;
    for (size_t j = i + 1; j < preds.size(); ++j) {
      if ((*consumed)[j] || !SameRangeTarget(preds[i], preds[j])) continue;
      if ((is_lo && AsUpperBound(preds[j], &bound)) ||
          (is_hi && AsLowerBound(preds[j], &bound))) {
        (*partner)[i] = static_cast<int>(j);
        (*consumed)[j] = 1;
        break;
      }
    }
  }
}

// Applies predicate i (optionally fused with its partner) to `bsi`. An
// inverted fused interval (lo > hi) is empty by definition.
RoaringBitmap ApplyPredicate(const Bsi& bsi, const QueryPredicate& pred,
                             const QueryPredicate* fused_with) {
  if (fused_with != nullptr) {
    static obs::Counter& fusions = obs::GetCounter("query.range_fusions");
    fusions.Add(1);
    uint64_t lo = 0, hi = 0;
    if (!AsLowerBound(pred, &lo)) AsLowerBound(*fused_with, &lo);
    if (!AsUpperBound(pred, &hi)) AsUpperBound(*fused_with, &hi);
    if (lo > hi) return RoaringBitmap();
    return bsi.RangeBetween(lo, hi);
  }
  return ApplyRange(bsi, pred.op, pred.constant);
}

// Execution state of one (segment, scan-day) cell. Expose sources have a
// single cell per segment (the expose log is not dated).
struct SegmentScan {
  const Bsi* source = nullptr;   // value BSI (metric) or offset BSI (expose)
  RoaringBitmap mask;            // positions passing all predicates
  const Bsi* bucket = nullptr;   // bucket BSI when grouping by bucket
};

Status Validate(const ExperimentBsiData& data, const Query& query) {
  for (const QueryPredicate& pred : query.predicates) {
    if (pred.kind == QueryPredicate::Kind::kOffset &&
        query.source != Query::Source::kExpose) {
      return Status::InvalidArgument(
          "offset predicates require an expose(...) source");
    }
  }
  if (query.aggregates.empty()) {
    return Status::InvalidArgument("query has no aggregates");
  }
  if (query.group_by_bucket) {
    for (const QueryAggregate& agg : query.aggregates) {
      if (agg.func != QueryAggregate::Func::kSum &&
          agg.func != QueryAggregate::Func::kCount &&
          agg.func != QueryAggregate::Func::kAvg) {
        return Status::InvalidArgument(
            "GROUP BY BUCKET supports sum/count/avg only");
      }
    }
    if (!data.bucket_equals_segment) {
      int exposed_preds = 0;
      for (const QueryPredicate& pred : query.predicates) {
        exposed_preds +=
            pred.kind == QueryPredicate::Kind::kExposed ? 1 : 0;
      }
      if (exposed_preds != 1) {
        return Status::InvalidArgument(
            "GROUP BY BUCKET with bucket != segment requires exactly one "
            "exposed(...) predicate (the bucket ids live in that strategy's "
            "expose log)");
      }
    }
  }
  return Status::OK();
}

// Builds the source pointer and combined predicate mask for one segment on
// one scan day. Returns an empty-source scan when the segment has no data.
SegmentScan BuildScan(const SegmentBsiData& seg, const Query& query,
                      Date scan_date) {
  SegmentScan scan;
  if (query.source == Query::Source::kMetric) {
    const MetricBsi* metric = seg.FindMetric(query.source_id, scan_date);
    if (metric == nullptr) return scan;
    scan.source = &metric->value;
  } else if (query.source == Query::Source::kDimension) {
    const DimensionBsi* dim = seg.FindDimension(
        static_cast<uint32_t>(query.source_id), scan_date);
    if (dim == nullptr) return scan;
    scan.source = &dim->value;
  } else {
    const ExposeBsi* source_expose = seg.FindExpose(query.source_id);
    if (source_expose == nullptr) return scan;
    scan.source = &source_expose->offset;
  }
  scan.mask = scan.source->existence();
  const std::vector<QueryPredicate>& preds = query.predicates;
  std::vector<int> partner;
  std::vector<char> consumed;
  PlanRangeFusion(preds, &partner, &consumed);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (scan.mask.IsEmpty()) break;
    if (consumed[i]) continue;  // absorbed into an earlier Between scan
    const QueryPredicate& pred = preds[i];
    const QueryPredicate* fused_with =
        partner[i] >= 0 ? &preds[partner[i]] : nullptr;
    switch (pred.kind) {
      case QueryPredicate::Kind::kValue:
        scan.mask.AndInPlace(ApplyPredicate(*scan.source, pred, fused_with));
        break;
      case QueryPredicate::Kind::kOffset:
        // Validated: only on expose sources, where source == offset.
        scan.mask.AndInPlace(ApplyPredicate(*scan.source, pred, fused_with));
        break;
      case QueryPredicate::Kind::kDimension: {
        const DimensionBsi* dim =
            seg.FindDimension(pred.dimension_id, pred.dim_date);
        if (dim == nullptr) {
          scan.mask.Clear();
          break;
        }
        scan.mask.AndInPlace(ApplyPredicate(dim->value, pred, fused_with));
        break;
      }
      case QueryPredicate::Kind::kExposed: {
        const ExposeBsi* expose = seg.FindExpose(pred.strategy_id);
        if (expose == nullptr) {
          scan.mask.Clear();
          break;
        }
        const Date cutoff =
            pred.per_scan_day ? scan_date : pred.on_or_before;
        scan.mask.AndInPlace(expose->ExposedOnOrBefore(cutoff));
        if (scan.bucket == nullptr && !expose->bucket.IsEmpty()) {
          scan.bucket = &expose->bucket;
        }
        break;
      }
    }
  }
  return scan;
}

}  // namespace

std::string QueryResult::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    out += columns[i];
    out += i + 1 < columns.size() ? " | " : "\n";
  }
  char buf[64];
  auto append_row = [&out, &buf](const std::vector<double>& r) {
    for (size_t i = 0; i < r.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.6g", r[i]);
      out += buf;
      out += i + 1 < r.size() ? " | " : "\n";
    }
  };
  append_row(row);
  for (const std::vector<double>& bucket_row : per_bucket) {
    append_row(bucket_row);
  }
  return out;
}

Result<QueryResult> ExecuteQuery(const ExperimentBsiData& data,
                                 const Query& query, obs::QueryTrace* trace) {
  // Install the trace unless a caller higher up (RunQuery, the cluster)
  // already did; ScopedTrace(nullptr) is a no-op.
  obs::ScopedTrace install(obs::CurrentTrace() == trace ? nullptr : trace);
  static obs::Counter& executed = obs::GetCounter("query.executed");
  executed.Add();
  {
    obs::ScopedSpan span("validate");
    Status st = Validate(data, query);
    if (!st.ok()) {
      static obs::Counter& invalid = obs::GetCounter("query.validation_errors");
      invalid.Add();
      return st;
    }
  }

  // Scan days: the dated source's window, or one undated cell for expose.
  std::vector<Date> days;
  if (query.source == Query::Source::kExpose) {
    days.push_back(0);
  } else {
    for (Date d = query.date; d <= query.date_to; ++d) days.push_back(d);
  }

  // One scan per (segment, day); aggregates fold the partials.
  std::vector<std::vector<SegmentScan>> scans(data.num_segments);
  {
    obs::ScopedSpan span("build_scans");
    span.AddAttr("segments", static_cast<uint64_t>(data.num_segments));
    span.AddAttr("days", static_cast<uint64_t>(days.size()));
    for (int seg = 0; seg < data.num_segments; ++seg) {
      scans[seg].reserve(days.size());
      for (Date d : days) {
        scans[seg].push_back(BuildScan(data.segments[seg], query, d));
      }
    }
  }
  static obs::Counter& scanned = obs::GetCounter("query.segment_scans");
  scanned.Add(static_cast<uint64_t>(data.num_segments) * days.size());

  const bool needs_quantile = std::any_of(
      query.aggregates.begin(), query.aggregates.end(),
      [](const QueryAggregate& a) {
        return a.func == QueryAggregate::Func::kMedian ||
               a.func == QueryAggregate::Func::kQuantile;
      });
  std::vector<MaskedBsi> quantile_inputs;

  double total_sum = 0.0;
  double total_count = 0.0;
  double total_uv = 0.0;
  uint64_t global_min = std::numeric_limits<uint64_t>::max();
  uint64_t global_max = 0;
  bool any_value = false;
  {
    obs::ScopedSpan agg_span("aggregate");
    for (int seg = 0; seg < data.num_segments; ++seg) {
      // uv: distinct positions with a value on ANY scan day (distinctPos),
      // union-accumulated lazily across the per-day masks (which stay alive in
      // `scans` for the whole loop).
      UnionAccumulator distinct_acc;
      for (const SegmentScan& scan : scans[seg]) {
        if (scan.source == nullptr || scan.mask.IsEmpty()) continue;
        total_sum += static_cast<double>(scan.source->SumUnderMask(scan.mask));
        total_count += static_cast<double>(scan.mask.Cardinality());
        distinct_acc.Add(scan.mask);
        const Bsi filtered = Bsi::MultiplyByBinary(*scan.source, scan.mask);
        if (!filtered.IsEmpty()) {
          any_value = true;
          global_min = std::min(global_min, filtered.MinValue());
          global_max = std::max(global_max, filtered.MaxValue());
        }
        if (needs_quantile) {
          quantile_inputs.push_back(MaskedBsi{scan.source, &scan.mask});
        }
      }
      // Positions are segment-local, so distinct counts add across segments.
      total_uv += static_cast<double>(distinct_acc.Finish().Cardinality());
    }
    agg_span.AddAttr("quantile_inputs",
                     static_cast<uint64_t>(quantile_inputs.size()));
  }

  QueryResult result;
  for (const QueryAggregate& agg : query.aggregates) {
    result.columns.push_back(agg.label);
    double value = 0.0;
    switch (agg.func) {
      case QueryAggregate::Func::kSum:
        value = total_sum;
        break;
      case QueryAggregate::Func::kCount:
        value = total_count;
        break;
      case QueryAggregate::Func::kAvg:
        value = total_count > 0 ? total_sum / total_count : 0.0;
        break;
      case QueryAggregate::Func::kUv:
        value = total_uv;
        break;
      case QueryAggregate::Func::kMin:
        value = any_value ? static_cast<double>(global_min) : 0.0;
        break;
      case QueryAggregate::Func::kMax:
        value = any_value ? static_cast<double>(global_max) : 0.0;
        break;
      case QueryAggregate::Func::kMedian:
      case QueryAggregate::Func::kQuantile: {
        const double q =
            agg.func == QueryAggregate::Func::kMedian ? 0.5 : agg.quantile_q;
        value = quantile_inputs.empty()
                    ? 0.0
                    : static_cast<double>(
                          QuantileOverInputs(quantile_inputs, q));
        break;
      }
    }
    result.row.push_back(value);
  }

  if (query.group_by_bucket) {
    obs::ScopedSpan span("group_by_bucket");
    const int buckets = data.effective_buckets();
    span.AddAttr("buckets", static_cast<uint64_t>(buckets));
    std::vector<double> sums(buckets, 0.0), counts(buckets, 0.0);
    for (int seg = 0; seg < data.num_segments; ++seg) {
      for (const SegmentScan& scan : scans[seg]) {
        if (scan.source == nullptr || scan.mask.IsEmpty()) continue;
        if (data.bucket_equals_segment) {
          sums[seg] +=
              static_cast<double>(scan.source->SumUnderMask(scan.mask));
          counts[seg] += static_cast<double>(scan.mask.Cardinality());
        } else {
          // Validated: scan.bucket comes from the single exposed()
          // predicate.
          if (scan.bucket == nullptr) continue;
          const std::vector<uint64_t> s = GroupSumByBucket(
              *scan.source, *scan.bucket, buckets, scan.mask);
          const std::vector<uint64_t> c =
              GroupCountByBucket(*scan.bucket, buckets, scan.mask);
          for (int b = 0; b < buckets; ++b) {
            sums[b] += static_cast<double>(s[b]);
            counts[b] += static_cast<double>(c[b]);
          }
        }
      }
    }
    result.per_bucket.assign(buckets, {});
    for (int b = 0; b < buckets; ++b) {
      for (const QueryAggregate& agg : query.aggregates) {
        switch (agg.func) {
          case QueryAggregate::Func::kSum:
            result.per_bucket[b].push_back(sums[b]);
            break;
          case QueryAggregate::Func::kCount:
            result.per_bucket[b].push_back(counts[b]);
            break;
          case QueryAggregate::Func::kAvg:
            result.per_bucket[b].push_back(
                counts[b] > 0 ? sums[b] / counts[b] : 0.0);
            break;
          default:
            break;  // validated unreachable
        }
      }
    }
  }
  return result;
}

Result<QueryResult> RunQuery(const ExperimentBsiData& data,
                             const std::string& text,
                             obs::QueryTrace* trace) {
  obs::ScopedTrace install(obs::CurrentTrace() == trace ? nullptr : trace);
  Result<Query> query = [&text] {
    obs::ScopedSpan span("parse");
    span.AddAttr("text_bytes", text.size());
    return ParseQuery(text);
  }();
  if (!query.ok()) {
    static obs::Counter& parse_errors = obs::GetCounter("query.parse_errors");
    parse_errors.Add();
    return query.status();
  }
  return ExecuteQuery(data, query.value(), trace);
}

}  // namespace expbsi
