#ifndef EXPBSI_QUERY_TOKEN_H_
#define EXPBSI_QUERY_TOKEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace expbsi {

// Lexer for the experiment query language (EQL), the small SQL-shaped
// language covering the paper's fixed query paradigms (§4.1: "most of the
// queries on the experiment data follow some fixed paradigms").

enum class TokenType {
  kIdentifier,  // select, sum, value, metric, ... (case-insensitive keywords)
  kNumber,      // 8371, 0.9
  kComma,
  kLParen,
  kRParen,
  kStar,        // '*' (count(*))
  kEq,          // =
  kNe,          // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;     // identifier text, lower-cased
  double number = 0.0;  // for kNumber
  int position = 0;     // byte offset in the query (for error messages)
};

// Splits `query` into tokens. Identifiers may contain '-' and '_'
// (the paper writes metric-id, expose-log, ...).
Result<std::vector<Token>> Tokenize(const std::string& query);

}  // namespace expbsi

#endif  // EXPBSI_QUERY_TOKEN_H_
