#include "obs/postmortem.h"

#include <cstdio>

#include "common/file_io.h"
#include "obs/metrics.h"

namespace expbsi {
namespace obs {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Reasons double as file-name components; anything else is a caller bug
// surfaced as a sanitized name rather than a path traversal.
bool SafeReason(const std::string& reason) {
  if (reason.empty()) return false;
  for (char c : reason) {
    if (!((c >= 'a' && c <= 'z') || c == '_')) return false;
  }
  return true;
}

}  // namespace

std::string RenderPostmortemJson(const PostmortemBundle& bundle) {
  std::string out = "{\"schema\": \"expbsi.postmortem.v1\"";
  out += ", \"reason\": \"" + JsonEscape(bundle.reason) + "\"";
  out += ", \"trace_id\": " + std::to_string(bundle.trace_id);
  out += ", \"query\": \"" + JsonEscape(bundle.query) + "\"";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", bundle.duration_ms);
  out += ", \"duration_ms\": ";
  out += buf;
  out += ", \"degraded\": {\"lost_segments\": [";
  for (size_t i = 0; i < bundle.lost_segments.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(bundle.lost_segments[i]);
  }
  out += "], \"segments_answered\": " + std::to_string(bundle.segments_answered);
  out += ", \"retries\": " + std::to_string(bundle.retries);
  out += ", \"faults_survived\": " + std::to_string(bundle.faults_survived);
  out += ", \"nodes_lost\": " + std::to_string(bundle.nodes_lost);
  out += "}";
  out += ", \"health\": [";
  for (size_t i = 0; i < bundle.health.size(); ++i) {
    const PostmortemNodeHealth& h = bundle.health[i];
    if (i > 0) out += ", ";
    out += "{\"node\": " + std::to_string(h.node);
    out += ", \"down\": ";
    out += h.down ? "true" : "false";
    out += ", \"consecutive_failures\": " +
           std::to_string(h.consecutive_failures) + "}";
  }
  out += "], \"trace\": ";
  out += bundle.trace_json.empty() ? "null" : bundle.trace_json;
  out += ", \"flight\": [";
  for (size_t i = 0; i < bundle.slices.size(); ++i) {
    const PostmortemFlightSlice& s = bundle.slices[i];
    if (i > 0) out += ", ";
    out += "{\"node\": \"" + JsonEscape(s.label) + "\", \"fetched\": ";
    out += s.fetched ? "true" : "false";
    if (!s.fetched) {
      out += ", \"error\": \"" + JsonEscape(s.error) + "\"";
    }
    out += ", \"next_seq\": " + std::to_string(s.next_seq);
    out += ", \"events\": ";
    out += FlightEventsToJson(s.events);
    out += "}";
  }
  out += "]}";
  return out;
}

Result<std::string> WritePostmortem(const std::string& dir,
                                    const PostmortemBundle& bundle) {
  static Counter& writes = GetCounter("postmortem.writes");
  static Counter& failures = GetCounter("postmortem.write_failures");
  const std::string reason =
      SafeReason(bundle.reason) ? bundle.reason : "unknown";
  Status mk = fileio::CreateDirIfMissing(dir);
  if (!mk.ok()) {
    failures.Add();
    return mk;
  }
  const std::string path = dir + "/postmortem-" +
                           std::to_string(bundle.trace_id) + "-" + reason +
                           ".json";
  Status written = fileio::WriteFileAtomic(path, RenderPostmortemJson(bundle));
  if (!written.ok()) {
    failures.Add();
    return written;
  }
  writes.Add();
  return path;
}

}  // namespace obs
}  // namespace expbsi
