#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace expbsi {
namespace obs {

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ActiveTrace {
  QueryTrace* trace = nullptr;
  uint32_t current_span = 0;
};

ActiveTrace& ThreadActive() {
  thread_local ActiveTrace active;
  return active;
}

void AppendDurationHuman(std::string* out, uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  out->append(buf);
}

}  // namespace

// --------------------------------------------------------------------------
// QueryTrace
// --------------------------------------------------------------------------

QueryTrace::QueryTrace(const std::string& name)
    : name_(name), t0_ns_(SteadyNowNs()) {
  static std::atomic<uint64_t> next_trace_id{1};
  trace_id_ = next_trace_id.fetch_add(1, std::memory_order_relaxed);
  start_flight_seq_ = FlightRecorder::Global().NextSeq();
}

uint64_t QueryTrace::NowNs() const { return SteadyNowNs() - t0_ns_; }

uint32_t QueryTrace::BeginSpan(const std::string& name, uint32_t parent_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Span s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent_id = parent_id;
  s.name = name;
  s.start_ns = NowNs();
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void QueryTrace::EndSpan(uint32_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 1 && id <= spans_.size());
  Span& s = spans_[id - 1];
  if (!s.open) return;
  s.duration_ns = NowNs() - s.start_ns;
  s.open = false;
}

uint32_t QueryTrace::ImportSpan(
    uint32_t parent_id, const std::string& name, uint64_t start_ns,
    uint64_t duration_ns,
    const std::vector<std::pair<std::string, uint64_t>>& attrs) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK_LE(parent_id, spans_.size());  // parent (if any) already local
  Span s;
  s.id = static_cast<uint32_t>(spans_.size()) + 1;
  s.parent_id = parent_id;
  s.name = name;
  // Remote offsets are relative to the remote trace start; re-base onto the
  // local parent so children sit inside it in the flame view.
  const uint64_t base =
      parent_id == 0 ? 0 : spans_[parent_id - 1].start_ns;
  s.start_ns = base + start_ns;
  s.duration_ns = duration_ns;
  s.open = false;
  s.attrs = attrs;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

void QueryTrace::AddAttr(uint32_t id, const std::string& key, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  CHECK(id >= 1 && id <= spans_.size());
  spans_[id - 1].attrs.emplace_back(key, value);
}

std::vector<QueryTrace::Span> QueryTrace::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

uint64_t QueryTrace::TotalDurationNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.empty()) return 0;
  const Span& root = spans_.front();
  return root.open ? NowNs() - root.start_ns : root.duration_ns;
}

std::string QueryTrace::ToJson() const {
  std::vector<Span> spans = this->spans();
  std::string out = "{\"name\": \"" + name_ + "\", \"spans\": [";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ", ";
    first = false;
    out += "{\"id\": " + std::to_string(s.id) +
           ", \"parent\": " + std::to_string(s.parent_id) + ", \"name\": \"" +
           s.name + "\", \"start_ns\": " + std::to_string(s.start_ns) +
           ", \"duration_ns\": " + std::to_string(s.duration_ns) +
           ", \"attrs\": {";
    bool af = true;
    for (const auto& [k, v] : s.attrs) {
      if (!af) out += ", ";
      af = false;
      out += "\"" + k + "\": " + std::to_string(v);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string QueryTrace::ToText() const {
  std::vector<Span> spans = this->spans();
  // Children of span id i (0 = roots), in creation order. Creation order is
  // also start order, which is what a flame view wants.
  std::vector<std::vector<uint32_t>> children(spans.size() + 1);
  for (const Span& s : spans) {
    CHECK_LT(s.parent_id, s.id);  // parents are created before children
    children[s.parent_id].push_back(s.id);
  }
  std::string out = "trace \"" + name_ + "\"";
  out += " total=";
  AppendDurationHuman(&out, TotalDurationNs());
  out += "\n";
  // Depth-first with explicit stack: (id, depth).
  std::vector<std::pair<uint32_t, int>> stack;
  for (auto it = children[0].rbegin(); it != children[0].rend(); ++it)
    stack.emplace_back(*it, 0);
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const Span& s = spans[id - 1];
    out.append(static_cast<size_t>(depth) * 2, ' ');
    out += "- " + s.name + " ";
    AppendDurationHuman(&out, s.duration_ns);
    if (s.open) out += " (open)";
    for (const auto& [k, v] : s.attrs)
      out += " " + k + "=" + std::to_string(v);
    out += "\n";
    for (auto it = children[id].rbegin(); it != children[id].rend(); ++it)
      stack.emplace_back(*it, depth + 1);
  }
  return out;
}

// --------------------------------------------------------------------------
// ScopedTrace / ScopedSpan
// --------------------------------------------------------------------------

ScopedTrace::ScopedTrace(QueryTrace* trace) : trace_(trace) {
  ActiveTrace& active = ThreadActive();
  prev_trace_ = active.trace;
  prev_span_ = active.current_span;
  if (trace_ == nullptr) return;
  root_id_ = trace_->BeginSpan(trace_->name(), 0);
  active.trace = trace_;
  active.current_span = root_id_;
}

ScopedTrace::~ScopedTrace() {
  if (trace_ != nullptr) {
    trace_->EndSpan(root_id_);
    static Histogram& latency = GetHistogram("trace.query_latency_us");
    latency.Record(trace_->TotalDurationNs() / 1000);
  }
  ActiveTrace& active = ThreadActive();
  active.trace = prev_trace_;
  active.current_span = prev_span_;
  if (trace_ != nullptr) MaybeLogSlowQuery(*trace_);
}

ScopedSpan::ScopedSpan(const char* name) {
  ActiveTrace& active = ThreadActive();
  trace_ = active.trace;
  if (trace_ == nullptr) return;
  prev_span_ = active.current_span;
  id_ = trace_->BeginSpan(name, prev_span_);
  active.current_span = id_;
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr) return;
  trace_->EndSpan(id_);
  ThreadActive().current_span = prev_span_;
}

void ScopedSpan::AddAttr(const char* key, uint64_t value) {
  if (trace_ == nullptr) return;
  trace_->AddAttr(id_, key, value);
}

QueryTrace* CurrentTrace() { return ThreadActive().trace; }

uint32_t CurrentSpanId() { return ThreadActive().current_span; }

uint64_t CurrentTraceId() {
  QueryTrace* t = ThreadActive().trace;
  return t == nullptr ? 0 : t->trace_id();
}

void CurrentSpanAttr(const char* key, uint64_t value) {
  ActiveTrace& active = ThreadActive();
  if (active.trace == nullptr || active.current_span == 0) return;
  active.trace->AddAttr(active.current_span, key, value);
}

// --------------------------------------------------------------------------
// Slow-query log
// --------------------------------------------------------------------------

namespace {

// Threshold state: < 0 disabled, >= 0 enabled. Loaded from the environment
// once; the test setter wins over the env for the rest of the process.
std::mutex g_slow_mu;
bool g_slow_loaded = false;
double g_slow_threshold_ms = -1.0;
std::string g_last_slow_text;

double LoadThresholdLocked() {
  if (!g_slow_loaded) {
    g_slow_loaded = true;
    const char* env = std::getenv("EXPBSI_SLOW_QUERY_MS");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      double v = std::strtod(env, &end);
      if (end != env) g_slow_threshold_ms = v;
    }
  }
  return g_slow_threshold_ms;
}

}  // namespace

double SlowQueryThresholdMs() {
  std::lock_guard<std::mutex> lock(g_slow_mu);
  return LoadThresholdLocked();
}

void SetSlowQueryThresholdMsForTesting(double ms) {
  std::lock_guard<std::mutex> lock(g_slow_mu);
  g_slow_loaded = true;
  g_slow_threshold_ms = ms;
}

void MaybeLogSlowQuery(const QueryTrace& trace) {
  double threshold_ms = SlowQueryThresholdMs();
  if (threshold_ms < 0) return;
  double elapsed_ms = trace.TotalDurationNs() / 1e6;
  if (elapsed_ms < threshold_ms) return;
  static Counter& slow = GetCounter("trace.slow_queries");
  slow.Add();
  // A query that went degraded carries "lost_segments" > 0 on its root span
  // (both AdhocCluster and the net coordinator set it there).
  bool degraded = false;
  {
    std::vector<QueryTrace::Span> spans = trace.spans();
    if (!spans.empty()) {
      for (const auto& [k, v] : spans.front().attrs) {
        if (k == "lost_segments" && v > 0) degraded = true;
      }
    }
  }
  // [fr_seq_lo, fr_seq_hi) is the flight-recorder range the query spans --
  // the same slice the postmortem bundle snapshots, so the log line and the
  // bundle cross-reference.
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"event\": \"slow_query\", \"trace_id\": %llu, "
                "\"duration_ms\": %.3f, \"threshold_ms\": %.3f, "
                "\"degraded\": %s, \"fr_seq_lo\": %llu, \"fr_seq_hi\": %llu, ",
                static_cast<unsigned long long>(trace.trace_id()), elapsed_ms,
                threshold_ms, degraded ? "true" : "false",
                static_cast<unsigned long long>(trace.start_flight_seq()),
                static_cast<unsigned long long>(
                    FlightRecorder::Global().NextSeq()));
  std::string line = head;
  line += "\"query\": \"" + trace.name() + "\", \"trace\": ";
  line += trace.ToJson();
  line += "}";
  std::fprintf(stderr, "%s\n", line.c_str());
  std::lock_guard<std::mutex> lock(g_slow_mu);
  g_last_slow_text = std::move(line);
}

std::string LastSlowQueryTextForTesting() {
  std::lock_guard<std::mutex> lock(g_slow_mu);
  return g_last_slow_text;
}

}  // namespace obs
}  // namespace expbsi
