#ifndef EXPBSI_OBS_SRM_H_
#define EXPBSI_OBS_SRM_H_

// Sample-ratio-mismatch (SRM) monitor. An A/B platform that reports a
// beautiful p-value over a broken randomization is worse than useless, and
// the failure is silent: the per-arm traffic split drifts from its design
// (50/50, say, arriving as 55/45) because of bucketing bugs, logging loss
// or bot filtering applied unevenly. The related work ("Ensure A/B Test
// Quality at Scale", PAPERS.md) treats this as the first-line data-quality
// gate, and so do we: every scorecard comparison runs a chi-square
// goodness-of-fit test on the two arms' exposed-unit counts against the
// expected split, and a mismatch is carried on the result (and the metrics
// registry) rather than dropped.
//
// Test: chi2 = sum_i (observed_i - expected_i)^2 / expected_i with
// (#arms - 1) degrees of freedom; p = ChiSquareSurvival(chi2, df). With the
// platform's unit counts (10^4..10^9) the test is sharp: a real 55/45 skew
// on 10^5 units gives p ~ 1e-218 while a fair split hovers near uniform, so
// the conservative threshold below never fires on noise.

#include <cstdint>

namespace expbsi {

struct SrmResult {
  bool checked = false;     // false when a count was zero-vs-zero etc.
  bool mismatch = false;    // p_value < threshold
  double p_value = 1.0;
  double chi_square = 0.0;
  uint64_t treatment_units = 0;
  uint64_t control_units = 0;
  // The design ratio the counts were tested against (treatment share).
  double expected_treatment_share = 0.5;
};

namespace obs {

// Significance threshold: mismatches are declared at p < 1e-3. SRM checks
// run on every scorecard, so the threshold is deliberately stricter than
// the usual 0.05 to keep the false-positive rate negligible (a genuine SRM
// at experiment scale produces p-values tens of orders of magnitude below
// this; see srm_test.cc).
inline constexpr double kSrmPValueThreshold = 1e-3;

// Chi-square SRM check of two arms' exposed-unit counts against an expected
// treatment share (0.5 = even split). Updates the registry gauges
// `srm.last_p_value` / counter `srm.mismatches` as a side effect.
SrmResult SrmCheckCounts(uint64_t treatment_units, uint64_t control_units,
                         double expected_treatment_share = 0.5);

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_SRM_H_
