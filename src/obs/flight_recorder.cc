#include "obs/flight_recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/fault_injector.h"
#include "obs/trace.h"

namespace expbsi {
namespace obs {

namespace {

const char* const kKindNames[] = {
    "query_admit",   "query_finish", "query_degraded", "retry",
    "fault_injected", "node_markdown", "node_probe",    "node_revive",
    "hedge_fired",   "failover",     "repair",         "wal_roll",
};
static_assert(sizeof(kKindNames) / sizeof(kKindNames[0]) ==
                  static_cast<size_t>(kMaxFlightEventKind) + 1,
              "kind name table out of sync with FlightEventKind");

// Fault-site table for FlightSiteId/FlightSiteName. Index + 1 is the wire
// id; 0 stays "unknown site". Append only.
const char* const kSiteNames[] = {
    fault_sites::kWarehouseGet,   // 1
    fault_sites::kTierFetch,      // 2
    fault_sites::kNodeSegment,    // 3
    fault_sites::kPipelineTask,   // 4
    fault_sites::kSnapshotWrite,  // 5
    fault_sites::kSnapshotRename, // 6
    fault_sites::kSnapshotRead,   // 7
    fault_sites::kWalAppend,      // 8
    fault_sites::kWalFsync,       // 9
    fault_sites::kWalRoll,        // 10
    fault_sites::kNetSend,        // 11
    fault_sites::kNetAccept,      // 12
    fault_sites::kNetNodeCrash,   // 13
    fault_sites::kNetRepair,      // 14
};
constexpr size_t kNumSites = sizeof(kSiteNames) / sizeof(kSiteNames[0]);

void AppendU64(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  out->append(buf);
}

}  // namespace

const char* FlightEventKindName(uint8_t kind) {
  if (kind > kMaxFlightEventKind) return "unknown";
  return kKindNames[kind];
}

uint64_t FlightSiteId(const char* site) {
  if (site == nullptr) return 0;
  for (size_t i = 0; i < kNumSites; ++i) {
    if (std::strcmp(site, kSiteNames[i]) == 0) return i + 1;
  }
  return 0;
}

const char* FlightSiteName(uint64_t id) {
  if (id == 0 || id > kNumSites) return "";
  return kSiteNames[id - 1];
}

std::string FlightEventsToJson(const std::vector<FlightEvent>& events) {
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    if (i > 0) out += ", ";
    out += "{\"seq\": ";
    AppendU64(e.seq, &out);
    out += ", \"t_ns\": ";
    AppendU64(e.t_ns, &out);
    out += ", \"trace_id\": ";
    AppendU64(e.trace_id, &out);
    out += ", \"kind\": \"";
    out += FlightEventKindName(e.kind);
    out += "\", \"a\": ";
    AppendU64(e.a, &out);
    out += ", \"b\": ";
    AppendU64(e.b, &out);
    if (e.kind == static_cast<uint8_t>(FlightEventKind::kFaultInjected) &&
        FlightSiteName(e.b)[0] != '\0') {
      out += ", \"site\": \"";
      out += FlightSiteName(e.b);
      out += "\"";
    }
    out += "}";
  }
  out += "]";
  return out;
}

#if !defined(EXPBSI_NO_METRICS)

namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Captured at static-init time so event timestamps read as "ns since
// process start" and stay small enough to eyeball.
const uint64_t g_origin_ns = SteadyNowNs();

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* r = new FlightRecorder();
  return *r;
}

void FlightRecorder::Record(FlightEventKind kind, uint64_t a, uint64_t b) {
  RecordWithTraceId(kind, a, b, CurrentTraceId());
}

void FlightRecorder::RecordWithTraceId(FlightEventKind kind, uint64_t a,
                                       uint64_t b, uint64_t trace_id) {
  const uint64_t seq = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[seq & (kCapacity - 1)];
  // Unpublish first so a concurrent reader drops the slot instead of
  // stitching the old seq onto the new payload.
  s.pub.store(0, std::memory_order_release);
  s.t_ns.store(SteadyNowNs() - g_origin_ns, std::memory_order_relaxed);
  s.trace_id.store(trace_id, std::memory_order_relaxed);
  s.a.store(a, std::memory_order_relaxed);
  s.b.store(b, std::memory_order_relaxed);
  s.kind.store(static_cast<uint8_t>(kind), std::memory_order_relaxed);
  s.pub.store(seq + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot(uint64_t since_seq) const {
  std::vector<FlightEvent> out;
  out.reserve(kCapacity);
  for (size_t i = 0; i < kCapacity; ++i) {
    const Slot& s = slots_[i];
    const uint64_t pub1 = s.pub.load(std::memory_order_acquire);
    if (pub1 == 0) continue;
    FlightEvent e;
    e.seq = pub1 - 1;
    e.t_ns = s.t_ns.load(std::memory_order_relaxed);
    e.trace_id = s.trace_id.load(std::memory_order_relaxed);
    e.a = s.a.load(std::memory_order_relaxed);
    e.b = s.b.load(std::memory_order_relaxed);
    e.kind = s.kind.load(std::memory_order_relaxed);
    const uint64_t pub2 = s.pub.load(std::memory_order_acquire);
    if (pub1 != pub2) continue;               // overwritten mid-read
    if (e.seq < since_seq) continue;
    if (e.kind > kMaxFlightEventKind) continue;  // torn beyond repair
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& x, const FlightEvent& y) {
              return x.seq < y.seq;
            });
  return out;
}

std::string FlightRecorder::ToJson(uint64_t since_seq) const {
  return FlightEventsToJson(Snapshot(since_seq));
}

void FlightRecorder::ResetForTesting() {
  for (size_t i = 0; i < kCapacity; ++i) {
    slots_[i].pub.store(0, std::memory_order_relaxed);
  }
  next_.store(0, std::memory_order_release);
}

#endif  // !EXPBSI_NO_METRICS

}  // namespace obs
}  // namespace expbsi
