#include "obs/metrics.h"

#include <cstdio>
#include <cstring>

#include "common/check.h"
#include "obs/process_info.h"

namespace expbsi {
namespace obs {

// ---------------------------------------------------------------------------
// Snapshot rendering -- compiled in BOTH modes (see metrics.h): the fleet
// scraper renders snapshots shipped from remote, instrumented processes.
// ---------------------------------------------------------------------------

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  // Metric names are [a-z0-9_.], so no escaping is needed.
  out->push_back('"');
  out->append(name);
  out->append("\": ");
}

// `{label_block}` or `{label_block,extra}`; "" when both are empty.
std::string LabelBraces(const std::string& label_block,
                        const std::string& extra) {
  if (label_block.empty() && extra.empty()) return "";
  std::string out = "{";
  out += label_block;
  if (!label_block.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

void MaybeEmitType(const std::string& family, const char* type,
                   std::set<std::string>* families_typed, std::string* out) {
  if (families_typed != nullptr && !families_typed->insert(family).second) {
    return;
  }
  out->append("# TYPE ");
  out->append(family);
  out->push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string PromMetricName(const std::string& name) {
  std::string out = "expbsi_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void AppendPrometheusSnapshot(const MetricsSnapshot& snap,
                              const std::string& label_block,
                              std::set<std::string>* families_typed,
                              std::string* out) {
  const std::string braces = LabelBraces(label_block, "");
  for (const auto& [name, v] : snap.counters) {
    std::string p = PromMetricName(name);
    MaybeEmitType(p, "counter", families_typed, out);
    *out += p + braces + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string p = PromMetricName(name);
    MaybeEmitType(p, "gauge", families_typed, out);
    *out += p + braces + " ";
    AppendDouble(out, v);
    *out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string p = PromMetricName(name);
    MaybeEmitType(p, "histogram", families_typed, out);
    uint64_t cum = 0;
    for (const auto& [le, n] : h.buckets) {
      cum += n;
      *out += p + "_bucket" +
              LabelBraces(label_block, "le=\"" + std::to_string(le) + "\"") +
              " " + std::to_string(cum) + "\n";
    }
    *out += p + "_bucket" + LabelBraces(label_block, "le=\"+Inf\"") + " " +
            std::to_string(h.count) + "\n";
    *out += p + "_sum" + braces + " " + std::to_string(h.sum) + "\n";
    *out += p + "_count" + braces + " " + std::to_string(h.count) + "\n";
  }
}

void AppendJsonSnapshot(const MetricsSnapshot& snap, std::string* out) {
  *out += "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) *out += ", ";
    first = false;
    AppendJsonKey(out, name);
    *out += std::to_string(v);
  }
  *out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) *out += ", ";
    first = false;
    AppendJsonKey(out, name);
    AppendDouble(out, v);
  }
  *out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) *out += ", ";
    first = false;
    AppendJsonKey(out, name);
    *out += "{\"count\": " + std::to_string(h.count) +
            ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    bool bf = true;
    for (const auto& [le, n] : h.buckets) {
      if (!bf) *out += ", ";
      bf = false;
      *out += "[" + std::to_string(le) + ", " + std::to_string(n) + "]";
    }
    *out += "]}";
  }
  *out += "}}";
}

}  // namespace obs
}  // namespace expbsi

#if !defined(EXPBSI_NO_METRICS)

namespace expbsi {
namespace obs {

namespace internal {

uint32_t ThisThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace internal

// --------------------------------------------------------------------------
// Gauge
// --------------------------------------------------------------------------

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

int Histogram::BucketIndex(uint64_t v) {
  // Values below 2^kSubBits get one bucket each (exact small values);
  // above that, the top kSubBits bits after the leading one select a
  // linear sub-bucket within the octave.
  if (v < kSub) return static_cast<int>(v);
  int exp = 63 - __builtin_clzll(v);
  int sub = static_cast<int>((v >> (exp - kSubBits)) & (kSub - 1));
  return (((exp - kSubBits) << kSubBits) | sub) + kSub;
}

uint64_t Histogram::BucketUpperBound(int idx) {
  if (idx < kSub) return static_cast<uint64_t>(idx);
  int rel = idx - kSub;
  int exp = (rel >> kSubBits) + kSubBits;
  int sub = rel & (kSub - 1);
  // Upper bound is the largest v with this (exp, sub): the next sub-bucket
  // boundary minus one. Guard the top octave against shift overflow.
  uint64_t base = uint64_t{1} << exp;
  uint64_t width = base >> kSubBits;
  uint64_t lo = base + static_cast<uint64_t>(sub) * width;
  uint64_t hi = lo + width - 1;
  return hi < lo ? UINT64_MAX : hi;  // wrapped: top of the 2^63 octave
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : stripes_)
    total += s.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const auto& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

MetricsSnapshot::HistogramView Histogram::View() const {
  MetricsSnapshot::HistogramView view;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = 0;
    for (const auto& s : stripes_)
      n += s.buckets[i].load(std::memory_order_relaxed);
    if (n != 0) view.buckets.emplace_back(BucketUpperBound(i), n);
    view.count += n;
  }
  for (const auto& s : stripes_) view.sum += s.sum.load(std::memory_order_relaxed);
  return view;
}

void Histogram::ResetForTesting() {
  for (auto& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
  }
  return name.front() != '.' && name.back() != '.';
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->View();
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  std::set<std::string> typed;
  AppendPrometheusSnapshot(Scrape(), "", &typed, &out);
  // Process identity (docs/OBSERVABILITY.md "Build info & uptime"): a
  // constant-1 info gauge carrying the build fields as labels, plus uptime.
  const ProcessInfo& info = BuildInfo();
  out += "# TYPE expbsi_build_info gauge\n";
  out += "expbsi_build_info{version=\"" + PromEscapeLabelValue(info.version) +
         "\",compiler=\"" + PromEscapeLabelValue(info.compiler) +
         "\",arch=\"" + PromEscapeLabelValue(info.arch) + "\",metrics=\"" +
         PromEscapeLabelValue(info.metrics) + "\"} 1\n";
  out += "# TYPE expbsi_uptime_seconds gauge\n";
  out += "expbsi_uptime_seconds ";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", UptimeSeconds());
  out += buf;
  out += "\n";
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out;
  AppendJsonSnapshot(Scrape(), &out);
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTesting();
  for (auto& [name, g] : gauges_) g->ResetForTesting();
  for (auto& [name, h] : histograms_) h->ResetForTesting();
}

}  // namespace obs
}  // namespace expbsi

#endif  // !EXPBSI_NO_METRICS
