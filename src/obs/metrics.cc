#include "obs/metrics.h"

#if !defined(EXPBSI_NO_METRICS)

#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace expbsi {
namespace obs {

namespace internal {

uint32_t ThisThreadStripe() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

}  // namespace internal

// --------------------------------------------------------------------------
// Gauge
// --------------------------------------------------------------------------

uint64_t Gauge::Encode(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double Gauge::Decode(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

int Histogram::BucketIndex(uint64_t v) {
  // Values below 2^kSubBits get one bucket each (exact small values);
  // above that, the top kSubBits bits after the leading one select a
  // linear sub-bucket within the octave.
  if (v < kSub) return static_cast<int>(v);
  int exp = 63 - __builtin_clzll(v);
  int sub = static_cast<int>((v >> (exp - kSubBits)) & (kSub - 1));
  return (((exp - kSubBits) << kSubBits) | sub) + kSub;
}

uint64_t Histogram::BucketUpperBound(int idx) {
  if (idx < kSub) return static_cast<uint64_t>(idx);
  int rel = idx - kSub;
  int exp = (rel >> kSubBits) + kSubBits;
  int sub = rel & (kSub - 1);
  // Upper bound is the largest v with this (exp, sub): the next sub-bucket
  // boundary minus one. Guard the top octave against shift overflow.
  uint64_t base = uint64_t{1} << exp;
  uint64_t width = base >> kSubBits;
  uint64_t lo = base + static_cast<uint64_t>(sub) * width;
  uint64_t hi = lo + width - 1;
  return hi < lo ? UINT64_MAX : hi;  // wrapped: top of the 2^63 octave
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const auto& s : stripes_)
    total += s.count.load(std::memory_order_relaxed);
  return total;
}

uint64_t Histogram::Sum() const {
  uint64_t total = 0;
  for (const auto& s : stripes_) total += s.sum.load(std::memory_order_relaxed);
  return total;
}

MetricsSnapshot::HistogramView Histogram::View() const {
  MetricsSnapshot::HistogramView view;
  for (int i = 0; i < kNumBuckets; ++i) {
    uint64_t n = 0;
    for (const auto& s : stripes_)
      n += s.buckets[i].load(std::memory_order_relaxed);
    if (n != 0) view.buckets.emplace_back(BucketUpperBound(i), n);
    view.count += n;
  }
  for (const auto& s : stripes_) view.sum += s.sum.load(std::memory_order_relaxed);
  return view;
}

void Histogram::ResetForTesting() {
  for (auto& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// MetricsRegistry
// --------------------------------------------------------------------------

namespace {

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_' ||
              c == '.';
    if (!ok) return false;
  }
  return name.front() != '.' && name.back() != '.';
}

// "tier.hot_hits" -> "expbsi_tier_hot_hits" for the Prometheus exposition.
std::string PromName(const std::string& name) {
  std::string out = "expbsi_";
  out.reserve(out.size() + name.size());
  for (char c : name) out.push_back(c == '.' ? '_' : c);
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendJsonKey(std::string* out, const std::string& name) {
  // Metric names are [a-z0-9_.], so no escaping is needed.
  out->push_back('"');
  out->append(name);
  out->append("\": ");
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* r = new MetricsRegistry();  // never destroyed
  return *r;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  CHECK(ValidMetricName(name));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram());
  return *slot;
}

MetricsSnapshot MetricsRegistry::Scrape() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->Value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->View();
  return snap;
}

std::string MetricsRegistry::RenderPrometheus() const {
  MetricsSnapshot snap = Scrape();
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " ";
    AppendDouble(&out, v);
    out += "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t cum = 0;
    for (const auto& [le, n] : h.buckets) {
      cum += n;
      out += p + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MetricsSnapshot snap = Scrape();
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    out += std::to_string(v);
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    AppendDouble(&out, v);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ", ";
    first = false;
    AppendJsonKey(&out, name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    bool bf = true;
    for (const auto& [le, n] : h.buckets) {
      if (!bf) out += ", ";
      bf = false;
      out += "[" + std::to_string(le) + ", " + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTesting() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTesting();
  for (auto& [name, g] : gauges_) g->ResetForTesting();
  for (auto& [name, h] : histograms_) h->ResetForTesting();
}

}  // namespace obs
}  // namespace expbsi

#endif  // !EXPBSI_NO_METRICS
