#include "obs/srm.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "stats/ttest.h"

namespace expbsi {
namespace obs {

SrmResult SrmCheckCounts(uint64_t treatment_units, uint64_t control_units,
                         double expected_treatment_share) {
  CHECK_GT(expected_treatment_share, 0.0);
  CHECK_LT(expected_treatment_share, 1.0);
  SrmResult r;
  r.treatment_units = treatment_units;
  r.control_units = control_units;
  r.expected_treatment_share = expected_treatment_share;

  const uint64_t total = treatment_units + control_units;
  static Counter& checks = GetCounter("srm.checks");
  checks.Add();
  if (total == 0) return r;  // nothing exposed yet: not checkable

  const double expected_treat =
      static_cast<double>(total) * expected_treatment_share;
  const double expected_control =
      static_cast<double>(total) * (1.0 - expected_treatment_share);
  const double dt = static_cast<double>(treatment_units) - expected_treat;
  const double dc = static_cast<double>(control_units) - expected_control;
  r.chi_square =
      dt * dt / expected_treat + dc * dc / expected_control;
  r.p_value = ChiSquareSurvival(r.chi_square, /*df=*/1.0);
  r.checked = true;
  r.mismatch = r.p_value < kSrmPValueThreshold;

  static Gauge& last_p = GetGauge("srm.last_p_value");
  last_p.Set(r.p_value);
  if (r.mismatch) {
    static Counter& mismatches = GetCounter("srm.mismatches");
    mismatches.Add();
  }
  return r;
}

}  // namespace obs
}  // namespace expbsi
