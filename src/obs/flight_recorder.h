#ifndef EXPBSI_OBS_FLIGHT_RECORDER_H_
#define EXPBSI_OBS_FLIGHT_RECORDER_H_

// In-memory flight recorder (DESIGN.md "Fleet observability"). A fixed-size
// lock-free ring of compact structured events -- query admit/finish, retry,
// fault-injection hit, node markdown/probe/revive, hedge fired, repair, WAL
// roll -- that is always on: recording an event is one atomic bump of the
// global sequence plus a handful of relaxed stores into the claimed slot.
// When something goes wrong (a degraded query, a slow query, a node marked
// down) the last few thousand events are still there, and the postmortem
// writer (obs/postmortem.h) snapshots them -- locally for AdhocCluster, over
// kStatsFetch with a since-sequence cursor for remote nodes.
//
// Concurrency: each slot is a tiny seqlock. A writer claims a sequence
// number with fetch_add, clears the slot's published-seq to zero, stores the
// payload with relaxed atomics, then publishes `seq + 1` with release. A
// reader loads the published seq (acquire), copies the payload, re-loads the
// seq and keeps the event only if both loads agree and are non-zero. Readers
// never block writers; a slot overwritten mid-read is simply dropped from
// the snapshot. The only way a torn payload survives is a full ring
// wrap-around (kCapacity events) between a reader's two seq loads, which at
// 4096 slots does not happen in practice; decoders still bound-check `kind`.
//
// Like the metrics registry -- and unlike tracing -- the recorder compiles
// out under -DEXPBSI_NO_METRICS: Record() becomes an empty inline and the
// ring is not allocated.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#if !defined(EXPBSI_NO_METRICS)
#include <atomic>
#endif

namespace expbsi {
namespace obs {

// Event catalog (docs/OBSERVABILITY.md "Flight recorder"). The `a`/`b`
// payload fields are per-kind (node ids, segment ids, durations); the
// catalog documents each. Wire encoding depends on these values: append
// only, never renumber.
enum class FlightEventKind : uint8_t {
  kQueryAdmit = 0,    // a = segments in query (0 = unknown)
  kQueryFinish = 1,   // a = duration_us, b = lost segments
  kQueryDegraded = 2, // a = lost segments, b = nodes lost
  kRetry = 3,         // a = attempts used, b = 1 recovered / 0 exhausted
  kFaultInjected = 4, // a = FaultKind, b = fault-site id (FlightSiteId)
  kNodeMarkdown = 5,  // a = node id, b = consecutive failures
  kNodeProbe = 6,     // a = node id
  kNodeRevive = 7,    // a = node id
  kHedgeFired = 8,    // a = node id of the slow primary
  kFailover = 9,      // a = segment id, b = node id that failed
  kRepair = 10,       // a = segment id, b = 0 failed / 1 repaired / 2 served
  kWalRoll = 11,      // a = first sequence number of the new WAL segment
};
inline constexpr uint8_t kMaxFlightEventKind =
    static_cast<uint8_t>(FlightEventKind::kWalRoll);

// Lower-snake name for JSON dumps ("query_admit", ...). Returns "unknown"
// for out-of-range values (a torn slot or a hostile wire peer).
const char* FlightEventKindName(uint8_t kind);

// Stable small id for a fault-injection site name (common/fault_injector.h),
// so kFaultInjected events stay fixed-width. Unknown sites map to 0; the
// known table is documented in docs/OBSERVABILITY.md.
uint64_t FlightSiteId(const char* site);
const char* FlightSiteName(uint64_t id);  // "" for unknown ids

// One recorded event. `seq` is a process-global monotone sequence starting
// at 0; `t_ns` is steady-clock nanoseconds since process start; `trace_id`
// ties the event to a QueryTrace (0 = recorded outside any traced query).
struct FlightEvent {
  uint64_t seq = 0;
  uint64_t t_ns = 0;
  uint64_t trace_id = 0;
  uint8_t kind = 0;
  uint64_t a = 0;
  uint64_t b = 0;

  friend bool operator==(const FlightEvent& x, const FlightEvent& y) {
    return x.seq == y.seq && x.t_ns == y.t_ns && x.trace_id == y.trace_id &&
           x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

// Ordered JSON array of events -- the shared dump format of the recorder,
// the postmortem bundle and the fleet JSON scrape. Always compiled (wire
// replies must render remote events even in a NO_METRICS coordinator).
std::string FlightEventsToJson(const std::vector<FlightEvent>& events);

#if defined(EXPBSI_NO_METRICS)

class FlightRecorder {
 public:
  static constexpr size_t kCapacity = 0;

  static FlightRecorder& Global() {
    static FlightRecorder r;
    return r;
  }

  void Record(FlightEventKind, uint64_t = 0, uint64_t = 0) {}
  void RecordWithTraceId(FlightEventKind, uint64_t, uint64_t, uint64_t) {}
  uint64_t NextSeq() const { return 0; }
  std::vector<FlightEvent> Snapshot(uint64_t = 0) const { return {}; }
  std::string ToJson(uint64_t = 0) const { return "[]"; }
  void ResetForTesting() {}
};

#else  // !EXPBSI_NO_METRICS

class FlightRecorder {
 public:
  // Power of two; ~4k events * 48 bytes = 192 KB per process, a few seconds
  // to minutes of history under load.
  static constexpr size_t kCapacity = 4096;

  static FlightRecorder& Global();

  // Records one event, stamping the current thread's active trace id (0 if
  // no trace is installed). Lock-free, wait-free apart from the fetch_add.
  void Record(FlightEventKind kind, uint64_t a = 0, uint64_t b = 0);
  // Same, with an explicit trace id (servers correlating by request id).
  void RecordWithTraceId(FlightEventKind kind, uint64_t a, uint64_t b,
                         uint64_t trace_id);

  // Sequence number the NEXT event will get; `[since, NextSeq())` brackets
  // everything recorded after a caller captured `since`.
  uint64_t NextSeq() const { return next_.load(std::memory_order_acquire); }

  // Events with seq >= since_seq still present in the ring, in sequence
  // order. Events overwritten by wrap-around (or mid-write during the scan)
  // are absent -- the recorder keeps the most recent kCapacity.
  std::vector<FlightEvent> Snapshot(uint64_t since_seq = 0) const;

  // Snapshot(since_seq) rendered via FlightEventsToJson.
  std::string ToJson(uint64_t since_seq = 0) const;

  void ResetForTesting();

 private:
  FlightRecorder() = default;

  struct Slot {
    // 0 = empty or being written; otherwise event seq + 1 (release-published
    // after the payload below).
    std::atomic<uint64_t> pub{0};
    std::atomic<uint64_t> t_ns{0};
    std::atomic<uint64_t> trace_id{0};
    std::atomic<uint64_t> a{0};
    std::atomic<uint64_t> b{0};
    std::atomic<uint8_t> kind{0};
  };

  std::atomic<uint64_t> next_{0};
  Slot slots_[kCapacity];
};

#endif  // EXPBSI_NO_METRICS

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_FLIGHT_RECORDER_H_
