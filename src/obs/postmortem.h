#ifndef EXPBSI_OBS_POSTMORTEM_H_
#define EXPBSI_OBS_POSTMORTEM_H_

// Degraded-query postmortem bundles (DESIGN.md "Fleet observability").
// When a query returns DegradedInfo, trips the slow-query threshold, or
// marks a node down, the evidence is perishable: the flight-recorder rings
// wrap, the health registry heals, the trace is dropped. A postmortem
// bundle freezes all of it as one JSON file under a configurable
// `postmortem_dir` -- the query's trace tree (with grafted remote spans),
// the coordinator's health-registry state, and a flight-recorder slice
// from every involved process (the coordinator's own ring plus each node's,
// fetched over kStatsFetch with a since-sequence cursor) -- and the path is
// referenced from QueryStats so callers and the load harness can follow it.
//
// File name: postmortem-<trace_id>-<reason>.json, written atomically
// (fileio::WriteFileAtomic), so a half-written bundle is never observed.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"

namespace expbsi {
namespace obs {

// One process's flight-recorder slice inside a bundle.
struct PostmortemFlightSlice {
  std::string label;  // "coordinator", "local", or "127.0.0.1:<port>"
  bool fetched = false;
  std::string error;  // why the fetch failed, when !fetched
  std::vector<FlightEvent> events;
  uint64_t next_seq = 0;
};

// Coordinator health-registry state for one node at bundle time.
struct PostmortemNodeHealth {
  int node = 0;
  bool down = false;
  int consecutive_failures = 0;
};

struct PostmortemBundle {
  std::string reason;  // "degraded", "slow_query" or "node_markdown"
  uint64_t trace_id = 0;
  std::string query;  // trace name
  double duration_ms = 0.0;
  // DegradedInfo fields (empty/zero when the results were complete).
  std::vector<uint32_t> lost_segments;
  uint64_t segments_answered = 0;
  uint32_t retries = 0;
  uint32_t faults_survived = 0;
  uint32_t nodes_lost = 0;
  // QueryTrace::ToJson() of the finished (grafted) trace; "" when the query
  // ran without a trace.
  std::string trace_json;
  std::vector<PostmortemNodeHealth> health;
  std::vector<PostmortemFlightSlice> slices;
};

// The bundle as one JSON object ({"schema": "expbsi.postmortem.v1", ...};
// layout in docs/OBSERVABILITY.md).
std::string RenderPostmortemJson(const PostmortemBundle& bundle);

// Creates `dir` if missing and atomically writes the bundle under it.
// Returns the full path of the written file. Bumps `postmortem.writes` (or
// `postmortem.write_failures`).
Result<std::string> WritePostmortem(const std::string& dir,
                                    const PostmortemBundle& bundle);

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_POSTMORTEM_H_
