#include "obs/process_info.h"

#include <chrono>

namespace expbsi {
namespace obs {

namespace {

constexpr char kVersion[] = "0.10";

const char* Arch() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__aarch64__)
  return "aarch64";
#else
  return "unknown";
#endif
}

std::chrono::steady_clock::time_point ProcessStart() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

// Touch the origin during static init so UptimeSeconds() measures from
// process load, not from the first scrape.
const bool g_start_captured = (ProcessStart(), true);

}  // namespace

const ProcessInfo& BuildInfo() {
  static const ProcessInfo* info = [] {
    auto* p = new ProcessInfo();
    p->version = kVersion;
#if defined(__VERSION__)
    p->compiler = __VERSION__;
#else
    p->compiler = "unknown";
#endif
    p->arch = Arch();
#if defined(EXPBSI_NO_METRICS)
    p->metrics = "compiled_out";
#else
    p->metrics = "on";
#endif
    return p;
  }();
  return *info;
}

const std::string& BuildInfoString() {
  static const std::string* s = [] {
    const ProcessInfo& info = BuildInfo();
    return new std::string("expbsi/" + info.version + " " + info.compiler +
                           " " + info.arch + " metrics=" + info.metrics);
  }();
  return *s;
}

double UptimeSeconds() {
  (void)g_start_captured;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       ProcessStart())
      .count();
}

}  // namespace obs
}  // namespace expbsi
