#ifndef EXPBSI_OBS_TRACE_H_
#define EXPBSI_OBS_TRACE_H_

// Per-query trace spans (DESIGN.md "Observability model"). A QueryTrace is
// a tree of timed spans covering one request end to end -- parse -> plan ->
// per-segment execute -> store fetch -> kernel -- each span carrying its
// duration plus numeric attributes (bytes, container/slice counts, retry
// attempts). Span ids are deterministic: 1-based creation order, so two
// runs of the same query on the same data produce the same tree shape and
// ids (durations differ, obviously).
//
// Plumbing is RAII + a thread-local "active trace" stack:
//
//   QueryTrace trace("scorecard");
//   {
//     ScopedTrace st(&trace);               // installs it on this thread
//     ...
//     { ScopedSpan s("segment_execute");    // child of the enclosing span
//       s.AddAttr("containers", n); }
//   }                                       // root closes; slow-query check
//
// When no trace is installed, ScopedSpan costs one thread-local load and no
// allocation, so the instrumentation can stay in release hot paths. Unlike
// the metrics registry, tracing is NOT compiled out by EXPBSI_NO_METRICS:
// it is per-query opt-in, and its off-path cost is already ~zero.
//
// The slow-query log (docs/OBSERVABILITY.md): if EXPBSI_SLOW_QUERY_MS is
// set and a traced query's wall time exceeds it, ONE structured JSON line
// is printed to stderr -- trace id, duration, degraded flag, the embedded
// span tree, and the flight-recorder sequence range covering the query so
// the line links to the matching postmortem bundle -- and
// `trace.slow_queries` is incremented.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace expbsi {
namespace obs {

class QueryTrace {
 public:
  struct Span {
    uint32_t id = 0;         // 1-based creation order; root is 1
    uint32_t parent_id = 0;  // 0 = no parent (the root)
    std::string name;
    uint64_t start_ns = 0;     // offset from trace start
    uint64_t duration_ns = 0;  // 0 while the span is still open
    bool open = true;
    std::vector<std::pair<std::string, uint64_t>> attrs;
  };

  explicit QueryTrace(const std::string& name);

  // Process-unique id (1-based creation order of traces). Flight-recorder
  // events recorded while this trace is installed carry it, which is how a
  // postmortem slices "events of THIS query" out of the ring.
  uint64_t trace_id() const { return trace_id_; }
  // FlightRecorder::Global().NextSeq() at construction: with NextSeq() at
  // query end it brackets every event recorded during the query.
  uint64_t start_flight_seq() const { return start_flight_seq_; }

  // Opens a child of `parent_id` (0 for a root-level span) and returns its
  // id. Thread-safe; normally called through ScopedSpan.
  uint32_t BeginSpan(const std::string& name, uint32_t parent_id);
  void EndSpan(uint32_t id);
  void AddAttr(uint32_t id, const std::string& key, uint64_t value);

  // Grafts a span recorded by ANOTHER trace (e.g. shipped back from a
  // remote node over the wire) under `parent_id` of this one. The imported
  // span arrives closed with its remote-measured duration; `start_ns` is
  // the offset from the PARENT's start (the caller subtracts the remote
  // parent's own start when replaying a remote tree) and is re-based onto
  // the local parent so the flame view nests sensibly. Returns the local id
  // assigned, so a caller replaying a remote span tree (parents arrive
  // before children) can remap child parent_ids as it goes.
  uint32_t ImportSpan(uint32_t parent_id, const std::string& name,
                      uint64_t start_ns, uint64_t duration_ns,
                      const std::vector<std::pair<std::string, uint64_t>>&
                          attrs);

  const std::string& name() const { return name_; }
  // Snapshot of the spans recorded so far.
  std::vector<Span> spans() const;
  // Wall time of the root span (live value while it is still open).
  uint64_t TotalDurationNs() const;

  // {"name": ..., "spans": [{"id", "parent", "name", "start_ns",
  //  "duration_ns", "attrs": {...}}, ...]}
  std::string ToJson() const;
  // Flame-style indented tree, one line per span with duration and attrs.
  std::string ToText() const;

 private:
  uint64_t NowNs() const;

  std::string name_;
  uint64_t trace_id_ = 0;
  uint64_t start_flight_seq_ = 0;
  uint64_t t0_ns_;  // steady-clock origin
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

// Installs `trace` as this thread's active trace for its lifetime and opens
// the root span. The destructor closes the root, restores the previously
// active trace (traces nest), records `trace.query_latency_us` and runs the
// slow-query check. Pass nullptr for a no-op.
class ScopedTrace {
 public:
  explicit ScopedTrace(QueryTrace* trace);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  QueryTrace* trace_;
  QueryTrace* prev_trace_;
  uint32_t prev_span_;
  uint32_t root_id_ = 0;
};

// Opens a child span of the thread's current span; no-op when no trace is
// active on this thread.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  void AddAttr(const char* key, uint64_t value);
  bool active() const { return trace_ != nullptr; }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  QueryTrace* trace_;
  uint32_t id_ = 0;
  uint32_t prev_span_ = 0;
};

// The trace active on this thread, or nullptr. Exposed so layers that
// cannot hold a ScopedSpan open across a callback boundary can still attach
// attributes to the current span.
QueryTrace* CurrentTrace();
// Id of this thread's innermost open span (0 if none).
uint32_t CurrentSpanId();
// trace_id() of the active trace (0 if none) -- what the flight recorder
// stamps on events.
uint64_t CurrentTraceId();
// AddAttr on the current span; no-op without an active trace.
void CurrentSpanAttr(const char* key, uint64_t value);

// Slow-query threshold in milliseconds, from EXPBSI_SLOW_QUERY_MS (read
// once, cached). Negative = disabled (the default).
double SlowQueryThresholdMs();
// Test hook; overrides the env value for the rest of the process.
void SetSlowQueryThresholdMsForTesting(double ms);
// Applies the threshold to a finished trace: emits one JSON line to stderr
// ({"event": "slow_query", "trace_id", "query", "duration_ms",
// "threshold_ms", "degraded", "fr_seq_lo", "fr_seq_hi", "trace": {...}}),
// bumps `trace.slow_queries` and retains the line for tests. Called by
// ~ScopedTrace; exposed for traces finished by hand.
void MaybeLogSlowQuery(const QueryTrace& trace);
// The most recent slow-query JSON line ("" if none yet).
std::string LastSlowQueryTextForTesting();

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_TRACE_H_
