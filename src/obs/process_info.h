#ifndef EXPBSI_OBS_PROCESS_INFO_H_
#define EXPBSI_OBS_PROCESS_INFO_H_

// Static build/process identity for the observability plane: every process
// (coordinator, expbsi_node, tests, benches) exposes `expbsi_build_info` and
// `expbsi_uptime_seconds` in its Prometheus exposition, and ships the same
// fields in kStatsReply so the fleet scrape can tell a stale binary from a
// fresh one. Always compiled -- identity is not instrumentation, so
// EXPBSI_NO_METRICS does not remove it.

#include <string>

namespace expbsi {
namespace obs {

struct ProcessInfo {
  std::string version;   // repo version, e.g. "0.10"
  std::string compiler;  // __VERSION__
  std::string arch;      // target architecture
  std::string metrics;   // "on" or "compiled_out" (EXPBSI_NO_METRICS)
};

// The process's build identity (computed once).
const ProcessInfo& BuildInfo();

// One-line rendering "expbsi/<version> <compiler> <arch> metrics=<mode>"
// used as the kStatsReply build string and the slow-query log field.
const std::string& BuildInfoString();

// Seconds of steady-clock time since this library was loaded (our proxy for
// process start).
double UptimeSeconds();

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_PROCESS_INFO_H_
