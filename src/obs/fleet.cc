#include "obs/fleet.h"

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/check.h"
#include "net/socket.h"
#include "net/transport.h"
#include "obs/process_info.h"
#include "wire/envelope.h"

namespace expbsi {
namespace obs {

namespace {

// JSON string escaping for free-form fields (build strings, error
// messages). Control characters become \u00XX.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

uint64_t NextRequestId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

wire::WireStatsReply LocalStatsReply(const wire::WireStatsFetch& fetch,
                                     uint32_t node_id,
                                     uint64_t queries_served,
                                     uint64_t backpressure_rejections) {
  wire::WireStatsReply reply;
  reply.node_id = node_id;
  reply.uptime_seconds = UptimeSeconds();
  reply.build_info = BuildInfoString();
  reply.queries_served = queries_served;
  reply.backpressure_rejections = backpressure_rejections;
  if (fetch.want_metrics) {
    MetricsSnapshot snap = MetricsRegistry::Global().Scrape();
    reply.counters.reserve(snap.counters.size());
    for (const auto& [name, v] : snap.counters) {
      reply.counters.emplace_back(name, v);
    }
    reply.gauges.reserve(snap.gauges.size());
    for (const auto& [name, v] : snap.gauges) {
      reply.gauges.emplace_back(name, v);
    }
    reply.histograms.reserve(snap.histograms.size());
    for (const auto& [name, h] : snap.histograms) {
      wire::WireHistogram wh;
      wh.name = name;
      wh.count = h.count;
      wh.sum = h.sum;
      wh.buckets = h.buckets;
      reply.histograms.push_back(std::move(wh));
    }
  }
  if (fetch.want_events) {
    std::vector<FlightEvent> events =
        FlightRecorder::Global().Snapshot(fetch.since_seq);
    reply.events.reserve(events.size());
    for (const FlightEvent& e : events) {
      wire::WireFlightEvent we;
      we.seq = e.seq;
      we.t_ns = e.t_ns;
      we.trace_id = e.trace_id;
      we.kind = e.kind;
      we.a = e.a;
      we.b = e.b;
      reply.events.push_back(we);
    }
  }
  reply.next_seq = FlightRecorder::Global().NextSeq();
  return reply;
}

Result<wire::WireStatsReply> FetchStats(uint16_t port,
                                        const wire::WireStatsFetch& fetch,
                                        double deadline_seconds) {
  net::Deadline deadline = net::Deadline::After(deadline_seconds);
  Result<net::Socket> sock = net::Connect(port, deadline);
  if (!sock.ok()) return sock.status();
  wire::Envelope env;
  env.type = wire::MsgType::kStatsFetch;
  env.request_id = NextRequestId();
  wire::EncodeStatsFetch(fetch, &env.payload);
  Status sent = net::SendEnvelope(sock.value(), env, deadline, nullptr);
  if (!sent.ok()) return sent;
  Result<wire::Envelope> reply =
      net::RecvEnvelope(sock.value(), deadline, env.request_id);
  if (!reply.ok()) return reply.status();
  if (reply.value().type == wire::MsgType::kError) {
    Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
    if (err.ok()) return Status(err.value().code, err.value().message);
    return Status::Corruption("stats fetch: malformed error reply");
  }
  if (reply.value().type != wire::MsgType::kStatsReply) {
    return Status::Corruption("stats fetch: unexpected reply type");
  }
  return wire::DecodeStatsReply(reply.value().payload);
}

MetricsSnapshot SnapshotFromReply(const wire::WireStatsReply& reply) {
  MetricsSnapshot snap;
  for (const auto& [name, v] : reply.counters) snap.counters[name] = v;
  for (const auto& [name, v] : reply.gauges) snap.gauges[name] = v;
  for (const wire::WireHistogram& h : reply.histograms) {
    MetricsSnapshot::HistogramView view;
    view.count = h.count;
    view.sum = h.sum;
    view.buckets = h.buckets;
    snap.histograms[h.name] = std::move(view);
  }
  return snap;
}

std::vector<FlightEvent> EventsFromReply(const wire::WireStatsReply& reply) {
  std::vector<FlightEvent> out;
  out.reserve(reply.events.size());
  for (const wire::WireFlightEvent& we : reply.events) {
    FlightEvent e;
    e.seq = we.seq;
    e.t_ns = we.t_ns;
    e.trace_id = we.trace_id;
    e.kind = we.kind;
    e.a = we.a;
    e.b = we.b;
    out.push_back(e);
  }
  return out;
}

FleetScraper::FleetScraper(FleetScraperOptions options)
    : options_(std::move(options)), cursors_(options_.node_ports.size(), 0) {}

FleetView FleetScraper::Scrape() {
  FleetView view;
  view.nodes.resize(options_.node_ports.size());
  std::vector<std::thread> threads;
  threads.reserve(options_.node_ports.size());
  for (size_t i = 0; i < options_.node_ports.size(); ++i) {
    threads.emplace_back([this, i, &view] {
      const uint16_t port = options_.node_ports[i];
      FleetNodeSnapshot& snap = view.nodes[i];
      snap.label = "127.0.0.1:" + std::to_string(port);
      wire::WireStatsFetch fetch;
      fetch.since_seq = cursors_[i];
      fetch.want_metrics = true;
      fetch.want_events = options_.want_events;
      Result<wire::WireStatsReply> reply =
          FetchStats(port, fetch, options_.fetch_deadline_seconds);
      if (reply.ok()) {
        snap.reachable = true;
        snap.reply = std::move(reply.value());
        if (options_.want_events) cursors_[i] = snap.reply.next_seq;
      } else {
        snap.error = reply.status().ToString();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (options_.include_self) {
    FleetNodeSnapshot self;
    self.label = "coordinator";
    self.reachable = true;
    wire::WireStatsFetch fetch;
    fetch.want_metrics = true;
    fetch.want_events = false;  // local events go to postmortems, not scrapes
    self.reply = LocalStatsReply(fetch, /*node_id=*/UINT32_MAX,
                                 /*queries_served=*/0,
                                 /*backpressure_rejections=*/0);
    view.nodes.push_back(std::move(self));
  }
  return view;
}

uint64_t FleetScraper::cursor(size_t node_index) const {
  CHECK_LT(node_index, cursors_.size());
  return cursors_[node_index];
}

std::string FleetScraper::RenderPrometheus(const FleetView& view) {
  std::string out;
  std::set<std::string> typed;
  for (const FleetNodeSnapshot& node : view.nodes) {
    const std::string node_label =
        "node=\"" + PromEscapeLabelValue(node.label) + "\"";
    // Liveness first, for every configured node, so a dead node is a 0 in
    // the scrape instead of a missing series.
    if (typed.insert("expbsi_node_up").second) {
      out += "# TYPE expbsi_node_up gauge\n";
    }
    out += "expbsi_node_up{" + node_label + "} ";
    out += node.reachable ? "1" : "0";
    out += "\n";
    if (!node.reachable) continue;
    if (typed.insert("expbsi_uptime_seconds").second) {
      out += "# TYPE expbsi_uptime_seconds gauge\n";
    }
    out += "expbsi_uptime_seconds{" + node_label + "} ";
    AppendDouble(&out, node.reply.uptime_seconds);
    out += "\n";
    if (typed.insert("expbsi_build_info").second) {
      out += "# TYPE expbsi_build_info gauge\n";
    }
    out += "expbsi_build_info{" + node_label + ",build=\"" +
           PromEscapeLabelValue(node.reply.build_info) + "\"} 1\n";
    AppendPrometheusSnapshot(SnapshotFromReply(node.reply), node_label,
                             &typed, &out);
  }
  return out;
}

std::string FleetScraper::RenderJson(const FleetView& view) {
  std::string out = "{\"nodes\": [";
  bool first = true;
  for (const FleetNodeSnapshot& node : view.nodes) {
    if (!first) out += ", ";
    first = false;
    out += "{\"node\": \"" + JsonEscape(node.label) + "\", \"up\": ";
    out += node.reachable ? "true" : "false";
    if (!node.reachable) {
      out += ", \"error\": \"" + JsonEscape(node.error) + "\"}";
      continue;
    }
    out += ", \"node_id\": " + std::to_string(node.reply.node_id);
    out += ", \"uptime_seconds\": ";
    AppendDouble(&out, node.reply.uptime_seconds);
    out += ", \"build_info\": \"" + JsonEscape(node.reply.build_info) + "\"";
    out += ", \"queries_served\": " + std::to_string(node.reply.queries_served);
    out += ", \"backpressure_rejections\": " +
           std::to_string(node.reply.backpressure_rejections);
    out += ", \"next_seq\": " + std::to_string(node.reply.next_seq);
    out += ", \"metrics\": ";
    AppendJsonSnapshot(SnapshotFromReply(node.reply), &out);
    out += ", \"events\": ";
    out += FlightEventsToJson(EventsFromReply(node.reply));
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace expbsi
