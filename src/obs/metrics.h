#ifndef EXPBSI_OBS_METRICS_H_
#define EXPBSI_OBS_METRICS_H_

// Process-wide metrics registry (DESIGN.md "Observability model"). The
// platform of the paper is operated as a fleet service (Table 7 reports
// CPU-hours and latency percentiles across thousands of machines); this
// registry is the reproduction's equivalent of its telemetry plane: named
// counters, gauges and log-linear histograms that every layer increments on
// its hot path and an exposition endpoint scrapes.
//
// Performance contract:
//   * an increment is one relaxed atomic add on a cache-line-padded,
//     per-thread-striped cell -- no lock, no shared-line ping-pong;
//   * registration (GetCounter & co.) takes a mutex once per call site
//     (cache the reference in a function-local static);
//   * scraping merges the stripes under the registration mutex; it never
//     blocks writers;
//   * compiling with -DEXPBSI_NO_METRICS replaces every type below with an
//     empty inline shell, so instrumented call sites cost literally nothing
//     (the bench CI pins the overhead of both modes, docs/OBSERVABILITY.md).
//
// Naming: lower-case dotted paths, `[a-z0-9_.]`, subsystem first --
// "tier.hot_hits", "kernel.csa_slices", "query.latency_us". Unit suffixes:
// `_us` microseconds, `_bytes` bytes, `_seconds` (gauges only). The full
// catalog lives in docs/OBSERVABILITY.md.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#if !defined(EXPBSI_NO_METRICS)
#include <atomic>
#include <memory>
#include <mutex>
#endif

namespace expbsi {
namespace obs {

// Point-in-time merged view of the registry, for tests and the JSON dump.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramView {
    uint64_t count = 0;
    uint64_t sum = 0;
    // (inclusive upper bound, count in bucket), only non-empty buckets.
    std::vector<std::pair<uint64_t, uint64_t>> buckets;
  };
  std::map<std::string, HistogramView> histograms;
};

// ---------------------------------------------------------------------------
// Snapshot rendering -- always compiled, even under EXPBSI_NO_METRICS: the
// fleet scraper (obs/fleet.h) renders MetricsSnapshots that arrived over the
// wire from *instrumented* peers, regardless of how this process was built.
// ---------------------------------------------------------------------------

// Prometheus label-VALUE escaping per the text exposition format: backslash
// -> \\, double quote -> \", newline -> \n. Label names and metric names
// never need escaping here ([a-z0-9_.] enforced at registration).
std::string PromEscapeLabelValue(std::string_view value);

// "tier.hot_hits" -> "expbsi_tier_hot_hits".
std::string PromMetricName(const std::string& name);

// Appends `snap` as Prometheus text. Every sample carries `label_block`
// verbatim inside its braces (e.g. `node="127.0.0.1:9100"`; empty = bare
// samples). A `# TYPE` line is emitted the first time a family name enters
// `families_typed`, so a fleet view that renders N node snapshots of the
// same metric gets one TYPE line per family, as the format requires.
void AppendPrometheusSnapshot(const MetricsSnapshot& snap,
                              const std::string& label_block,
                              std::set<std::string>* families_typed,
                              std::string* out);

// Appends `snap` as one JSON object: {"counters": {...}, "gauges": {...},
// "histograms": {name: {"count", "sum", "buckets": [[le, n], ...]}}}.
void AppendJsonSnapshot(const MetricsSnapshot& snap, std::string* out);

#if defined(EXPBSI_NO_METRICS)

// ---------------------------------------------------------------------------
// Compiled-out shells: every operation is an empty inline function, so the
// instrumentation in the hot paths disappears entirely.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void Add(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(double) {}
  void Add(double) {}
  void Sub(double) {}
  double Value() const { return 0.0; }
};

class Histogram {
 public:
  void Record(uint64_t) {}
  uint64_t Count() const { return 0; }
};

inline Counter& GetCounter(const char*) {
  static Counter c;
  return c;
}
inline Gauge& GetGauge(const char*) {
  static Gauge g;
  return g;
}
inline Histogram& GetHistogram(const char*) {
  static Histogram h;
  return h;
}

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
  MetricsSnapshot Scrape() const { return {}; }
  std::string RenderPrometheus() const {
    return "# expbsi metrics compiled out (EXPBSI_NO_METRICS)\n";
  }
  std::string RenderJson() const {
    return "{\"compiled_out\": true}";
  }
  void ResetForTesting() {}
};

#else  // !EXPBSI_NO_METRICS

namespace internal {

// Stripe count: increments land on stripe (thread-id mod kStripes). Power of
// two, small enough that a histogram stays in the tens of KB.
inline constexpr int kStripes = 8;

// Index of the calling thread's stripe (assigned round-robin on first use).
uint32_t ThisThreadStripe();

struct alignas(64) PaddedU64 {
  std::atomic<uint64_t> v{0};
};

}  // namespace internal

// Monotone event count. Exact: Value() is the sum of all stripes, and every
// Add lands in exactly one stripe.
class Counter {
 public:
  void Add(uint64_t delta = 1) {
    cells_[internal::ThisThreadStripe()].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }
  void ResetForTesting() {
    for (auto& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedU64 cells_[internal::kStripes];
};

// A double that can move both ways (queue depth, pooled bytes, last SRM
// p-value, accumulated CPU-seconds). Single atomic cell: gauges change at
// task granularity, not per-container, so striping buys nothing.
class Gauge {
 public:
  void Set(double v) { bits_.store(Encode(v), std::memory_order_relaxed); }
  void Add(double delta) {
    uint64_t cur = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(cur, Encode(Decode(cur) + delta),
                                        std::memory_order_relaxed)) {
    }
  }
  void Sub(double delta) { Add(-delta); }
  double Value() const {
    return Decode(bits_.load(std::memory_order_relaxed));
  }
  void ResetForTesting() { Set(0.0); }

 private:
  static uint64_t Encode(double v);
  static double Decode(uint64_t bits);
  std::atomic<uint64_t> bits_{0};
};

// Log-linear histogram of non-negative 64-bit values (latencies in
// microseconds, sizes in bytes): 4 linear sub-buckets per power of two, so
// the relative bucket width is <= 25% everywhere -- good enough for p50/p99
// style questions at a fixed 252-bucket footprint.
class Histogram {
 public:
  static constexpr int kSubBits = 2;              // 4 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kNumBuckets =
      ((64 - kSubBits) << kSubBits) + kSub;       // 252

  // Bucket index of `v` (monotone in v).
  static int BucketIndex(uint64_t v);
  // Inclusive upper bound of bucket `idx` (UINT64_MAX for the last ones).
  static uint64_t BucketUpperBound(int idx);

  void Record(uint64_t value) {
    Stripe& s = stripes_[internal::ThisThreadStripe()];
    s.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t Count() const;
  uint64_t Sum() const;
  MetricsSnapshot::HistogramView View() const;
  void ResetForTesting();

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> buckets[kNumBuckets]{};
  };
  Stripe stripes_[internal::kStripes];
};

// Process-wide registry. Metric objects are owned by the registry and live
// forever at a stable address; cache the returned reference:
//
//   static obs::Counter& hits = obs::GetCounter("tier.hot_hits");
//   hits.Add();
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Finds or creates. Names must match [a-z0-9_.]+ (CHECK-enforced).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  MetricsSnapshot Scrape() const;

  // Prometheus text exposition: names are prefixed `expbsi_` with dots
  // flattened to underscores; histograms render cumulative `_bucket{le=}`
  // series plus `_sum`/`_count`.
  std::string RenderPrometheus() const;

  // One JSON object: {"counters": {...}, "gauges": {...},
  // "histograms": {name: {"count", "sum", "buckets": [[le, n], ...]}}}.
  std::string RenderJson() const;

  // Zeroes every registered metric in place (addresses stay valid, so
  // references cached by call sites keep working).
  void ResetForTesting();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Counter& GetCounter(const char* name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge& GetGauge(const char* name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram& GetHistogram(const char* name) {
  return MetricsRegistry::Global().GetHistogram(name);
}

#endif  // EXPBSI_NO_METRICS

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_METRICS_H_
