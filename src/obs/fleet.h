#ifndef EXPBSI_OBS_FLEET_H_
#define EXPBSI_OBS_FLEET_H_

// Fleet-level observability (DESIGN.md "Fleet observability"). The PR 5
// metrics registry is process-local; this layer makes the whole serving
// cluster scrapeable from one place. A FleetScraper on the coordinator
// fans a kStatsFetch out to every node, collects kStatsReply snapshots
// (full MetricsRegistry contents plus node health/uptime/build info and a
// flight-recorder slice), and merges them into a labeled fleet view:
// every sample carries `node="host:port"`, the coordinator's own registry
// rides along as `node="coordinator"`, and `expbsi_node_up` makes dead
// nodes visible instead of silently absent. Exposed as Prometheus text and
// as JSON -- one scrape of the coordinator shows the whole cluster.
//
// Flight events ship incrementally: the scraper remembers each node's
// `next_seq` cursor and asks only for what it has not seen. The postmortem
// writer (obs/postmortem.h) uses the same message with its own cursors.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "wire/messages.h"

namespace expbsi {
namespace obs {

// Builds this process's own kStatsReply: registry snapshot (empty under
// EXPBSI_NO_METRICS), flight events with seq >= fetch.since_seq, build
// info, uptime and the caller-supplied serving counters. Shared by
// NodeServer (answering the wire message) and FleetScraper (the
// coordinator's self row).
wire::WireStatsReply LocalStatsReply(const wire::WireStatsFetch& fetch,
                                     uint32_t node_id,
                                     uint64_t queries_served,
                                     uint64_t backpressure_rejections);

// Dials 127.0.0.1:`port`, sends one kStatsFetch and waits for the
// kStatsReply under `deadline_seconds`. Unavailable when the node is down;
// Corruption when it answers with malformed bytes.
Result<wire::WireStatsReply> FetchStats(uint16_t port,
                                        const wire::WireStatsFetch& fetch,
                                        double deadline_seconds);

// One node's contribution to a fleet view.
struct FleetNodeSnapshot {
  std::string label;  // "127.0.0.1:9100", or "coordinator" for the self row
  bool reachable = false;
  std::string error;            // status message when !reachable
  wire::WireStatsReply reply;   // meaningful only when reachable
};

struct FleetView {
  std::vector<FleetNodeSnapshot> nodes;
};

struct FleetScraperOptions {
  std::vector<uint16_t> node_ports;
  double fetch_deadline_seconds = 2.0;
  // Append the coordinator's own registry as node="coordinator".
  bool include_self = true;
  // Ship flight events (advancing the per-node cursors) on each scrape.
  bool want_events = true;
};

class FleetScraper {
 public:
  explicit FleetScraper(FleetScraperOptions options);

  // One scrape wave: all nodes fetched concurrently, cursors advanced for
  // the reachable ones. Unreachable nodes come back with reachable=false
  // and their error -- a fleet view never fails as a whole.
  FleetView Scrape();

  // The next-seq cursor for options.node_ports[i] (0 until first success).
  uint64_t cursor(size_t node_index) const;

  // Merged Prometheus text exposition of a view: one TYPE line per family,
  // every sample labeled node="<label>", plus expbsi_node_up{node=...} for
  // every configured node and per-node build info/uptime.
  static std::string RenderPrometheus(const FleetView& view);

  // {"nodes": [{"node", "up", "error"?, "node_id", "uptime_seconds",
  //   "build_info", "queries_served", "backpressure_rejections",
  //   "next_seq", "metrics": {...}, "events": [...]}, ...]}
  static std::string RenderJson(const FleetView& view);

 private:
  FleetScraperOptions options_;
  std::vector<uint64_t> cursors_;
};

// WireStatsReply section conversions, shared with the postmortem writer.
MetricsSnapshot SnapshotFromReply(const wire::WireStatsReply& reply);
std::vector<FlightEvent> EventsFromReply(const wire::WireStatsReply& reply);

}  // namespace obs
}  // namespace expbsi

#endif  // EXPBSI_OBS_FLEET_H_
