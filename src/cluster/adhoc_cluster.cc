#include "cluster/adhoc_cluster.h"

#include <algorithm>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "cluster/segment_query.h"
#include "common/check.h"
#include "common/fault_injector.h"
#include "common/timer.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/trace.h"
#include "wal/ingest_store.h"

namespace expbsi {

BsiStore BuildColdStore(const ExperimentBsiData& data) {
  BsiStore store;
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    for (const auto& [strategy_id, expose] : sbd.expose) {
      std::string bytes;
      expose.Serialize(&bytes);
      store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kExpose,
                            strategy_id, 0},
                std::move(bytes));
    }
    for (const auto& [key, metric] : sbd.metrics) {
      std::string bytes;
      metric.Serialize(&bytes);
      store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kMetric,
                            key.first, key.second},
                std::move(bytes));
    }
    for (const auto& [key, dimension] : sbd.dimensions) {
      std::string bytes;
      dimension.Serialize(&bytes);
      store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kDimension,
                            key.first, key.second},
                std::move(bytes));
    }
  }
  return store;
}

Result<ExperimentBsiData> ReconstructBsiData(const BsiStore& store,
                                             int num_segments,
                                             int num_buckets,
                                             bool bucket_equals_segment) {
  ExperimentBsiData out;
  if (num_segments <= 0) {
    int max_segment = -1;
    store.ForEach([&max_segment](const BsiStoreKey& key, const std::string&) {
      max_segment = std::max(max_segment, static_cast<int>(key.segment));
    });
    num_segments = max_segment + 1;
  }
  out.num_segments = num_segments;
  out.num_buckets = num_buckets;
  out.bucket_equals_segment = bucket_equals_segment;
  out.segments.resize(static_cast<size_t>(std::max(num_segments, 0)));
  Status status;
  store.ForEach([&](const BsiStoreKey& key, const std::string& bytes) {
    if (!status.ok()) return;
    if (static_cast<int>(key.segment) >= num_segments) {
      status = Status::Corruption(
          "reconstruct: blob for segment beyond num_segments");
      return;
    }
    SegmentBsiData& seg = out.segments[key.segment];
    // Each blob must decode AND describe the key it was stored under -- a
    // blob swapped between keys would otherwise be silently accepted.
    switch (key.kind) {
      case BsiKind::kExpose: {
        Result<ExposeBsi> expose = ExposeBsi::Deserialize(bytes);
        if (!expose.ok()) {
          status = expose.status();
          return;
        }
        if (expose.value().strategy_id != key.id || key.date != 0) {
          status = Status::Corruption(
              "reconstruct: expose blob does not match its key");
          return;
        }
        seg.expose.emplace(key.id, std::move(expose).value());
        break;
      }
      case BsiKind::kMetric: {
        Result<MetricBsi> metric = MetricBsi::Deserialize(bytes);
        if (!metric.ok()) {
          status = metric.status();
          return;
        }
        if (metric.value().metric_id != key.id ||
            metric.value().date != key.date) {
          status = Status::Corruption(
              "reconstruct: metric blob does not match its key");
          return;
        }
        seg.metrics.emplace(std::make_pair(key.id, key.date),
                            std::move(metric).value());
        break;
      }
      case BsiKind::kDimension: {
        Result<DimensionBsi> dimension = DimensionBsi::Deserialize(bytes);
        if (!dimension.ok()) {
          status = dimension.status();
          return;
        }
        if (dimension.value().dimension_id != key.id ||
            dimension.value().date != key.date) {
          status = Status::Corruption(
              "reconstruct: dimension blob does not match its key");
          return;
        }
        seg.dimensions.emplace(
            std::make_pair(static_cast<uint32_t>(key.id), key.date),
            std::move(dimension).value());
        break;
      }
      case BsiKind::kState:
        // Ingest-store checkpoint state (meta / position encoders); not a
        // BSI. The ingest store decodes these itself.
        break;
    }
  });
  if (!status.ok()) return status;
  return out;
}

AdhocCluster::AdhocCluster(const Dataset* dataset,
                           const ExperimentBsiData* bsi,
                           AdhocClusterConfig config)
    : dataset_(dataset), bsi_(bsi), config_(std::move(config)) {
  CHECK_GT(config_.num_nodes, 0);
  CHECK_GT(config_.threads_per_node, 0);
  if (dataset_ != nullptr) CHECK(dataset_->config.bucket_equals_segment);

  if (config_.ingest != nullptr) {
    // The ingest store already recovered (newest good snapshot + WAL tail
    // replay); the cluster is a serving view of its live data.
    CHECK(bsi_ == nullptr);  // exactly one BSI source
    bsi_ = &config_.ingest->data();
  }

  bool recovered = false;
  if (config_.ingest == nullptr && !config_.snapshot_dir.empty()) {
    Result<BsiStore> r =
        BsiStore::Recover(config_.snapshot_dir, &recovery_report_);
    // With a rebuild source at hand only a complete recovery is worth
    // taking; on a pure cold start (bsi == nullptr) a partial recovery is
    // accepted and the losses surface through DegradedInfo on every query.
    if (r.ok() && r.value().NumBlobs() > 0 &&
        (bsi_ == nullptr || recovery_report_.fully_recovered())) {
      cold_ = std::move(r).value();
      recovered = true;
      cold_started_from_snapshot_ = true;
    }
  }
  if (!recovered) {
    CHECK(bsi_ != nullptr);  // neither a snapshot nor a build source
    recovery_report_ = RecoveryReport{};
    cold_ = BuildColdStore(*bsi_);
    // With an ingest store the snapshot directory belongs to its
    // checkpoints (whose manifests carry WAL metadata); the cluster must
    // not publish versions of its own there.
    if (config_.ingest == nullptr && !config_.snapshot_dir.empty()) {
      Result<SnapshotWriteStats> written =
          SnapshotWriter::Write(cold_, config_.snapshot_dir);
      if (!written.ok()) snapshot_write_status_ = written.status();
    }
  }

  if (bsi_ != nullptr) {
    num_segments_ = bsi_->num_segments;
  } else {
    // Cold start without shape metadata: the segment count is whatever the
    // manifest talked about, recovered or lost.
    int max_segment = -1;
    cold_.ForEach([&max_segment](const BsiStoreKey& key, const std::string&) {
      max_segment = std::max(max_segment, static_cast<int>(key.segment));
    });
    for (uint16_t seg : recovery_report_.lost_segments) {
      max_segment = std::max(max_segment, static_cast<int>(seg));
    }
    num_segments_ = max_segment + 1;
  }
  for (uint16_t seg : recovery_report_.lost_segments) {
    if (static_cast<int>(seg) < num_segments_) {
      recovery_lost_segments_.push_back(seg);
    }
  }

  if (dataset_ != nullptr) {
    // Cluster-local layout of the normal-format rows, clustered by
    // (metric, segment) like a ClickHouse primary key.
    normal_index_ =
        std::make_unique<NormalDataIndex>(NormalDataIndex::Build(*dataset_));
  }
  node_tiers_.reserve(config_.num_nodes);
  for (int n = 0; n < config_.num_nodes; ++n) {
    node_tiers_.push_back(std::make_unique<TieredStore>(
        &cold_, config_.hot_capacity_bytes_per_node));
  }
  // Same rendezvous primaries as the network Coordinator, so the two
  // serving paths agree on which node owns a segment. R is 1 here: the
  // in-process nodes share one warehouse, so crash requeue can already use
  // any survivor (and primaries are independent of R anyway).
  placement_ = std::make_unique<Placement>(
      config_.num_nodes, std::max(num_segments_, 0),
      /*replication_factor=*/1);
}

Result<AdhocCluster::QueryStats> AdhocCluster::QueryBsi(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  Result<QueryStats> result =
      QueryBsiInternal(strategy_ids, metric_ids, date_lo, date_hi);
  if (!result.ok()) return result;
  // The internal call's ScopedTrace has closed: the root span is final and
  // the slow-query check has run before the bundle freezes the trace.
  MaybeWritePostmortem(&result.value());
  return result;
}

Result<AdhocCluster::QueryStats> AdhocCluster::QueryBsiInternal(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  QueryStats stats;
  stats.trace = std::make_shared<obs::QueryTrace>("adhoc_query_bsi");
  obs::ScopedTrace install_trace(stats.trace.get());
  static obs::Counter& queries = obs::GetCounter("cluster.queries");
  queries.Add();
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kQueryAdmit,
      static_cast<uint64_t>(num_segments_));
  const int num_segments = num_segments_;
  if (!recovery_lost_segments_.empty() && !config_.allow_degraded) {
    return Status::Corruption(
        "adhoc cluster: warehouse recovered with lost segments; strict mode "
        "refuses to serve a biased scorecard");
  }
  FaultInjector* const fi = FaultInjector::Get();

  // Per-pair per-segment partials, assembled as node waves complete.
  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  // Per-segment execution lives in cluster/segment_query.* and is shared
  // with the remote NodeServer, so the two serving paths cannot drift.
  auto process_segment = [&](TieredStore& tier, int seg,
                             SegPartial* out) -> Result<bool> {
    SegmentExecStats exec;
    Result<bool> r = ExecuteSegmentQuery(
        tier, seg, strategy_ids, metric_ids, date_lo, date_hi, config_.retry,
        config_.allow_degraded, out, &exec);
    stats.degraded.retries += exec.retries;
    stats.degraded.faults_survived += exec.faults_survived;
    return r;
  };

  // Segment ownership; requeued segments land on survivors in later waves.
  // Segments the snapshot recovery lost are pre-marked degraded instead of
  // being scheduled (their warehouse blobs are quarantined on disk).
  const std::unordered_set<int> recovery_lost(
      recovery_lost_segments_.begin(), recovery_lost_segments_.end());
  std::vector<std::vector<int>> assignment(config_.num_nodes);
  for (int seg = 0; seg < num_segments; ++seg) {
    if (recovery_lost.count(seg) > 0) continue;
    assignment[NodeOfSegment(seg)].push_back(seg);
  }
  std::vector<bool> alive(config_.num_nodes, true);
  std::vector<int> lost_segments = recovery_lost_segments_;
  std::set<int> requeued_segments;  // for faults_survived accounting
  double total_latency = 0.0;
  int wave_index = 0;
  static obs::Counter& waves_counter = obs::GetCounter("cluster.waves");
  static obs::Counter& requeue_counter =
      obs::GetCounter("cluster.requeued_segments");
  static obs::Counter& crash_counter = obs::GetCounter("cluster.nodes_lost");

  while (true) {
    std::vector<int> requeue;
    double max_node_latency = 0.0;
    obs::ScopedSpan wave_span("wave");
    wave_span.AddAttr("wave", static_cast<uint64_t>(wave_index++));
    waves_counter.Add();
    for (int node = 0; node < config_.num_nodes; ++node) {
      if (!alive[node] || assignment[node].empty()) continue;
      TieredStore& tier = *node_tiers_[node];
      obs::ScopedSpan node_span("node_execute");
      node_span.AddAttr("node", static_cast<uint64_t>(node));
      node_span.AddAttr("segments", assignment[node].size());
      const TieredStore::Stats io_before = tier.stats();
      CpuTimer cpu;
      double injected_delay = 0.0;
      bool crashed = false;
      std::vector<std::pair<int, SegPartial>> completed;
      std::vector<int> lost_this_wave;
      for (const int seg : assignment[node]) {
        if (fi != nullptr) {
          const FaultDecision d = fi->Evaluate(fault_sites::kNodeSegment);
          injected_delay += d.delay_seconds;
          if (d.crash || d.fail) {
            crashed = true;
            break;
          }
        }
        SegPartial partial;
        Result<bool> processed = process_segment(tier, seg, &partial);
        if (!processed.ok()) return processed.status();
        if (processed.value()) {
          completed.emplace_back(seg, std::move(partial));
        } else {
          lost_this_wave.push_back(seg);
        }
      }
      const double node_cpu = cpu.ElapsedSeconds();
      const TieredStore::Stats io_after = tier.stats();
      const uint64_t node_cold_bytes =
          io_after.bytes_from_cold - io_before.bytes_from_cold;
      stats.total_cpu_seconds += node_cpu;
      stats.bytes_from_cold += node_cold_bytes;
      stats.hot_hits += io_after.hot_hits - io_before.hot_hits;
      node_span.AddAttr("cold_bytes", node_cold_bytes);
      node_span.AddAttr("hot_hits", io_after.hot_hits - io_before.hot_hits);
      injected_delay +=
          io_after.injected_delay_seconds - io_before.injected_delay_seconds;
      const double node_latency =
          node_cpu / config_.threads_per_node +
          static_cast<double>(node_cold_bytes) /
              config_.cold_bandwidth_bytes_per_sec +
          injected_delay;
      max_node_latency = std::max(max_node_latency, node_latency);
      if (crashed) {
        // The node died mid-wave: its response never reaches the
        // coordinator, so everything it owned this wave -- completed, lost
        // or untouched -- is requeued onto the survivors.
        alive[node] = false;
        ++stats.degraded.nodes_lost;
        node_span.AddAttr("crashed", 1);
        crash_counter.Add();
        requeue_counter.Add(assignment[node].size());
        requeue.insert(requeue.end(), assignment[node].begin(),
                       assignment[node].end());
      } else {
        static obs::Counter& seg_counter =
            obs::GetCounter("cluster.segments_processed");
        seg_counter.Add(completed.size());
        for (auto& [seg, partial] : completed) {
          size_t slot = 0;
          for (uint64_t s : strategy_ids) {
            for (uint64_t m : metric_ids) {
              BucketValues& bv = partials[{s, m}];
              bv.sums[seg] = partial.sums[slot];
              bv.counts[seg] = partial.counts[slot];
              ++slot;
            }
          }
          if (requeued_segments.erase(seg) > 0) {
            ++stats.degraded.faults_survived;
          }
        }
        lost_segments.insert(lost_segments.end(), lost_this_wave.begin(),
                             lost_this_wave.end());
      }
      assignment[node].clear();
    }
    total_latency += max_node_latency;
    if (requeue.empty()) break;
    std::vector<int> survivors;
    for (int node = 0; node < config_.num_nodes; ++node) {
      if (alive[node]) survivors.push_back(node);
    }
    if (survivors.empty()) {
      if (!config_.allow_degraded) {
        return Status::Unavailable(
            "adhoc cluster: every node crashed mid-query");
      }
      lost_segments.insert(lost_segments.end(), requeue.begin(),
                           requeue.end());
      break;
    }
    for (size_t i = 0; i < requeue.size(); ++i) {
      assignment[survivors[i % survivors.size()]].push_back(requeue[i]);
      requeued_segments.insert(requeue[i]);
    }
  }

  std::sort(lost_segments.begin(), lost_segments.end());
  lost_segments.erase(
      std::unique(lost_segments.begin(), lost_segments.end()),
      lost_segments.end());
  stats.degraded.segments_answered =
      num_segments - static_cast<int>(lost_segments.size());
  if (!lost_segments.empty()) {
    static obs::Counter& lost_counter =
        obs::GetCounter("cluster.degraded_segments");
    lost_counter.Add(lost_segments.size());
  }
  // Degradation summary on the root span, so a slow-query dump of a chaotic
  // run shows what was retried, requeued and lost at a glance.
  obs::CurrentSpanAttr("waves", static_cast<uint64_t>(wave_index));
  obs::CurrentSpanAttr(
      "segments_answered",
      static_cast<uint64_t>(stats.degraded.segments_answered));
  obs::CurrentSpanAttr("lost_segments", lost_segments.size());
  obs::CurrentSpanAttr("retries",
                       static_cast<uint64_t>(stats.degraded.retries));
  obs::CurrentSpanAttr("nodes_lost",
                       static_cast<uint64_t>(stats.degraded.nodes_lost));
  stats.degraded.lost_segments = std::move(lost_segments);

  // Coordinator merge is a handful of vector adds; fold it into the
  // measured assembly below.
  CpuTimer merge_cpu;
  stats.results = std::move(partials);
  stats.latency_seconds = total_latency + merge_cpu.ElapsedSeconds();
  if (stats.degraded.degraded()) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kQueryDegraded,
        stats.degraded.lost_segments.size(),
        static_cast<uint64_t>(stats.degraded.nodes_lost));
  }
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kQueryFinish,
      static_cast<uint64_t>(stats.latency_seconds * 1e6),
      stats.degraded.lost_segments.size());
  return stats;
}

void AdhocCluster::MaybeWritePostmortem(QueryStats* stats) {
  std::string reason;
  if (stats->degraded.degraded()) {
    reason = "degraded";
  } else if (stats->degraded.nodes_lost > 0) {
    reason = "node_markdown";
  } else {
    const double threshold_ms = obs::SlowQueryThresholdMs();
    if (threshold_ms >= 0.0 &&
        stats->latency_seconds * 1000.0 >= threshold_ms) {
      reason = "slow_query";
    }
  }
  if (reason.empty() || config_.postmortem_dir.empty()) return;

  obs::PostmortemBundle bundle;
  bundle.reason = reason;
  bundle.trace_id = stats->trace ? stats->trace->trace_id() : 0;
  bundle.query = "adhoc_query_bsi";
  bundle.duration_ms = stats->latency_seconds * 1000.0;
  for (int seg : stats->degraded.lost_segments) {
    bundle.lost_segments.push_back(static_cast<uint32_t>(seg));
  }
  bundle.segments_answered =
      static_cast<uint64_t>(stats->degraded.segments_answered);
  bundle.retries = static_cast<uint32_t>(stats->degraded.retries);
  bundle.faults_survived =
      static_cast<uint32_t>(stats->degraded.faults_survived);
  bundle.nodes_lost = static_cast<uint32_t>(stats->degraded.nodes_lost);
  if (stats->trace) bundle.trace_json = stats->trace->ToJson();
  obs::PostmortemFlightSlice self;
  self.label = "local";
  self.fetched = true;
  self.events = obs::FlightRecorder::Global().Snapshot(
      stats->trace ? stats->trace->start_flight_seq() : 0);
  self.next_seq = obs::FlightRecorder::Global().NextSeq();
  bundle.slices.push_back(std::move(self));
  Result<std::string> written =
      obs::WritePostmortem(config_.postmortem_dir, bundle);
  if (written.ok()) stats->postmortem_path = std::move(written).value();
}

const ExposeBitmapCache& AdhocCluster::GetOrBuildBitmapCache(
    uint64_t strategy_id, Date date_lo, Date date_hi, bool* built) {
  *built = false;
  auto it = bitmap_caches_.find(strategy_id);
  if (it != bitmap_caches_.end() && it->second.date_lo() <= date_lo &&
      it->second.date_hi() >= date_hi) {
    return it->second;
  }
  *built = true;
  ExposeBitmapCache cache =
      ExposeBitmapCache::Build(*dataset_, strategy_id, date_lo, date_hi);
  auto [new_it, _] = bitmap_caches_.insert_or_assign(strategy_id,
                                                     std::move(cache));
  return new_it->second;
}

Result<AdhocCluster::QueryStats> AdhocCluster::QueryNormalBitmap(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  CHECK(dataset_ != nullptr);  // the baseline needs the normal-format rows
  QueryStats stats;
  stats.trace = std::make_shared<obs::QueryTrace>("adhoc_query_normal");
  obs::ScopedTrace install_trace(stats.trace.get());
  static obs::Counter& queries = obs::GetCounter("cluster.queries");
  queries.Add();
  const int num_segments = dataset_->config.num_segments;
  // The paper's baseline caches the expose bitmaps in memory up front; the
  // cache build is not part of the repeated-query latency. It IS a read of
  // the expose rows, though, so it is accounted exactly like the BSI path's
  // tier accounting: a (re)build charges the scanned rows to
  // bytes_from_cold, a reuse of the in-memory cache is a hot hit.
  std::vector<const ExposeBitmapCache*> caches;
  caches.reserve(strategy_ids.size());
  {
    obs::ScopedSpan span("build_bitmap_caches");
    for (uint64_t strategy_id : strategy_ids) {
      bool built = false;
      caches.push_back(
          &GetOrBuildBitmapCache(strategy_id, date_lo, date_hi, &built));
      if (built) {
        for (int seg = 0; seg < num_segments; ++seg) {
          const std::vector<ExposeRow>* rows =
              normal_index_->ExposeRows(strategy_id, seg);
          if (rows != nullptr) {
            stats.bytes_from_cold += rows->size() * sizeof(ExposeRow);
          }
        }
      } else {
        ++stats.hot_hits;
      }
    }
    span.AddAttr("strategies", strategy_ids.size());
    span.AddAttr("cold_bytes", stats.bytes_from_cold);
  }

  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  double max_node_latency = 0.0;
  for (int node = 0; node < config_.num_nodes; ++node) {
    obs::ScopedSpan node_span("node_scan");
    node_span.AddAttr("node", static_cast<uint64_t>(node));
    CpuTimer cpu;
    for (int seg = node; seg < num_segments; seg += config_.num_nodes) {
      // Scan each requested metric's clustered rows (ClickHouse primary-key
      // order prunes other metrics), filtering each row through the per-day
      // expose bitmap. Masks are hoisted and sums accumulate in registers,
      // as a columnar engine would.
      const int num_days = static_cast<int>(date_hi - date_lo) + 1;
      std::vector<const RoaringBitmap*> day_masks(strategy_ids.size() *
                                                  num_days);
      for (size_t si = 0; si < strategy_ids.size(); ++si) {
        for (int d = 0; d < num_days; ++d) {
          day_masks[si * num_days + d] =
              &caches[si]->For(seg, date_lo + static_cast<Date>(d));
        }
      }
      std::vector<double> local_sums(strategy_ids.size());
      for (uint64_t metric_id : metric_ids) {
        const std::vector<MetricRow>* rows =
            normal_index_->MetricRows(metric_id, seg);
        if (rows == nullptr) continue;
        // First scan of this row group pays the cold read; repeats hit the
        // in-memory copy (the baseline's analogue of the BSI hot tier).
        if (normal_scanned_.insert({metric_id, seg}).second) {
          stats.bytes_from_cold += rows->size() * sizeof(MetricRow);
        } else {
          ++stats.hot_hits;
        }
        std::fill(local_sums.begin(), local_sums.end(), 0.0);
        for (const MetricRow& row : *rows) {
          if (row.date < date_lo || row.date > date_hi) continue;
          const uint32_t unit = static_cast<uint32_t>(row.analysis_unit_id);
          const int d = static_cast<int>(row.date - date_lo);
          for (size_t si = 0; si < strategy_ids.size(); ++si) {
            if (day_masks[si * num_days + d]->Contains(unit)) {
              local_sums[si] += static_cast<double>(row.value);
            }
          }
        }
        for (size_t si = 0; si < strategy_ids.size(); ++si) {
          partials[{strategy_ids[si], metric_id}].sums[seg] +=
              local_sums[si];
        }
      }
      for (size_t si = 0; si < strategy_ids.size(); ++si) {
        const double exposed = static_cast<double>(
            caches[si]->For(seg, date_hi).Cardinality());
        for (uint64_t m : metric_ids) {
          partials[{strategy_ids[si], m}].counts[seg] += exposed;
        }
      }
    }
    const double node_cpu = cpu.ElapsedSeconds();
    stats.total_cpu_seconds += node_cpu;
    max_node_latency =
        std::max(max_node_latency, node_cpu / config_.threads_per_node);
  }
  stats.results = std::move(partials);
  stats.latency_seconds = max_node_latency;
  return stats;
}

}  // namespace expbsi
