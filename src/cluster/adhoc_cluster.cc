#include "cluster/adhoc_cluster.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/timer.h"

namespace expbsi {

BsiStore BuildColdStore(const ExperimentBsiData& data) {
  BsiStore store;
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    for (const auto& [strategy_id, expose] : sbd.expose) {
      std::string bytes;
      expose.Serialize(&bytes);
      store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kExpose,
                            strategy_id, 0},
                std::move(bytes));
    }
    for (const auto& [key, metric] : sbd.metrics) {
      std::string bytes;
      metric.Serialize(&bytes);
      store.Put(BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kMetric,
                            key.first, key.second},
                std::move(bytes));
    }
  }
  return store;
}

AdhocCluster::AdhocCluster(const Dataset* dataset,
                           const ExperimentBsiData* bsi,
                           AdhocClusterConfig config)
    : dataset_(dataset), bsi_(bsi), config_(config) {
  CHECK(dataset != nullptr);
  CHECK(bsi != nullptr);
  CHECK(dataset->config.bucket_equals_segment);
  CHECK_GT(config_.num_nodes, 0);
  CHECK_GT(config_.threads_per_node, 0);
  cold_ = BuildColdStore(*bsi);
  // Cluster-local layout of the normal-format rows, clustered by
  // (metric, segment) like a ClickHouse primary key.
  normal_index_ =
      std::make_unique<NormalDataIndex>(NormalDataIndex::Build(*dataset));
  node_tiers_.reserve(config_.num_nodes);
  for (int n = 0; n < config_.num_nodes; ++n) {
    node_tiers_.push_back(std::make_unique<TieredStore>(
        &cold_, config_.hot_capacity_bytes_per_node));
  }
}

Result<AdhocCluster::QueryStats> AdhocCluster::QueryBsi(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  QueryStats stats;
  const int num_segments = bsi_->num_segments;
  // Per-pair per-segment partials, assembled after all nodes "ran".
  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  double max_node_latency = 0.0;
  for (int node = 0; node < config_.num_nodes; ++node) {
    TieredStore& tier = *node_tiers_[node];
    const TieredStore::Stats io_before = tier.stats();
    CpuTimer cpu;
    for (int seg = node; seg < num_segments; seg += config_.num_nodes) {
      // Fetch + decode the expose BSIs once per (segment, strategy) and
      // precompute the per-day masks all metrics share.
      struct StrategyMasks {
        std::vector<RoaringBitmap> by_day;  // index: date - date_lo
        uint64_t exposed_by_hi = 0;
      };
      std::unordered_map<uint64_t, StrategyMasks> masks;
      for (uint64_t strategy_id : strategy_ids) {
        Result<std::shared_ptr<const std::string>> blob = tier.Fetch(
            BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kExpose,
                        strategy_id, 0});
        if (!blob.ok()) continue;  // strategy absent from this segment
        Result<ExposeBsi> expose = ExposeBsi::Deserialize(*blob.value());
        if (!expose.ok()) return expose.status();
        StrategyMasks sm;
        sm.by_day.reserve(date_hi - date_lo + 1);
        for (Date d = date_lo; d <= date_hi; ++d) {
          if (sm.by_day.empty()) {
            sm.by_day.push_back(expose.value().ExposedOnOrBefore(d));
          } else {
            // Each unit exposes once, so day d's mask is day d-1's mask plus
            // the (disjoint) units first exposed on day d -- one small
            // incremental union instead of a full slice-descent per day.
            RoaringBitmap mask = sm.by_day.back();
            mask.OrInPlace(expose.value().ExposedBetween(d, d));
            sm.by_day.push_back(std::move(mask));
          }
        }
        sm.exposed_by_hi = sm.by_day.back().Cardinality();
        masks.emplace(strategy_id, std::move(sm));
      }
      for (uint64_t metric_id : metric_ids) {
        for (Date d = date_lo; d <= date_hi; ++d) {
          Result<std::shared_ptr<const std::string>> blob = tier.Fetch(
              BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kMetric,
                          metric_id, d});
          if (!blob.ok()) continue;  // no data for this (metric, day)
          Result<MetricBsi> metric = MetricBsi::Deserialize(*blob.value());
          if (!metric.ok()) return metric.status();
          for (const auto& [strategy_id, sm] : masks) {
            partials[{strategy_id, metric_id}].sums[seg] +=
                static_cast<double>(
                    metric.value().value.SumUnderMask(sm.by_day[d - date_lo]));
          }
        }
        for (const auto& [strategy_id, sm] : masks) {
          partials[{strategy_id, metric_id}].counts[seg] +=
              static_cast<double>(sm.exposed_by_hi);
        }
      }
    }
    const double node_cpu = cpu.ElapsedSeconds();
    const uint64_t node_cold_bytes =
        tier.stats().bytes_from_cold - io_before.bytes_from_cold;
    stats.total_cpu_seconds += node_cpu;
    stats.bytes_from_cold += node_cold_bytes;
    stats.hot_hits += tier.stats().hot_hits - io_before.hot_hits;
    const double node_latency =
        node_cpu / config_.threads_per_node +
        static_cast<double>(node_cold_bytes) /
            config_.cold_bandwidth_bytes_per_sec;
    max_node_latency = std::max(max_node_latency, node_latency);
  }
  // Coordinator merge is a handful of vector adds; fold it into the
  // measured assembly below.
  CpuTimer merge_cpu;
  stats.results = std::move(partials);
  stats.latency_seconds = max_node_latency + merge_cpu.ElapsedSeconds();
  return stats;
}

const ExposeBitmapCache& AdhocCluster::GetOrBuildBitmapCache(
    uint64_t strategy_id, Date date_lo, Date date_hi) {
  auto it = bitmap_caches_.find(strategy_id);
  if (it != bitmap_caches_.end() && it->second.date_lo() <= date_lo &&
      it->second.date_hi() >= date_hi) {
    return it->second;
  }
  ExposeBitmapCache cache =
      ExposeBitmapCache::Build(*dataset_, strategy_id, date_lo, date_hi);
  auto [new_it, _] = bitmap_caches_.insert_or_assign(strategy_id,
                                                     std::move(cache));
  return new_it->second;
}

Result<AdhocCluster::QueryStats> AdhocCluster::QueryNormalBitmap(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);
  QueryStats stats;
  const int num_segments = dataset_->config.num_segments;
  // The paper's baseline caches the expose bitmaps in memory up front; the
  // cache build is not part of the repeated-query latency.
  std::vector<const ExposeBitmapCache*> caches;
  caches.reserve(strategy_ids.size());
  for (uint64_t strategy_id : strategy_ids) {
    caches.push_back(&GetOrBuildBitmapCache(strategy_id, date_lo, date_hi));
  }

  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  double max_node_latency = 0.0;
  for (int node = 0; node < config_.num_nodes; ++node) {
    CpuTimer cpu;
    for (int seg = node; seg < num_segments; seg += config_.num_nodes) {
      // Scan each requested metric's clustered rows (ClickHouse primary-key
      // order prunes other metrics), filtering each row through the per-day
      // expose bitmap. Masks are hoisted and sums accumulate in registers,
      // as a columnar engine would.
      const int num_days = static_cast<int>(date_hi - date_lo) + 1;
      std::vector<const RoaringBitmap*> day_masks(strategy_ids.size() *
                                                  num_days);
      for (size_t si = 0; si < strategy_ids.size(); ++si) {
        for (int d = 0; d < num_days; ++d) {
          day_masks[si * num_days + d] =
              &caches[si]->For(seg, date_lo + static_cast<Date>(d));
        }
      }
      std::vector<double> local_sums(strategy_ids.size());
      for (uint64_t metric_id : metric_ids) {
        const std::vector<MetricRow>* rows =
            normal_index_->MetricRows(metric_id, seg);
        if (rows == nullptr) continue;
        std::fill(local_sums.begin(), local_sums.end(), 0.0);
        for (const MetricRow& row : *rows) {
          if (row.date < date_lo || row.date > date_hi) continue;
          const uint32_t unit = static_cast<uint32_t>(row.analysis_unit_id);
          const int d = static_cast<int>(row.date - date_lo);
          for (size_t si = 0; si < strategy_ids.size(); ++si) {
            if (day_masks[si * num_days + d]->Contains(unit)) {
              local_sums[si] += static_cast<double>(row.value);
            }
          }
        }
        for (size_t si = 0; si < strategy_ids.size(); ++si) {
          partials[{strategy_ids[si], metric_id}].sums[seg] +=
              local_sums[si];
        }
      }
      for (size_t si = 0; si < strategy_ids.size(); ++si) {
        const double exposed = static_cast<double>(
            caches[si]->For(seg, date_hi).Cardinality());
        for (uint64_t m : metric_ids) {
          partials[{strategy_ids[si], m}].counts[seg] += exposed;
        }
      }
    }
    const double node_cpu = cpu.ElapsedSeconds();
    stats.total_cpu_seconds += node_cpu;
    max_node_latency =
        std::max(max_node_latency, node_cpu / config_.threads_per_node);
  }
  stats.results = std::move(partials);
  stats.latency_seconds = max_node_latency;
  return stats;
}

}  // namespace expbsi
