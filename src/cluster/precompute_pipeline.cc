#include "cluster/precompute_pipeline.h"

#include <algorithm>
#include <mutex>

#include "cluster/adhoc_cluster.h"
#include "common/check.h"
#include "common/fault_injector.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "engine/normal_engine.h"
#include "engine/scorecard.h"
#include "obs/metrics.h"
#include "wal/ingest_store.h"

namespace expbsi {

PrecomputePipeline::PrecomputePipeline(const Dataset* dataset,
                                       const ExperimentBsiData* bsi,
                                       PrecomputeConfig config)
    : dataset_(dataset), bsi_(bsi), config_(config) {
  CHECK_GT(config_.num_threads, 0);
  CHECK_GT(config_.batch_size, 0);
}

namespace {

// Runs `pairs` through `compute_one` on a pool, batching like the paper's
// jobs, and accumulates CPU time across tasks. Executor faults (injected at
// fault_sites::kPipelineTask, indexed pair_index * kPipelineAttemptStride +
// attempt so schedules do not depend on worker interleaving) fail single
// attempts; attempts retry under config.retry and exhausted pairs are
// reported in failed_pairs with their cache entry removed -- a failed pair
// is explicit, never a silently missing or stale number.
template <typename ComputeFn>
PrecomputeStats RunPairs(const std::vector<StrategyMetricPair>& pairs,
                         const PrecomputeConfig& config,
                         std::map<StrategyMetricPair, BucketValues>* cache,
                         ComputeFn compute_one) {
  PrecomputeStats stats;
  Stopwatch wall;
  ThreadPool pool(config.num_threads);
  std::mutex mu;
  for (size_t batch_start = 0; batch_start < pairs.size();
       batch_start += config.batch_size) {
    const size_t batch_end =
        std::min(pairs.size(), batch_start + config.batch_size);
    // One job per batch; within the job each pair is a task.
    for (size_t i = batch_start; i < batch_end; ++i) {
      const StrategyMetricPair pair = pairs[i];
      pool.Submit([&, pair, i] {
        CpuTimer cpu;
        uint64_t bytes = 0;
        int attempt = 0;
        RetryStats rstats;
        Result<BucketValues> result = RetryWithPolicy<BucketValues>(
            config.retry, /*jitter_token=*/i, &rstats,
            [&]() -> Result<BucketValues> {
              const int this_attempt = attempt++;
              if (FaultInjector* fi = FaultInjector::Get(); fi != nullptr) {
                const FaultDecision d = fi->EvaluateAt(
                    fault_sites::kPipelineTask,
                    i * kPipelineAttemptStride +
                        static_cast<uint64_t>(this_attempt));
                if (d.fail || d.crash) {
                  return Status::Unavailable(
                      "precompute: injected executor failure");
                }
              }
              bytes = 0;
              return compute_one(pair, &bytes);
            });
        const double cpu_used = cpu.ElapsedSeconds();
        std::lock_guard<std::mutex> lock(mu);
        stats.cpu_seconds += cpu_used;
        stats.retries += rstats.retries;
        stats.backoff_seconds += rstats.backoff_seconds;
        if (result.ok()) {
          stats.bytes_read += bytes;
          ++stats.pairs_computed;
          (*cache)[pair] = std::move(result).value();
        } else {
          stats.failed_pairs.push_back(pair);
          cache->erase(pair);
        }
      });
    }
    pool.Wait();  // job barrier
  }
  std::sort(stats.failed_pairs.begin(), stats.failed_pairs.end());
  stats.wall_seconds = wall.ElapsedSeconds();
  // Fleet accounting (Table 7 reports the pre-compute jobs' CPU-hours):
  // the cpu_seconds gauge accumulates monotonically across batches, so a
  // scrape divided by 3600 is the reproduction's CPU-hour figure.
  static obs::Counter& pairs_counter =
      obs::GetCounter("pipeline.pairs_computed");
  static obs::Counter& failed_counter =
      obs::GetCounter("pipeline.pairs_failed");
  static obs::Counter& bytes_counter = obs::GetCounter("pipeline.bytes_read");
  static obs::Gauge& cpu_gauge = obs::GetGauge("pipeline.cpu_seconds");
  pairs_counter.Add(static_cast<uint64_t>(stats.pairs_computed));
  failed_counter.Add(stats.failed_pairs.size());
  bytes_counter.Add(stats.bytes_read);
  cpu_gauge.Add(stats.cpu_seconds);
  return stats;
}

}  // namespace

PrecomputeStats PrecomputePipeline::RunBsi(
    const std::vector<StrategyMetricPair>& pairs, Date date_lo,
    Date date_hi) {
  CHECK(bsi_ != nullptr);
  // Expose filters are shared by every metric of a strategy; build them
  // once per batch (this is why jobs batch strategy-metric pairs, §5.2).
  // The build cost is part of the measured CPU.
  std::map<uint64_t, ExposeMaskCache> mask_caches;
  CpuTimer prep;
  for (const StrategyMetricPair& pair : pairs) {
    if (mask_caches.find(pair.first) == mask_caches.end()) {
      mask_caches.emplace(pair.first, ExposeMaskCache::Build(
                                          *bsi_, pair.first, date_lo,
                                          date_hi));
    }
  }
  const double prep_cpu = prep.ElapsedSeconds();
  PrecomputeStats stats = RunPairs(
      pairs, config_, &cache_,
      [this, &mask_caches, date_lo, date_hi](const StrategyMetricPair& pair,
                                             uint64_t* bytes) {
        *bytes = BsiPairReadBytes(*bsi_, pair.first, pair.second, date_lo,
                                  date_hi);
        return ComputeStrategyMetricBsiCached(*bsi_,
                                              mask_caches.at(pair.first),
                                              pair.second, date_lo, date_hi);
      });
  stats.cpu_seconds += prep_cpu;
  if (config_.ingest != nullptr && stats.failed_pairs.empty()) {
    // Streaming handoff: checkpoint through the WAL -- the ingest store
    // snapshots its live data tagged with the last ingested sequence and
    // trims the covered WAL segments. No full rebuild, no re-serialization
    // of this pipeline's inputs.
    Result<IngestCheckpointStats> checkpointed = config_.ingest->Checkpoint();
    if (checkpointed.ok()) {
      stats.snapshot_written = true;
      stats.snapshot_version = checkpointed.value().snapshot.version;
      stats.wal_checkpoint_sequence = checkpointed.value().sequence;
    } else {
      stats.snapshot_error = checkpointed.status().message();
    }
  } else if (!config_.snapshot_dir.empty() && stats.failed_pairs.empty()) {
    // Daily-build handoff: publish the warehouse as a new snapshot version
    // so serving clusters can cold-start from it. A batch with failed pairs
    // must not publish -- a recovered-from snapshot missing pairs would be
    // a silently stale warehouse.
    const BsiStore store = BuildColdStore(*bsi_);
    Result<SnapshotWriteStats> written =
        SnapshotWriter::Write(store, config_.snapshot_dir);
    if (written.ok()) {
      stats.snapshot_written = true;
      stats.snapshot_version = written.value().version;
    } else {
      stats.snapshot_error = written.status().message();
    }
  }
  return stats;
}

PrecomputeStats PrecomputePipeline::RunNormal(
    const std::vector<StrategyMetricPair>& pairs, Date date_lo,
    Date date_hi) {
  CHECK(dataset_ != nullptr);
  if (normal_index_ == nullptr) {
    normal_index_ =
        std::make_unique<NormalDataIndex>(NormalDataIndex::Build(*dataset_));
  }
  return RunPairs(
      pairs, config_, &cache_,
      [this, date_lo, date_hi](const StrategyMetricPair& pair,
                               uint64_t* bytes) {
        // Byte accounting through the index (cheap lookups; rows at their
        // §6.1/§6.2 row widths).
        uint64_t b = 0;
        for (int seg = 0; seg < dataset_->config.num_segments; ++seg) {
          const std::vector<ExposeRow>* expose =
              normal_index_->ExposeRows(pair.first, seg);
          if (expose != nullptr) b += expose->size() * 16;
          const std::vector<MetricRow>* rows =
              normal_index_->MetricRows(pair.second, seg);
          if (rows != nullptr) {
            for (const MetricRow& row : *rows) {
              if (row.date >= date_lo && row.date <= date_hi) b += 18;
            }
          }
        }
        *bytes = b;
        return ComputeStrategyMetricNormalIndexed(*dataset_, *normal_index_,
                                                  pair.first, pair.second,
                                                  date_lo, date_hi);
      });
}

const BucketValues* PrecomputePipeline::GetResult(
    const StrategyMetricPair& pair) const {
  auto it = cache_.find(pair);
  return it == cache_.end() ? nullptr : &it->second;
}

uint64_t BsiPairReadBytes(const ExperimentBsiData& data, uint64_t strategy_id,
                          uint64_t metric_id, Date date_lo, Date date_hi) {
  uint64_t bytes = 0;
  for (const SegmentBsiData& seg : data.segments) {
    const ExposeBsi* expose = seg.FindExpose(strategy_id);
    if (expose != nullptr) bytes += expose->SizeInBytes();
    for (Date date = date_lo; date <= date_hi; ++date) {
      const MetricBsi* metric = seg.FindMetric(metric_id, date);
      if (metric != nullptr) bytes += metric->SizeInBytes();
    }
  }
  return bytes;
}

uint64_t NormalPairReadBytes(const Dataset& dataset, uint64_t strategy_id,
                             uint64_t metric_id, Date date_lo, Date date_hi) {
  constexpr uint64_t kExposeRowBytes = 16;  // §6.2 normal expose schema
  constexpr uint64_t kMetricRowBytes = 18;  // §6.1 normal metric schema
  uint64_t bytes = 0;
  for (const SegmentData& seg : dataset.segments) {
    for (const ExposeRow& row : seg.expose) {
      if (row.strategy_id == strategy_id) bytes += kExposeRowBytes;
    }
    for (const MetricRow& row : seg.metrics) {
      if (row.metric_id == metric_id && row.date >= date_lo &&
          row.date <= date_hi) {
        bytes += kMetricRowBytes;
      }
    }
  }
  return bytes;
}

}  // namespace expbsi
