#ifndef EXPBSI_CLUSTER_SEGMENT_QUERY_H_
#define EXPBSI_CLUSTER_SEGMENT_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "expdata/schema.h"
#include "storage/tiered_store.h"

namespace expbsi {

// Per-segment BSI query execution, shared verbatim by the in-process
// AdhocCluster and the remote NodeServer (src/net) so the two serving paths
// are bit-identical by construction: the cross-process differential sweep
// compares their scorecards with ==, and any divergence would mean the code
// paths forked.

// One segment's contribution to every requested (strategy, metric) pair,
// kept separate from the merged scorecard until the owning node's wave
// completes: a crashed node loses its whole in-flight wave, like a
// scatter-gather RPC whose response never arrives.
struct SegPartial {
  std::vector<double> sums;    // [si * num_metrics + mi]
  std::vector<double> counts;
};

// Recovery accounting for one segment's execution, accumulated by the
// caller into its DegradedInfo / response stats.
struct SegmentExecStats {
  int retries = 0;          // fetch retry attempts taken
  int faults_survived = 0;  // fetches that recovered via retry
};

// Runs one segment's expose-mask + masked-sum plan against `tier`.
// ok(true): `out` filled. ok(false): segment lost after retries
// (allow_degraded only). error: permanent failure, propagated (strict
// mode). Fetches retry under `retry`; NotFound is semantic absence and
// never retried. Emits the "segment_execute" trace span when a trace is
// installed on the calling thread.
Result<bool> ExecuteSegmentQuery(TieredStore& tier, int seg,
                                 const std::vector<uint64_t>& strategy_ids,
                                 const std::vector<uint64_t>& metric_ids,
                                 Date date_lo, Date date_hi,
                                 const RetryPolicy& retry,
                                 bool allow_degraded, SegPartial* out,
                                 SegmentExecStats* exec_stats);

}  // namespace expbsi

#endif  // EXPBSI_CLUSTER_SEGMENT_QUERY_H_
