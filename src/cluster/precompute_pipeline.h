#ifndef EXPBSI_CLUSTER_PRECOMPUTE_PIPELINE_H_
#define EXPBSI_CLUSTER_PRECOMPUTE_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "engine/experiment_data.h"
#include "engine/normal_engine.h"
#include "expdata/generator.h"
#include "stats/bucket_stats.h"

namespace expbsi {

class IngestStore;  // wal/ingest_store.h

// Spark-like batch pre-compute pipeline (§5.2, Table 7). The paper submits
// daily jobs that each compute a batch of strategy-metric pairs; we model an
// executor pool (thread pool), per-pair tasks, CPU-time accounting (Table 7
// reports CPU hours, which are scheduler-independent) and warehouse-read
// traffic accounting.
struct PrecomputeConfig {
  int num_threads = 4;
  // Pairs per job; batching amortizes warehouse reads (§5.2: "each job
  // computes a batch of strategy-metric pairs for better utilizing network
  // traffic").
  int batch_size = 64;
  // Executor-failure recovery: a task attempt killed by fault injection is
  // retried under this policy (backoff is simulated, not slept). A pair
  // whose attempts are exhausted lands in PrecomputeStats::failed_pairs --
  // the batch keeps running, the failure is never silent.
  RetryPolicy retry;
  // When non-empty, a fully successful RunBsi (no failed pairs) serializes
  // the warehouse contents and commits a snapshot version into this
  // directory (storage/snapshot.h), the paper's daily-build-then-serve
  // handoff. Outcome lands in PrecomputeStats::snapshot_*; a batch with
  // failed pairs never publishes.
  std::string snapshot_dir;
  // Streaming handoff (DESIGN.md §8.5): when set (not owned, must outlive
  // the pipeline), a fully successful RunBsi checkpoints the ingest store
  // -- snapshot tagged with the last WAL sequence, WAL tail trimmed --
  // instead of serializing the pipeline's own BSI data. This is the
  // paper's daily rebuild replaced by an incremental checkpoint: the next
  // recovery replays only the WAL written after it. Takes precedence over
  // snapshot_dir.
  IngestStore* ingest = nullptr;
};

// (strategy_id, metric_id).
using StrategyMetricPair = std::pair<uint64_t, uint64_t>;

struct PrecomputeStats {
  double cpu_seconds = 0.0;   // summed across all tasks
  double wall_seconds = 0.0;
  uint64_t bytes_read = 0;    // simulated reads from the warehouse
  int pairs_computed = 0;     // pairs that produced a result
  // Failure accounting (chaos tests). failed_pairs is sorted; a failed pair
  // has no cached result (GetResult returns nullptr) rather than a stale or
  // partial one.
  int retries = 0;
  double backoff_seconds = 0.0;  // simulated backoff, not part of wall time
  std::vector<StrategyMetricPair> failed_pairs;
  // Snapshot publication (PrecomputeConfig::snapshot_dir). Written only by
  // RunBsi and only when failed_pairs is empty; snapshot_error holds the
  // write failure otherwise ("" = not attempted or succeeded).
  bool snapshot_written = false;
  uint64_t snapshot_version = 0;
  std::string snapshot_error;
  // WAL sequence the checkpoint covered (PrecomputeConfig::ingest path).
  uint64_t wal_checkpoint_sequence = 0;
};

class PrecomputePipeline {
 public:
  // Both representations of the same dataset; either may be omitted
  // (nullptr) if only one method will run. Pointers must outlive the
  // pipeline.
  PrecomputePipeline(const Dataset* dataset, const ExperimentBsiData* bsi,
                     PrecomputeConfig config);

  // Computes every pair's scorecard bucket values over [date_lo, date_hi]
  // with the BSI method (§4.2). Results are cached for GetResult.
  PrecomputeStats RunBsi(const std::vector<StrategyMetricPair>& pairs,
                         Date date_lo, Date date_hi);

  // Same computation with the normal-format baseline (§6.2: Spark-SQL-style
  // join + aggregate over pruned (strategy, metric) partitions). The
  // partition index is built once on first use -- it models the warehouse's
  // data layout, not per-pair work -- so it is excluded from the CPU stats.
  PrecomputeStats RunNormal(const std::vector<StrategyMetricPair>& pairs,
                            Date date_lo, Date date_hi);

  // Cached result of the last run for a pair, or nullptr.
  const BucketValues* GetResult(const StrategyMetricPair& pair) const;

 private:
  const Dataset* dataset_;
  const ExperimentBsiData* bsi_;
  PrecomputeConfig config_;
  std::unique_ptr<NormalDataIndex> normal_index_;
  std::map<StrategyMetricPair, BucketValues> cache_;
};

// Warehouse bytes a BSI-method pair read: the strategy's expose BSIs plus
// the metric's per-day value BSIs (what the job pulls over the network).
uint64_t BsiPairReadBytes(const ExperimentBsiData& data, uint64_t strategy_id,
                          uint64_t metric_id, Date date_lo, Date date_hi);

// Warehouse bytes the normal-format pair read: its expose rows plus the
// metric rows of the date range at their row widths.
uint64_t NormalPairReadBytes(const Dataset& dataset, uint64_t strategy_id,
                             uint64_t metric_id, Date date_lo, Date date_hi);

}  // namespace expbsi

#endif  // EXPBSI_CLUSTER_PRECOMPUTE_PIPELINE_H_
