#include "cluster/placement.h"

#include <algorithm>

#include "common/check.h"
#include "common/hash.h"

namespace expbsi {

namespace {

// Distinct salt so placement scores are independent of the segmentation and
// bucketing hashes (common/hash.h).
constexpr uint64_t kPlacementSalt = 0x9c7a51e2d40bull;

uint64_t Score(int segment, int node) {
  const uint64_t seg_h =
      Mix64(static_cast<uint64_t>(segment) ^ Mix64(kPlacementSalt));
  return Mix64(seg_h ^ Mix64(static_cast<uint64_t>(node) + 1));
}

}  // namespace

Placement::Placement(int num_nodes, int num_segments,
                     int replication_factor)
    : num_nodes_(num_nodes),
      num_segments_(num_segments),
      replication_factor_(
          std::min(std::max(replication_factor, 1), num_nodes)) {
  CHECK_GT(num_nodes, 0);
  CHECK_GE(num_segments, 0);

  // Per-node primary capacity: floor(S/N) + 1 for the first S mod N ids.
  // Caps sum to exactly S, so the greedy fill below saturates every node.
  std::vector<int> capacity(num_nodes_);
  for (int n = 0; n < num_nodes_; ++n) {
    capacity[n] = num_segments_ / num_nodes_ +
                  (n < num_segments_ % num_nodes_ ? 1 : 0);
  }

  replicas_.resize(num_segments_);
  std::vector<int> ranked(num_nodes_);
  for (int seg = 0; seg < num_segments_; ++seg) {
    for (int n = 0; n < num_nodes_; ++n) ranked[n] = n;
    std::sort(ranked.begin(), ranked.end(), [seg](int a, int b) {
      const uint64_t sa = Score(seg, a), sb = Score(seg, b);
      return sa != sb ? sa > sb : a < b;
    });
    // Primary: best-ranked node with remaining capacity (capacity only
    // constrains primaries; secondary replicas follow the pure ranking).
    int primary = ranked[0];
    for (int n : ranked) {
      if (capacity[n] > 0) {
        primary = n;
        break;
      }
    }
    --capacity[primary];
    std::vector<int>& out = replicas_[seg];
    out.reserve(replication_factor_);
    out.push_back(primary);
    for (int n : ranked) {
      if (static_cast<int>(out.size()) >= replication_factor_) break;
      if (n != primary) out.push_back(n);
    }
  }
}

bool Placement::IsReplica(int segment, int node) const {
  const std::vector<int>& r = replicas_[segment];
  return std::find(r.begin(), r.end(), node) != r.end();
}

std::vector<uint32_t> Placement::SegmentsOf(int node) const {
  std::vector<uint32_t> out;
  for (int seg = 0; seg < num_segments_; ++seg) {
    if (IsReplica(seg, node)) out.push_back(static_cast<uint32_t>(seg));
  }
  return out;
}

}  // namespace expbsi
