#ifndef EXPBSI_CLUSTER_PLACEMENT_H_
#define EXPBSI_CLUSTER_PLACEMENT_H_

#include <cstdint>
#include <vector>

namespace expbsi {

// Segment -> replica-set placement shared by the in-process AdhocCluster
// and the network Coordinator (DESIGN.md §11). Replaces the implicit
// `segment % num_nodes` rule: each segment maps to `replication_factor`
// DISTINCT nodes via rendezvous (highest-random-weight) hashing, so any
// single node failure leaves every segment with a live replica and adding a
// node moves only the segments it wins.
//
// Two deterministic layers:
//
//   ranking    every (segment, node) pair gets a pure-hash score; a
//              segment's nodes are ordered by descending score. This is the
//              failover preference order.
//   balancing  primaries are additionally load-capped: walking segments in
//              order, each takes its best-ranked node that still has
//              capacity, where node i's capacity is floor(S/N) plus one for
//              the first S mod N node ids. With S >= N every node therefore
//              owns at least one primary (the caps sum to exactly S), so a
//              fleet never idles a node -- pure rendezvous cannot promise
//              that for small S.
//
// The full construction is a pure function of (num_nodes, num_segments,
// replication_factor): every coordinator, node and test derives the same
// table independently, nothing is negotiated.
class Placement {
 public:
  // `replication_factor` is clamped to [1, num_nodes]. num_nodes must be
  // positive; num_segments may be zero (empty placement).
  Placement(int num_nodes, int num_segments, int replication_factor);

  int num_nodes() const { return num_nodes_; }
  int num_segments() const { return num_segments_; }
  int replication_factor() const { return replication_factor_; }

  // The segment's replica set in failover-preference order: element 0 is
  // the primary, later elements are the replicas a coordinator fails over
  // to. Always `replication_factor` distinct nodes.
  const std::vector<int>& ReplicasOf(int segment) const {
    return replicas_[segment];
  }

  int PrimaryOf(int segment) const { return replicas_[segment][0]; }

  bool IsReplica(int segment, int node) const;

  // Every segment `node` replicates (primary or not), ascending. This is
  // the set of segments a serving node must load.
  std::vector<uint32_t> SegmentsOf(int node) const;

 private:
  int num_nodes_;
  int num_segments_;
  int replication_factor_;
  std::vector<std::vector<int>> replicas_;  // [segment] -> ordered nodes
};

}  // namespace expbsi

#endif  // EXPBSI_CLUSTER_PLACEMENT_H_
