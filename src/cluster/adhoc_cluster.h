#ifndef EXPBSI_CLUSTER_ADHOC_CLUSTER_H_
#define EXPBSI_CLUSTER_ADHOC_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/placement.h"
#include "cluster/precompute_pipeline.h"
#include "common/retry.h"
#include "engine/experiment_data.h"
#include "engine/normal_engine.h"
#include "expdata/generator.h"
#include "obs/trace.h"
#include "storage/bsi_store.h"
#include "storage/snapshot.h"
#include "storage/tiered_store.h"

namespace expbsi {

class IngestStore;  // wal/ingest_store.h

// ClickHouse-like ad-hoc query cluster (§5.3, Fig. 8, Table 8): every
// segment lives on one node; queries fan out, run locally and in parallel on
// each node, and the coordinator merges per-segment partials. Nodes keep hot
// data in a local tier and pull cold blobs from the warehouse on demand.
//
// The machine running this simulation may have a single core, so latency is
// derived analytically from measured per-node CPU time:
//   node_latency  = node_cpu_seconds / threads_per_node
//                 + bytes_from_cold / cold_bandwidth
//   query_latency = max over nodes + coordinator merge time.
struct AdhocClusterConfig {
  int num_nodes = 4;
  int threads_per_node = 4;
  size_t hot_capacity_bytes_per_node = 256u << 20;
  double cold_bandwidth_bytes_per_sec = 200e6;
  // Recovery layer: cold-tier fetch + decode runs under this policy
  // (transient unavailability and corrupt transfers are retried with
  // simulated backoff; NotFound is semantic absence and never retried).
  RetryPolicy retry;
  // When true, a segment whose blobs stay unfetchable or corrupt after
  // retries -- or that cannot be requeued because every node died -- is
  // dropped from the scorecard and reported in QueryStats::degraded instead
  // of failing the whole query. Off by default: absent faults the strict
  // mode behaves exactly as before (errors surface as Status).
  bool allow_degraded = false;
  // Durable warehouse (§6 of DESIGN.md). When non-empty the cluster first
  // tries to cold-start its warehouse from the newest valid snapshot in
  // this directory; if nothing usable is there it builds from `bsi` as
  // before and then commits a fresh snapshot. Segments the snapshot lost
  // are surfaced through QueryStats::degraded (or fail strict-mode queries
  // with Corruption) -- never silently zero.
  std::string snapshot_dir;
  // Streaming warehouse (DESIGN.md §8.5). When set (not owned, must
  // outlive the cluster), the cluster serves the ingest store's live data:
  // the store has already done snapshot+WAL point-in-time recovery, so the
  // cluster's cold warehouse is built from it directly and snapshot_dir
  // handling is left to the store's own checkpoints. Mutually exclusive
  // with passing `bsi` (the store IS the BSI source).
  IngestStore* ingest = nullptr;
  // When non-empty, a degraded or slow QueryBsi writes a postmortem bundle
  // (obs/postmortem.h) here. The in-process cluster has no remote rings to
  // pull, so the bundle carries one "local" flight-recorder slice -- the
  // same recorder the net layer uses, no wire involved -- plus the finished
  // trace. The path lands in QueryStats::postmortem_path.
  std::string postmortem_dir;
};

class AdhocCluster {
 public:
  // Explicit degradation accounting (never silent: a partial scorecard is
  // returned *flagged*, following the SRM-bias argument that dropping a
  // failed segment without saying so biases every downstream statistic).
  struct DegradedInfo {
    // Segments absent from the result (sorted, unique). Their slots in every
    // BucketValues vector are zero and must be excluded from inference.
    std::vector<int> lost_segments;
    int segments_answered = 0;
    int retries = 0;          // fetch retry attempts taken across the query
    int faults_survived = 0;  // faults recovered (retry or requeue success)
    int nodes_lost = 0;       // nodes that crashed mid-query

    bool degraded() const { return !lost_segments.empty(); }
  };

  struct QueryStats {
    double latency_seconds = 0.0;
    double total_cpu_seconds = 0.0;
    uint64_t bytes_from_cold = 0;
    uint64_t hot_hits = 0;
    std::map<StrategyMetricPair, BucketValues> results;
    DegradedInfo degraded;
    // Full span tree of this query (waves, per-node execution, per-segment
    // work, retries). Created by the cluster and finished -- root closed,
    // slow-query check applied -- before the stats are returned; shared so
    // callers can keep it past the stats object.
    std::shared_ptr<obs::QueryTrace> trace;
    // Path of the postmortem bundle written for this query ("" when no
    // trigger fired or no postmortem_dir is configured). See
    // obs/postmortem.h.
    std::string postmortem_path;
  };

  // `dataset` backs the normal-format baseline; `bsi` is serialized into the
  // cluster's cold warehouse store. Both must outlive the cluster. The
  // dataset must use bucket_equals_segment (the ad-hoc scenario).
  //
  // With config.snapshot_dir set, either may be nullptr: a cluster
  // cold-starting from a snapshot serves QueryBsi straight from the
  // recovered warehouse (QueryNormalBitmap then requires `dataset` and
  // CHECK-fails without it). Without a snapshot dir both are required.
  AdhocCluster(const Dataset* dataset, const ExperimentBsiData* bsi,
               AdhocClusterConfig config);

  // BSI method: per node, fetch + deserialize expose/metric blobs (hot tier
  // first), range-search the expose filter and popcount the masked sums.
  //
  // Failure handling: fetches retry under config.retry; a node that crashes
  // mid-query (fault injection) has its in-flight wave discarded and its
  // segments requeued onto the surviving nodes, wave by wave. A segment that
  // cannot be recovered either fails the query (Corruption / Unavailable,
  // the strict default) or -- with config.allow_degraded -- is dropped and
  // reported in QueryStats::degraded.
  Result<QueryStats> QueryBsi(const std::vector<uint64_t>& strategy_ids,
                              const std::vector<uint64_t>& metric_ids,
                              Date date_lo, Date date_hi);

  // Normal-format baseline (§6.3): per-day expose bitmaps cached in memory,
  // metric-log rows scanned and filtered through them.
  Result<QueryStats> QueryNormalBitmap(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

  // Primary owner of a segment under the shared rendezvous placement
  // (cluster/placement.h) -- the same primaries the network Coordinator
  // derives, replacing the old `segment % num_nodes` rule.
  int NodeOfSegment(int segment) const {
    return placement_->PrimaryOf(segment);
  }

  const BsiStore& cold_store() const { return cold_; }

  // Mutable access to the warehouse store, for failure injection in tests
  // and for operational re-ingestion.
  BsiStore& mutable_cold_store() { return cold_; }

  // Cold-start provenance (config.snapshot_dir): whether the warehouse was
  // recovered from a snapshot instead of rebuilt, the full recovery report
  // (lost segments, quarantined files), and the status of the snapshot
  // written after a fresh build (OK when none was attempted).
  bool cold_started_from_snapshot() const {
    return cold_started_from_snapshot_;
  }
  const RecoveryReport& recovery_report() const { return recovery_report_; }
  const Status& snapshot_write_status() const {
    return snapshot_write_status_;
  }

  int num_segments() const { return num_segments_; }

 private:
  // The QueryBsi body. Holds the query's ScopedTrace, so by the time it
  // returns the root span is closed and the slow-query check has run; the
  // wrapper then evaluates the postmortem triggers against finished stats.
  Result<QueryStats> QueryBsiInternal(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);
  // Degraded / slow-query postmortem for the in-process cluster: one
  // "local" flight-recorder slice (no wire), written under
  // config.postmortem_dir when a trigger fires.
  void MaybeWritePostmortem(QueryStats* stats);

  // Lazily built (and then reused) per-strategy expose bitmap caches for the
  // baseline, mirroring the paper's "cache these bitmaps in memory". Sets
  // `*built` to whether this call (re)built the cache rather than reusing
  // the in-memory copy, so the caller can account the cold read.
  const ExposeBitmapCache& GetOrBuildBitmapCache(uint64_t strategy_id,
                                                 Date date_lo, Date date_hi,
                                                 bool* built);

  const Dataset* dataset_;
  const ExperimentBsiData* bsi_;
  std::unique_ptr<NormalDataIndex> normal_index_;
  AdhocClusterConfig config_;
  BsiStore cold_;
  int num_segments_ = 0;
  bool cold_started_from_snapshot_ = false;
  RecoveryReport recovery_report_;
  Status snapshot_write_status_;
  // Segments (< num_segments_) the snapshot recovery lost; pre-marked
  // degraded on every QueryBsi.
  std::vector<int> recovery_lost_segments_;
  std::unique_ptr<Placement> placement_;
  std::vector<std::unique_ptr<TieredStore>> node_tiers_;
  std::map<uint64_t, ExposeBitmapCache> bitmap_caches_;
  // (metric_id, segment) row groups the baseline has already scanned; a
  // first scan is a cold read of the rows' bytes, a repeat is a hot hit --
  // the same accounting the BSI path gets from its TieredStore, so
  // QueryStats is comparable across the two paths.
  std::set<std::pair<uint64_t, int>> normal_scanned_;
};

// Serializes every expose/metric/dimension BSI of `data` into a BsiStore
// (the warehouse contents of Fig. 7).
BsiStore BuildColdStore(const ExperimentBsiData& data);

// Inverse of BuildColdStore, for a warehouse that crossed a crash boundary:
// decodes every blob back into an ExperimentBsiData so the full query
// engine can run against a recovered store. Shape metadata (segment /
// bucket counts, bucketing mode) is not stored in the warehouse and must be
// supplied; num_segments <= 0 derives it from the largest segment id
// present. Position encoders are build-time state and are not (and need not
// be) reconstructed -- queries never touch them. Any undecodable or
// mis-keyed blob fails with Corruption.
Result<ExperimentBsiData> ReconstructBsiData(const BsiStore& store,
                                             int num_segments,
                                             int num_buckets,
                                             bool bucket_equals_segment);

}  // namespace expbsi

#endif  // EXPBSI_CLUSTER_ADHOC_CLUSTER_H_
