#ifndef EXPBSI_CLUSTER_ADHOC_CLUSTER_H_
#define EXPBSI_CLUSTER_ADHOC_CLUSTER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "cluster/precompute_pipeline.h"
#include "engine/experiment_data.h"
#include "engine/normal_engine.h"
#include "expdata/generator.h"
#include "storage/bsi_store.h"
#include "storage/tiered_store.h"

namespace expbsi {

// ClickHouse-like ad-hoc query cluster (§5.3, Fig. 8, Table 8): every
// segment lives on one node; queries fan out, run locally and in parallel on
// each node, and the coordinator merges per-segment partials. Nodes keep hot
// data in a local tier and pull cold blobs from the warehouse on demand.
//
// The machine running this simulation may have a single core, so latency is
// derived analytically from measured per-node CPU time:
//   node_latency  = node_cpu_seconds / threads_per_node
//                 + bytes_from_cold / cold_bandwidth
//   query_latency = max over nodes + coordinator merge time.
struct AdhocClusterConfig {
  int num_nodes = 4;
  int threads_per_node = 4;
  size_t hot_capacity_bytes_per_node = 256u << 20;
  double cold_bandwidth_bytes_per_sec = 200e6;
};

class AdhocCluster {
 public:
  struct QueryStats {
    double latency_seconds = 0.0;
    double total_cpu_seconds = 0.0;
    uint64_t bytes_from_cold = 0;
    uint64_t hot_hits = 0;
    std::map<StrategyMetricPair, BucketValues> results;
  };

  // `dataset` backs the normal-format baseline; `bsi` is serialized into the
  // cluster's cold warehouse store. Both must outlive the cluster. The
  // dataset must use bucket_equals_segment (the ad-hoc scenario).
  AdhocCluster(const Dataset* dataset, const ExperimentBsiData* bsi,
               AdhocClusterConfig config);

  // BSI method: per node, fetch + deserialize expose/metric blobs (hot tier
  // first), range-search the expose filter and popcount the masked sums.
  // Returns Corruption if a warehouse blob fails to decode.
  Result<QueryStats> QueryBsi(const std::vector<uint64_t>& strategy_ids,
                              const std::vector<uint64_t>& metric_ids,
                              Date date_lo, Date date_hi);

  // Normal-format baseline (§6.3): per-day expose bitmaps cached in memory,
  // metric-log rows scanned and filtered through them.
  Result<QueryStats> QueryNormalBitmap(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

  int NodeOfSegment(int segment) const {
    return segment % config_.num_nodes;
  }

  const BsiStore& cold_store() const { return cold_; }

  // Mutable access to the warehouse store, for failure injection in tests
  // and for operational re-ingestion.
  BsiStore& mutable_cold_store() { return cold_; }

 private:
  // Lazily built (and then reused) per-strategy expose bitmap caches for the
  // baseline, mirroring the paper's "cache these bitmaps in memory".
  const ExposeBitmapCache& GetOrBuildBitmapCache(uint64_t strategy_id,
                                                 Date date_lo, Date date_hi);

  const Dataset* dataset_;
  const ExperimentBsiData* bsi_;
  std::unique_ptr<NormalDataIndex> normal_index_;
  AdhocClusterConfig config_;
  BsiStore cold_;
  std::vector<std::unique_ptr<TieredStore>> node_tiers_;
  std::map<uint64_t, ExposeBitmapCache> bitmap_caches_;
};

// Serializes every expose/metric BSI of `data` into a BsiStore (the
// warehouse contents of Fig. 7).
BsiStore BuildColdStore(const ExperimentBsiData& data);

}  // namespace expbsi

#endif  // EXPBSI_CLUSTER_ADHOC_CLUSTER_H_
