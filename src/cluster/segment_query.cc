#include "cluster/segment_query.h"

#include <optional>
#include <utility>

#include "engine/experiment_data.h"
#include "obs/trace.h"
#include "storage/bsi_store.h"

namespace expbsi {

namespace {

enum class FetchOutcome { kGot, kAbsent, kLost };

// Fetch + decode one blob through `tier` under the retry policy. NotFound
// is semantic absence (strategy/metric not in this segment), never retried;
// Unavailable/Corruption are retried with simulated backoff and, once
// attempts are exhausted, either degrade the segment (kLost) or fail the
// query (strict mode).
template <typename Decode, typename Out>
Result<FetchOutcome> FetchDecoded(TieredStore& tier, const BsiStoreKey& key,
                                  const RetryPolicy& retry,
                                  bool allow_degraded, Decode&& decode,
                                  Out* out, SegmentExecStats* exec_stats) {
  using Decoded = typename Out::value_type;
  RetryStats rstats;
  Result<Decoded> decoded = RetryWithPolicy<Decoded>(
      retry, BsiStoreKeyHash{}(key), &rstats, [&]() -> Result<Decoded> {
        Result<std::shared_ptr<const std::string>> blob = tier.Fetch(key);
        if (!blob.ok()) return blob.status();
        return decode(*blob.value());
      });
  exec_stats->retries += rstats.retries;
  if (rstats.recovered) ++exec_stats->faults_survived;
  // A clean fetch stays silent; only the (rare) retried ones mark the
  // enclosing segment span.
  if (rstats.retries > 0) {
    obs::CurrentSpanAttr("fetch_retries",
                         static_cast<uint64_t>(rstats.retries));
  }
  if (decoded.ok()) {
    out->emplace(std::move(decoded).value());
    return FetchOutcome::kGot;
  }
  if (decoded.status().code() == StatusCode::kNotFound) {
    return FetchOutcome::kAbsent;
  }
  if (allow_degraded) return FetchOutcome::kLost;
  return decoded.status();
}

}  // namespace

Result<bool> ExecuteSegmentQuery(TieredStore& tier, int seg,
                                 const std::vector<uint64_t>& strategy_ids,
                                 const std::vector<uint64_t>& metric_ids,
                                 Date date_lo, Date date_hi,
                                 const RetryPolicy& retry,
                                 bool allow_degraded, SegPartial* out,
                                 SegmentExecStats* exec_stats) {
  const size_t num_metrics = metric_ids.size();
  obs::ScopedSpan seg_span("segment_execute");
  seg_span.AddAttr("segment", static_cast<uint64_t>(seg));
  out->sums.assign(strategy_ids.size() * num_metrics, 0.0);
  out->counts.assign(strategy_ids.size() * num_metrics, 0.0);
  // Fetch + decode the expose BSIs once per (segment, strategy) and
  // precompute the per-day masks all metrics share.
  struct StrategyMasks {
    std::vector<RoaringBitmap> by_day;  // index: date - date_lo
    uint64_t exposed_by_hi = 0;
  };
  std::vector<std::optional<StrategyMasks>> masks(strategy_ids.size());
  for (size_t si = 0; si < strategy_ids.size(); ++si) {
    std::optional<ExposeBsi> expose;
    Result<FetchOutcome> oc = FetchDecoded(
        tier,
        BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kExpose,
                    strategy_ids[si], 0},
        retry, allow_degraded,
        [](const std::string& b) { return ExposeBsi::Deserialize(b); },
        &expose, exec_stats);
    if (!oc.ok()) return oc.status();
    if (oc.value() == FetchOutcome::kLost) return false;
    if (oc.value() == FetchOutcome::kAbsent) continue;
    StrategyMasks sm;
    sm.by_day.reserve(date_hi - date_lo + 1);
    for (Date d = date_lo; d <= date_hi; ++d) {
      if (sm.by_day.empty()) {
        sm.by_day.push_back(expose->ExposedOnOrBefore(d));
      } else {
        // Each unit exposes once, so day d's mask is day d-1's mask plus
        // the (disjoint) units first exposed on day d -- one small
        // incremental union instead of a full slice-descent per day.
        RoaringBitmap mask = sm.by_day.back();
        mask.OrInPlace(expose->ExposedBetween(d, d));
        sm.by_day.push_back(std::move(mask));
      }
    }
    sm.exposed_by_hi = sm.by_day.back().Cardinality();
    masks[si].emplace(std::move(sm));
  }
  for (size_t mi = 0; mi < num_metrics; ++mi) {
    for (Date d = date_lo; d <= date_hi; ++d) {
      std::optional<MetricBsi> metric;
      Result<FetchOutcome> oc = FetchDecoded(
          tier,
          BsiStoreKey{static_cast<uint16_t>(seg), BsiKind::kMetric,
                      metric_ids[mi], d},
          retry, allow_degraded,
          [](const std::string& b) { return MetricBsi::Deserialize(b); },
          &metric, exec_stats);
      if (!oc.ok()) return oc.status();
      if (oc.value() == FetchOutcome::kLost) return false;
      if (oc.value() == FetchOutcome::kAbsent) continue;
      for (size_t si = 0; si < strategy_ids.size(); ++si) {
        if (!masks[si].has_value()) continue;
        out->sums[si * num_metrics + mi] += static_cast<double>(
            metric->value.SumUnderMask(masks[si]->by_day[d - date_lo]));
      }
    }
    for (size_t si = 0; si < strategy_ids.size(); ++si) {
      if (!masks[si].has_value()) continue;
      out->counts[si * num_metrics + mi] +=
          static_cast<double>(masks[si]->exposed_by_hi);
    }
  }
  return true;
}

}  // namespace expbsi
