#ifndef EXPBSI_ROARING_ROARING_BITMAP_H_
#define EXPBSI_ROARING_ROARING_BITMAP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "roaring/container.h"

namespace expbsi {

// Compressed bitmap over 32-bit unsigned integers (Chambi et al., 2016),
// built from scratch: a sorted list of (16-bit key, container) pairs where
// each container stores the low 16 bits of the values sharing that key.
//
// This is the building block of the bit-sliced indexes in src/bsi: every BSI
// slice is one RoaringBitmap, and BSI arithmetic reduces to the AND / OR /
// XOR / ANDNOT operations below (the word-at-a-time bitmap kernels are
// autovectorized by the compiler, standing in for the paper's SIMD JNI
// kernels).
class RoaringBitmap {
 public:
  RoaringBitmap() = default;

  RoaringBitmap(const RoaringBitmap&) = default;
  RoaringBitmap& operator=(const RoaringBitmap&) = default;
  RoaringBitmap(RoaringBitmap&&) = default;
  RoaringBitmap& operator=(RoaringBitmap&&) = default;

  // Builds from strictly increasing values (fast bulk path).
  static RoaringBitmap FromSorted(const std::vector<uint32_t>& values);

  // Convenience builder from arbitrary (possibly duplicated) values.
  static RoaringBitmap FromUnsorted(std::vector<uint32_t> values);

  void Add(uint32_t value);
  void Remove(uint32_t value);
  bool Contains(uint32_t value) const;

  // Adds every value in [begin, end).
  void AddRange(uint64_t begin, uint64_t end);

  uint64_t Cardinality() const;
  bool IsEmpty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  // Smallest / largest member; bitmap must be non-empty.
  uint32_t Minimum() const;
  uint32_t Maximum() const;

  // Set algebra. The static forms return a new bitmap; the *InPlace forms
  // mutate the receiver and avoid re-allocating untouched containers.
  static RoaringBitmap And(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap Or(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap Xor(const RoaringBitmap& a, const RoaringBitmap& b);
  static RoaringBitmap AndNot(const RoaringBitmap& a, const RoaringBitmap& b);

  void AndInPlace(const RoaringBitmap& other);
  void OrInPlace(const RoaringBitmap& other);
  void XorInPlace(const RoaringBitmap& other);
  void AndNotInPlace(const RoaringBitmap& other);

  // |a AND b| without materializing the intersection.
  static uint64_t AndCardinality(const RoaringBitmap& a,
                                 const RoaringBitmap& b);

  // True if the two bitmaps share at least one value.
  static bool Intersects(const RoaringBitmap& a, const RoaringBitmap& b);

  // Number of members <= value.
  uint64_t Rank(uint32_t value) const;

  // i-th smallest member (0-based); requires i < Cardinality().
  uint32_t Select(uint64_t i) const;

  bool Equals(const RoaringBitmap& other) const;
  friend bool operator==(const RoaringBitmap& a, const RoaringBitmap& b) {
    return a.Equals(b);
  }

  // Switches containers to run encoding where that is smaller.
  void RunOptimize();

  // Total heap bytes of container payloads (the "already compressed"
  // in-memory footprint the paper's Table 4 contrasts with row storage).
  size_t SizeInBytes() const;

  // Serialization: [num_containers:u32] then per container
  // [key:u16][container bytes].
  void Serialize(std::string* out) const;
  std::string SerializeToString() const;
  static Result<RoaringBitmap> Deserialize(std::string_view bytes);

  // Invokes fn(uint32_t) for every member in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& e : entries_) {
      const uint32_t high = static_cast<uint32_t>(e.key) << 16;
      e.container.ForEach(
          [&fn, high](uint16_t low) { fn(high | low); });
    }
  }

  std::vector<uint32_t> ToVector() const;

  // Streaming cursor over the members in ascending order. Invalidated by
  // any mutation of the bitmap.
  class Iterator {
   public:
    explicit Iterator(const RoaringBitmap& bm);

    bool HasValue() const { return has_value_; }
    // Requires HasValue().
    uint32_t value() const { return value_; }
    // Advances to the next member.
    void Next();
    // Advances to the first member >= target (no-op if already there).
    void SkipTo(uint32_t target);

   private:
    // Positions at the first member >= (key, low); low spans [0, 65536].
    void Seek(uint16_t key, uint32_t low);

    const RoaringBitmap* bm_;
    size_t entry_ = 0;
    bool has_value_ = false;
    uint32_t value_ = 0;
  };

  // Internal statistics (exposed for benchmarks/ablations).
  int NumContainers() const { return static_cast<int>(entries_.size()); }
  int NumRunContainers() const;
  int NumBitmapContainers() const;

  // Read-only access to the i-th (key, container) pair, ascending by key;
  // i < NumContainers(). The multi-operand kernels in src/bsi walk the
  // container list directly instead of going through per-value iteration.
  uint16_t KeyAt(int i) const { return entries_[i].key; }
  const Container& ContainerAt(int i) const { return entries_[i].container; }

  // Container stored under `key`, or nullptr if the chunk is absent
  // (binary-search point lookup for kernels that don't walk keys in order).
  const Container* FindContainer(uint16_t key) const;

  // Appends a container under a key strictly greater than any key present
  // (bulk-builder path for kernels that emit containers in ascending key
  // order). Empty containers are skipped.
  void AppendContainer(uint16_t key, Container container);

 private:
  // Multi-way union accumulator (union_accumulator.h) reads entries_ to
  // borrow containers and writes the merged entry list back directly.
  friend class UnionAccumulator;

  struct Entry {
    uint16_t key;
    Container container;
  };

  // Index of entry with `key`, or -1.
  int FindKey(uint16_t key) const;
  // Returns the container for `key`, creating it (empty) if absent.
  Container* GetOrCreate(uint16_t key);

  std::vector<Entry> entries_;  // sorted by key
};

}  // namespace expbsi

#endif  // EXPBSI_ROARING_ROARING_BITMAP_H_
