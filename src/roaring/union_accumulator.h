#ifndef EXPBSI_ROARING_UNION_ACCUMULATOR_H_
#define EXPBSI_ROARING_UNION_ACCUMULATOR_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "roaring/container.h"
#include "roaring/roaring_bitmap.h"

namespace expbsi {

// Multi-way OR without intermediate materialization (CRoaring's "bitset
// accumulation" idea): instead of folding N bitmaps through N-1 pairwise
// unions -- each of which renormalizes every shared container -- the
// accumulator records (key, container*) references for all inputs, and
// Finish() processes each distinct key once. Keys held by a single input
// are copied directly; keys held by several inputs are OR-ed into one
// 65536-bit scratch buffer (leased from the per-thread ScratchArena) and
// converted to the best representation exactly once.
//
// Add() borrows: the source bitmap must stay alive and unmodified until
// Finish(). AddOwned() moves the bitmap into the accumulator for callers
// whose inputs are temporaries. Finish() resets the accumulator.
class UnionAccumulator {
 public:
  UnionAccumulator() = default;

  // Borrows `bm`'s containers; `bm` must outlive Finish().
  void Add(const RoaringBitmap& bm);

  // Takes ownership of a temporary input.
  void AddOwned(RoaringBitmap&& bm);

  // Computes the union of everything added so far and resets the
  // accumulator for reuse.
  RoaringBitmap Finish();

  bool empty() const { return pending_.empty(); }

 private:
  struct Ref {
    uint16_t key;
    const Container* container;
  };

  std::vector<Ref> pending_;
  // Deque: stable addresses for borrowed-from-owned containers as inputs
  // accumulate.
  std::deque<RoaringBitmap> owned_;
};

// Convenience wrapper: union of a whole list in one accumulator pass.
RoaringBitmap UnionMany(const std::vector<const RoaringBitmap*>& inputs);

}  // namespace expbsi

#endif  // EXPBSI_ROARING_UNION_ACCUMULATOR_H_
