#ifndef EXPBSI_ROARING_CONTAINER_H_
#define EXPBSI_ROARING_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/status.h"

namespace expbsi {

// Physical layout of one Roaring container (the low-16-bit set of all values
// that share a 16-bit key). Mirrors Chambi et al. (2016):
//
//   kArray  -- sorted uint16 values; used while cardinality <= 4096.
//   kBitmap -- 1024 x 64-bit words (8 KiB); used for dense containers.
//   kRun    -- sorted (start, length-1) uint16 pairs; produced by
//              RunOptimize() / AddRange() when runs are cheaper.
enum class ContainerType : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

// One Roaring container. Value type: copyable and movable; an empty
// container is a valid (empty-array) container.
//
// All mutating operations keep `cardinality()` exact and normalize the
// representation between array and bitmap around the 4096 threshold. Run
// containers are only created explicitly (RunOptimize / AddRange / run-run
// ops) and are converted back by mutation when that is simpler.
class Container {
 public:
  static constexpr int kArrayMaxCardinality = 4096;
  static constexpr int kWordsPerBitmap = 1024;  // 65536 bits

  // Array-array intersections switch from the linear two-pointer merge to
  // galloping (exponential search) when one operand is at least this many
  // times larger than the other. Below the ratio the merge's sequential
  // access wins; above it, skipping whole blocks of the large operand does.
  static constexpr int kGallopRatio = 32;

  Container() = default;

  Container(const Container&) = default;
  Container& operator=(const Container&) = default;
  Container(Container&&) = default;
  Container& operator=(Container&&) = default;

  // Builds directly from sorted, distinct values (fast bulk path).
  static Container FromSorted(const uint16_t* values, int n);

  ContainerType type() const { return type_; }
  int Cardinality() const { return cardinality_; }
  bool IsEmpty() const { return cardinality_ == 0; }

  void Add(uint16_t value);
  void Remove(uint16_t value);
  bool Contains(uint16_t value) const;

  // Adds every value in [begin, end); end <= 65536.
  void AddRange(uint32_t begin, uint32_t end);

  // Set-algebra operations. Results are normalized to their best
  // representation (array below the threshold, bitmap above; run results
  // are kept when produced from run inputs and still compact).
  static Container And(const Container& a, const Container& b);
  static Container Or(const Container& a, const Container& b);
  static Container Xor(const Container& a, const Container& b);
  static Container AndNot(const Container& a, const Container& b);

  // |a AND b| without materializing the intersection where possible.
  static int AndCardinality(const Container& a, const Container& b);

  // True if a and b intersect (early-exit version of AndCardinality > 0).
  static bool Intersects(const Container& a, const Container& b);

  void OrInPlace(const Container& other) { *this = Or(*this, other); }

  // Destructive in-place variants: mutate the receiver without reallocating
  // its payload where the representation allows (bitmap words are updated in
  // place; small array-array unions reuse the existing array capacity). They
  // fall back to the allocating static ops otherwise, so they are always
  // semantically identical to `*this = Op(*this, other)`.
  void OrInPlaceWith(const Container& other);
  void AndInPlaceWith(const Container& other);
  void XorInPlaceWith(const Container& other);
  void AndNotInPlaceWith(const Container& other);

  // ORs this container's bits into a caller-owned 65536-bit word buffer
  // (kWordsPerBitmap words). The multi-way-union primitive: N containers of
  // one key are folded into the buffer and converted back exactly once.
  void UnionInto(uint64_t* words) const;

  // Builds a container from a 65536-bit word buffer, normalized to array
  // form when the cardinality is at or below kArrayMaxCardinality.
  static Container FromWords(const uint64_t* words);

  // FromWords restricted to the word window [w_lo, w_hi): only those words
  // are scanned, and every word outside the window must be zero (the
  // returned container still represents the full buffer). Lets kernels that
  // track which words they dirtied skip the empty tail of a scratch buffer.
  static Container FromWordsRange(const uint64_t* words, int w_lo, int w_hi);

  // Raw 1024-word payload when type() == kBitmap, nullptr otherwise. Lets
  // word-at-a-time kernels read dense containers without a copy.
  const uint64_t* BitmapWords() const {
    return type_ == ContainerType::kBitmap ? words_.data() : nullptr;
  }

  // Read-only word view for any representation: dense containers lend their
  // bitmap payload directly; array/run containers overwrite `scratch`
  // (kWordsPerBitmap words, caller-owned) with their bits and return it.
  // The word-level compare/range kernels use this to treat every container
  // uniformly inside a chunk.
  const uint64_t* WordsInto(uint64_t* scratch) const;

  // Number of values <= `value`.
  int Rank(uint16_t value) const;

  // i-th smallest value, 0-based; requires i < Cardinality().
  uint16_t Select(int i) const;

  // Smallest / largest stored value; container must be non-empty.
  uint16_t Minimum() const;
  uint16_t Maximum() const;

  bool Equals(const Container& other) const;

  // Switches to the run representation when it is the smallest of the three.
  void RunOptimize();

  // Bytes of payload this container occupies in memory (and, to within a
  // few header bytes, when serialized).
  size_t SizeInBytes() const;

  // Appends [type:u8][count:u32][payload] to `out`.
  void Serialize(std::string* out) const;

  // Parses a container produced by Serialize, advancing *cursor.
  static Result<Container> Deserialize(const uint8_t** cursor,
                                       const uint8_t* end);

  // Invokes fn(uint16_t) for every value in ascending order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    switch (type_) {
      case ContainerType::kArray:
        for (uint16_t v : array_) fn(v);
        break;
      case ContainerType::kBitmap:
        for (int w = 0; w < kWordsPerBitmap; ++w) {
          uint64_t word = words_[w];
          while (word != 0) {
            const int bit = CountTrailingZeros64(word);
            fn(static_cast<uint16_t>((w << 6) + bit));
            word &= word - 1;
          }
        }
        break;
      case ContainerType::kRun:
        for (size_t r = 0; r + 1 < array_.size(); r += 2) {
          const uint32_t start = array_[r];
          const uint32_t len = array_[r + 1];
          for (uint32_t v = start; v <= start + len; ++v) {
            fn(static_cast<uint16_t>(v));
          }
        }
        break;
    }
  }

  // Copies all values, ascending, into a plain array container form.
  std::vector<uint16_t> ToArray() const;

  // Smallest stored value >= from, or -1 if none. Powers streaming
  // iteration without materializing the container.
  int NextValue(uint32_t from) const;

 private:
  friend class ContainerTestPeer;

  // Representation switches.
  void ConvertToBitmap();
  // Converts a run container to array (card <= threshold) or bitmap.
  void ConvertRunToBest();
  // After bitmap mutation: recount and downgrade to array if small.
  void NormalizeBitmap();

  static Container MakeBitmap();

  bool ContainsRun(uint16_t value) const;

  ContainerType type_ = ContainerType::kArray;
  int32_t cardinality_ = 0;
  // kArray: sorted values. kRun: flattened (start, length-1) pairs.
  std::vector<uint16_t> array_;
  // kBitmap: exactly kWordsPerBitmap words.
  std::vector<uint64_t> words_;
};

}  // namespace expbsi

#endif  // EXPBSI_ROARING_CONTAINER_H_
