#include "roaring/roaring_bitmap.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

namespace expbsi {
namespace {

inline uint16_t HighBits(uint32_t v) { return static_cast<uint16_t>(v >> 16); }
inline uint16_t LowBits(uint32_t v) { return static_cast<uint16_t>(v & 0xFFFF); }

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU16(std::string* out, uint16_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

const Container* RoaringBitmap::FindContainer(uint16_t key) const {
  const int i = FindKey(key);
  return i < 0 ? nullptr : &entries_[i].container;
}

int RoaringBitmap::FindKey(uint16_t key) const {
  int lo = 0, hi = static_cast<int>(entries_.size()) - 1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (entries_[mid].key == key) return mid;
    if (entries_[mid].key < key) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return -1;
}

Container* RoaringBitmap::GetOrCreate(uint16_t key) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const Entry& e, uint16_t k) { return e.key < k; });
  if (it != entries_.end() && it->key == key) return &it->container;
  it = entries_.insert(it, Entry{key, Container()});
  return &it->container;
}

RoaringBitmap RoaringBitmap::FromSorted(const std::vector<uint32_t>& values) {
  RoaringBitmap bm;
  size_t i = 0;
  std::vector<uint16_t> lows;
  while (i < values.size()) {
    const uint16_t key = HighBits(values[i]);
    lows.clear();
    while (i < values.size() && HighBits(values[i]) == key) {
      DCHECK(lows.empty() || lows.back() < LowBits(values[i]));
      lows.push_back(LowBits(values[i]));
      ++i;
    }
    bm.entries_.push_back(
        Entry{key, Container::FromSorted(lows.data(),
                                         static_cast<int>(lows.size()))});
  }
  return bm;
}

RoaringBitmap RoaringBitmap::FromUnsorted(std::vector<uint32_t> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return FromSorted(values);
}

void RoaringBitmap::Add(uint32_t value) {
  GetOrCreate(HighBits(value))->Add(LowBits(value));
}

void RoaringBitmap::Remove(uint32_t value) {
  const int idx = FindKey(HighBits(value));
  if (idx < 0) return;
  entries_[idx].container.Remove(LowBits(value));
  if (entries_[idx].container.IsEmpty()) {
    entries_.erase(entries_.begin() + idx);
  }
}

bool RoaringBitmap::Contains(uint32_t value) const {
  const int idx = FindKey(HighBits(value));
  return idx >= 0 && entries_[idx].container.Contains(LowBits(value));
}

void RoaringBitmap::AddRange(uint64_t begin, uint64_t end) {
  CHECK_LE(end, uint64_t{1} << 32);
  if (begin >= end) return;
  uint64_t cur = begin;
  while (cur < end) {
    const uint16_t key = HighBits(static_cast<uint32_t>(cur));
    const uint64_t chunk_end =
        std::min<uint64_t>(end, (static_cast<uint64_t>(key) + 1) << 16);
    GetOrCreate(key)->AddRange(static_cast<uint32_t>(cur & 0xFFFF),
                               static_cast<uint32_t>(((chunk_end - 1) & 0xFFFF) + 1));
    cur = chunk_end;
  }
}

uint64_t RoaringBitmap::Cardinality() const {
  uint64_t total = 0;
  for (const Entry& e : entries_) total += e.container.Cardinality();
  return total;
}

uint32_t RoaringBitmap::Minimum() const {
  CHECK(!IsEmpty());
  const Entry& e = entries_.front();
  return (static_cast<uint32_t>(e.key) << 16) | e.container.Minimum();
}

uint32_t RoaringBitmap::Maximum() const {
  CHECK(!IsEmpty());
  const Entry& e = entries_.back();
  return (static_cast<uint32_t>(e.key) << 16) | e.container.Maximum();
}

RoaringBitmap RoaringBitmap::And(const RoaringBitmap& a,
                                 const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    const uint16_t ka = a.entries_[i].key, kb = b.entries_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      Container c = Container::And(a.entries_[i].container,
                                   b.entries_[j].container);
      if (!c.IsEmpty()) out.entries_.push_back(Entry{ka, std::move(c)});
      ++i;
      ++j;
    }
  }
  return out;
}

RoaringBitmap RoaringBitmap::Or(const RoaringBitmap& a,
                                const RoaringBitmap& b) {
  RoaringBitmap out;
  out.entries_.reserve(std::max(a.entries_.size(), b.entries_.size()));
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    if (j >= b.entries_.size() ||
        (i < a.entries_.size() && a.entries_[i].key < b.entries_[j].key)) {
      out.entries_.push_back(a.entries_[i]);
      ++i;
    } else if (i >= a.entries_.size() ||
               b.entries_[j].key < a.entries_[i].key) {
      out.entries_.push_back(b.entries_[j]);
      ++j;
    } else {
      out.entries_.push_back(Entry{
          a.entries_[i].key,
          Container::Or(a.entries_[i].container, b.entries_[j].container)});
      ++i;
      ++j;
    }
  }
  return out;
}

RoaringBitmap RoaringBitmap::Xor(const RoaringBitmap& a,
                                 const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() || j < b.entries_.size()) {
    if (j >= b.entries_.size() ||
        (i < a.entries_.size() && a.entries_[i].key < b.entries_[j].key)) {
      out.entries_.push_back(a.entries_[i]);
      ++i;
    } else if (i >= a.entries_.size() ||
               b.entries_[j].key < a.entries_[i].key) {
      out.entries_.push_back(b.entries_[j]);
      ++j;
    } else {
      Container c = Container::Xor(a.entries_[i].container,
                                   b.entries_[j].container);
      if (!c.IsEmpty()) {
        out.entries_.push_back(Entry{a.entries_[i].key, std::move(c)});
      }
      ++i;
      ++j;
    }
  }
  return out;
}

RoaringBitmap RoaringBitmap::AndNot(const RoaringBitmap& a,
                                    const RoaringBitmap& b) {
  RoaringBitmap out;
  size_t i = 0, j = 0;
  while (i < a.entries_.size()) {
    if (j >= b.entries_.size() || a.entries_[i].key < b.entries_[j].key) {
      out.entries_.push_back(a.entries_[i]);
      ++i;
    } else if (b.entries_[j].key < a.entries_[i].key) {
      ++j;
    } else {
      Container c = Container::AndNot(a.entries_[i].container,
                                      b.entries_[j].container);
      if (!c.IsEmpty()) {
        out.entries_.push_back(Entry{a.entries_[i].key, std::move(c)});
      }
      ++i;
      ++j;
    }
  }
  return out;
}

void RoaringBitmap::AndInPlace(const RoaringBitmap& other) {
  // The result's keys are a subset of this bitmap's keys, so the entry
  // vector is compacted in place: no reallocation, and containers intersect
  // destructively where their representation allows.
  size_t w = 0, j = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    while (j < other.entries_.size() &&
           other.entries_[j].key < entries_[i].key) {
      ++j;
    }
    if (j >= other.entries_.size()) break;
    if (other.entries_[j].key != entries_[i].key) continue;
    entries_[i].container.AndInPlaceWith(other.entries_[j].container);
    if (!entries_[i].container.IsEmpty()) {
      if (w != i) entries_[w] = std::move(entries_[i]);
      ++w;
    }
  }
  entries_.resize(w);
}

void RoaringBitmap::OrInPlace(const RoaringBitmap& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  // Fast path: every key of `other` already exists here -- pure in-place
  // container updates, no entry-vector churn. This is the common case for
  // slice accumulation over one population.
  {
    size_t i = 0, j = 0;
    bool subset = true;
    while (j < other.entries_.size()) {
      if (i >= entries_.size() || entries_[i].key > other.entries_[j].key) {
        subset = false;
        break;
      }
      if (entries_[i].key == other.entries_[j].key) ++j;
      ++i;
    }
    if (subset) {
      i = 0;
      for (j = 0; j < other.entries_.size(); ++j) {
        while (entries_[i].key != other.entries_[j].key) ++i;
        entries_[i].container.OrInPlaceWith(other.entries_[j].container);
      }
      return;
    }
  }
  // General path: merge into a fresh entry vector, MOVING this bitmap's
  // containers instead of copying their payloads.
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].key < other.entries_[j].key)) {
      merged.push_back(std::move(entries_[i]));
      ++i;
    } else if (i >= entries_.size() ||
               other.entries_[j].key < entries_[i].key) {
      merged.push_back(other.entries_[j]);
      ++j;
    } else {
      entries_[i].container.OrInPlaceWith(other.entries_[j].container);
      merged.push_back(std::move(entries_[i]));
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void RoaringBitmap::XorInPlace(const RoaringBitmap& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].key < other.entries_[j].key)) {
      merged.push_back(std::move(entries_[i]));
      ++i;
    } else if (i >= entries_.size() ||
               other.entries_[j].key < entries_[i].key) {
      merged.push_back(other.entries_[j]);
      ++j;
    } else {
      entries_[i].container.XorInPlaceWith(other.entries_[j].container);
      if (!entries_[i].container.IsEmpty()) {
        merged.push_back(std::move(entries_[i]));
      }
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void RoaringBitmap::AndNotInPlace(const RoaringBitmap& other) {
  // Result keys are a subset of this bitmap's keys: compact in place.
  size_t w = 0, j = 0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    while (j < other.entries_.size() &&
           other.entries_[j].key < entries_[i].key) {
      ++j;
    }
    if (j < other.entries_.size() &&
        other.entries_[j].key == entries_[i].key) {
      entries_[i].container.AndNotInPlaceWith(other.entries_[j].container);
      if (entries_[i].container.IsEmpty()) continue;
    }
    if (w != i) entries_[w] = std::move(entries_[i]);
    ++w;
  }
  entries_.resize(w);
}

uint64_t RoaringBitmap::AndCardinality(const RoaringBitmap& a,
                                       const RoaringBitmap& b) {
  uint64_t total = 0;
  size_t i = 0, j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    const uint16_t ka = a.entries_[i].key, kb = b.entries_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      total += Container::AndCardinality(a.entries_[i].container,
                                         b.entries_[j].container);
      ++i;
      ++j;
    }
  }
  return total;
}

bool RoaringBitmap::Intersects(const RoaringBitmap& a,
                               const RoaringBitmap& b) {
  size_t i = 0, j = 0;
  while (i < a.entries_.size() && j < b.entries_.size()) {
    const uint16_t ka = a.entries_[i].key, kb = b.entries_[j].key;
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      if (Container::Intersects(a.entries_[i].container,
                                b.entries_[j].container)) {
        return true;
      }
      ++i;
      ++j;
    }
  }
  return false;
}

uint64_t RoaringBitmap::Rank(uint32_t value) const {
  const uint16_t key = HighBits(value);
  uint64_t rank = 0;
  for (const Entry& e : entries_) {
    if (e.key < key) {
      rank += e.container.Cardinality();
    } else if (e.key == key) {
      rank += e.container.Rank(LowBits(value));
      break;
    } else {
      break;
    }
  }
  return rank;
}

uint32_t RoaringBitmap::Select(uint64_t i) const {
  uint64_t remaining = i;
  for (const Entry& e : entries_) {
    const uint64_t card = e.container.Cardinality();
    if (remaining < card) {
      return (static_cast<uint32_t>(e.key) << 16) |
             e.container.Select(static_cast<int>(remaining));
    }
    remaining -= card;
  }
  CHECK(false);  // i >= Cardinality()
  return 0;
}

bool RoaringBitmap::Equals(const RoaringBitmap& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].key != other.entries_[i].key) return false;
    if (!entries_[i].container.Equals(other.entries_[i].container)) {
      return false;
    }
  }
  return true;
}

void RoaringBitmap::RunOptimize() {
  for (Entry& e : entries_) e.container.RunOptimize();
}

size_t RoaringBitmap::SizeInBytes() const {
  size_t total = entries_.size() * (sizeof(uint16_t) + sizeof(uint32_t));
  for (const Entry& e : entries_) total += e.container.SizeInBytes();
  return total;
}

void RoaringBitmap::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(entries_.size()));
  for (const Entry& e : entries_) {
    PutU16(out, e.key);
    e.container.Serialize(out);
  }
}

std::string RoaringBitmap::SerializeToString() const {
  std::string out;
  Serialize(&out);
  return out;
}

Result<RoaringBitmap> RoaringBitmap::Deserialize(std::string_view bytes) {
  const uint8_t* cursor = reinterpret_cast<const uint8_t*>(bytes.data());
  const uint8_t* end = cursor + bytes.size();
  if (end - cursor < static_cast<ptrdiff_t>(sizeof(uint32_t))) {
    return Status::Corruption("roaring: truncated header");
  }
  uint32_t n = 0;
  std::memcpy(&n, cursor, sizeof(n));
  cursor += sizeof(n);
  if (n > 65536) return Status::Corruption("roaring: too many containers");
  // A container needs at least 7 bytes (key + type + count), so a count
  // the remaining payload cannot hold is hostile; reject it before it
  // sizes an allocation.
  constexpr size_t kMinContainerBytes = 2 + 1 + 4;
  if ((bytes.size() - sizeof(uint32_t)) / kMinContainerBytes < n) {
    return Status::Corruption("roaring: container count exceeds payload");
  }
  RoaringBitmap bm;
  bm.entries_.reserve(n);
  uint32_t prev_key = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (end - cursor < static_cast<ptrdiff_t>(sizeof(uint16_t))) {
      return Status::Corruption("roaring: truncated key");
    }
    uint16_t key = 0;
    std::memcpy(&key, cursor, sizeof(key));
    cursor += sizeof(key);
    if (i > 0 && key <= prev_key) {
      return Status::Corruption("roaring: keys out of order");
    }
    prev_key = key;
    Result<Container> c = Container::Deserialize(&cursor, end);
    if (!c.ok()) return c.status();
    bm.entries_.push_back(Entry{key, std::move(c).value()});
  }
  // Exactly n containers and nothing else: trailing bytes mean the blob was
  // extended or the count shrunk -- either way, not what was serialized.
  if (cursor != end) return Status::Corruption("roaring: trailing bytes");
  return bm;
}

std::vector<uint32_t> RoaringBitmap::ToVector() const {
  std::vector<uint32_t> out;
  out.reserve(Cardinality());
  ForEach([&out](uint32_t v) { out.push_back(v); });
  return out;
}

RoaringBitmap::Iterator::Iterator(const RoaringBitmap& bm) : bm_(&bm) {
  Seek(0, 0);
}

void RoaringBitmap::Iterator::Seek(uint16_t key, uint32_t low) {
  has_value_ = false;
  // Find the first entry with key >= requested key.
  size_t entry = 0;
  while (entry < bm_->entries_.size() && bm_->entries_[entry].key < key) {
    ++entry;
  }
  uint32_t low_cursor = low;
  for (; entry < bm_->entries_.size(); ++entry) {
    if (bm_->entries_[entry].key != key) low_cursor = 0;
    const int next = bm_->entries_[entry].container.NextValue(low_cursor);
    if (next >= 0) {
      entry_ = entry;
      value_ = (static_cast<uint32_t>(bm_->entries_[entry].key) << 16) |
               static_cast<uint32_t>(next);
      has_value_ = true;
      return;
    }
    low_cursor = 0;
  }
}

void RoaringBitmap::Iterator::Next() {
  CHECK(has_value_);
  if (value_ == 0xFFFFFFFFu) {  // global maximum: nothing follows
    has_value_ = false;
    return;
  }
  const uint32_t next = value_ + 1;
  Seek(static_cast<uint16_t>(next >> 16), next & 0xFFFF);
}

void RoaringBitmap::Iterator::SkipTo(uint32_t target) {
  if (has_value_ && value_ >= target) return;
  Seek(static_cast<uint16_t>(target >> 16), target & 0xFFFF);
}

int RoaringBitmap::NumRunContainers() const {
  int n = 0;
  for (const Entry& e : entries_) {
    n += e.container.type() == ContainerType::kRun ? 1 : 0;
  }
  return n;
}

int RoaringBitmap::NumBitmapContainers() const {
  int n = 0;
  for (const Entry& e : entries_) {
    n += e.container.type() == ContainerType::kBitmap ? 1 : 0;
  }
  return n;
}

void RoaringBitmap::AppendContainer(uint16_t key, Container container) {
  if (container.IsEmpty()) return;
  CHECK(entries_.empty() || entries_.back().key < key);
  entries_.push_back({key, std::move(container)});
}

}  // namespace expbsi
