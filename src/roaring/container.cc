#include "roaring/container.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

namespace expbsi {
namespace {

// Appends a little-endian u32 to out.
void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(const uint8_t** cursor, const uint8_t* end, uint32_t* v) {
  if (end - *cursor < static_cast<ptrdiff_t>(sizeof(uint32_t))) return false;
  std::memcpy(v, *cursor, sizeof(uint32_t));
  *cursor += sizeof(uint32_t);
  return true;
}

// First index in [lo, v.size()) with v[idx] >= key, found by exponential
// search from lo: probes lo+1, lo+2, lo+4, ... then binary-searches the
// bracketing block. O(log d) for a match d positions ahead, which beats the
// linear merge when one operand is much smaller than the other.
size_t GallopTo(const std::vector<uint16_t>& v, size_t lo, uint16_t key) {
  if (lo >= v.size() || v[lo] >= key) return lo;
  size_t step = 1;
  while (lo + step < v.size() && v[lo + step] < key) step <<= 1;
  const size_t begin = lo + (step >> 1) + 1;  // v[lo + step/2] < key
  const size_t end = std::min(v.size(), lo + step + 1);
  return static_cast<size_t>(
      std::lower_bound(v.begin() + begin, v.begin() + end, key) - v.begin());
}

// Galloping intersection for skewed cardinalities: walk the small operand,
// gallop through the large one.
std::vector<uint16_t> ArrayAndGalloping(const std::vector<uint16_t>& small,
                                        const std::vector<uint16_t>& large) {
  std::vector<uint16_t> out;
  out.reserve(small.size());
  size_t j = 0;
  for (const uint16_t v : small) {
    j = GallopTo(large, j, v);
    if (j == large.size()) break;
    if (large[j] == v) {
      out.push_back(v);
      ++j;
    }
  }
  return out;
}

int ArrayAndCardinalityGalloping(const std::vector<uint16_t>& small,
                                 const std::vector<uint16_t>& large) {
  int card = 0;
  size_t j = 0;
  for (const uint16_t v : small) {
    j = GallopTo(large, j, v);
    if (j == large.size()) break;
    if (large[j] == v) {
      ++card;
      ++j;
    }
  }
  return card;
}

bool UseGallop(size_t small_size, size_t large_size) {
  return small_size * static_cast<size_t>(Container::kGallopRatio) <
         large_size;
}

// Sorted-array intersection (two-pointer), galloping on skewed sizes.
std::vector<uint16_t> ArrayAnd(const std::vector<uint16_t>& a,
                               const std::vector<uint16_t>& b) {
  if (UseGallop(a.size(), b.size())) return ArrayAndGalloping(a, b);
  if (UseGallop(b.size(), a.size())) return ArrayAndGalloping(b, a);
  std::vector<uint16_t> out;
  out.reserve(std::min(a.size(), b.size()));
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      out.push_back(a[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

std::vector<uint16_t> ArrayOr(const std::vector<uint16_t>& a,
                              const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

std::vector<uint16_t> ArrayXor(const std::vector<uint16_t>& a,
                               const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size() + b.size());
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

std::vector<uint16_t> ArrayAndNot(const std::vector<uint16_t>& a,
                                  const std::vector<uint16_t>& b) {
  std::vector<uint16_t> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

inline bool BitmapTest(const std::vector<uint64_t>& words, uint16_t v) {
  return (words[v >> 6] >> (v & 63)) & 1;
}

inline void BitmapSet(std::vector<uint64_t>& words, uint16_t v) {
  words[v >> 6] |= uint64_t{1} << (v & 63);
}

inline void BitmapClear(std::vector<uint64_t>& words, uint16_t v) {
  words[v >> 6] &= ~(uint64_t{1} << (v & 63));
}

int BitmapCount(const std::vector<uint64_t>& words) {
  int count = 0;
  for (uint64_t w : words) count += PopCount64(w);
  return count;
}

// Sets bits [begin, end) in a 65536-bit word buffer.
void BitmapSetRange(uint64_t* words, uint32_t begin, uint32_t end) {
  if (begin >= end) return;
  const uint32_t first_word = begin >> 6;
  const uint32_t last_word = (end - 1) >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words[first_word] |= first_mask & last_mask;
    return;
  }
  words[first_word] |= first_mask;
  for (uint32_t w = first_word + 1; w < last_word; ++w) words[w] = ~uint64_t{0};
  words[last_word] |= last_mask;
}

void BitmapSetRange(std::vector<uint64_t>& words, uint32_t begin,
                    uint32_t end) {
  BitmapSetRange(words.data(), begin, end);
}

void BitmapClearRange(std::vector<uint64_t>& words, uint32_t begin,
                      uint32_t end) {
  if (begin >= end) return;
  const uint32_t first_word = begin >> 6;
  const uint32_t last_word = (end - 1) >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (begin & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - ((end - 1) & 63));
  if (first_word == last_word) {
    words[first_word] &= ~(first_mask & last_mask);
    return;
  }
  words[first_word] &= ~first_mask;
  for (uint32_t w = first_word + 1; w < last_word; ++w) words[w] = 0;
  words[last_word] &= ~last_mask;
}

}  // namespace

Container Container::MakeBitmap() {
  Container c;
  c.type_ = ContainerType::kBitmap;
  c.words_.assign(kWordsPerBitmap, 0);
  return c;
}

Container Container::FromSorted(const uint16_t* values, int n) {
  Container c;
  if (n <= kArrayMaxCardinality) {
    c.array_.assign(values, values + n);
    c.cardinality_ = n;
    return c;
  }
  c = MakeBitmap();
  for (int i = 0; i < n; ++i) BitmapSet(c.words_, values[i]);
  c.cardinality_ = n;
  return c;
}

void Container::Add(uint16_t value) {
  switch (type_) {
    case ContainerType::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), value);
      if (it != array_.end() && *it == value) return;
      if (cardinality_ >= kArrayMaxCardinality) {
        ConvertToBitmap();
        Add(value);
        return;
      }
      array_.insert(it, value);
      ++cardinality_;
      return;
    }
    case ContainerType::kBitmap: {
      if (!BitmapTest(words_, value)) {
        BitmapSet(words_, value);
        ++cardinality_;
      }
      return;
    }
    case ContainerType::kRun: {
      if (ContainsRun(value)) return;
      ConvertRunToBest();
      Add(value);
      return;
    }
  }
}

void Container::Remove(uint16_t value) {
  switch (type_) {
    case ContainerType::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(), value);
      if (it != array_.end() && *it == value) {
        array_.erase(it);
        --cardinality_;
      }
      return;
    }
    case ContainerType::kBitmap: {
      if (BitmapTest(words_, value)) {
        BitmapClear(words_, value);
        --cardinality_;
        if (cardinality_ <= kArrayMaxCardinality) NormalizeBitmap();
      }
      return;
    }
    case ContainerType::kRun: {
      if (!ContainsRun(value)) return;
      ConvertRunToBest();
      Remove(value);
      return;
    }
  }
}

bool Container::Contains(uint16_t value) const {
  switch (type_) {
    case ContainerType::kArray:
      return std::binary_search(array_.begin(), array_.end(), value);
    case ContainerType::kBitmap:
      return BitmapTest(words_, value);
    case ContainerType::kRun:
      return ContainsRun(value);
  }
  return false;
}

bool Container::ContainsRun(uint16_t value) const {
  // Runs are sorted by start; find the last run with start <= value.
  int lo = 0, hi = static_cast<int>(array_.size() / 2) - 1, found = -1;
  while (lo <= hi) {
    const int mid = (lo + hi) / 2;
    if (array_[2 * mid] <= value) {
      found = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (found < 0) return false;
  const uint32_t start = array_[2 * found];
  const uint32_t len = array_[2 * found + 1];
  return value <= start + len;
}

void Container::AddRange(uint32_t begin, uint32_t end) {
  CHECK_LE(end, 65536u);
  if (begin >= end) return;
  if (IsEmpty()) {
    // Fresh range: the run representation is exact and minimal.
    type_ = ContainerType::kRun;
    array_ = {static_cast<uint16_t>(begin),
              static_cast<uint16_t>(end - 1 - begin)};
    words_.clear();
    cardinality_ = static_cast<int32_t>(end - begin);
    return;
  }
  if (type_ != ContainerType::kBitmap) ConvertToBitmap();
  BitmapSetRange(words_, begin, end);
  cardinality_ = BitmapCount(words_);
  if (cardinality_ <= kArrayMaxCardinality) NormalizeBitmap();
}

void Container::ConvertToBitmap() {
  if (type_ == ContainerType::kBitmap) return;
  std::vector<uint64_t> words(kWordsPerBitmap, 0);
  if (type_ == ContainerType::kArray) {
    for (uint16_t v : array_) BitmapSet(words, v);
  } else {  // kRun
    for (size_t r = 0; r + 1 < array_.size(); r += 2) {
      const uint32_t start = array_[r];
      const uint32_t len = array_[r + 1];
      BitmapSetRange(words, start, start + len + 1);
    }
  }
  words_ = std::move(words);
  array_.clear();
  array_.shrink_to_fit();
  type_ = ContainerType::kBitmap;
}

void Container::ConvertRunToBest() {
  CHECK(type_ == ContainerType::kRun);
  if (cardinality_ <= kArrayMaxCardinality) {
    std::vector<uint16_t> values;
    values.reserve(cardinality_);
    for (size_t r = 0; r + 1 < array_.size(); r += 2) {
      const uint32_t start = array_[r];
      const uint32_t len = array_[r + 1];
      for (uint32_t v = start; v <= start + len; ++v) {
        values.push_back(static_cast<uint16_t>(v));
      }
    }
    array_ = std::move(values);
    type_ = ContainerType::kArray;
  } else {
    ConvertToBitmap();
  }
}

void Container::NormalizeBitmap() {
  CHECK(type_ == ContainerType::kBitmap);
  if (cardinality_ > kArrayMaxCardinality) return;
  std::vector<uint16_t> values;
  values.reserve(cardinality_);
  ForEach([&values](uint16_t v) { values.push_back(v); });
  array_ = std::move(values);
  words_.clear();
  words_.shrink_to_fit();
  type_ = ContainerType::kArray;
}

std::vector<uint16_t> Container::ToArray() const {
  std::vector<uint16_t> out;
  out.reserve(cardinality_);
  ForEach([&out](uint16_t v) { out.push_back(v); });
  return out;
}

Container Container::And(const Container& a, const Container& b) {
  // Run operands: intersect natively when both are runs; otherwise filter
  // the other operand by the run's Contains (cheap: runs are few).
  if (a.type_ == ContainerType::kRun || b.type_ == ContainerType::kRun) {
    if (a.type_ == ContainerType::kRun && b.type_ == ContainerType::kRun) {
      Container out;
      out.type_ = ContainerType::kRun;
      size_t i = 0, j = 0;
      int card = 0;
      while (i + 1 < a.array_.size() && j + 1 < b.array_.size()) {
        const uint32_t sa = a.array_[i], ea = sa + a.array_[i + 1];
        const uint32_t sb = b.array_[j], eb = sb + b.array_[j + 1];
        const uint32_t s = std::max(sa, sb), e = std::min(ea, eb);
        if (s <= e) {
          out.array_.push_back(static_cast<uint16_t>(s));
          out.array_.push_back(static_cast<uint16_t>(e - s));
          card += static_cast<int>(e - s + 1);
        }
        if (ea < eb) {
          i += 2;
        } else {
          j += 2;
        }
      }
      out.cardinality_ = card;
      if (card == 0) {
        out = Container();
      } else if (out.array_.size() * sizeof(uint16_t) >=
                 std::min<size_t>(static_cast<size_t>(card) * 2,
                                  kWordsPerBitmap * 8)) {
        // The run form is not the smallest representation; convert.
        out.ConvertRunToBest();
      }
      return out;
    }
    const Container& run = a.type_ == ContainerType::kRun ? a : b;
    const Container& other = a.type_ == ContainerType::kRun ? b : a;
    if (other.type_ == ContainerType::kArray) {
      Container out;
      for (uint16_t v : other.array_) {
        if (run.ContainsRun(v)) out.array_.push_back(v);
      }
      out.cardinality_ = static_cast<int32_t>(out.array_.size());
      return out;
    }
    // run x bitmap: copy the bitmap restricted to the run ranges.
    Container out = MakeBitmap();
    int card = 0;
    for (size_t r = 0; r + 1 < run.array_.size(); r += 2) {
      const uint32_t start = run.array_[r];
      const uint32_t end = start + run.array_[r + 1] + 1;
      BitmapSetRange(out.words_, start, end);
    }
    for (int w = 0; w < kWordsPerBitmap; ++w) {
      out.words_[w] &= other.words_[w];
      card += PopCount64(out.words_[w]);
    }
    out.cardinality_ = card;
    out.NormalizeBitmap();
    return out;
  }

  if (a.type_ == ContainerType::kArray && b.type_ == ContainerType::kArray) {
    Container out;
    out.array_ = ArrayAnd(a.array_, b.array_);
    out.cardinality_ = static_cast<int32_t>(out.array_.size());
    return out;
  }
  if (a.type_ == ContainerType::kArray || b.type_ == ContainerType::kArray) {
    const Container& arr = a.type_ == ContainerType::kArray ? a : b;
    const Container& bmp = a.type_ == ContainerType::kArray ? b : a;
    Container out;
    out.array_.reserve(arr.array_.size());
    for (uint16_t v : arr.array_) {
      if (BitmapTest(bmp.words_, v)) out.array_.push_back(v);
    }
    out.cardinality_ = static_cast<int32_t>(out.array_.size());
    return out;
  }
  // bitmap x bitmap
  Container out = MakeBitmap();
  int card = 0;
  for (int w = 0; w < kWordsPerBitmap; ++w) {
    out.words_[w] = a.words_[w] & b.words_[w];
    card += PopCount64(out.words_[w]);
  }
  out.cardinality_ = card;
  out.NormalizeBitmap();
  return out;
}

Container Container::Or(const Container& a, const Container& b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  if (a.type_ == ContainerType::kRun || b.type_ == ContainerType::kRun) {
    if (a.type_ == ContainerType::kRun && b.type_ == ContainerType::kRun) {
      // Merge interval lists.
      Container out;
      out.type_ = ContainerType::kRun;
      size_t i = 0, j = 0;
      int64_t card = 0;
      int64_t cur_start = -1, cur_end = -1;
      auto emit = [&out, &card](int64_t s, int64_t e) {
        out.array_.push_back(static_cast<uint16_t>(s));
        out.array_.push_back(static_cast<uint16_t>(e - s));
        card += e - s + 1;
      };
      while (i + 1 < a.array_.size() || j + 1 < b.array_.size()) {
        int64_t s, e;
        const bool take_a =
            j + 1 >= b.array_.size() ||
            (i + 1 < a.array_.size() && a.array_[i] <= b.array_[j]);
        if (take_a) {
          s = a.array_[i];
          e = s + a.array_[i + 1];
          i += 2;
        } else {
          s = b.array_[j];
          e = s + b.array_[j + 1];
          j += 2;
        }
        if (cur_start < 0) {
          cur_start = s;
          cur_end = e;
        } else if (s <= cur_end + 1) {
          cur_end = std::max(cur_end, e);
        } else {
          emit(cur_start, cur_end);
          cur_start = s;
          cur_end = e;
        }
      }
      if (cur_start >= 0) emit(cur_start, cur_end);
      out.cardinality_ = static_cast<int32_t>(card);
      return out;
    }
    const Container& run = a.type_ == ContainerType::kRun ? a : b;
    const Container& other = a.type_ == ContainerType::kRun ? b : a;
    // Set the run ranges into a bitmap copy of the other operand.
    Container out = other;
    out.ConvertToBitmap();
    for (size_t r = 0; r + 1 < run.array_.size(); r += 2) {
      const uint32_t start = run.array_[r];
      const uint32_t end = start + run.array_[r + 1] + 1;
      BitmapSetRange(out.words_, start, end);
    }
    out.cardinality_ = BitmapCount(out.words_);
    out.NormalizeBitmap();
    return out;
  }

  if (a.type_ == ContainerType::kArray && b.type_ == ContainerType::kArray) {
    if (a.cardinality_ + b.cardinality_ <= kArrayMaxCardinality) {
      Container out;
      out.array_ = ArrayOr(a.array_, b.array_);
      out.cardinality_ = static_cast<int32_t>(out.array_.size());
      return out;
    }
    Container out = MakeBitmap();
    for (uint16_t v : a.array_) BitmapSet(out.words_, v);
    for (uint16_t v : b.array_) BitmapSet(out.words_, v);
    out.cardinality_ = BitmapCount(out.words_);
    out.NormalizeBitmap();
    return out;
  }
  if (a.type_ == ContainerType::kArray || b.type_ == ContainerType::kArray) {
    const Container& arr = a.type_ == ContainerType::kArray ? a : b;
    const Container& bmp = a.type_ == ContainerType::kArray ? b : a;
    Container out = bmp;
    for (uint16_t v : arr.array_) {
      if (!BitmapTest(out.words_, v)) {
        BitmapSet(out.words_, v);
        ++out.cardinality_;
      }
    }
    return out;
  }
  Container out = MakeBitmap();
  int card = 0;
  for (int w = 0; w < kWordsPerBitmap; ++w) {
    out.words_[w] = a.words_[w] | b.words_[w];
    card += PopCount64(out.words_[w]);
  }
  out.cardinality_ = card;
  return out;
}

Container Container::Xor(const Container& a, const Container& b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  if (a.type_ == ContainerType::kRun || b.type_ == ContainerType::kRun) {
    // Runs are rare on the XOR path; convert and recurse.
    Container ca = a, cb = b;
    if (ca.type_ == ContainerType::kRun) ca.ConvertRunToBest();
    if (cb.type_ == ContainerType::kRun) cb.ConvertRunToBest();
    return Xor(ca, cb);
  }
  if (a.type_ == ContainerType::kArray && b.type_ == ContainerType::kArray) {
    if (a.cardinality_ + b.cardinality_ <= kArrayMaxCardinality) {
      Container out;
      out.array_ = ArrayXor(a.array_, b.array_);
      out.cardinality_ = static_cast<int32_t>(out.array_.size());
      return out;
    }
    Container out = MakeBitmap();
    for (uint16_t v : a.array_) BitmapSet(out.words_, v);
    for (uint16_t v : b.array_) {
      if (BitmapTest(out.words_, v)) {
        BitmapClear(out.words_, v);
      } else {
        BitmapSet(out.words_, v);
      }
    }
    out.cardinality_ = BitmapCount(out.words_);
    out.NormalizeBitmap();
    return out;
  }
  if (a.type_ == ContainerType::kArray || b.type_ == ContainerType::kArray) {
    const Container& arr = a.type_ == ContainerType::kArray ? a : b;
    const Container& bmp = a.type_ == ContainerType::kArray ? b : a;
    Container out = bmp;
    for (uint16_t v : arr.array_) {
      if (BitmapTest(out.words_, v)) {
        BitmapClear(out.words_, v);
        --out.cardinality_;
      } else {
        BitmapSet(out.words_, v);
        ++out.cardinality_;
      }
    }
    if (out.cardinality_ <= kArrayMaxCardinality) out.NormalizeBitmap();
    return out;
  }
  Container out = MakeBitmap();
  int card = 0;
  for (int w = 0; w < kWordsPerBitmap; ++w) {
    out.words_[w] = a.words_[w] ^ b.words_[w];
    card += PopCount64(out.words_[w]);
  }
  out.cardinality_ = card;
  out.NormalizeBitmap();
  return out;
}

Container Container::AndNot(const Container& a, const Container& b) {
  if (a.IsEmpty() || b.IsEmpty()) return a;
  if (a.type_ == ContainerType::kRun) {
    Container ca = a;
    ca.ConvertRunToBest();
    return AndNot(ca, b);
  }
  if (a.type_ == ContainerType::kArray) {
    Container out;
    switch (b.type_) {
      case ContainerType::kArray:
        out.array_ = ArrayAndNot(a.array_, b.array_);
        break;
      case ContainerType::kBitmap:
        out.array_.reserve(a.array_.size());
        for (uint16_t v : a.array_) {
          if (!BitmapTest(b.words_, v)) out.array_.push_back(v);
        }
        break;
      case ContainerType::kRun:
        out.array_.reserve(a.array_.size());
        for (uint16_t v : a.array_) {
          if (!b.ContainsRun(v)) out.array_.push_back(v);
        }
        break;
    }
    out.cardinality_ = static_cast<int32_t>(out.array_.size());
    return out;
  }
  // a is bitmap.
  Container out = a;
  switch (b.type_) {
    case ContainerType::kArray:
      for (uint16_t v : b.array_) {
        if (BitmapTest(out.words_, v)) {
          BitmapClear(out.words_, v);
          --out.cardinality_;
        }
      }
      break;
    case ContainerType::kBitmap: {
      int card = 0;
      for (int w = 0; w < kWordsPerBitmap; ++w) {
        out.words_[w] &= ~b.words_[w];
        card += PopCount64(out.words_[w]);
      }
      out.cardinality_ = card;
      break;
    }
    case ContainerType::kRun:
      for (size_t r = 0; r + 1 < b.array_.size(); r += 2) {
        const uint32_t start = b.array_[r];
        const uint32_t end = start + b.array_[r + 1] + 1;
        BitmapClearRange(out.words_, start, end);
      }
      out.cardinality_ = BitmapCount(out.words_);
      break;
  }
  if (out.cardinality_ <= kArrayMaxCardinality) out.NormalizeBitmap();
  return out;
}

int Container::AndCardinality(const Container& a, const Container& b) {
  if (a.IsEmpty() || b.IsEmpty()) return 0;
  if (a.type_ == ContainerType::kBitmap &&
      b.type_ == ContainerType::kBitmap) {
    int card = 0;
    for (int w = 0; w < kWordsPerBitmap; ++w) {
      card += PopCount64(a.words_[w] & b.words_[w]);
    }
    return card;
  }
  if (a.type_ == ContainerType::kArray ||
      b.type_ == ContainerType::kArray) {
    const Container& arr = a.type_ == ContainerType::kArray ? a : b;
    const Container& other = a.type_ == ContainerType::kArray ? b : a;
    if (other.type_ == ContainerType::kArray) {
      if (UseGallop(arr.array_.size(), other.array_.size())) {
        return ArrayAndCardinalityGalloping(arr.array_, other.array_);
      }
      if (UseGallop(other.array_.size(), arr.array_.size())) {
        return ArrayAndCardinalityGalloping(other.array_, arr.array_);
      }
      size_t i = 0, j = 0;
      int card = 0;
      while (i < arr.array_.size() && j < other.array_.size()) {
        if (arr.array_[i] < other.array_[j]) {
          ++i;
        } else if (arr.array_[i] > other.array_[j]) {
          ++j;
        } else {
          ++card;
          ++i;
          ++j;
        }
      }
      return card;
    }
    int card = 0;
    for (uint16_t v : arr.array_) card += other.Contains(v) ? 1 : 0;
    return card;
  }
  // At least one run operand and no array operand: materialize.
  return And(a, b).Cardinality();
}

bool Container::Intersects(const Container& a, const Container& b) {
  if (a.IsEmpty() || b.IsEmpty()) return false;
  if (a.type_ == ContainerType::kBitmap &&
      b.type_ == ContainerType::kBitmap) {
    for (int w = 0; w < kWordsPerBitmap; ++w) {
      if ((a.words_[w] & b.words_[w]) != 0) return true;
    }
    return false;
  }
  if (a.type_ == ContainerType::kArray ||
      b.type_ == ContainerType::kArray) {
    const Container& arr = a.type_ == ContainerType::kArray ? a : b;
    const Container& other = a.type_ == ContainerType::kArray ? b : a;
    if (other.type_ == ContainerType::kArray) {
      // Gallop through the larger operand, early-exiting on first overlap.
      const bool a_small = arr.array_.size() <= other.array_.size();
      const std::vector<uint16_t>& small =
          a_small ? arr.array_ : other.array_;
      const std::vector<uint16_t>& large =
          a_small ? other.array_ : arr.array_;
      size_t j = 0;
      for (const uint16_t v : small) {
        j = GallopTo(large, j, v);
        if (j == large.size()) return false;
        if (large[j] == v) return true;
      }
      return false;
    }
    for (uint16_t v : arr.array_) {
      if (other.Contains(v)) return true;
    }
    return false;
  }
  return AndCardinality(a, b) > 0;
}

void Container::UnionInto(uint64_t* words) const {
  switch (type_) {
    case ContainerType::kArray:
      for (const uint16_t v : array_) {
        words[v >> 6] |= uint64_t{1} << (v & 63);
      }
      break;
    case ContainerType::kBitmap:
      for (int w = 0; w < kWordsPerBitmap; ++w) words[w] |= words_[w];
      break;
    case ContainerType::kRun:
      for (size_t r = 0; r + 1 < array_.size(); r += 2) {
        const uint32_t start = array_[r];
        BitmapSetRange(words, start, start + array_[r + 1] + 1);
      }
      break;
  }
}

const uint64_t* Container::WordsInto(uint64_t* scratch) const {
  if (type_ == ContainerType::kBitmap) return words_.data();
  std::fill_n(scratch, kWordsPerBitmap, uint64_t{0});
  UnionInto(scratch);
  return scratch;
}

Container Container::FromWords(const uint64_t* words) {
  return FromWordsRange(words, 0, kWordsPerBitmap);
}

Container Container::FromWordsRange(const uint64_t* words, int w_lo,
                                    int w_hi) {
  int card = 0;
  for (int w = w_lo; w < w_hi; ++w) card += PopCount64(words[w]);
  Container c;
  if (card == 0) return c;
  if (card <= kArrayMaxCardinality) {
    c.array_.reserve(card);
    for (int w = w_lo; w < w_hi; ++w) {
      uint64_t word = words[w];
      while (word != 0) {
        c.array_.push_back(
            static_cast<uint16_t>((w << 6) + CountTrailingZeros64(word)));
        word &= word - 1;
      }
    }
    c.cardinality_ = card;
    return c;
  }
  c.type_ = ContainerType::kBitmap;
  c.words_.assign(words, words + kWordsPerBitmap);
  c.cardinality_ = card;
  return c;
}

void Container::OrInPlaceWith(const Container& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  if (type_ == ContainerType::kBitmap) {
    // OR never shrinks a bitmap below the threshold, so no normalization.
    other.UnionInto(words_.data());
    cardinality_ = BitmapCount(words_);
    return;
  }
  if (type_ == ContainerType::kArray &&
      other.type_ == ContainerType::kArray &&
      cardinality_ + other.cardinality_ <= kArrayMaxCardinality) {
    // Merge through a reusable scratch vector, then copy back into the
    // receiver's existing capacity: steady-state, no heap traffic.
    static thread_local std::vector<uint16_t> scratch;
    scratch.clear();
    scratch.reserve(kArrayMaxCardinality);
    std::set_union(array_.begin(), array_.end(), other.array_.begin(),
                   other.array_.end(), std::back_inserter(scratch));
    array_.assign(scratch.begin(), scratch.end());
    cardinality_ = static_cast<int32_t>(array_.size());
    return;
  }
  *this = Or(*this, other);
}

void Container::AndInPlaceWith(const Container& other) {
  if (IsEmpty()) return;
  if (other.IsEmpty()) {
    *this = Container();
    return;
  }
  if (type_ == ContainerType::kBitmap &&
      other.type_ == ContainerType::kBitmap) {
    int card = 0;
    for (int w = 0; w < kWordsPerBitmap; ++w) {
      words_[w] &= other.words_[w];
      card += PopCount64(words_[w]);
    }
    cardinality_ = card;
    if (card == 0) {
      *this = Container();
    } else {
      NormalizeBitmap();
    }
    return;
  }
  *this = And(*this, other);
}

void Container::XorInPlaceWith(const Container& other) {
  if (other.IsEmpty()) return;
  if (IsEmpty()) {
    *this = other;
    return;
  }
  if (type_ == ContainerType::kBitmap &&
      other.type_ == ContainerType::kBitmap) {
    int card = 0;
    for (int w = 0; w < kWordsPerBitmap; ++w) {
      words_[w] ^= other.words_[w];
      card += PopCount64(words_[w]);
    }
    cardinality_ = card;
    if (card == 0) {
      *this = Container();
    } else {
      NormalizeBitmap();
    }
    return;
  }
  *this = Xor(*this, other);
}

void Container::AndNotInPlaceWith(const Container& other) {
  if (IsEmpty() || other.IsEmpty()) return;
  if (type_ == ContainerType::kBitmap) {
    switch (other.type_) {
      case ContainerType::kArray:
        for (const uint16_t v : other.array_) {
          if (BitmapTest(words_, v)) {
            BitmapClear(words_, v);
            --cardinality_;
          }
        }
        break;
      case ContainerType::kBitmap: {
        int card = 0;
        for (int w = 0; w < kWordsPerBitmap; ++w) {
          words_[w] &= ~other.words_[w];
          card += PopCount64(words_[w]);
        }
        cardinality_ = card;
        break;
      }
      case ContainerType::kRun:
        for (size_t r = 0; r + 1 < other.array_.size(); r += 2) {
          const uint32_t start = other.array_[r];
          BitmapClearRange(words_, start, start + other.array_[r + 1] + 1);
        }
        cardinality_ = BitmapCount(words_);
        break;
    }
    if (cardinality_ == 0) {
      *this = Container();
    } else {
      NormalizeBitmap();
    }
    return;
  }
  *this = AndNot(*this, other);
}

int Container::NextValue(uint32_t from) const {
  if (from > 65535) return -1;
  switch (type_) {
    case ContainerType::kArray: {
      auto it = std::lower_bound(array_.begin(), array_.end(),
                                 static_cast<uint16_t>(from));
      return it == array_.end() ? -1 : *it;
    }
    case ContainerType::kBitmap: {
      uint32_t word_idx = from >> 6;
      uint64_t word = words_[word_idx] & (~uint64_t{0} << (from & 63));
      while (true) {
        if (word != 0) {
          return static_cast<int>((word_idx << 6) +
                                  CountTrailingZeros64(word));
        }
        if (++word_idx >= static_cast<uint32_t>(kWordsPerBitmap)) return -1;
        word = words_[word_idx];
      }
    }
    case ContainerType::kRun: {
      for (size_t r = 0; r + 1 < array_.size(); r += 2) {
        const uint32_t start = array_[r];
        const uint32_t end = start + array_[r + 1];
        if (from <= end) {
          return static_cast<int>(std::max(from, start));
        }
      }
      return -1;
    }
  }
  return -1;
}

int Container::Rank(uint16_t value) const {
  switch (type_) {
    case ContainerType::kArray:
      return static_cast<int>(std::upper_bound(array_.begin(), array_.end(),
                                               value) -
                              array_.begin());
    case ContainerType::kBitmap: {
      const int full_words = value >> 6;
      int rank = 0;
      for (int w = 0; w < full_words; ++w) rank += PopCount64(words_[w]);
      const int bit = value & 63;
      const uint64_t mask =
          bit == 63 ? ~uint64_t{0} : ((uint64_t{1} << (bit + 1)) - 1);
      rank += PopCount64(words_[full_words] & mask);
      return rank;
    }
    case ContainerType::kRun: {
      int rank = 0;
      for (size_t r = 0; r + 1 < array_.size(); r += 2) {
        const uint32_t start = array_[r];
        const uint32_t len = array_[r + 1];
        if (value < start) break;
        if (value >= start + len) {
          rank += static_cast<int>(len + 1);
        } else {
          rank += static_cast<int>(value - start + 1);
          break;
        }
      }
      return rank;
    }
  }
  return 0;
}

uint16_t Container::Select(int i) const {
  CHECK_GE(i, 0);
  CHECK_LT(i, cardinality_);
  switch (type_) {
    case ContainerType::kArray:
      return array_[i];
    case ContainerType::kBitmap: {
      int remaining = i;
      for (int w = 0; w < kWordsPerBitmap; ++w) {
        const int count = PopCount64(words_[w]);
        if (remaining < count) {
          uint64_t word = words_[w];
          for (int k = 0; k < remaining; ++k) word &= word - 1;
          return static_cast<uint16_t>((w << 6) + CountTrailingZeros64(word));
        }
        remaining -= count;
      }
      CHECK(false);  // unreachable given i < cardinality_
      return 0;
    }
    case ContainerType::kRun: {
      int remaining = i;
      for (size_t r = 0; r + 1 < array_.size(); r += 2) {
        const int run_card = static_cast<int>(array_[r + 1]) + 1;
        if (remaining < run_card) {
          return static_cast<uint16_t>(array_[r] + remaining);
        }
        remaining -= run_card;
      }
      CHECK(false);
      return 0;
    }
  }
  return 0;
}

uint16_t Container::Minimum() const {
  CHECK(!IsEmpty());
  return Select(0);
}

uint16_t Container::Maximum() const {
  CHECK(!IsEmpty());
  return Select(cardinality_ - 1);
}

bool Container::Equals(const Container& other) const {
  if (cardinality_ != other.cardinality_) return false;
  if (type_ == other.type_) {
    if (type_ == ContainerType::kBitmap) return words_ == other.words_;
    return array_ == other.array_;
  }
  // Different representations can hold the same set.
  return ToArray() == other.ToArray();
}

void Container::RunOptimize() {
  if (IsEmpty()) return;
  // Count runs in the current representation.
  int num_runs = 0;
  int64_t prev = -2;
  std::vector<uint16_t> run_pairs;
  int64_t run_start = -1;
  auto flush = [&run_pairs, &num_runs, &run_start](int64_t last) {
    if (run_start >= 0) {
      run_pairs.push_back(static_cast<uint16_t>(run_start));
      run_pairs.push_back(static_cast<uint16_t>(last - run_start));
      ++num_runs;
    }
  };
  ForEach([&](uint16_t v) {
    if (static_cast<int64_t>(v) != prev + 1) {
      flush(prev);
      run_start = v;
    }
    prev = v;
  });
  flush(prev);

  const size_t run_bytes = run_pairs.size() * sizeof(uint16_t);
  const size_t array_bytes = static_cast<size_t>(cardinality_) * 2;
  const size_t bitmap_bytes = kWordsPerBitmap * 8;
  const size_t current_best = std::min(
      bitmap_bytes, cardinality_ <= kArrayMaxCardinality ? array_bytes
                                                         : bitmap_bytes);
  if (run_bytes < current_best) {
    type_ = ContainerType::kRun;
    array_ = std::move(run_pairs);
    words_.clear();
    words_.shrink_to_fit();
  }
}

size_t Container::SizeInBytes() const {
  switch (type_) {
    case ContainerType::kArray:
    case ContainerType::kRun:
      return array_.size() * sizeof(uint16_t);
    case ContainerType::kBitmap:
      return words_.size() * sizeof(uint64_t);
  }
  return 0;
}

void Container::Serialize(std::string* out) const {
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case ContainerType::kArray:
      PutU32(out, static_cast<uint32_t>(array_.size()));
      out->append(reinterpret_cast<const char*>(array_.data()),
                  array_.size() * sizeof(uint16_t));
      break;
    case ContainerType::kBitmap:
      PutU32(out, static_cast<uint32_t>(cardinality_));
      out->append(reinterpret_cast<const char*>(words_.data()),
                  words_.size() * sizeof(uint64_t));
      break;
    case ContainerType::kRun:
      PutU32(out, static_cast<uint32_t>(array_.size() / 2));
      out->append(reinterpret_cast<const char*>(array_.data()),
                  array_.size() * sizeof(uint16_t));
      break;
  }
}

Result<Container> Container::Deserialize(const uint8_t** cursor,
                                         const uint8_t* end) {
  if (*cursor >= end) return Status::Corruption("container: truncated type");
  const uint8_t type_byte = **cursor;
  ++*cursor;
  if (type_byte > 2) return Status::Corruption("container: bad type byte");
  uint32_t n = 0;
  if (!GetU32(cursor, end, &n)) {
    return Status::Corruption("container: truncated count");
  }
  Container c;
  switch (static_cast<ContainerType>(type_byte)) {
    case ContainerType::kArray: {
      if (n > 65536) return Status::Corruption("container: array too large");
      const size_t bytes = n * sizeof(uint16_t);
      if (static_cast<size_t>(end - *cursor) < bytes) {
        return Status::Corruption("container: truncated array");
      }
      c.array_.resize(n);
      if (bytes > 0) std::memcpy(c.array_.data(), *cursor, bytes);
      *cursor += bytes;
      // The sorted-unique invariant is what every binary search and
      // galloping intersect relies on; accepting an unsorted array would be
      // a silently wrong decode, not a crash.
      for (size_t i = 1; i < c.array_.size(); ++i) {
        if (c.array_[i] <= c.array_[i - 1]) {
          return Status::Corruption("container: array not sorted");
        }
      }
      c.cardinality_ = static_cast<int32_t>(n);
      break;
    }
    case ContainerType::kBitmap: {
      const size_t bytes = kWordsPerBitmap * sizeof(uint64_t);
      if (static_cast<size_t>(end - *cursor) < bytes) {
        return Status::Corruption("container: truncated bitmap");
      }
      if (n > 65536) return Status::Corruption("container: bad cardinality");
      c.type_ = ContainerType::kBitmap;
      c.words_.resize(kWordsPerBitmap);
      std::memcpy(c.words_.data(), *cursor, bytes);
      *cursor += bytes;
      c.cardinality_ = static_cast<int32_t>(n);
      // Unconditional: a wrong stored cardinality silently skews every
      // count downstream, and the popcount pass is one linear sweep of the
      // 8KB bitmap that branch-predicts perfectly -- cheap next to the
      // memcpy above.
      if (BitmapCount(c.words_) != c.cardinality_) {
        return Status::Corruption("container: bitmap cardinality mismatch");
      }
      break;
    }
    case ContainerType::kRun: {
      if (n > 32768) return Status::Corruption("container: too many runs");
      const size_t bytes = n * 2 * sizeof(uint16_t);
      if (static_cast<size_t>(end - *cursor) < bytes) {
        return Status::Corruption("container: truncated runs");
      }
      c.type_ = ContainerType::kRun;
      c.array_.resize(n * 2);
      if (bytes > 0) std::memcpy(c.array_.data(), *cursor, bytes);
      *cursor += bytes;
      int64_t card = 0;
      int64_t prev_end = -1;  // runs must be ordered and non-overlapping
      for (size_t r = 0; r + 1 < c.array_.size(); r += 2) {
        const int64_t start = c.array_[r];
        const int64_t len = c.array_[r + 1];
        if (start <= prev_end) {
          return Status::Corruption("container: runs out of order");
        }
        if (start + len > 65535) {
          return Status::Corruption("container: run exceeds chunk");
        }
        prev_end = start + len;
        card += len + 1;
      }
      if (card > 65536) return Status::Corruption("container: bad run card");
      c.cardinality_ = static_cast<int32_t>(card);
      break;
    }
  }
  return c;
}

}  // namespace expbsi
