#include "roaring/union_accumulator.h"

#include <algorithm>
#include <utility>

#include "common/scratch_arena.h"

namespace expbsi {

static_assert(ScratchArena::kScratchWords ==
                  static_cast<size_t>(Container::kWordsPerBitmap),
              "scratch buffers must hold one full container bitmap");

void UnionAccumulator::Add(const RoaringBitmap& bm) {
  for (const RoaringBitmap::Entry& e : bm.entries_) {
    if (!e.container.IsEmpty()) pending_.push_back({e.key, &e.container});
  }
}

void UnionAccumulator::AddOwned(RoaringBitmap&& bm) {
  owned_.push_back(std::move(bm));
  Add(owned_.back());
}

RoaringBitmap UnionAccumulator::Finish() {
  RoaringBitmap out;
  if (pending_.empty()) {
    owned_.clear();
    return out;
  }
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const Ref& a, const Ref& b) { return a.key < b.key; });
  ScratchArena::Lease lease;
  uint64_t* words = lease.words();
  size_t i = 0;
  while (i < pending_.size()) {
    size_t j = i + 1;
    while (j < pending_.size() && pending_[j].key == pending_[i].key) ++j;
    RoaringBitmap::Entry entry;
    entry.key = pending_[i].key;
    if (j == i + 1) {
      // Sole holder of this key: plain copy, no scratch pass needed.
      entry.container = *pending_[i].container;
    } else {
      std::fill(words, words + ScratchArena::kScratchWords, 0);
      for (size_t k = i; k < j; ++k) pending_[k].container->UnionInto(words);
      entry.container = Container::FromWords(words);
    }
    out.entries_.push_back(std::move(entry));
    i = j;
  }
  pending_.clear();
  owned_.clear();
  return out;
}

RoaringBitmap UnionMany(const std::vector<const RoaringBitmap*>& inputs) {
  UnionAccumulator acc;
  for (const RoaringBitmap* bm : inputs) {
    if (bm != nullptr) acc.Add(*bm);
  }
  return acc.Finish();
}

}  // namespace expbsi
