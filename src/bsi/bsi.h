#ifndef EXPBSI_BSI_BSI_H_
#define EXPBSI_BSI_BSI_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "roaring/roaring_bitmap.h"

namespace expbsi {

// Bit-sliced index (O'Neil & Quass 1997; Rinfret et al. 2001) over Roaring
// bitmaps: an ordered list of bit-slices B^{s-1}, ..., B^1, B^0 representing a
// non-negative integer value per position (the position is the paper's
// encoded analysis-unit position, §3.4).
//
// Zero-value convention (paper §2.3): a value of zero is "not present".
// Storing value 0 at a position is identical to not storing the position at
// all, and comparison operators only report positions where BOTH operands are
// present. The set of present positions is cached as the existence bitmap
// (`existence()`), which always equals the OR of all slices.
class Bsi {
 public:
  Bsi() = default;

  // Builds from (position, value) pairs. Zero values are skipped; duplicate
  // positions are not allowed.
  static Bsi FromPairs(std::vector<std::pair<uint32_t, uint64_t>> pairs);

  // Builds from a dense vector: position i gets values[i] (zeros skipped).
  static Bsi FromValues(const std::vector<uint64_t>& values);

  // Builds a binary BSI (single slice) from a set of positions, i.e. the
  // indicator column "1 at every position in `positions`".
  static Bsi FromBinary(RoaringBitmap positions);

  // Adopts already-computed slices and their existence bitmap (the kernel
  // output path of the multi-operand aggregates). The caller guarantees
  // `existence` equals the OR of all slices; empty top slices are trimmed.
  static Bsi FromSlices(std::vector<RoaringBitmap> slices,
                        RoaringBitmap existence);

  // --- Inspection -----------------------------------------------------------

  // Value at `pos`; 0 means not present.
  uint64_t Get(uint32_t pos) const;
  bool Exists(uint32_t pos) const { return existence_.Contains(pos); }

  // Bitmap of positions with a non-zero value.
  const RoaringBitmap& existence() const { return existence_; }

  // Number of non-zero positions.
  uint64_t Cardinality() const { return existence_.Cardinality(); }
  bool IsEmpty() const { return existence_.IsEmpty(); }

  int num_slices() const { return static_cast<int>(slices_.size()); }
  // Slice i (bit i); i must be < num_slices().
  const RoaringBitmap& slice(int i) const { return slices_[i]; }

  // Largest representable bit set anywhere, i.e. values < 2^num_slices().

  bool Equals(const Bsi& other) const;
  friend bool operator==(const Bsi& a, const Bsi& b) { return a.Equals(b); }

  // Heap bytes across all slices plus the existence bitmap.
  size_t SizeInBytes() const;

  // --- Arithmetic (paper §2.3) ---------------------------------------------

  // S[j] = X[j] + Y[j] (positions missing from one operand contribute 0).
  // Dispatches on the MultiOpKernel flag (bsi_aggregate.h): the default
  // multi-operand kernel routes through the word-level carry-save adder,
  // the legacy flag selects AddPairwise below.
  static Bsi Add(const Bsi& x, const Bsi& y);

  // The legacy slice-by-slice ripple-carry adder (allocating container ops
  // per slice). Kept as the differential foil and the ablation baseline.
  static Bsi AddPairwise(const Bsi& x, const Bsi& y);

  // *this = Add(*this, other): accumulation form for shift-add loops.
  void AddInPlace(const Bsi& other);

  // S[j] = X[j] - Y[j] where X[j] >= Y[j]; positions where Y[j] > X[j] are
  // clamped to zero (values are non-negative by convention), and positions
  // whose difference is zero become absent.
  static Bsi Subtract(const Bsi& x, const Bsi& y);

  // S[j] = X[j] * Y[j]. General multiplication is O(s_x * s_y); the paper
  // only needs one binary operand in production (MultiplyByBinary below).
  static Bsi Multiply(const Bsi& x, const Bsi& y);

  // S[j] = X[j] if mask contains j else absent. This is the paper's
  // "value * (predicate)" filter step, linear in the slice count.
  static Bsi MultiplyByBinary(const Bsi& x, const RoaringBitmap& mask);

  // S[j] = X[j] + k for present positions (absent stay absent); k >= 0.
  static Bsi AddScalar(const Bsi& x, uint64_t k);

  // S[j] = X[j] * k (shift-add over k's set bits; k = 0 yields empty).
  static Bsi MultiplyScalar(const Bsi& x, uint64_t k);

  // Left-shifts all values by `bits` (multiply by 2^bits).
  static Bsi ShiftLeft(const Bsi& x, int bits);

  // --- Comparisons between two BSIs (Algorithms 1-3 + derived) -------------
  // All return the set of positions j where BOTH X[j] and Y[j] are present
  // and the comparison holds. Implemented by the kernels in bsi_compare.h
  // (word-level with runtime SIMD dispatch by default; the legacy pairwise
  // path stays selectable via the MultiOpKernel flag).

  static RoaringBitmap Lt(const Bsi& x, const Bsi& y);   // Algorithm 1
  static RoaringBitmap Eq(const Bsi& x, const Bsi& y);   // Algorithm 2
  static RoaringBitmap Ne(const Bsi& x, const Bsi& y);   // Algorithm 3
  static RoaringBitmap Gt(const Bsi& x, const Bsi& y) { return Lt(y, x); }
  static RoaringBitmap Le(const Bsi& x, const Bsi& y);
  static RoaringBitmap Ge(const Bsi& x, const Bsi& y) { return Le(y, x); }

  // --- Range searches against a constant (O'Neil & Quass) ------------------
  // Return present positions whose value compares against k.

  RoaringBitmap RangeEq(uint64_t k) const;
  RoaringBitmap RangeNe(uint64_t k) const;
  RoaringBitmap RangeLt(uint64_t k) const;
  RoaringBitmap RangeLe(uint64_t k) const;
  RoaringBitmap RangeGt(uint64_t k) const;
  RoaringBitmap RangeGe(uint64_t k) const;
  // Present positions with lo <= value <= hi.
  RoaringBitmap RangeBetween(uint64_t lo, uint64_t hi) const;

  // --- In-BSI aggregates (single numeric result) ----------------------------

  // Sum of all values: sum_i 2^i * |B^i|.
  uint64_t Sum() const;

  // Sum restricted to positions in `mask` (computed via AndCardinality,
  // without materializing the filtered BSI).
  uint64_t SumUnderMask(const RoaringBitmap& mask) const;

  // Mean over present positions; 0 if empty.
  double Average() const;

  // Smallest / largest present value; BSI must be non-empty.
  uint64_t MinValue() const;
  uint64_t MaxValue() const;

  // Value at quantile q in [0, 1] over present values (q=0.5 is the median:
  // the smallest value v with rank >= ceil(q * n)). BSI must be non-empty.
  uint64_t Quantile(double q) const;
  uint64_t Median() const { return Quantile(0.5); }

  // --- Maintenance ----------------------------------------------------------

  // Point update; value 0 removes the position.
  void SetValue(uint32_t pos, uint64_t value);

  // Merges `delta` into this BSI so that afterwards every position holds
  // this[j] + delta[j]. When the existence bitmaps are disjoint (the common
  // ingestion case: late-arriving analysis units appended to a live
  // segment), the merge is a word-level OR per slice -- no carries, no
  // rebuild. Overlapping positions fall back to the carry-save adder.
  void MergeAppend(const Bsi& delta);

  // Run-optimizes every slice (storage form).
  void RunOptimize();

  // Serialization: [num_slices:u32][ebm block][slice blocks], each block
  // length-prefixed with u32.
  void Serialize(std::string* out) const;
  std::string SerializeToString() const;
  static Result<Bsi> Deserialize(std::string_view bytes);

  // Dense decode: vector of (position, value), ascending positions.
  std::vector<std::pair<uint32_t, uint64_t>> ToPairs() const;

 private:
  // Drops empty top slices and rebuilds nothing else; callers must keep
  // existence_ consistent.
  void TrimTopSlices();

  std::vector<RoaringBitmap> slices_;  // slices_[i] = bit i
  RoaringBitmap existence_;            // OR of all slices (cached)
};

}  // namespace expbsi

#endif  // EXPBSI_BSI_BSI_H_
