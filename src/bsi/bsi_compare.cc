#include "bsi/bsi_compare.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/bit_util.h"
#include "common/scratch_arena.h"
#include "common/word_ops.h"
#include "obs/metrics.h"

namespace expbsi {
namespace bsi_compare {
namespace {

constexpr size_t kWords = WordOps::kWords;

// Chunks with at most this many both-present positions skip the word engine
// and probe values per position instead: reconstructing a handful of values
// with binary container probes is cheaper than sweeping 8 KiB buffers per
// slice, and the probe count rides the galloping array intersects that
// produced the (small) position set in the first place.
constexpr int kSparseCompareMax = 512;

// Shared empty bitmap for "slice beyond the top" accesses (pairwise path).
const RoaringBitmap& EmptyBitmap() {
  static const RoaringBitmap* empty = new RoaringBitmap();
  return *empty;
}

const RoaringBitmap& SliceOrEmpty(const Bsi& x, int i) {
  return i < x.num_slices() ? x.slice(i) : EmptyBitmap();
}

// Monotone cursor over one BSI's slice container lists: At(s, key) returns
// the container of slice s in chunk `key` (or nullptr), amortized O(1) as
// long as keys are requested in ascending order. This is how the word
// kernels find each chunk's slice containers without per-chunk binary
// searches.
class SliceCursor {
 public:
  explicit SliceCursor(const Bsi& b) : b_(b), cur_(b.num_slices(), 0) {}

  const Container* At(int s, uint16_t key) {
    const RoaringBitmap& slice = b_.slice(s);
    int& c = cur_[s];
    while (c < slice.NumContainers() && slice.KeyAt(c) < key) ++c;
    if (c < slice.NumContainers() && slice.KeyAt(c) == key) {
      return &slice.ContainerAt(c);
    }
    return nullptr;
  }

 private:
  const Bsi& b_;
  std::vector<int> cur_;
};

// Read-only word view of a container: dense containers lend their bitmap
// payload directly; array/run containers expand into `scratch` (re-zeroed
// by WordsInto, so the lease can be reused across calls).
const uint64_t* WordsOf(const Container& c, ScratchArena::Lease& scratch) {
  return c.WordsInto(scratch.words());
}

void EmitWords(RoaringBitmap* out, uint16_t key, const uint64_t* words) {
  Container c = Container::FromWords(words);
  if (!c.IsEmpty()) out->AppendContainer(key, std::move(c));
}

// Reconstructs the value at position `low` from per-chunk slice containers.
uint64_t ProbeValue(const std::vector<const Container*>& slices, int n,
                    uint16_t low) {
  uint64_t v = 0;
  for (int i = 0; i < n; ++i) {
    if (slices[i] != nullptr && slices[i]->Contains(low)) {
      v |= uint64_t{1} << i;
    }
  }
  return v;
}

struct CompareCounters {
  uint64_t chunks_word = 0;
  uint64_t chunks_sparse = 0;
  uint64_t word_passes = 0;
  uint64_t probes = 0;

  void PublishCompare() const {
    static obs::Counter& m_calls = obs::GetCounter("kernel.compare_calls");
    static obs::Counter& m_word =
        obs::GetCounter("kernel.compare_chunks_word");
    static obs::Counter& m_sparse =
        obs::GetCounter("kernel.compare_chunks_sparse");
    static obs::Counter& m_passes =
        obs::GetCounter("kernel.compare_word_passes");
    static obs::Counter& m_probes = obs::GetCounter("kernel.compare_probes");
    m_calls.Add();
    m_word.Add(chunks_word);
    m_sparse.Add(chunks_sparse);
    m_passes.Add(word_passes);
    m_probes.Add(probes);
  }

  void PublishRange() const {
    static obs::Counter& m_calls = obs::GetCounter("kernel.range_calls");
    static obs::Counter& m_word = obs::GetCounter("kernel.range_chunks_word");
    static obs::Counter& m_sparse =
        obs::GetCounter("kernel.range_chunks_sparse");
    static obs::Counter& m_passes =
        obs::GetCounter("kernel.range_word_passes");
    static obs::Counter& m_probes = obs::GetCounter("kernel.range_probes");
    m_calls.Add();
    m_word.Add(chunks_word);
    m_sparse.Add(chunks_sparse);
    m_passes.Add(word_passes);
    m_probes.Add(probes);
  }
};

}  // namespace

RoaringBitmap CompareWord(const Bsi& x, const Bsi& y, CmpOp op) {
  RoaringBitmap out;
  if (x.IsEmpty() || y.IsEmpty()) return out;
  const WordOps& ops = ActiveWordOps();
  const RoaringBitmap& ex = x.existence();
  const RoaringBitmap& ey = y.existence();
  const int sx = x.num_slices();
  const int sy = y.num_slices();
  const int s = std::max(sx, sy);
  SliceCursor xcur(x);
  SliceCursor ycur(y);
  std::vector<const Container*> xc(s);
  std::vector<const Container*> yc(s);
  ScratchArena::Lease maskbuf, accbuf, xbuf, ybuf, resbuf;
  std::vector<uint16_t> hits;
  CompareCounters counters;

  int ia = 0;
  int ib = 0;
  while (ia < ex.NumContainers() && ib < ey.NumContainers()) {
    if (ex.KeyAt(ia) < ey.KeyAt(ib)) {
      ++ia;
      continue;
    }
    if (ey.KeyAt(ib) < ex.KeyAt(ia)) {
      ++ib;
      continue;
    }
    const uint16_t key = ex.KeyAt(ia);
    // Both-present mask for the chunk; And() gallops internally when the
    // container mix is skewed (big bitmap vs small array).
    Container both = Container::And(ex.ContainerAt(ia), ey.ContainerAt(ib));
    ++ia;
    ++ib;
    if (both.IsEmpty()) continue;
    for (int i = 0; i < s; ++i) {
      xc[i] = i < sx ? xcur.At(i, key) : nullptr;
      yc[i] = i < sy ? ycur.At(i, key) : nullptr;
    }

    if (both.Cardinality() <= kSparseCompareMax) {
      ++counters.chunks_sparse;
      counters.probes += static_cast<uint64_t>(both.Cardinality());
      hits.clear();
      both.ForEach([&](uint16_t v) {
        const uint64_t xv = ProbeValue(xc, sx, v);
        const uint64_t yv = ProbeValue(yc, sy, v);
        bool pass = false;
        switch (op) {
          case CmpOp::kLt:
            pass = xv < yv;
            break;
          case CmpOp::kLe:
            pass = xv <= yv;
            break;
          case CmpOp::kEq:
            pass = xv == yv;
            break;
          case CmpOp::kNe:
            pass = xv != yv;
            break;
        }
        if (pass) hits.push_back(v);
      });
      if (!hits.empty()) {
        out.AppendContainer(
            key, Container::FromSorted(hits.data(),
                                       static_cast<int>(hits.size())));
      }
      continue;
    }

    ++counters.chunks_word;
    const uint64_t* mask = WordsOf(both, maskbuf);
    uint64_t* acc = accbuf.words();
    if (op == CmpOp::kLt || op == CmpOp::kLe) {
      // Algorithm 1, ascending slices, all in word space. kLe runs the same
      // recurrence with the operands swapped (computing Gt) and complements
      // against the mask at the end.
      const bool swap = op == CmpOp::kLe;
      std::fill_n(acc, kWords, 0);
      for (int i = 0; i < s; ++i) {
        const Container* cx = swap ? yc[i] : xc[i];
        const Container* cy = swap ? xc[i] : yc[i];
        if (cx == nullptr && cy == nullptr) continue;
        ++counters.word_passes;
        if (cx == nullptr) {
          ops.or_pass(acc, WordsOf(*cy, ybuf));  // X^i = 0: L <- Y^i | L
        } else if (cy == nullptr) {
          ops.andnot_pass(acc, WordsOf(*cx, xbuf));  // Y^i = 0: L <- L & ~X^i
        } else {
          ops.lt_pass(acc, WordsOf(*cx, xbuf), WordsOf(*cy, ybuf));
        }
      }
      if (op == CmpOp::kLt) {
        ops.and_pass(acc, mask);
        EmitWords(&out, key, acc);
      } else {
        std::memcpy(resbuf.words(), mask, kWords * sizeof(uint64_t));
        ops.andnot_pass(resbuf.words(), acc);
        EmitWords(&out, key, resbuf.words());
      }
      continue;
    }

    // Algorithm 2/3: peel differing slices off the both-present mask, with
    // a chunk-level early exit the moment eq dies.
    std::memcpy(acc, mask, kWords * sizeof(uint64_t));
    bool alive = true;
    for (int i = 0; i < s && alive; ++i) {
      if (xc[i] == nullptr && yc[i] == nullptr) continue;
      ++counters.word_passes;
      if (xc[i] == nullptr) {
        alive = ops.andnot_pass(acc, WordsOf(*yc[i], ybuf));
      } else if (yc[i] == nullptr) {
        alive = ops.andnot_pass(acc, WordsOf(*xc[i], xbuf));
      } else {
        alive = ops.eq_pass(acc, WordsOf(*xc[i], xbuf), WordsOf(*yc[i], ybuf));
      }
    }
    if (op == CmpOp::kEq) {
      if (alive) EmitWords(&out, key, acc);
    } else {  // kNe = mask & ~eq
      if (!alive) {
        out.AppendContainer(key, std::move(both));
      } else {
        std::memcpy(resbuf.words(), mask, kWords * sizeof(uint64_t));
        ops.andnot_pass(resbuf.words(), acc);
        EmitWords(&out, key, resbuf.words());
      }
    }
  }
  counters.PublishCompare();
  return out;
}

RoaringBitmap ComparePairwise(const Bsi& x, const Bsi& y, CmpOp op) {
  switch (op) {
    case CmpOp::kLt: {
      // Algorithm 1, ascending slices:
      //   L <- [(Y^i OR L) ANDNOT X^i] OR (Y^i AND L)
      const int s = std::max(x.num_slices(), y.num_slices());
      RoaringBitmap lt;
      for (int i = 0; i < s; ++i) {
        const RoaringBitmap& xi = SliceOrEmpty(x, i);
        const RoaringBitmap& yi = SliceOrEmpty(y, i);
        RoaringBitmap keep = RoaringBitmap::And(yi, lt);
        RoaringBitmap gain =
            RoaringBitmap::AndNot(RoaringBitmap::Or(yi, lt), xi);
        lt = RoaringBitmap::Or(gain, keep);
      }
      lt.AndInPlace(x.existence());
      lt.AndInPlace(y.existence());
      return lt;
    }
    case CmpOp::kLe: {
      RoaringBitmap both =
          RoaringBitmap::And(x.existence(), y.existence());
      both.AndNotInPlace(ComparePairwise(y, x, CmpOp::kLt));
      return both;
    }
    case CmpOp::kEq: {
      // Algorithm 2: start from X's existence, peel off differing slices.
      RoaringBitmap eq = x.existence();
      const int s = std::max(x.num_slices(), y.num_slices());
      for (int i = 0; i < s && !eq.IsEmpty(); ++i) {
        eq.AndNotInPlace(
            RoaringBitmap::Xor(SliceOrEmpty(x, i), SliceOrEmpty(y, i)));
      }
      return eq;
    }
    case CmpOp::kNe: {
      // Algorithm 3: OR of slice XORs, restricted to both-present positions.
      RoaringBitmap ne;
      const int s = std::max(x.num_slices(), y.num_slices());
      for (int i = 0; i < s; ++i) {
        ne.OrInPlace(
            RoaringBitmap::Xor(SliceOrEmpty(x, i), SliceOrEmpty(y, i)));
      }
      ne.AndInPlace(x.existence());
      ne.AndInPlace(y.existence());
      return ne;
    }
  }
  return RoaringBitmap();
}

RoaringBitmap RangeWord(const Bsi& x, RangeOp op, uint64_t k) {
  RoaringBitmap out;
  if (x.IsEmpty()) return out;
  if (k == 0) {
    // Zero means absent: every present value is > 0.
    switch (op) {
      case RangeOp::kNe:
      case RangeOp::kGt:
      case RangeOp::kGe:
        return x.existence();
      default:
        return out;
    }
  }
  const int s = x.num_slices();
  if (BitWidth64(k) > s) {
    // k is above every representable value: all present values are < k.
    switch (op) {
      case RangeOp::kLt:
      case RangeOp::kLe:
      case RangeOp::kNe:
        return x.existence();
      default:
        return out;
    }
  }
  const WordOps& ops = ActiveWordOps();
  const bool need_lt = op == RangeOp::kLt || op == RangeOp::kLe;
  const bool need_gt = op == RangeOp::kGt || op == RangeOp::kGe;
  SliceCursor cur(x);
  std::vector<const Container*> sc(s);
  ScratchArena::Lease maskbuf, eqbuf, accbuf, sbuf, resbuf;
  std::vector<uint16_t> hits;
  CompareCounters counters;
  const RoaringBitmap& ex = x.existence();

  for (int c = 0; c < ex.NumContainers(); ++c) {
    const uint16_t key = ex.KeyAt(c);
    const Container& exc = ex.ContainerAt(c);
    for (int i = 0; i < s; ++i) sc[i] = cur.At(i, key);

    if (exc.Cardinality() <= kSparseCompareMax) {
      ++counters.chunks_sparse;
      counters.probes += static_cast<uint64_t>(exc.Cardinality());
      hits.clear();
      exc.ForEach([&](uint16_t v) {
        const uint64_t val = ProbeValue(sc, s, v);
        bool pass = false;
        switch (op) {
          case RangeOp::kEq:
            pass = val == k;
            break;
          case RangeOp::kNe:
            pass = val != k;
            break;
          case RangeOp::kLt:
            pass = val < k;
            break;
          case RangeOp::kLe:
            pass = val <= k;
            break;
          case RangeOp::kGt:
            pass = val > k;
            break;
          case RangeOp::kGe:
            pass = val >= k;
            break;
        }
        if (pass) hits.push_back(v);
      });
      if (!hits.empty()) {
        out.AppendContainer(
            key, Container::FromSorted(hits.data(),
                                       static_cast<int>(hits.size())));
      }
      continue;
    }

    // Top-down three-way partition in word space, tracking only the
    // accumulator the operator needs; early exit the moment eq dies.
    ++counters.chunks_word;
    const uint64_t* mask = WordsOf(exc, maskbuf);
    uint64_t* eq = eqbuf.words();
    std::memcpy(eq, mask, kWords * sizeof(uint64_t));
    uint64_t* acc = accbuf.words();  // lt for kLt/kLe, gt for kGt/kGe
    if (need_lt || need_gt) std::fill_n(acc, kWords, 0);
    bool alive = true;
    for (int i = s - 1; i >= 0 && alive; --i) {
      const uint64_t* sw = sc[i] != nullptr ? WordsOf(*sc[i], sbuf) : nullptr;
      if (((k >> i) & 1) != 0) {
        if (sw == nullptr) {
          // Slice is all-zero but k's bit is set: every survivor is < k.
          if (need_lt) ops.or_pass(acc, eq);
          alive = false;
          break;
        }
        ++counters.word_passes;
        alive = need_lt ? ops.scalar_one_pass(acc, eq, sw)
                        : ops.and_pass(eq, sw);
      } else {
        if (sw == nullptr) continue;  // all-zero slice, clear bit: no-op
        ++counters.word_passes;
        alive = need_gt ? ops.scalar_zero_pass(acc, eq, sw)
                        : ops.andnot_pass(eq, sw);
      }
    }
    switch (op) {
      case RangeOp::kLt:
      case RangeOp::kGt:
        EmitWords(&out, key, acc);
        break;
      case RangeOp::kLe:
      case RangeOp::kGe:
        if (alive) ops.or_pass(acc, eq);
        EmitWords(&out, key, acc);
        break;
      case RangeOp::kEq:
        if (alive) EmitWords(&out, key, eq);
        break;
      case RangeOp::kNe:
        if (!alive) {
          out.AppendContainer(key, exc);  // eq died: every position differs
        } else {
          std::memcpy(resbuf.words(), mask, kWords * sizeof(uint64_t));
          ops.andnot_pass(resbuf.words(), eq);
          EmitWords(&out, key, resbuf.words());
        }
        break;
    }
  }
  counters.PublishRange();
  return out;
}

namespace {

// Shared top-down scan for the legacy constant comparisons: partitions the
// present positions of x into {value < k}, {value == k}, {value > k}.
struct ScalarCompareResult {
  RoaringBitmap lt;
  RoaringBitmap eq;
  RoaringBitmap gt;
};

ScalarCompareResult ScalarCompare(const Bsi& x, uint64_t k) {
  ScalarCompareResult r;
  r.eq = x.existence();
  const int top = std::max(x.num_slices(), BitWidth64(k));
  for (int i = top - 1; i >= 0 && !r.eq.IsEmpty(); --i) {
    const RoaringBitmap& si = SliceOrEmpty(x, i);
    if (((k >> i) & 1) != 0) {
      r.lt.OrInPlace(RoaringBitmap::AndNot(r.eq, si));
      r.eq.AndInPlace(si);
    } else {
      r.gt.OrInPlace(RoaringBitmap::And(r.eq, si));
      r.eq.AndNotInPlace(si);
    }
  }
  return r;
}

}  // namespace

RoaringBitmap RangePairwise(const Bsi& x, RangeOp op, uint64_t k) {
  switch (op) {
    case RangeOp::kEq: {
      if (k == 0) return RoaringBitmap();  // zero means absent
      return ScalarCompare(x, k).eq;
    }
    case RangeOp::kNe: {
      if (k == 0) return x.existence();
      RoaringBitmap out = x.existence();
      out.AndNotInPlace(ScalarCompare(x, k).eq);
      return out;
    }
    case RangeOp::kLt: {
      if (k == 0) return RoaringBitmap();
      return ScalarCompare(x, k).lt;
    }
    case RangeOp::kLe: {
      if (k == 0) return RoaringBitmap();
      ScalarCompareResult r = ScalarCompare(x, k);
      r.lt.OrInPlace(r.eq);
      return std::move(r.lt);
    }
    case RangeOp::kGt: {
      if (k == 0) return x.existence();
      return ScalarCompare(x, k).gt;
    }
    case RangeOp::kGe: {
      if (k == 0) return x.existence();
      ScalarCompareResult r = ScalarCompare(x, k);
      r.gt.OrInPlace(r.eq);
      return std::move(r.gt);
    }
  }
  return RoaringBitmap();
}

RoaringBitmap RangeBetweenPairwise(const Bsi& x, uint64_t lo, uint64_t hi) {
  // The legacy double scan: two full ScalarCompare passes plus an AND.
  RoaringBitmap out = RangePairwise(x, RangeOp::kGe, lo);
  out.AndInPlace(RangePairwise(x, RangeOp::kLe, hi));
  return out;
}

RoaringBitmap RangeBetweenWord(const Bsi& x, uint64_t lo, uint64_t hi) {
  RoaringBitmap out;
  if (x.IsEmpty() || hi == 0) return out;
  // Degenerate bounds collapse to a single-sided scan.
  if (lo <= 1) return RangeWord(x, RangeOp::kLe, hi);  // values are >= 1
  const int s = x.num_slices();
  if (BitWidth64(lo) > s) return out;  // no value reaches lo
  if (BitWidth64(hi) > s) return RangeWord(x, RangeOp::kGe, lo);

  const WordOps& ops = ActiveWordOps();
  SliceCursor cur(x);
  std::vector<const Container*> sc(s);
  ScratchArena::Lease maskbuf, eqlobuf, eqhibuf, ltlobuf, gthibuf, sbuf,
      resbuf;
  std::vector<uint16_t> hits;
  CompareCounters counters;
  const RoaringBitmap& ex = x.existence();

  for (int c = 0; c < ex.NumContainers(); ++c) {
    const uint16_t key = ex.KeyAt(c);
    const Container& exc = ex.ContainerAt(c);
    for (int i = 0; i < s; ++i) sc[i] = cur.At(i, key);

    if (exc.Cardinality() <= kSparseCompareMax) {
      ++counters.chunks_sparse;
      counters.probes += static_cast<uint64_t>(exc.Cardinality());
      hits.clear();
      exc.ForEach([&](uint16_t v) {
        const uint64_t val = ProbeValue(sc, s, v);
        if (lo <= val && val <= hi) hits.push_back(v);
      });
      if (!hits.empty()) {
        out.AppendContainer(
            key, Container::FromSorted(hits.data(),
                                       static_cast<int>(hits.size())));
      }
      continue;
    }

    // Single-pass three-way partition against BOTH bounds: track
    // (lt_lo, eq_lo) against lo and (gt_hi, eq_hi) against hi down the same
    // slice walk, then combine as mask & ~lt_lo & ~gt_hi.
    ++counters.chunks_word;
    const uint64_t* mask = WordsOf(exc, maskbuf);
    uint64_t* eq_lo = eqlobuf.words();
    uint64_t* eq_hi = eqhibuf.words();
    uint64_t* lt_lo = ltlobuf.words();
    uint64_t* gt_hi = gthibuf.words();
    std::memcpy(eq_lo, mask, kWords * sizeof(uint64_t));
    std::memcpy(eq_hi, mask, kWords * sizeof(uint64_t));
    std::fill_n(lt_lo, kWords, 0);
    std::fill_n(gt_hi, kWords, 0);
    bool alive_lo = true;
    bool alive_hi = true;
    for (int i = s - 1; i >= 0 && (alive_lo || alive_hi); --i) {
      const uint64_t* sw = sc[i] != nullptr ? WordsOf(*sc[i], sbuf) : nullptr;
      if (alive_lo) {
        if (((lo >> i) & 1) != 0) {
          if (sw == nullptr) {
            ops.or_pass(lt_lo, eq_lo);
            alive_lo = false;
          } else {
            ++counters.word_passes;
            alive_lo = ops.scalar_one_pass(lt_lo, eq_lo, sw);
          }
        } else if (sw != nullptr) {
          ++counters.word_passes;
          alive_lo = ops.andnot_pass(eq_lo, sw);  // gt_lo is never needed
        }
      }
      if (alive_hi) {
        if (((hi >> i) & 1) != 0) {
          if (sw == nullptr) {
            alive_hi = false;  // eq_hi &= 0; gt_hi gains nothing
          } else {
            ++counters.word_passes;
            alive_hi = ops.and_pass(eq_hi, sw);  // lt_hi is never needed
          }
        } else if (sw != nullptr) {
          ++counters.word_passes;
          alive_hi = ops.scalar_zero_pass(gt_hi, eq_hi, sw);
        }
      }
    }
    ops.mask_andnot2_pass(resbuf.words(), mask, lt_lo, gt_hi);
    EmitWords(&out, key, resbuf.words());
  }
  counters.PublishRange();
  return out;
}

}  // namespace bsi_compare
}  // namespace expbsi
