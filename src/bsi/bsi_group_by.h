#ifndef EXPBSI_BSI_BSI_GROUP_BY_H_
#define EXPBSI_BSI_BSI_GROUP_BY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "bsi/bsi.h"

namespace expbsi {

// Group-by over a bucket-id BSI (paper §4.2: "sum the filtered-value by
// bucket-id, generating 1024 bucket-values for each segment").
//
// The bucket column stores bucket_id + 1 (the zero-is-absent convention means
// bucket 0 could not otherwise be represented). Grouping radix-partitions
// `universe` by the bucket BSI's slices top-down, so the cost is
// O(2^ceil(log2 buckets)) bitmap operations rather than one comparison per
// bucket.

// Invokes visit(bucket_id, members) for every bucket with a non-empty
// intersection of `universe` and the bucket partition. bucket_id is 0-based.
void PartitionByBucket(
    const Bsi& bucket_plus_one, int num_buckets, const RoaringBitmap& universe,
    const std::function<void(int, const RoaringBitmap&)>& visit);

// Per-bucket sum of `value` over positions in `universe`. Returns
// num_buckets entries (missing buckets are 0).
std::vector<uint64_t> GroupSumByBucket(const Bsi& value,
                                       const Bsi& bucket_plus_one,
                                       int num_buckets,
                                       const RoaringBitmap& universe);

// Per-bucket count of positions in `universe`.
std::vector<uint64_t> GroupCountByBucket(const Bsi& bucket_plus_one,
                                         int num_buckets,
                                         const RoaringBitmap& universe);

}  // namespace expbsi

#endif  // EXPBSI_BSI_BSI_GROUP_BY_H_
