#include "bsi/bsi.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>

#include "bsi/bsi_aggregate.h"
#include "bsi/bsi_compare.h"
#include "common/bit_util.h"
#include "common/check.h"
#include "obs/metrics.h"

namespace expbsi {
namespace {

// Shared empty bitmap for "slice beyond the top" accesses.
const RoaringBitmap& EmptyBitmap() {
  static const RoaringBitmap* empty = new RoaringBitmap();
  return *empty;
}

const RoaringBitmap& SliceOrEmpty(const Bsi& x, int i) {
  return i < x.num_slices() ? x.slice(i) : EmptyBitmap();
}

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

Bsi Bsi::FromPairs(std::vector<std::pair<uint32_t, uint64_t>> pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  Bsi out;
  uint64_t all_bits = 0;
  std::vector<uint32_t> present;
  present.reserve(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    if (pairs[i].second == 0) continue;
    CHECK(present.empty() || present.back() != pairs[i].first);
    present.push_back(pairs[i].first);
    all_bits |= pairs[i].second;
  }
  const int num_slices = BitWidth64(all_bits);
  std::vector<std::vector<uint32_t>> slice_positions(num_slices);
  for (const auto& [pos, value] : pairs) {
    uint64_t v = value;
    while (v != 0) {
      const int bit = CountTrailingZeros64(v);
      slice_positions[bit].push_back(pos);
      v &= v - 1;
    }
  }
  out.slices_.reserve(num_slices);
  for (int i = 0; i < num_slices; ++i) {
    out.slices_.push_back(RoaringBitmap::FromSorted(slice_positions[i]));
  }
  out.existence_ = RoaringBitmap::FromSorted(present);
  return out;
}

Bsi Bsi::FromValues(const std::vector<uint64_t>& values) {
  std::vector<std::pair<uint32_t, uint64_t>> pairs;
  pairs.reserve(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    if (values[i] != 0) {
      pairs.emplace_back(static_cast<uint32_t>(i), values[i]);
    }
  }
  return FromPairs(std::move(pairs));
}

Bsi Bsi::FromSlices(std::vector<RoaringBitmap> slices,
                    RoaringBitmap existence) {
  Bsi out;
  out.slices_ = std::move(slices);
  out.existence_ = std::move(existence);
  out.TrimTopSlices();
  return out;
}

Bsi Bsi::FromBinary(RoaringBitmap positions) {
  Bsi out;
  if (!positions.IsEmpty()) {
    out.existence_ = positions;
    out.slices_.push_back(std::move(positions));
  }
  return out;
}

uint64_t Bsi::Get(uint32_t pos) const {
  if (!existence_.Contains(pos)) return 0;
  uint64_t value = 0;
  for (size_t i = 0; i < slices_.size(); ++i) {
    if (slices_[i].Contains(pos)) value |= uint64_t{1} << i;
  }
  return value;
}

bool Bsi::Equals(const Bsi& other) const {
  if (slices_.size() != other.slices_.size()) return false;
  for (size_t i = 0; i < slices_.size(); ++i) {
    if (!slices_[i].Equals(other.slices_[i])) return false;
  }
  return true;  // existence is derived from slices
}

size_t Bsi::SizeInBytes() const {
  size_t total = existence_.SizeInBytes();
  for (const RoaringBitmap& s : slices_) total += s.SizeInBytes();
  return total;
}

void Bsi::TrimTopSlices() {
  while (!slices_.empty() && slices_.back().IsEmpty()) slices_.pop_back();
}

Bsi Bsi::Add(const Bsi& x, const Bsi& y) {
  if (x.IsEmpty()) return y;
  if (y.IsEmpty()) return x;
  if (GetMultiOpKernel() == MultiOpKernel::kMultiOperand) {
    // Two-operand sums ride the word-level carry-save kernel: one fused
    // word pass per input container instead of three allocating container
    // ops per slice.
    return SumBsiCsa({&x, &y});
  }
  return AddPairwise(x, y);
}

void Bsi::AddInPlace(const Bsi& other) { *this = Add(*this, other); }

Bsi Bsi::AddPairwise(const Bsi& x, const Bsi& y) {
  // One count per pairwise add (the baseline the CSA kernel beats); slice
  // work is amortized into a single counted batch, not counted per slice.
  static obs::Counter& adds = obs::GetCounter("kernel.pairwise_adds");
  static obs::Counter& slices = obs::GetCounter("kernel.pairwise_slices");
  adds.Add();
  if (x.IsEmpty()) return y;
  if (y.IsEmpty()) return x;
  const int s = std::max(x.num_slices(), y.num_slices());
  slices.Add(static_cast<uint64_t>(s));
  Bsi out;
  out.slices_.reserve(s + 1);
  RoaringBitmap carry;
  for (int i = 0; i < s; ++i) {
    const RoaringBitmap& xi = SliceOrEmpty(x, i);
    const RoaringBitmap& yi = SliceOrEmpty(y, i);
    RoaringBitmap xy = RoaringBitmap::Xor(xi, yi);
    // sum bit = xi ^ yi ^ carry; carry' = (xi & yi) | ((xi ^ yi) & carry).
    RoaringBitmap next_carry = RoaringBitmap::Or(
        RoaringBitmap::And(xi, yi), RoaringBitmap::And(xy, carry));
    out.slices_.push_back(RoaringBitmap::Xor(xy, carry));
    carry = std::move(next_carry);
  }
  if (!carry.IsEmpty()) out.slices_.push_back(std::move(carry));
  out.TrimTopSlices();
  out.existence_ = RoaringBitmap::Or(x.existence_, y.existence_);
  return out;
}

Bsi Bsi::Subtract(const Bsi& x, const Bsi& y) {
  if (y.IsEmpty()) return x;
  const int s = std::max(x.num_slices(), y.num_slices());
  Bsi out;
  out.slices_.reserve(s);
  RoaringBitmap borrow;
  for (int i = 0; i < s; ++i) {
    const RoaringBitmap& xi = SliceOrEmpty(x, i);
    const RoaringBitmap& yi = SliceOrEmpty(y, i);
    RoaringBitmap yb = RoaringBitmap::Xor(yi, borrow);
    // diff bit = xi ^ yi ^ borrow;
    // borrow' = ((yi ^ borrow) andnot xi) | (yi & borrow).
    RoaringBitmap next_borrow = RoaringBitmap::Or(
        RoaringBitmap::AndNot(yb, xi), RoaringBitmap::And(yi, borrow));
    out.slices_.push_back(RoaringBitmap::Xor(xi, std::move(yb)));
    borrow = std::move(next_borrow);
  }
  if (!borrow.IsEmpty()) {
    // Positions that went negative: clamp to zero (absent).
    for (RoaringBitmap& slice : out.slices_) slice.AndNotInPlace(borrow);
  }
  out.TrimTopSlices();
  // Existence: positions with a non-zero difference.
  RoaringBitmap exist;
  for (const RoaringBitmap& slice : out.slices_) exist.OrInPlace(slice);
  out.existence_ = std::move(exist);
  return out;
}

Bsi Bsi::MultiplyByBinary(const Bsi& x, const RoaringBitmap& mask) {
  Bsi out;
  out.slices_.reserve(x.slices_.size());
  for (const RoaringBitmap& slice : x.slices_) {
    out.slices_.push_back(RoaringBitmap::And(slice, mask));
  }
  out.TrimTopSlices();
  out.existence_ = RoaringBitmap::And(x.existence_, mask);
  return out;
}

Bsi Bsi::Multiply(const Bsi& x, const Bsi& y) {
  // Schoolbook shift-add over the slices of the narrower operand; each
  // partial product y * x_i is a binary multiply (linear), so the total is
  // O(s_x * s_y) as in the paper.
  const Bsi& narrow = x.num_slices() <= y.num_slices() ? x : y;
  const Bsi& wide = x.num_slices() <= y.num_slices() ? y : x;
  Bsi acc;
  for (int i = 0; i < narrow.num_slices(); ++i) {
    if (narrow.slice(i).IsEmpty()) continue;
    acc.AddInPlace(ShiftLeft(MultiplyByBinary(wide, narrow.slice(i)), i));
  }
  return acc;
}

Bsi Bsi::AddScalar(const Bsi& x, uint64_t k) {
  if (k == 0 || x.IsEmpty()) return x;
  const int kbits = BitWidth64(k);
  const int s = std::max(x.num_slices(), kbits);
  Bsi out;
  out.slices_.reserve(s + 1);
  RoaringBitmap carry;
  for (int i = 0; i < s; ++i) {
    const RoaringBitmap& xi = SliceOrEmpty(x, i);
    // Constant operand: bit i of k is set at every present position.
    const RoaringBitmap& ki =
        ((k >> i) & 1) != 0 ? x.existence_ : EmptyBitmap();
    RoaringBitmap xy = RoaringBitmap::Xor(xi, ki);
    RoaringBitmap next_carry = RoaringBitmap::Or(
        RoaringBitmap::And(xi, ki), RoaringBitmap::And(xy, carry));
    out.slices_.push_back(RoaringBitmap::Xor(xy, carry));
    carry = std::move(next_carry);
  }
  if (!carry.IsEmpty()) out.slices_.push_back(std::move(carry));
  out.TrimTopSlices();
  out.existence_ = x.existence_;
  return out;
}

Bsi Bsi::MultiplyScalar(const Bsi& x, uint64_t k) {
  if (k == 0 || x.IsEmpty()) return Bsi();
  if ((k & (k - 1)) == 0) return ShiftLeft(x, CountTrailingZeros64(k));
  if (GetMultiOpKernel() == MultiOpKernel::kMultiOperand) {
    // One carry-save pass over all shifted copies at once, instead of
    // popcount(k) - 1 full adds that each reallocate the accumulator.
    return WeightedSumBsiCsa({{&x, k}});
  }
  Bsi acc;
  uint64_t bits = k;
  while (bits != 0) {
    const int bit = CountTrailingZeros64(bits);
    acc = AddPairwise(acc, ShiftLeft(x, bit));
    bits &= bits - 1;
  }
  return acc;
}

Bsi Bsi::ShiftLeft(const Bsi& x, int bits) {
  CHECK_GE(bits, 0);
  if (bits == 0 || x.IsEmpty()) return x;
  Bsi out;
  out.slices_.reserve(x.slices_.size() + bits);
  for (int i = 0; i < bits; ++i) out.slices_.emplace_back();
  for (const RoaringBitmap& slice : x.slices_) out.slices_.push_back(slice);
  out.existence_ = x.existence_;
  return out;
}

namespace {

// The comparison family dispatches on the same flag as the aggregate
// kernels: word-level by default, legacy pairwise as the differential foil.
bool UseWordCompare() {
  return GetMultiOpKernel() == MultiOpKernel::kMultiOperand;
}

RoaringBitmap DispatchCompare(const Bsi& x, const Bsi& y,
                              bsi_compare::CmpOp op) {
  return UseWordCompare() ? bsi_compare::CompareWord(x, y, op)
                          : bsi_compare::ComparePairwise(x, y, op);
}

RoaringBitmap DispatchRange(const Bsi& x, bsi_compare::RangeOp op,
                            uint64_t k) {
  return UseWordCompare() ? bsi_compare::RangeWord(x, op, k)
                          : bsi_compare::RangePairwise(x, op, k);
}

}  // namespace

RoaringBitmap Bsi::Lt(const Bsi& x, const Bsi& y) {
  return DispatchCompare(x, y, bsi_compare::CmpOp::kLt);
}

RoaringBitmap Bsi::Eq(const Bsi& x, const Bsi& y) {
  return DispatchCompare(x, y, bsi_compare::CmpOp::kEq);
}

RoaringBitmap Bsi::Ne(const Bsi& x, const Bsi& y) {
  return DispatchCompare(x, y, bsi_compare::CmpOp::kNe);
}

RoaringBitmap Bsi::Le(const Bsi& x, const Bsi& y) {
  return DispatchCompare(x, y, bsi_compare::CmpOp::kLe);
}

RoaringBitmap Bsi::RangeEq(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kEq, k);
}

RoaringBitmap Bsi::RangeNe(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kNe, k);
}

RoaringBitmap Bsi::RangeLt(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kLt, k);
}

RoaringBitmap Bsi::RangeLe(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kLe, k);
}

RoaringBitmap Bsi::RangeGt(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kGt, k);
}

RoaringBitmap Bsi::RangeGe(uint64_t k) const {
  return DispatchRange(*this, bsi_compare::RangeOp::kGe, k);
}

RoaringBitmap Bsi::RangeBetween(uint64_t lo, uint64_t hi) const {
  CHECK_LE(lo, hi);
  return UseWordCompare() ? bsi_compare::RangeBetweenWord(*this, lo, hi)
                          : bsi_compare::RangeBetweenPairwise(*this, lo, hi);
}

uint64_t Bsi::Sum() const {
  unsigned __int128 total = 0;
  for (size_t i = 0; i < slices_.size(); ++i) {
    total += static_cast<unsigned __int128>(slices_[i].Cardinality()) << i;
  }
  CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

uint64_t Bsi::SumUnderMask(const RoaringBitmap& mask) const {
  unsigned __int128 total = 0;
  for (size_t i = 0; i < slices_.size(); ++i) {
    total += static_cast<unsigned __int128>(
                 RoaringBitmap::AndCardinality(slices_[i], mask))
             << i;
  }
  CHECK(total <= ~uint64_t{0});
  return static_cast<uint64_t>(total);
}

double Bsi::Average() const {
  const uint64_t n = Cardinality();
  if (n == 0) return 0.0;
  return static_cast<double>(Sum()) / static_cast<double>(n);
}

uint64_t Bsi::MinValue() const {
  CHECK(!IsEmpty());
  RoaringBitmap candidates = existence_;
  uint64_t value = 0;
  for (int i = num_slices() - 1; i >= 0; --i) {
    RoaringBitmap zeros = RoaringBitmap::AndNot(candidates, slices_[i]);
    if (!zeros.IsEmpty()) {
      candidates = std::move(zeros);
    } else {
      value |= uint64_t{1} << i;
    }
  }
  return value;
}

uint64_t Bsi::MaxValue() const {
  CHECK(!IsEmpty());
  RoaringBitmap candidates = existence_;
  uint64_t value = 0;
  for (int i = num_slices() - 1; i >= 0; --i) {
    RoaringBitmap ones = RoaringBitmap::And(candidates, slices_[i]);
    if (!ones.IsEmpty()) {
      candidates = std::move(ones);
      value |= uint64_t{1} << i;
    }
  }
  return value;
}

uint64_t Bsi::Quantile(double q) const {
  CHECK(!IsEmpty());
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  const uint64_t n = Cardinality();
  uint64_t rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;
  RoaringBitmap candidates = existence_;
  uint64_t value = 0;
  uint64_t remaining = rank;
  for (int i = num_slices() - 1; i >= 0; --i) {
    RoaringBitmap zeros = RoaringBitmap::AndNot(candidates, slices_[i]);
    const uint64_t num_zeros = zeros.Cardinality();
    if (remaining <= num_zeros) {
      candidates = std::move(zeros);
    } else {
      remaining -= num_zeros;
      candidates.AndInPlace(slices_[i]);
      value |= uint64_t{1} << i;
    }
  }
  return value;
}

void Bsi::SetValue(uint32_t pos, uint64_t value) {
  const int kbits = BitWidth64(value);
  while (num_slices() < kbits) slices_.emplace_back();
  for (int i = 0; i < num_slices(); ++i) {
    if (((value >> i) & 1) != 0) {
      slices_[i].Add(pos);
    } else {
      slices_[i].Remove(pos);
    }
  }
  if (value != 0) {
    existence_.Add(pos);
  } else {
    existence_.Remove(pos);
  }
  TrimTopSlices();
}

void Bsi::MergeAppend(const Bsi& delta) {
  static obs::Counter& disjoint = obs::GetCounter("kernel.merge_appends");
  static obs::Counter& overlap =
      obs::GetCounter("kernel.merge_append_overlaps");
  if (delta.IsEmpty()) return;
  if (IsEmpty()) {
    *this = delta;
    return;
  }
  if (RoaringBitmap::Intersects(existence_, delta.existence_)) {
    // Overlapping positions need real addition: delegate to the adder so
    // the result is exactly Add(*this, delta).
    overlap.Add();
    *this = Add(*this, delta);
    return;
  }
  // Disjoint existence means no position has a bit set in both operands'
  // slices, so slice-wise OR is carry-free addition.
  disjoint.Add();
  while (num_slices() < delta.num_slices()) slices_.emplace_back();
  for (int i = 0; i < delta.num_slices(); ++i) {
    slices_[i].OrInPlace(delta.slices_[i]);
  }
  existence_.OrInPlace(delta.existence_);
}

void Bsi::RunOptimize() {
  existence_.RunOptimize();
  for (RoaringBitmap& slice : slices_) slice.RunOptimize();
}

void Bsi::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(slices_.size()));
  std::string block = existence_.SerializeToString();
  PutU32(out, static_cast<uint32_t>(block.size()));
  out->append(block);
  for (const RoaringBitmap& slice : slices_) {
    block = slice.SerializeToString();
    PutU32(out, static_cast<uint32_t>(block.size()));
    out->append(block);
  }
}

std::string Bsi::SerializeToString() const {
  std::string out;
  Serialize(&out);
  return out;
}

Result<Bsi> Bsi::Deserialize(std::string_view bytes) {
  size_t cursor = 0;
  auto read_u32 = [&bytes, &cursor](uint32_t* v) {
    if (bytes.size() - cursor < sizeof(uint32_t)) return false;
    std::memcpy(v, bytes.data() + cursor, sizeof(uint32_t));
    cursor += sizeof(uint32_t);
    return true;
  };
  uint32_t num_slices = 0;
  if (!read_u32(&num_slices)) return Status::Corruption("bsi: truncated");
  if (num_slices > 64) return Status::Corruption("bsi: too many slices");
  // Each block carries a 4-byte length prefix; reject a slice count the
  // remaining bytes cannot hold before looping.
  if ((bytes.size() - cursor) / sizeof(uint32_t) <
      static_cast<size_t>(num_slices) + 1) {
    return Status::Corruption("bsi: slice count exceeds payload");
  }
  Bsi out;
  out.slices_.reserve(num_slices);
  for (uint32_t i = 0; i <= num_slices; ++i) {
    uint32_t len = 0;
    if (!read_u32(&len)) return Status::Corruption("bsi: truncated block");
    if (bytes.size() - cursor < len) {
      return Status::Corruption("bsi: truncated block body");
    }
    Result<RoaringBitmap> bm =
        RoaringBitmap::Deserialize(bytes.substr(cursor, len));
    if (!bm.ok()) return bm.status();
    cursor += len;
    if (i == 0) {
      out.existence_ = std::move(bm).value();
    } else {
      out.slices_.push_back(std::move(bm).value());
    }
  }
  if (cursor != bytes.size()) {
    return Status::Corruption("bsi: trailing bytes");
  }
  return out;
}

std::vector<std::pair<uint32_t, uint64_t>> Bsi::ToPairs() const {
  std::vector<std::pair<uint32_t, uint64_t>> out;
  out.reserve(Cardinality());
  existence_.ForEach([this, &out](uint32_t pos) {
    out.emplace_back(pos, Get(pos));
  });
  return out;
}

}  // namespace expbsi
