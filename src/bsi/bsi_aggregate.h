#ifndef EXPBSI_BSI_BSI_AGGREGATE_H_
#define EXPBSI_BSI_BSI_AGGREGATE_H_

#include <vector>

#include "bsi/bsi.h"

namespace expbsi {

// Aggregate functions over BSIs (paper §4.1.3): they fold multiple BSIs into
// one BSI (or one bitmap), unlike the in-BSI aggregates which fold one BSI
// into a number. These are the merge functions of the pre-aggregate tree
// (§4.3, Fig. 6) and of non-decomposable bucket-value states (§4.2).

// sumBSI(X, Y) := X + Y.
inline Bsi SumBsi(const Bsi& x, const Bsi& y) { return Bsi::Add(x, y); }

// Sums a whole list of BSIs (left fold).
Bsi SumBsi(const std::vector<const Bsi*>& inputs);

// maxBSI(X, Y) := X * (X > Y) + Y * (X <= Y), extended to positions present
// in only one operand (the present value wins, since values are positive and
// absent means zero).
Bsi MaxBsi(const Bsi& x, const Bsi& y);

// minBSI(X, Y): row-wise minimum. Positions present in only one operand are
// absent in the result (min with an absent zero is zero).
Bsi MinBsi(const Bsi& x, const Bsi& y);

// mulBSI(X, Y) := X * Y.
inline Bsi MulBsi(const Bsi& x, const Bsi& y) { return Bsi::Multiply(x, y); }

// distinctPos(X, Y) := (X > 0) OR (Y > 0): the positions where any input has
// a value. Used to merge unique-visitor states across days (§4.2).
inline RoaringBitmap DistinctPos(const Bsi& x, const Bsi& y) {
  return RoaringBitmap::Or(x.existence(), y.existence());
}

// distinctPos over a list of BSIs.
RoaringBitmap DistinctPos(const std::vector<const Bsi*>& inputs);

// Weighted sum of several BSI attributes: S[j] = sum_i w_i * X_i[j], the
// scoring primitive of BSI preference queries (Rinfret 2008; Guzun et al.
// 2015 -- the lineage the paper builds on, §2.3). Positions absent from
// every input stay absent.
struct WeightedBsi {
  const Bsi* bsi = nullptr;
  uint64_t weight = 1;
};
Bsi WeightedSumBsi(const std::vector<WeightedBsi>& inputs);

// A BSI restricted to a position mask, without materializing the filtered
// index. Used to aggregate across segments (each segment has its own
// position space, but value-only statistics like quantiles merge cleanly).
struct MaskedBsi {
  const Bsi* bsi = nullptr;
  const RoaringBitmap* mask = nullptr;  // nullptr = no mask (all positions)
};

// Quantile of the multiset of values drawn from all inputs (q as in
// Bsi::Quantile). Slice-descent across every input simultaneously, so the
// cost is O(max_slices * inputs) bitmap ops -- no merge, no sort. The total
// masked cardinality must be non-zero.
uint64_t QuantileOverInputs(const std::vector<MaskedBsi>& inputs, double q);

// Positions holding the k largest values (BSI top-k in the style of the
// preference-query literature the paper cites). Ties at the k-th value are
// broken toward smaller positions so exactly min(k, cardinality) positions
// are returned.
RoaringBitmap TopK(const Bsi& x, uint64_t k);

}  // namespace expbsi

#endif  // EXPBSI_BSI_BSI_AGGREGATE_H_
