#ifndef EXPBSI_BSI_BSI_AGGREGATE_H_
#define EXPBSI_BSI_BSI_AGGREGATE_H_

#include <vector>

#include "bsi/bsi.h"

namespace expbsi {

// Aggregate functions over BSIs (paper §4.1.3): they fold multiple BSIs into
// one BSI (or one bitmap), unlike the in-BSI aggregates which fold one BSI
// into a number. These are the merge functions of the pre-aggregate tree
// (§4.3, Fig. 6) and of non-decomposable bucket-value states (§4.2).

// Which implementation the list-form aggregates below use.
//
//   kMultiOperand -- word-level carry-save accumulation for sums and lazy
//                    (scratch-buffer) union accumulation for distinctPos:
//                    one pass per input container, no intermediate BSIs.
//   kPairwise     -- the legacy left fold of pairwise ops; kept selectable
//                    for the ablation benches and as a differential foil.
//
// The default is kMultiOperand; set EXPBSI_LEGACY_PAIRWISE=1 in the
// environment (read once at first use) or call SetMultiOpKernel() to switch.
// Both paths are exact -- they must produce bit-identical results, and the
// differential oracle exercises them side by side.
enum class MultiOpKernel { kMultiOperand, kPairwise };

MultiOpKernel GetMultiOpKernel();
void SetMultiOpKernel(MultiOpKernel kernel);

// sumBSI(X, Y) := X + Y.
inline Bsi SumBsi(const Bsi& x, const Bsi& y) { return Bsi::Add(x, y); }

// Sums a whole list of BSIs. Dispatches on GetMultiOpKernel().
Bsi SumBsi(const std::vector<const Bsi*>& inputs);

// Explicit kernel entry points (benches and the differential oracle call
// both directly; production code goes through the dispatcher above).
//
// The CSA form never materializes an intermediate BSI: per 2^16 chunk, every
// input slice container is carry-save-added into scratch word buffers (one
// 65536-bit buffer per output bit level, recycled by the thread-local
// scratch arena) and the buffers convert to Roaring containers exactly once,
// so N inputs cost one word pass each instead of N ripple-carry Add()
// passes over the growing accumulator.
Bsi SumBsiCsa(const std::vector<const Bsi*>& inputs);
Bsi SumBsiPairwise(const std::vector<const Bsi*>& inputs);

// maxBSI(X, Y) := X * (X > Y) + Y * (X <= Y), extended to positions present
// in only one operand (the present value wins, since values are positive and
// absent means zero).
Bsi MaxBsi(const Bsi& x, const Bsi& y);

// minBSI(X, Y): row-wise minimum. Positions present in only one operand are
// absent in the result (min with an absent zero is zero).
Bsi MinBsi(const Bsi& x, const Bsi& y);

// mulBSI(X, Y) := X * Y.
inline Bsi MulBsi(const Bsi& x, const Bsi& y) { return Bsi::Multiply(x, y); }

// distinctPos(X, Y) := (X > 0) OR (Y > 0): the positions where any input has
// a value. Used to merge unique-visitor states across days (§4.2).
inline RoaringBitmap DistinctPos(const Bsi& x, const Bsi& y) {
  return RoaringBitmap::Or(x.existence(), y.existence());
}

// distinctPos over a list of BSIs. Dispatches on GetMultiOpKernel().
RoaringBitmap DistinctPos(const std::vector<const Bsi*>& inputs);

// Explicit kernel entry points: lazy scratch-buffer union accumulation vs
// the legacy OrInPlace fold.
RoaringBitmap DistinctPosLazy(const std::vector<const Bsi*>& inputs);
RoaringBitmap DistinctPosPairwise(const std::vector<const Bsi*>& inputs);

// Weighted sum of several BSI attributes: S[j] = sum_i w_i * X_i[j], the
// scoring primitive of BSI preference queries (Rinfret 2008; Guzun et al.
// 2015 -- the lineage the paper builds on, §2.3). Positions absent from
// every input stay absent.
struct WeightedBsi {
  const Bsi* bsi = nullptr;
  uint64_t weight = 1;
};
// Dispatches on GetMultiOpKernel().
Bsi WeightedSumBsi(const std::vector<WeightedBsi>& inputs);

// Explicit kernel entry points. The CSA form feeds slice i of an input with
// weight w into adder level i + b for every set bit b of w -- shift-add
// without ever materializing MultiplyScalar() per input.
Bsi WeightedSumBsiCsa(const std::vector<WeightedBsi>& inputs);
Bsi WeightedSumBsiPairwise(const std::vector<WeightedBsi>& inputs);

// A BSI restricted to a position mask, without materializing the filtered
// index. Used to aggregate across segments (each segment has its own
// position space, but value-only statistics like quantiles merge cleanly).
struct MaskedBsi {
  const Bsi* bsi = nullptr;
  const RoaringBitmap* mask = nullptr;  // nullptr = no mask (all positions)
};

// Quantile of the multiset of values drawn from all inputs (q as in
// Bsi::Quantile). Slice-descent across every input simultaneously, so the
// cost is O(max_slices * inputs) bitmap ops -- no merge, no sort. The total
// masked cardinality must be non-zero.
uint64_t QuantileOverInputs(const std::vector<MaskedBsi>& inputs, double q);

// Positions holding the k largest values (BSI top-k in the style of the
// preference-query literature the paper cites). Ties at the k-th value are
// broken toward smaller positions so exactly min(k, cardinality) positions
// are returned.
RoaringBitmap TopK(const Bsi& x, uint64_t k);

}  // namespace expbsi

#endif  // EXPBSI_BSI_BSI_AGGREGATE_H_
