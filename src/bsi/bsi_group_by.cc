#include "bsi/bsi_group_by.h"

#include "common/bit_util.h"
#include "common/check.h"

namespace expbsi {
namespace {

const RoaringBitmap& EmptySlice() {
  static const RoaringBitmap* empty = new RoaringBitmap();
  return *empty;
}

void PartitionRecursive(
    const Bsi& bucket, int level, uint64_t prefix, const RoaringBitmap& mask,
    int num_buckets,
    const std::function<void(int, const RoaringBitmap&)>& visit) {
  if (mask.IsEmpty()) return;
  if (level < 0) {
    // Stored value is bucket_id + 1; prefix 0 cannot occur for present rows.
    DCHECK_GE(prefix, 1u);
    const uint64_t bucket_id = prefix - 1;
    if (bucket_id < static_cast<uint64_t>(num_buckets)) {
      visit(static_cast<int>(bucket_id), mask);
    }
    return;
  }
  const RoaringBitmap& slice =
      level < bucket.num_slices() ? bucket.slice(level) : EmptySlice();
  RoaringBitmap ones = RoaringBitmap::And(mask, slice);
  RoaringBitmap zeros = RoaringBitmap::AndNot(mask, slice);
  PartitionRecursive(bucket, level - 1, prefix << 1, zeros, num_buckets,
                     visit);
  PartitionRecursive(bucket, level - 1, (prefix << 1) | 1, ones, num_buckets,
                     visit);
}

}  // namespace

void PartitionByBucket(
    const Bsi& bucket_plus_one, int num_buckets, const RoaringBitmap& universe,
    const std::function<void(int, const RoaringBitmap&)>& visit) {
  CHECK_GT(num_buckets, 0);
  // Only positions with a bucket assignment participate.
  RoaringBitmap mask =
      RoaringBitmap::And(universe, bucket_plus_one.existence());
  const int levels = BitWidth64(static_cast<uint64_t>(num_buckets));
  PartitionRecursive(bucket_plus_one, levels - 1, 0, mask, num_buckets,
                     visit);
}

std::vector<uint64_t> GroupSumByBucket(const Bsi& value,
                                       const Bsi& bucket_plus_one,
                                       int num_buckets,
                                       const RoaringBitmap& universe) {
  std::vector<uint64_t> sums(num_buckets, 0);
  PartitionByBucket(bucket_plus_one, num_buckets, universe,
                    [&value, &sums](int bucket_id, const RoaringBitmap& mask) {
                      sums[bucket_id] = value.SumUnderMask(mask);
                    });
  return sums;
}

std::vector<uint64_t> GroupCountByBucket(const Bsi& bucket_plus_one,
                                         int num_buckets,
                                         const RoaringBitmap& universe) {
  std::vector<uint64_t> counts(num_buckets, 0);
  PartitionByBucket(bucket_plus_one, num_buckets, universe,
                    [&counts](int bucket_id, const RoaringBitmap& mask) {
                      counts[bucket_id] = mask.Cardinality();
                    });
  return counts;
}

}  // namespace expbsi
