#include "bsi/bsi_aggregate.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/bit_util.h"
#include "common/check.h"
#include "common/scratch_arena.h"
#include "common/word_ops.h"
#include "obs/metrics.h"
#include "roaring/union_accumulator.h"

namespace expbsi {
namespace {

MultiOpKernel KernelFromEnv() {
  const char* env = std::getenv("EXPBSI_LEGACY_PAIRWISE");
  if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
    return MultiOpKernel::kPairwise;
  }
  return MultiOpKernel::kMultiOperand;
}

std::atomic<MultiOpKernel>& KernelFlag() {
  static std::atomic<MultiOpKernel> flag{KernelFromEnv()};
  return flag;
}

// One operand of the word-level carry-save sum: `container` holds the bits
// of weight 2^level within chunk `key`. Containers are borrowed from the
// input BSIs' slices and must stay alive until WordCsaSum() returns.
struct SliceRef {
  uint16_t key;
  uint16_t level;
  const Container* container;
};

// Below this cardinality an array container is added with per-value carry
// chains; at or above it, the container is expanded to a word buffer and
// added with the full-width vector passes (a whole-buffer pass costs about
// as much as a few hundred scalar chains, memset included).
constexpr int kScalarAddMaxCardinality = 256;

// Dirty word window of one accumulator level: [lo, hi) words of the chunk
// buffer may hold bits; everything outside is guaranteed zero. Rank-encoded
// positions concentrate a segment's population in the first few words of a
// chunk, so at small scale the window is a fraction of the 1024-word buffer
// and conversion/cleanup can skip the untouched tail.
struct WordWindow {
  uint32_t lo = ScratchArena::kScratchWords;
  uint32_t hi = 0;

  bool empty() const { return lo >= hi; }
  void Widen(uint32_t w_lo, uint32_t w_hi) {
    lo = std::min(lo, w_lo);
    hi = std::max(hi, w_hi);
  }
};

// Carry-save full-adder step over only [lo, hi): the fixed-width SIMD pass
// always sweeps all 1024 words, which dwarfs the real work when an input
// container's values span a handful of words. The plain loop autovectorizes;
// the dispatch-table pass is still used for full-width bitmap inputs.
bool RangedCsaPass(uint64_t* acc, const uint64_t* bits, uint64_t* carry,
                   uint32_t lo, uint32_t hi) {
  uint64_t any = 0;
  for (uint32_t w = lo; w < hi; ++w) {
    const uint64_t c = acc[w] & bits[w];
    acc[w] ^= bits[w];
    carry[w] = c;
    any |= c;
  }
  return any != 0;
}

// Carry-save accumulation on raw 64-bit words. Each 2^16 chunk keeps one
// scratch word buffer per output bit level; every input container is added
// into the buffers with word-wise carry propagation
//
//   carry = acc[lvl] & bits; acc[lvl] ^= bits; bits = carry; ++lvl;
//
// executed as whole-buffer passes over flat 1024-word arrays (which the
// compiler autovectorizes) with two ping-pong carry buffers, or as per-value
// scalar chains for small array containers. The total work is amortized
// O(1) passes per input container, since a carry at level l+1 happens at
// most once per bit set at level l. No intermediate bitmap is ever
// materialized: the buffers convert to Roaring containers exactly once per
// chunk, and the buffers themselves are recycled thread-locally by the
// scratch arena, so steady-state summation allocates only the result. The
// sum is exact regardless of the order refs are added in.
Bsi WordCsaSum(std::vector<SliceRef> refs, RoaringBitmap existence) {
  constexpr size_t kWords = ScratchArena::kScratchWords;
  static_assert(kWords == WordOps::kWords);
  const WordOps& word_ops = ActiveWordOps();  // runtime SIMD dispatch
  std::sort(refs.begin(), refs.end(),
            [](const SliceRef& a, const SliceRef& b) { return a.key < b.key; });
  std::vector<ScratchArena::Lease> acc;  // one 65536-bit buffer per level
  std::vector<WordWindow> win;           // dirty word window per level
  ScratchArena::Lease ping, pong;        // carry propagation scratch
  std::vector<RoaringBitmap> slices;
  // Kernel work accounting, kept in plain locals through the hot loops and
  // published to the registry once per call at the bottom.
  uint64_t n_chunks = 0;
  uint64_t n_word_passes = 0;
  uint64_t n_words_processed = 0;
  uint64_t n_scalar_adds = 0;
  size_t i = 0;
  while (i < refs.size()) {
    const uint16_t key = refs[i].key;
    ++n_chunks;
    size_t used = 0;  // highest accumulator level written for this chunk
    for (; i < refs.size() && refs[i].key == key; ++i) {
      const SliceRef& ref = refs[i];
      const uint64_t* bits = ref.container->BitmapWords();
      if (bits == nullptr &&
          ref.container->Cardinality() < kScalarAddMaxCardinality) {
        // Sparse container: per-value scalar carry chains.
        n_scalar_adds += static_cast<uint64_t>(ref.container->Cardinality());
        ref.container->ForEach([&acc, &win, &used, &ref](uint16_t v) {
          const int w = v >> 6;
          uint64_t b = uint64_t{1} << (v & 63);
          size_t lvl = ref.level;
          do {
            // The first write can start several levels up (high slice, or a
            // shifted weighted operand), so grow to lvl, not just by one.
            while (lvl >= acc.size()) {
              acc.emplace_back();  // zeroed on lease
              win.emplace_back();
            }
            win[lvl].Widen(w, w + 1);
            uint64_t* aw = acc[lvl].words() + w;
            const uint64_t carry = *aw & b;
            *aw ^= b;
            b = carry;
            ++lvl;
          } while (b != 0);
          used = std::max(used, lvl - 1);
        });
        continue;
      }
      // Word window spanned by this container's bits. Bitmap containers lend
      // their full payload and take the full-width dispatch-table pass;
      // array/run containers expand into (and sweep) only their value span.
      uint32_t b_lo = 0;
      uint32_t b_hi = kWords;
      if (bits == nullptr) {
        b_lo = static_cast<uint32_t>(ref.container->Minimum() >> 6);
        b_hi = static_cast<uint32_t>(ref.container->Maximum() >> 6) + 1;
        std::fill(ping.words() + b_lo, ping.words() + b_hi, uint64_t{0});
        ref.container->UnionInto(ping.words());
        bits = ping.words();
      }
      const bool full_width = b_hi - b_lo == kWords;
      // Full adder: sum into acc[lvl], carries into the scratch buffer not
      // currently holding `bits`, until they die out. Carries never escape
      // the input's window, so ranged passes stay ranged.
      uint64_t* carry_buf = bits == ping.words() ? pong.words() : ping.words();
      for (size_t lvl = ref.level;; ++lvl) {
        while (lvl >= acc.size()) {
          acc.emplace_back();
          win.emplace_back();
        }
        win[lvl].Widen(b_lo, b_hi);
        ++n_word_passes;
        n_words_processed += b_hi - b_lo;
        const bool carry_alive =
            full_width
                ? word_ops.csa_pass(acc[lvl].words(), bits, carry_buf)
                : RangedCsaPass(acc[lvl].words(), bits, carry_buf, b_lo, b_hi);
        if (!carry_alive) {
          used = std::max(used, lvl);
          break;
        }
        bits = carry_buf;
        carry_buf = bits == ping.words() ? pong.words() : ping.words();
      }
    }
    for (size_t lvl = 0; lvl <= used && lvl < acc.size(); ++lvl) {
      if (win[lvl].empty()) continue;
      Container c = Container::FromWordsRange(
          acc[lvl].words(), static_cast<int>(win[lvl].lo),
          static_cast<int>(win[lvl].hi));
      if (!c.IsEmpty()) {
        if (slices.size() <= lvl) slices.resize(lvl + 1);
        slices[lvl].AppendContainer(key, std::move(c));
      }
      std::fill(acc[lvl].words() + win[lvl].lo, acc[lvl].words() + win[lvl].hi,
                uint64_t{0});
      win[lvl] = WordWindow();
    }
  }
  static obs::Counter& m_calls = obs::GetCounter("kernel.csa_calls");
  static obs::Counter& m_containers = obs::GetCounter("kernel.csa_containers");
  static obs::Counter& m_chunks = obs::GetCounter("kernel.csa_chunks");
  static obs::Counter& m_passes = obs::GetCounter("kernel.csa_word_passes");
  static obs::Counter& m_words = obs::GetCounter("kernel.csa_words_processed");
  static obs::Counter& m_scalar = obs::GetCounter("kernel.csa_scalar_adds");
  m_calls.Add();
  m_containers.Add(refs.size());
  m_chunks.Add(n_chunks);
  m_passes.Add(n_word_passes);
  m_words.Add(n_words_processed);
  m_scalar.Add(n_scalar_adds);
  // Values are positive wherever present, so the sum's existence bitmap is
  // exactly the union of the inputs' existence bitmaps.
  return Bsi::FromSlices(std::move(slices), std::move(existence));
}

}  // namespace

MultiOpKernel GetMultiOpKernel() {
  return KernelFlag().load(std::memory_order_relaxed);
}

void SetMultiOpKernel(MultiOpKernel kernel) {
  KernelFlag().store(kernel, std::memory_order_relaxed);
}

Bsi SumBsiCsa(const std::vector<const Bsi*>& inputs) {
  std::vector<SliceRef> refs;
  UnionAccumulator existence;
  uint64_t n_slices = 0;
  for (const Bsi* input : inputs) {
    CHECK(input != nullptr);
    if (input->IsEmpty()) continue;
    existence.Add(input->existence());
    n_slices += static_cast<uint64_t>(input->num_slices());
    for (int s = 0; s < input->num_slices(); ++s) {
      const RoaringBitmap& slice = input->slice(s);
      for (int c = 0; c < slice.NumContainers(); ++c) {
        refs.push_back({slice.KeyAt(c), static_cast<uint16_t>(s),
                        &slice.ContainerAt(c)});
      }
    }
  }
  static obs::Counter& m_slices = obs::GetCounter("kernel.sum_slices_touched");
  m_slices.Add(n_slices);
  return WordCsaSum(std::move(refs), existence.Finish());
}

Bsi SumBsiPairwise(const std::vector<const Bsi*>& inputs) {
  Bsi acc;
  bool seeded = false;
  for (const Bsi* input : inputs) {
    CHECK(input != nullptr);
    if (input->IsEmpty()) continue;
    if (!seeded) {
      acc = *input;  // one copy to seed, instead of Add(empty, x) per round
      seeded = true;
    } else {
      // Explicitly pairwise: Bsi::Add now dispatches on the kernel flag, and
      // this entry point must stay the legacy baseline even when the flag
      // says multi-operand (ablation benches call it directly).
      acc = Bsi::AddPairwise(acc, *input);
    }
  }
  return acc;
}

Bsi SumBsi(const std::vector<const Bsi*>& inputs) {
  if (inputs.empty()) return Bsi();
  if (inputs.size() == 1) {
    CHECK(inputs[0] != nullptr);
    return *inputs[0];
  }
  return GetMultiOpKernel() == MultiOpKernel::kMultiOperand
             ? SumBsiCsa(inputs)
             : SumBsiPairwise(inputs);
}

Bsi MaxBsi(const Bsi& x, const Bsi& y) {
  // Positions where x wins: x > y (both present) plus x-only positions.
  RoaringBitmap x_wins = Bsi::Gt(x, y);
  x_wins.OrInPlace(RoaringBitmap::AndNot(x.existence(), y.existence()));
  // y takes every other present position (y >= x or y-only).
  RoaringBitmap y_wins = RoaringBitmap::AndNot(y.existence(), x_wins);
  // The two masks are disjoint, so Add is a plain merge.
  return Bsi::Add(Bsi::MultiplyByBinary(x, x_wins),
                  Bsi::MultiplyByBinary(y, y_wins));
}

Bsi MinBsi(const Bsi& x, const Bsi& y) {
  const RoaringBitmap both = RoaringBitmap::And(x.existence(), y.existence());
  RoaringBitmap x_wins = Bsi::Lt(x, y);  // x < y, both present
  RoaringBitmap y_wins = RoaringBitmap::AndNot(both, x_wins);
  return Bsi::Add(Bsi::MultiplyByBinary(x, x_wins),
                  Bsi::MultiplyByBinary(y, y_wins));
}

RoaringBitmap DistinctPosLazy(const std::vector<const Bsi*>& inputs) {
  UnionAccumulator acc;
  for (const Bsi* input : inputs) {
    CHECK(input != nullptr);
    acc.Add(input->existence());
  }
  return acc.Finish();
}

RoaringBitmap DistinctPosPairwise(const std::vector<const Bsi*>& inputs) {
  RoaringBitmap out;
  for (const Bsi* input : inputs) {
    CHECK(input != nullptr);
    out.OrInPlace(input->existence());
  }
  return out;
}

RoaringBitmap DistinctPos(const std::vector<const Bsi*>& inputs) {
  return GetMultiOpKernel() == MultiOpKernel::kMultiOperand
             ? DistinctPosLazy(inputs)
             : DistinctPosPairwise(inputs);
}

Bsi WeightedSumBsiCsa(const std::vector<WeightedBsi>& inputs) {
  std::vector<SliceRef> refs;
  UnionAccumulator existence;
  for (const WeightedBsi& input : inputs) {
    CHECK(input.bsi != nullptr);
    if (input.weight == 0 || input.bsi->IsEmpty()) continue;
    existence.Add(input.bsi->existence());
    // w * X = sum over set bits b of w of (X << b): slice s of X lands at
    // adder level s + b. No per-input MultiplyScalar materialization.
    uint64_t w = input.weight;
    while (w != 0) {
      const int b = CountTrailingZeros64(w);
      for (int s = 0; s < input.bsi->num_slices(); ++s) {
        const RoaringBitmap& slice = input.bsi->slice(s);
        for (int c = 0; c < slice.NumContainers(); ++c) {
          refs.push_back({slice.KeyAt(c), static_cast<uint16_t>(s + b),
                          &slice.ContainerAt(c)});
        }
      }
      w &= w - 1;
    }
  }
  return WordCsaSum(std::move(refs), existence.Finish());
}

Bsi WeightedSumBsiPairwise(const std::vector<WeightedBsi>& inputs) {
  Bsi acc;
  bool seeded = false;
  for (const WeightedBsi& input : inputs) {
    CHECK(input.bsi != nullptr);
    if (input.weight == 0 || input.bsi->IsEmpty()) continue;
    // Shift-add w * X with the explicitly pairwise adder (MultiplyScalar and
    // Add both dispatch on the kernel flag now; this baseline must not).
    Bsi term;
    uint64_t bits = input.weight;
    while (bits != 0) {
      const int b = CountTrailingZeros64(bits);
      term = Bsi::AddPairwise(term, Bsi::ShiftLeft(*input.bsi, b));
      bits &= bits - 1;
    }
    if (!seeded) {
      acc = std::move(term);
      seeded = true;
    } else {
      acc = Bsi::AddPairwise(acc, term);
    }
  }
  return acc;
}

Bsi WeightedSumBsi(const std::vector<WeightedBsi>& inputs) {
  if (inputs.empty()) return Bsi();
  return GetMultiOpKernel() == MultiOpKernel::kMultiOperand
             ? WeightedSumBsiCsa(inputs)
             : WeightedSumBsiPairwise(inputs);
}

uint64_t QuantileOverInputs(const std::vector<MaskedBsi>& inputs, double q) {
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  // Candidates per input: present positions within the mask.
  std::vector<RoaringBitmap> candidates;
  candidates.reserve(inputs.size());
  uint64_t n = 0;
  int max_slices = 0;
  for (const MaskedBsi& input : inputs) {
    CHECK(input.bsi != nullptr);
    RoaringBitmap c = input.mask == nullptr
                          ? input.bsi->existence()
                          : RoaringBitmap::And(input.bsi->existence(),
                                               *input.mask);
    n += c.Cardinality();
    max_slices = std::max(max_slices, input.bsi->num_slices());
    candidates.push_back(std::move(c));
  }
  CHECK_GT(n, 0u);
  uint64_t rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;

  uint64_t value = 0;
  uint64_t remaining = rank;
  for (int i = max_slices - 1; i >= 0; --i) {
    // Count candidates whose bit i is zero, across every input.
    uint64_t num_zeros = 0;
    std::vector<RoaringBitmap> zeros(inputs.size());
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i < inputs[s].bsi->num_slices()) {
        zeros[s] =
            RoaringBitmap::AndNot(candidates[s], inputs[s].bsi->slice(i));
      } else {
        zeros[s] = candidates[s];  // missing high slices are all-zero
      }
      num_zeros += zeros[s].Cardinality();
    }
    if (remaining <= num_zeros) {
      candidates = std::move(zeros);
    } else {
      remaining -= num_zeros;
      value |= uint64_t{1} << i;
      for (size_t s = 0; s < inputs.size(); ++s) {
        if (i < inputs[s].bsi->num_slices()) {
          candidates[s].AndInPlace(inputs[s].bsi->slice(i));
        } else {
          candidates[s].Clear();
        }
      }
    }
  }
  return value;
}

RoaringBitmap TopK(const Bsi& x, uint64_t k) {
  if (k == 0 || x.IsEmpty()) return RoaringBitmap();
  if (k >= x.Cardinality()) return x.existence();
  // Slice descent: G holds positions certainly in the top-k, E the still
  // undecided candidates at the current prefix.
  RoaringBitmap certain;
  RoaringBitmap candidates = x.existence();
  for (int i = x.num_slices() - 1; i >= 0; --i) {
    RoaringBitmap with_bit = RoaringBitmap::And(candidates, x.slice(i));
    const uint64_t n = certain.Cardinality() + with_bit.Cardinality();
    if (n > k) {
      candidates = std::move(with_bit);
    } else if (n < k) {
      certain.OrInPlace(with_bit);
      candidates.AndNotInPlace(x.slice(i));
    } else {
      certain.OrInPlace(with_bit);
      return certain;
    }
  }
  // Ties at the k-th value: take the smallest positions among candidates.
  uint64_t need = k - certain.Cardinality();
  candidates.ForEach([&certain, &need](uint32_t pos) {
    if (need > 0) {
      certain.Add(pos);
      --need;
    }
  });
  return certain;
}

}  // namespace expbsi
