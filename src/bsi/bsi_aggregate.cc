#include "bsi/bsi_aggregate.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace expbsi {

Bsi SumBsi(const std::vector<const Bsi*>& inputs) {
  Bsi acc;
  for (const Bsi* input : inputs) acc = Bsi::Add(acc, *input);
  return acc;
}

Bsi MaxBsi(const Bsi& x, const Bsi& y) {
  // Positions where x wins: x > y (both present) plus x-only positions.
  RoaringBitmap x_wins = Bsi::Gt(x, y);
  x_wins.OrInPlace(RoaringBitmap::AndNot(x.existence(), y.existence()));
  // y takes every other present position (y >= x or y-only).
  RoaringBitmap y_wins = RoaringBitmap::AndNot(y.existence(), x_wins);
  // The two masks are disjoint, so Add is a plain merge.
  return Bsi::Add(Bsi::MultiplyByBinary(x, x_wins),
                  Bsi::MultiplyByBinary(y, y_wins));
}

Bsi MinBsi(const Bsi& x, const Bsi& y) {
  const RoaringBitmap both = RoaringBitmap::And(x.existence(), y.existence());
  RoaringBitmap x_wins = Bsi::Lt(x, y);  // x < y, both present
  RoaringBitmap y_wins = RoaringBitmap::AndNot(both, x_wins);
  return Bsi::Add(Bsi::MultiplyByBinary(x, x_wins),
                  Bsi::MultiplyByBinary(y, y_wins));
}

RoaringBitmap DistinctPos(const std::vector<const Bsi*>& inputs) {
  RoaringBitmap out;
  for (const Bsi* input : inputs) out.OrInPlace(input->existence());
  return out;
}

Bsi WeightedSumBsi(const std::vector<WeightedBsi>& inputs) {
  Bsi acc;
  for (const WeightedBsi& input : inputs) {
    CHECK(input.bsi != nullptr);
    acc = Bsi::Add(acc, Bsi::MultiplyScalar(*input.bsi, input.weight));
  }
  return acc;
}

uint64_t QuantileOverInputs(const std::vector<MaskedBsi>& inputs, double q) {
  CHECK_GE(q, 0.0);
  CHECK_LE(q, 1.0);
  // Candidates per input: present positions within the mask.
  std::vector<RoaringBitmap> candidates;
  candidates.reserve(inputs.size());
  uint64_t n = 0;
  int max_slices = 0;
  for (const MaskedBsi& input : inputs) {
    CHECK(input.bsi != nullptr);
    RoaringBitmap c = input.mask == nullptr
                          ? input.bsi->existence()
                          : RoaringBitmap::And(input.bsi->existence(),
                                               *input.mask);
    n += c.Cardinality();
    max_slices = std::max(max_slices, input.bsi->num_slices());
    candidates.push_back(std::move(c));
  }
  CHECK_GT(n, 0u);
  uint64_t rank = static_cast<uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  if (rank > n) rank = n;

  uint64_t value = 0;
  uint64_t remaining = rank;
  for (int i = max_slices - 1; i >= 0; --i) {
    // Count candidates whose bit i is zero, across every input.
    uint64_t num_zeros = 0;
    std::vector<RoaringBitmap> zeros(inputs.size());
    for (size_t s = 0; s < inputs.size(); ++s) {
      if (i < inputs[s].bsi->num_slices()) {
        zeros[s] =
            RoaringBitmap::AndNot(candidates[s], inputs[s].bsi->slice(i));
      } else {
        zeros[s] = candidates[s];  // missing high slices are all-zero
      }
      num_zeros += zeros[s].Cardinality();
    }
    if (remaining <= num_zeros) {
      candidates = std::move(zeros);
    } else {
      remaining -= num_zeros;
      value |= uint64_t{1} << i;
      for (size_t s = 0; s < inputs.size(); ++s) {
        if (i < inputs[s].bsi->num_slices()) {
          candidates[s].AndInPlace(inputs[s].bsi->slice(i));
        } else {
          candidates[s].Clear();
        }
      }
    }
  }
  return value;
}

RoaringBitmap TopK(const Bsi& x, uint64_t k) {
  if (k == 0 || x.IsEmpty()) return RoaringBitmap();
  if (k >= x.Cardinality()) return x.existence();
  // Slice descent: G holds positions certainly in the top-k, E the still
  // undecided candidates at the current prefix.
  RoaringBitmap certain;
  RoaringBitmap candidates = x.existence();
  for (int i = x.num_slices() - 1; i >= 0; --i) {
    RoaringBitmap with_bit = RoaringBitmap::And(candidates, x.slice(i));
    const uint64_t n = certain.Cardinality() + with_bit.Cardinality();
    if (n > k) {
      candidates = std::move(with_bit);
    } else if (n < k) {
      certain.OrInPlace(with_bit);
      candidates.AndNotInPlace(x.slice(i));
    } else {
      certain.OrInPlace(with_bit);
      return certain;
    }
  }
  // Ties at the k-th value: take the smallest positions among candidates.
  uint64_t need = k - certain.Cardinality();
  candidates.ForEach([&certain, &need](uint32_t pos) {
    if (need > 0) {
      certain.Add(pos);
      --need;
    }
  });
  return certain;
}

}  // namespace expbsi
