#ifndef EXPBSI_BSI_BSI_COMPARE_H_
#define EXPBSI_BSI_BSI_COMPARE_H_

#include <cstdint>

#include "bsi/bsi.h"

namespace expbsi {
namespace bsi_compare {

// Comparison kernels behind Bsi::Lt/Le/Eq/Ne (Algorithms 1-3) and the
// constant-side Range* family. Two implementations of each, selected by the
// established MultiOpKernel flag (bsi_aggregate.h):
//
//   *Word     -- word-level kernels: per 2^16 chunk, the slice containers
//                are walked via monotone cursors and folded with fused
//                64-bit word passes (word_ops.h, runtime SIMD dispatch) in
//                thread-local scratch buffers; no intermediate RoaringBitmap
//                is ever materialized, and sparse chunks (few both-present
//                positions) switch to a per-position probing path that rides
//                the containers' galloping array intersects.
//   *Pairwise -- the legacy slice-by-slice folds of allocating container
//                pairwise ops, kept as the differential foil and for the
//                ablation benches.
//
// Both paths are exact and must agree bit for bit; the differential oracle
// runs them side by side on every dispatch tier.

// Two-BSI comparisons. Results contain only positions present in BOTH
// operands (the paper's zero-means-absent convention). Gt/Ge are handled by
// the callers via operand swap.
enum class CmpOp { kLt, kLe, kEq, kNe };

RoaringBitmap CompareWord(const Bsi& x, const Bsi& y, CmpOp op);
RoaringBitmap ComparePairwise(const Bsi& x, const Bsi& y, CmpOp op);

// Constant comparisons over the present positions of x. k == 0 follows the
// zero-means-absent semantics of the Bsi::Range* wrappers (e.g. kNe / kGt /
// kGe return the existence bitmap, everything else is empty).
enum class RangeOp { kEq, kNe, kLt, kLe, kGt, kGe };

RoaringBitmap RangeWord(const Bsi& x, RangeOp op, uint64_t k);
RoaringBitmap RangePairwise(const Bsi& x, RangeOp op, uint64_t k);

// Present positions with lo <= value <= hi (lo <= hi, hi >= 1). The word
// form partitions against both bounds in ONE top-down pass per chunk --
// maintaining (lt_lo, eq_lo) against lo and (gt_hi, eq_hi) against hi
// simultaneously and combining as existence & ~lt_lo & ~gt_hi -- instead of
// the legacy two full ScalarCompare scans.
RoaringBitmap RangeBetweenWord(const Bsi& x, uint64_t lo, uint64_t hi);
RoaringBitmap RangeBetweenPairwise(const Bsi& x, uint64_t lo, uint64_t hi);

}  // namespace bsi_compare
}  // namespace expbsi

#endif  // EXPBSI_BSI_BSI_COMPARE_H_
