#include "net/node_health.h"

#include <algorithm>

#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace expbsi {

NodeHealth::NodeHealth(int num_nodes, NodeHealthOptions options)
    : num_nodes_(num_nodes), options_(options), nodes_(num_nodes) {
  CHECK_GT(num_nodes, 0);
  CHECK_GT(options_.markdown_threshold, 0);
  CHECK_GT(options_.initial_backoff_rounds, 0);
  CHECK_GE(options_.max_backoff_rounds, options_.initial_backoff_rounds);
  CHECK_GT(options_.latency_window, 0);
  for (NodeState& s : nodes_) {
    s.latencies.assign(static_cast<size_t>(options_.latency_window), 0.0);
  }
}

void NodeHealth::BeginRound() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int n = 0; n < num_nodes_; ++n) {
    NodeState& s = nodes_[n];
    if (!s.down || s.probe_due) continue;
    if (s.rounds_until_probe > 0) --s.rounds_until_probe;
    if (s.rounds_until_probe == 0) {
      s.probe_due = true;
      obs::GetCounter("net.health.probes").Add(1);
      obs::FlightRecorder::Global().Record(obs::FlightEventKind::kNodeProbe,
                                           static_cast<uint64_t>(n));
    }
  }
}

bool NodeHealth::Usable(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState& s = nodes_[node];
  return !s.down || s.probe_due;
}

bool NodeHealth::IsMarkedDown(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[node].down;
}

int NodeHealth::consecutive_failures(int node) const {
  std::lock_guard<std::mutex> lock(mu_);
  return nodes_[node].consecutive_failures;
}

void NodeHealth::RecordSuccess(int node, double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& s = nodes_[node];
  if (s.down) {
    obs::GetCounter("net.health.revivals").Add(1);
    obs::FlightRecorder::Global().Record(obs::FlightEventKind::kNodeRevive,
                                         static_cast<uint64_t>(node));
  }
  s.down = false;
  s.probe_due = false;
  s.consecutive_failures = 0;
  s.backoff_rounds = 0;
  s.rounds_until_probe = 0;
  s.latencies[static_cast<size_t>(s.latency_next)] = latency_seconds;
  s.latency_next = (s.latency_next + 1) % options_.latency_window;
  if (s.latency_count < options_.latency_window) ++s.latency_count;
}

void NodeHealth::RecordFailure(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  NodeState& s = nodes_[node];
  ++s.consecutive_failures;
  obs::GetCounter("net.health.failures").Add(1);
  if (s.down) {
    // Failed probe: back off twice as long before the next one.
    s.probe_due = false;
    s.backoff_rounds =
        std::min(s.backoff_rounds * 2, options_.max_backoff_rounds);
    s.rounds_until_probe = s.backoff_rounds;
    return;
  }
  if (s.consecutive_failures >= options_.markdown_threshold) {
    s.down = true;
    s.probe_due = false;
    s.backoff_rounds = options_.initial_backoff_rounds;
    s.rounds_until_probe = s.backoff_rounds;
    ++markdown_count_;
    obs::GetCounter("net.health.markdowns").Add(1);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kNodeMarkdown, static_cast<uint64_t>(node),
        static_cast<uint64_t>(s.consecutive_failures));
  }
}

uint64_t NodeHealth::markdown_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return markdown_count_;
}

std::vector<NodeHealth::NodeSnapshot> NodeHealth::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeSnapshot> out(nodes_.size());
  for (size_t i = 0; i < nodes_.size(); ++i) {
    out[i].down = nodes_[i].down;
    out[i].consecutive_failures = nodes_[i].consecutive_failures;
  }
  return out;
}

double NodeHealth::HedgeDelaySeconds(int node, double default_delay) const {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeState& s = nodes_[node];
  if (s.latency_count < options_.min_latency_samples) return default_delay;
  std::vector<double> sorted(s.latencies.begin(),
                             s.latencies.begin() + s.latency_count);
  std::sort(sorted.begin(), sorted.end());
  size_t idx = static_cast<size_t>(options_.hedge_quantile *
                                   static_cast<double>(sorted.size() - 1));
  return std::max(sorted[idx], default_delay * 0.1);
}

}  // namespace expbsi
