#include "net/coordinator.h"

#include <algorithm>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injector.h"
#include "common/timer.h"
#include "obs/fleet.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/trace.h"
#include "wire/messages.h"

namespace expbsi {
namespace net {

namespace {

// Per-RPC classification the wave loop acts on. Permanent failures travel
// as plain Status instead.
enum class RpcOutcome {
  kOk,            // response merged
  kNodeDead,      // connect/send/recv/decode failed: fail over + markdown
  kBackpressure,  // node alive but rejecting (kError/kUnavailable): fail
                  // over, node excluded this query, but not a crash
};

// One RPC of a wave: the primary send to a node, or a hedge re-send of a
// subset of its segments to another replica. Attempts that never completed
// (hedge raced and lost, or the winner arrived first) carry
// completed == false and are skipped by the accounting -- their node is
// neither credited nor penalized.
struct RpcAttempt {
  int node = -1;
  std::vector<uint32_t> segments;
  uint64_t request_id = 0;
  bool is_hedge = false;
  bool completed = false;
  Result<RpcOutcome> outcome{RpcOutcome::kNodeDead};
  wire::WireQueryResponse resp;
  double latency_seconds = 0.0;
};

// All attempts one scatter task made for one node's wave; [0] is the
// primary, any hedges follow in hedge-node order.
struct NodeTask {
  std::vector<RpcAttempt> attempts;
  // Hedge plan precomputed by the main thread under deterministic state:
  // (segment, next untried alive replica) for every segment that has one.
  std::vector<std::pair<uint32_t, int>> hedge_plan;
};

// Grafts a node's shipped span tree under the coordinator's current
// (node_rpc) span. Remote spans arrive in creation order, so parents are
// remapped before their children.
void GraftRemoteSpans(const std::vector<wire::WireSpan>& spans) {
  obs::QueryTrace* trace = obs::CurrentTrace();
  const uint32_t rpc_span = obs::CurrentSpanId();
  if (trace == nullptr || rpc_span == 0) return;
  std::unordered_map<uint32_t, uint32_t> local_id;
  std::unordered_map<uint32_t, uint64_t> remote_start;
  for (const wire::WireSpan& s : spans) {
    uint32_t parent = rpc_span;
    uint64_t parent_start = 0;
    if (s.parent_id != 0) {
      const auto it = local_id.find(s.parent_id);
      if (it == local_id.end()) continue;  // orphan: parent was dropped
      parent = it->second;
      parent_start = remote_start[s.parent_id];
    }
    const uint64_t rel_start =
        s.start_ns >= parent_start ? s.start_ns - parent_start : 0;
    local_id[s.id] =
        trace->ImportSpan(parent, s.name, rel_start, s.duration_ns, s.attrs);
    remote_start[s.id] = s.start_ns;
  }
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)),
      placement_(static_cast<int>(options_.node_ports.size()),
                 options_.num_segments, options_.replication_factor),
      health_(static_cast<int>(options_.node_ports.size())) {
  CHECK_GT(options_.node_ports.size(), 0u);
  CHECK_GT(options_.num_segments, 0);
  endpoints_.reserve(options_.node_ports.size());
  hedge_endpoints_.reserve(options_.node_ports.size());
  for (size_t n = 0; n < options_.node_ports.size(); ++n) {
    endpoints_.push_back(std::make_unique<FaultyEndpoint>(
        kNetClientEndpointBase + static_cast<uint64_t>(n)));
    hedge_endpoints_.push_back(std::make_unique<FaultyEndpoint>(
        kNetHedgeEndpointBase + static_cast<uint64_t>(n)));
  }
}

Result<AdhocCluster::QueryStats> Coordinator::QueryBsi(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);

  // Admission control: bound concurrent scatter/gathers instead of letting
  // queued queries blow every deadline downstream.
  struct RunningGuard {
    std::atomic<int>& counter;
    ~RunningGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  };
  if (running_queries_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_concurrent_queries) {
    RunningGuard guard{running_queries_};
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::GetCounter("coordinator.admission_rejections");
    rejected.Add();
    return Status::Unavailable("coordinator: at max_concurrent_queries");
  }
  RunningGuard guard{running_queries_};

  const uint64_t markdowns_before = health_.markdown_count();
  std::vector<int> involved_nodes;
  Result<AdhocCluster::QueryStats> result = QueryBsiInternal(
      strategy_ids, metric_ids, date_lo, date_hi, &involved_nodes);
  if (!result.ok()) return result;
  // The internal call's ScopedTrace has closed: the root span is final and
  // the slow-query check has run, so the bundle freezes the same trace the
  // slow-query line printed.
  MaybeWritePostmortem(&result.value(), markdowns_before, involved_nodes);
  return result;
}

Result<AdhocCluster::QueryStats> Coordinator::QueryBsiInternal(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi,
    std::vector<int>* involved_nodes) {
  AdhocCluster::QueryStats stats;
  stats.trace = std::make_shared<obs::QueryTrace>("coordinator_query_bsi");
  obs::ScopedTrace install_trace(stats.trace.get());
  static obs::Counter& queries = obs::GetCounter("coordinator.queries");
  queries.Add();
  const uint64_t flight_trace_id = stats.trace->trace_id();
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kQueryAdmit,
      static_cast<uint64_t>(options_.num_segments));
  Stopwatch wall;
  const Deadline deadline =
      Deadline::After(options_.query_deadline_seconds);

  const int num_nodes = static_cast<int>(options_.node_ports.size());
  const int num_segments = options_.num_segments;
  const size_t num_metrics = metric_ids.size();
  const size_t slots = strategy_ids.size() * num_metrics;

  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  // Per-segment routing state. A segment is pending until answered or
  // declared lost; `tried[seg]` are replicas that had their chance (dead,
  // or answered lost=1). Loss is recorded only when no alive untried
  // replica remains -- with R=2 that needs BOTH replicas down.
  std::vector<bool> answered(num_segments, false);
  std::vector<bool> failed_over(num_segments, false);
  std::vector<std::vector<bool>> tried(
      num_segments, std::vector<bool>(num_nodes, false));
  std::vector<bool> alive(num_nodes, true);
  std::vector<uint32_t> pending;
  pending.reserve(num_segments);
  for (int seg = 0; seg < num_segments; ++seg) {
    pending.push_back(static_cast<uint32_t>(seg));
  }
  std::vector<int> lost_segments;
  std::set<int> involved;  // nodes any completed RPC attempt touched
  int wave_index = 0;
  static obs::Counter& waves_counter = obs::GetCounter("coordinator.waves");
  static obs::Counter& requeue_counter =
      obs::GetCounter("coordinator.requeued_segments");
  static obs::Counter& crash_counter =
      obs::GetCounter("coordinator.nodes_lost");
  static obs::Counter& seg_counter =
      obs::GetCounter("coordinator.segments_processed");
  static obs::Counter& hedged_rpcs = obs::GetCounter("coordinator.hedged_rpcs");
  static obs::Counter& hedge_wins = obs::GetCounter("coordinator.hedge_wins");

  auto build_request = [&](const std::vector<uint32_t>& segments,
                           uint64_t request_id) {
    wire::Envelope env;
    env.type = wire::MsgType::kQueryRequest;
    env.request_id = request_id;
    wire::WireQueryRequest req;
    req.strategy_ids = strategy_ids;
    req.metric_ids = metric_ids;
    req.date_lo = date_lo;
    req.date_hi = date_hi;
    req.segments = segments;
    req.allow_degraded = options_.allow_degraded;
    req.want_trace = options_.want_trace;
    wire::EncodeQueryRequest(req, &env.payload);
    return env;
  };

  // Gathers and classifies one reply. A response must answer exactly the
  // segments asked, with correctly-shaped vectors; anything else is a
  // protocol violation and the node is treated as dead rather than trusted.
  auto recv_and_classify =
      [&](Socket& sock, uint64_t request_id,
          const std::vector<uint32_t>& asked_segments,
          wire::WireQueryResponse* resp) -> Result<RpcOutcome> {
    Result<wire::Envelope> reply = RecvEnvelope(sock, deadline, request_id);
    if (!reply.ok()) return RpcOutcome::kNodeDead;
    if (reply.value().type == wire::MsgType::kError) {
      Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
      if (!err.ok()) return RpcOutcome::kNodeDead;
      if (err.value().code == StatusCode::kUnavailable) {
        return RpcOutcome::kBackpressure;
      }
      // Permanent node-side failure (strict-mode Corruption etc.): fails
      // the query, exactly as the in-process cluster propagates it.
      return Status(err.value().code, "node error: " + err.value().message);
    }
    if (reply.value().type != wire::MsgType::kQueryResponse) {
      return RpcOutcome::kNodeDead;
    }
    Result<wire::WireQueryResponse> decoded =
        wire::DecodeQueryResponse(reply.value().payload);
    if (!decoded.ok()) return RpcOutcome::kNodeDead;
    const std::set<uint32_t> asked(asked_segments.begin(),
                                   asked_segments.end());
    std::set<uint32_t> seen;
    for (const wire::WireSegmentResult& seg : decoded.value().segments) {
      if (asked.count(seg.segment) == 0 || !seen.insert(seg.segment).second) {
        return RpcOutcome::kNodeDead;
      }
      if (seg.lost == 0 &&
          (seg.sums.size() != slots || seg.counts.size() != slots)) {
        return RpcOutcome::kNodeDead;
      }
    }
    if (seen.size() != asked.size()) return RpcOutcome::kNodeDead;
    *resp = std::move(decoded).value();
    return RpcOutcome::kOk;
  };

  // One scatter task: the primary RPC for one node's wave segments, plus
  // (when enabled and the primary is slow) hedge RPCs to each segment's
  // next replica. Runs in its own thread; touches no trace or routing
  // state -- all accounting happens post-join on the main thread, in
  // deterministic task order.
  auto run_task = [&](NodeTask& task) {
    // Appending hedge attempts must never reallocate `attempts` -- `primary`
    // stays bound to [0] -- so reserve the worst case (one hedge RPC per
    // other node) up front.
    task.attempts.reserve(options_.node_ports.size());
    RpcAttempt& primary = task.attempts[0];
    Stopwatch rpc_wall;
    auto finish = [&](RpcAttempt& a, Result<RpcOutcome> outcome) {
      a.outcome = std::move(outcome);
      a.latency_seconds = rpc_wall.ElapsedSeconds();
      a.completed = true;
    };
    Result<Socket> sock =
        Connect(options_.node_ports[primary.node], deadline);
    if (!sock.ok()) {
      finish(primary, RpcOutcome::kNodeDead);
      return;
    }
    if (!SendEnvelope(sock.value(),
                      build_request(primary.segments, primary.request_id),
                      deadline, endpoints_[primary.node].get())
             .ok()) {
      finish(primary, RpcOutcome::kNodeDead);
      return;
    }
    if (!options_.hedge_reads || task.hedge_plan.empty()) {
      finish(primary,
             recv_and_classify(sock.value(), primary.request_id,
                               primary.segments, &primary.resp));
      return;
    }

    // Hedged path: give the primary its hedge delay, then re-send the
    // outstanding segments to their next replicas and take the first valid
    // answer per segment.
    const double delay_s = health_.HedgeDelaySeconds(
        primary.node, options_.hedge_delay_seconds);
    const int delay_ms = std::min(
        std::max(1, static_cast<int>(delay_s * 1000.0)),
        deadline.RemainingMs());
    Result<bool> readable = WaitReadable(sock.value(), delay_ms);
    if (!readable.ok()) {
      finish(primary, RpcOutcome::kNodeDead);
      return;
    }
    if (readable.value()) {
      finish(primary,
             recv_and_classify(sock.value(), primary.request_id,
                               primary.segments, &primary.resp));
      return;
    }
    hedged_rpcs.Add();
    // Task threads have no thread-local trace installed, so the trace id is
    // stamped explicitly.
    obs::FlightRecorder::Global().RecordWithTraceId(
        obs::FlightEventKind::kHedgeFired,
        static_cast<uint64_t>(primary.node), 0, flight_trace_id);
    std::map<int, std::vector<uint32_t>> by_node;
    for (const auto& [seg, hedge_node] : task.hedge_plan) {
      by_node[hedge_node].push_back(seg);
    }
    for (auto& [hedge_node, hedge_segments] : by_node) {
      RpcAttempt a;
      a.node = hedge_node;
      a.segments = std::move(hedge_segments);
      a.is_hedge = true;
      // Hedge ids are allocated from racing task threads: fine here, but
      // the reason hedging stays off in determinism suites.
      a.request_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
      task.attempts.push_back(std::move(a));
    }
    std::vector<Socket> socks(task.attempts.size());
    socks[0] = std::move(sock).value();
    for (size_t i = 1; i < task.attempts.size(); ++i) {
      RpcAttempt& a = task.attempts[i];
      Result<Socket> hs = Connect(options_.node_ports[a.node], deadline);
      if (!hs.ok() ||
          !SendEnvelope(hs.value(), build_request(a.segments, a.request_id),
                        deadline, hedge_endpoints_[a.node].get())
               .ok()) {
        finish(a, RpcOutcome::kNodeDead);
        continue;
      }
      socks[i] = std::move(hs).value();
    }
    std::set<uint32_t> got;
    while (!deadline.expired()) {
      bool any_open = false;
      for (size_t i = 0; i < task.attempts.size(); ++i) {
        RpcAttempt& a = task.attempts[i];
        if (a.completed || !socks[i].valid()) continue;
        any_open = true;
        Result<bool> r = WaitReadable(socks[i], 20);
        if (!r.ok()) {
          finish(a, RpcOutcome::kNodeDead);
          continue;
        }
        if (!r.value()) continue;
        finish(a, recv_and_classify(socks[i], a.request_id, a.segments,
                                    &a.resp));
        if (a.outcome.ok() && a.outcome.value() == RpcOutcome::kOk) {
          if (a.is_hedge) hedge_wins.Add();
          for (const wire::WireSegmentResult& seg : a.resp.segments) {
            if (seg.lost == 0) got.insert(seg.segment);
          }
        }
      }
      if (!any_open) break;
      bool complete = true;
      for (uint32_t seg : primary.segments) {
        if (got.count(seg) == 0) {
          complete = false;
          break;
        }
      }
      if (complete) break;  // stragglers stay abandoned, never penalized
    }
  };

  while (true) {
    health_.BeginRound();
    // Route every pending segment to the healthiest alive replica it has
    // not tried; a segment with no such replica is lost right here --
    // explicitly, never silently.
    std::map<int, std::vector<uint32_t>> targets;
    std::vector<uint32_t> still_pending;
    for (uint32_t seg : pending) {
      int target = -1;
      int fallback = -1;  // alive untried replica that is marked down
      for (int n : placement_.ReplicasOf(static_cast<int>(seg))) {
        if (!alive[n] || tried[seg][n]) continue;
        if (fallback < 0) fallback = n;
        if (health_.Usable(n)) {
          target = n;
          break;
        }
      }
      // Every candidate marked down: probe the best one anyway -- loss is
      // only acceptable after an actual failed dial, not a stale markdown.
      if (target < 0) target = fallback;
      if (target < 0) {
        if (!options_.allow_degraded) {
          return Status::Unavailable(
              "coordinator: every replica of segment " +
              std::to_string(seg) + " lost mid-query");
        }
        lost_segments.push_back(static_cast<int>(seg));
        continue;
      }
      targets[target].push_back(seg);
      still_pending.push_back(seg);
    }
    pending = std::move(still_pending);
    if (targets.empty()) break;

    obs::ScopedSpan wave_span("wave");
    wave_span.AddAttr("wave", static_cast<uint64_t>(wave_index++));
    waves_counter.Add();

    // Dispatch: request ids allocated here, in node order, so fault
    // schedules and traces replay deterministically; hedge plans are
    // likewise fixed before any thread runs.
    std::vector<NodeTask> tasks(targets.size());
    size_t ti = 0;
    for (auto& [node, segments] : targets) {
      NodeTask& task = tasks[ti++];
      RpcAttempt primary;
      primary.node = node;
      primary.segments = std::move(segments);
      primary.request_id =
          next_request_id_.fetch_add(1, std::memory_order_relaxed);
      if (options_.hedge_reads) {
        for (uint32_t seg : primary.segments) {
          for (int n : placement_.ReplicasOf(static_cast<int>(seg))) {
            if (n == node || !alive[n] || tried[seg][n]) continue;
            task.hedge_plan.emplace_back(seg, n);
            break;
          }
        }
      }
      task.attempts.push_back(std::move(primary));
    }
    std::vector<std::thread> threads;
    threads.reserve(tasks.size());
    for (NodeTask& task : tasks) {
      threads.emplace_back([&run_task, &task] { run_task(task); });
    }
    for (std::thread& t : threads) t.join();

    // Post-join accounting, in task order on this thread only: trace span
    // ids, health updates and routing state all stay deterministic.
    std::vector<bool> counted_dead(num_nodes, false);
    for (NodeTask& task : tasks) {
      for (RpcAttempt& attempt : task.attempts) {
        if (!attempt.completed) continue;  // abandoned hedge straggler
        involved.insert(attempt.node);
        obs::ScopedSpan rpc_span("node_rpc");
        rpc_span.AddAttr("node", static_cast<uint64_t>(attempt.node));
        rpc_span.AddAttr("segments", attempt.segments.size());
        if (attempt.is_hedge) rpc_span.AddAttr("hedge", 1);
        if (!attempt.outcome.ok()) return attempt.outcome.status();
        switch (attempt.outcome.value()) {
          case RpcOutcome::kOk: {
            health_.RecordSuccess(attempt.node, attempt.latency_seconds);
            wire::WireQueryResponse& resp = attempt.resp;
            stats.degraded.retries += static_cast<int>(resp.retries);
            stats.degraded.faults_survived +=
                static_cast<int>(resp.faults_survived);
            stats.total_cpu_seconds += resp.cpu_seconds;
            stats.bytes_from_cold += resp.bytes_from_cold;
            stats.hot_hits += resp.hot_hits;
            rpc_span.AddAttr("cold_bytes", resp.bytes_from_cold);
            rpc_span.AddAttr("hot_hits", resp.hot_hits);
            GraftRemoteSpans(resp.spans);
            for (const wire::WireSegmentResult& seg : resp.segments) {
              if (seg.lost != 0) {
                // Node-side degradation: fail the segment over to its next
                // replica instead of recording it lost -- DegradedInfo is
                // reachable only once every replica had its chance.
                tried[seg.segment][attempt.node] = true;
                failed_over[seg.segment] = true;
                requeue_counter.Add();
                obs::FlightRecorder::Global().Record(
                    obs::FlightEventKind::kFailover, seg.segment,
                    static_cast<uint64_t>(attempt.node));
                continue;
              }
              if (answered[seg.segment]) continue;  // hedge duplicate
              answered[seg.segment] = true;
              seg_counter.Add();
              size_t slot = 0;
              for (uint64_t s : strategy_ids) {
                for (uint64_t m : metric_ids) {
                  BucketValues& bv = partials[{s, m}];
                  bv.sums[seg.segment] = seg.sums[slot];
                  bv.counts[seg.segment] = seg.counts[slot];
                  ++slot;
                }
              }
              if (failed_over[seg.segment]) ++stats.degraded.faults_survived;
            }
            break;
          }
          case RpcOutcome::kNodeDead: {
            health_.RecordFailure(attempt.node);
            rpc_span.AddAttr("node_dead", 1);
            if (alive[attempt.node] && !counted_dead[attempt.node]) {
              counted_dead[attempt.node] = true;
              ++stats.degraded.nodes_lost;
              crash_counter.Add();
            }
            alive[attempt.node] = false;
            for (uint32_t seg : attempt.segments) {
              tried[seg][attempt.node] = true;
              if (!answered[seg]) {
                failed_over[seg] = true;
                requeue_counter.Add();
                obs::FlightRecorder::Global().Record(
                    obs::FlightEventKind::kFailover, seg,
                    static_cast<uint64_t>(attempt.node));
              }
            }
            break;
          }
          case RpcOutcome::kBackpressure: {
            // Alive but full: excluded for the rest of this query, its
            // segments fail over. Not a crash and not a health failure.
            rpc_span.AddAttr("backpressure", 1);
            alive[attempt.node] = false;
            for (uint32_t seg : attempt.segments) {
              if (!answered[seg]) {
                failed_over[seg] = true;
                requeue_counter.Add();
              }
            }
            break;
          }
        }
      }
    }
    std::vector<uint32_t> next_pending;
    for (uint32_t seg : pending) {
      if (!answered[seg]) next_pending.push_back(seg);
    }
    pending = std::move(next_pending);
    if (deadline.expired() && !pending.empty()) {
      if (!options_.allow_degraded) {
        return Status::Unavailable("coordinator: query deadline expired");
      }
      // Everything still unanswered is enumerated, never dropped quietly.
      for (uint32_t seg : pending) {
        lost_segments.push_back(static_cast<int>(seg));
      }
      pending.clear();
    }
    if (pending.empty()) break;
  }

  std::sort(lost_segments.begin(), lost_segments.end());
  lost_segments.erase(
      std::unique(lost_segments.begin(), lost_segments.end()),
      lost_segments.end());
  stats.degraded.segments_answered =
      num_segments - static_cast<int>(lost_segments.size());
  if (!lost_segments.empty()) {
    static obs::Counter& lost_counter =
        obs::GetCounter("coordinator.degraded_segments");
    lost_counter.Add(lost_segments.size());
  }
  obs::CurrentSpanAttr("waves", static_cast<uint64_t>(wave_index));
  obs::CurrentSpanAttr(
      "segments_answered",
      static_cast<uint64_t>(stats.degraded.segments_answered));
  obs::CurrentSpanAttr("lost_segments", lost_segments.size());
  obs::CurrentSpanAttr("retries",
                       static_cast<uint64_t>(stats.degraded.retries));
  obs::CurrentSpanAttr("nodes_lost",
                       static_cast<uint64_t>(stats.degraded.nodes_lost));
  stats.degraded.lost_segments = std::move(lost_segments);
  stats.results = std::move(partials);
  stats.latency_seconds = wall.ElapsedSeconds();
  if (stats.degraded.degraded()) {
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kQueryDegraded,
        stats.degraded.lost_segments.size(),
        static_cast<uint64_t>(stats.degraded.nodes_lost));
  }
  obs::FlightRecorder::Global().Record(
      obs::FlightEventKind::kQueryFinish,
      static_cast<uint64_t>(stats.latency_seconds * 1e6),
      stats.degraded.lost_segments.size());
  involved_nodes->assign(involved.begin(), involved.end());
  return stats;
}

void Coordinator::MaybeWritePostmortem(
    AdhocCluster::QueryStats* stats, uint64_t markdowns_before,
    const std::vector<int>& involved_nodes) {
  std::string reason;
  if (stats->degraded.degraded()) {
    reason = "degraded";
  } else if (health_.markdown_count() > markdowns_before ||
             stats->degraded.nodes_lost > 0) {
    reason = "node_markdown";
  } else {
    const double threshold_ms = obs::SlowQueryThresholdMs();
    if (threshold_ms >= 0.0 &&
        stats->latency_seconds * 1000.0 >= threshold_ms) {
      reason = "slow_query";
    }
  }
  if (reason.empty() || options_.postmortem_dir.empty()) return;

  obs::PostmortemBundle bundle;
  bundle.reason = reason;
  bundle.trace_id = stats->trace ? stats->trace->trace_id() : 0;
  bundle.query = "coordinator_query_bsi";
  bundle.duration_ms = stats->latency_seconds * 1000.0;
  for (int seg : stats->degraded.lost_segments) {
    bundle.lost_segments.push_back(static_cast<uint32_t>(seg));
  }
  bundle.segments_answered =
      static_cast<uint64_t>(stats->degraded.segments_answered);
  bundle.retries = static_cast<uint32_t>(stats->degraded.retries);
  bundle.faults_survived =
      static_cast<uint32_t>(stats->degraded.faults_survived);
  bundle.nodes_lost = static_cast<uint32_t>(stats->degraded.nodes_lost);
  if (stats->trace) bundle.trace_json = stats->trace->ToJson();
  const std::vector<NodeHealth::NodeSnapshot> health = health_.Snapshot();
  for (size_t n = 0; n < health.size(); ++n) {
    obs::PostmortemNodeHealth h;
    h.node = static_cast<int>(n);
    h.down = health[n].down;
    h.consecutive_failures = health[n].consecutive_failures;
    bundle.health.push_back(h);
  }
  // The coordinator's own ring: everything since the query began.
  obs::PostmortemFlightSlice self;
  self.label = "coordinator";
  self.fetched = true;
  self.events = obs::FlightRecorder::Global().Snapshot(
      stats->trace ? stats->trace->start_flight_seq() : 0);
  self.next_seq = obs::FlightRecorder::Global().NextSeq();
  bundle.slices.push_back(std::move(self));
  // Every node the query touched, pulled with the coordinator-held cursors
  // so consecutive bundles ship disjoint event ranges.
  {
    std::lock_guard<std::mutex> lock(pm_mu_);
    if (pm_cursors_.size() < options_.node_ports.size()) {
      pm_cursors_.resize(options_.node_ports.size(), 0);
    }
    for (int n : involved_nodes) {
      obs::PostmortemFlightSlice slice;
      slice.label =
          "127.0.0.1:" + std::to_string(options_.node_ports[n]);
      wire::WireStatsFetch fetch;
      fetch.since_seq = pm_cursors_[static_cast<size_t>(n)];
      fetch.want_metrics = false;
      fetch.want_events = true;
      Result<wire::WireStatsReply> reply =
          obs::FetchStats(options_.node_ports[n], fetch,
                          options_.postmortem_fetch_deadline_seconds);
      if (reply.ok()) {
        slice.fetched = true;
        slice.events = obs::EventsFromReply(reply.value());
        slice.next_seq = reply.value().next_seq;
        pm_cursors_[static_cast<size_t>(n)] = reply.value().next_seq;
      } else {
        slice.error = reply.status().ToString();
      }
      bundle.slices.push_back(std::move(slice));
    }
  }
  Result<std::string> written =
      obs::WritePostmortem(options_.postmortem_dir, bundle);
  if (written.ok()) stats->postmortem_path = std::move(written).value();
}

}  // namespace net
}  // namespace expbsi
