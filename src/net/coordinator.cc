#include "net/coordinator.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/fault_injector.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wire/messages.h"

namespace expbsi {
namespace net {

namespace {

// Per-RPC classification the wave loop acts on. Permanent failures travel
// as plain Status instead.
enum class RpcOutcome {
  kOk,            // response merged
  kNodeDead,      // connect/send/recv/decode failed: requeue the wave
  kBackpressure,  // node alive but rejecting (kError/kUnavailable): same
                  // requeue, but not counted as a crash
};

// Grafts a node's shipped span tree under the coordinator's current
// (node_rpc) span. Remote spans arrive in creation order, so parents are
// remapped before their children.
void GraftRemoteSpans(const std::vector<wire::WireSpan>& spans) {
  obs::QueryTrace* trace = obs::CurrentTrace();
  const uint32_t rpc_span = obs::CurrentSpanId();
  if (trace == nullptr || rpc_span == 0) return;
  std::unordered_map<uint32_t, uint32_t> local_id;
  std::unordered_map<uint32_t, uint64_t> remote_start;
  for (const wire::WireSpan& s : spans) {
    uint32_t parent = rpc_span;
    uint64_t parent_start = 0;
    if (s.parent_id != 0) {
      const auto it = local_id.find(s.parent_id);
      if (it == local_id.end()) continue;  // orphan: parent was dropped
      parent = it->second;
      parent_start = remote_start[s.parent_id];
    }
    const uint64_t rel_start =
        s.start_ns >= parent_start ? s.start_ns - parent_start : 0;
    local_id[s.id] =
        trace->ImportSpan(parent, s.name, rel_start, s.duration_ns, s.attrs);
    remote_start[s.id] = s.start_ns;
  }
}

}  // namespace

Coordinator::Coordinator(CoordinatorOptions options)
    : options_(std::move(options)) {
  CHECK_GT(options_.node_ports.size(), 0u);
  CHECK_GT(options_.num_segments, 0);
  endpoints_.reserve(options_.node_ports.size());
  for (size_t n = 0; n < options_.node_ports.size(); ++n) {
    endpoints_.push_back(std::make_unique<FaultyEndpoint>(
        kNetClientEndpointBase + static_cast<uint64_t>(n)));
  }
}

Result<AdhocCluster::QueryStats> Coordinator::QueryBsi(
    const std::vector<uint64_t>& strategy_ids,
    const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi) {
  CHECK_LE(date_lo, date_hi);

  // Admission control: bound concurrent scatter/gathers instead of letting
  // queued queries blow every deadline downstream.
  struct RunningGuard {
    std::atomic<int>& counter;
    ~RunningGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  };
  if (running_queries_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_concurrent_queries) {
    RunningGuard guard{running_queries_};
    admission_rejections_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::GetCounter("coordinator.admission_rejections");
    rejected.Add();
    return Status::Unavailable("coordinator: at max_concurrent_queries");
  }
  RunningGuard guard{running_queries_};

  AdhocCluster::QueryStats stats;
  stats.trace = std::make_shared<obs::QueryTrace>("coordinator_query_bsi");
  obs::ScopedTrace install_trace(stats.trace.get());
  static obs::Counter& queries = obs::GetCounter("coordinator.queries");
  queries.Add();
  Stopwatch wall;
  const Deadline deadline =
      Deadline::After(options_.query_deadline_seconds);

  const int num_nodes = static_cast<int>(options_.node_ports.size());
  const int num_segments = options_.num_segments;
  const size_t num_metrics = metric_ids.size();

  std::map<StrategyMetricPair, BucketValues> partials;
  for (uint64_t s : strategy_ids) {
    for (uint64_t m : metric_ids) {
      BucketValues bv;
      bv.sums.assign(num_segments, 0.0);
      bv.counts.assign(num_segments, 0.0);
      partials.emplace(StrategyMetricPair{s, m}, std::move(bv));
    }
  }

  // Same placement as AdhocCluster::NodeOfSegment; requeued segments land
  // on survivors in later waves.
  std::vector<std::vector<uint32_t>> assignment(num_nodes);
  for (int seg = 0; seg < num_segments; ++seg) {
    assignment[seg % num_nodes].push_back(static_cast<uint32_t>(seg));
  }
  std::vector<bool> alive(num_nodes, true);
  std::vector<int> lost_segments;
  std::set<uint32_t> requeued_segments;
  int wave_index = 0;
  bool deadline_hit = false;
  static obs::Counter& waves_counter = obs::GetCounter("coordinator.waves");
  static obs::Counter& requeue_counter =
      obs::GetCounter("coordinator.requeued_segments");
  static obs::Counter& crash_counter =
      obs::GetCounter("coordinator.nodes_lost");

  // One node RPC: connect, scatter the node's wave, gather its response.
  // Fills `resp` on kOk; permanent failures come back as a Status.
  auto node_rpc = [&](int node,
                      const std::vector<uint32_t>& segments,
                      wire::WireQueryResponse* resp) -> Result<RpcOutcome> {
    Result<Socket> sock = Connect(options_.node_ports[node], deadline);
    if (!sock.ok()) return RpcOutcome::kNodeDead;
    wire::Envelope env;
    env.type = wire::MsgType::kQueryRequest;
    env.request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    wire::WireQueryRequest req;
    req.strategy_ids = strategy_ids;
    req.metric_ids = metric_ids;
    req.date_lo = date_lo;
    req.date_hi = date_hi;
    req.segments = segments;
    req.allow_degraded = options_.allow_degraded;
    req.want_trace = options_.want_trace;
    wire::EncodeQueryRequest(req, &env.payload);
    if (!SendEnvelope(sock.value(), env, deadline, endpoints_[node].get())
             .ok()) {
      return RpcOutcome::kNodeDead;
    }
    Result<wire::Envelope> reply =
        RecvEnvelope(sock.value(), deadline, env.request_id);
    if (!reply.ok()) return RpcOutcome::kNodeDead;
    if (reply.value().type == wire::MsgType::kError) {
      Result<wire::WireError> err =
          wire::DecodeError(reply.value().payload);
      if (!err.ok()) return RpcOutcome::kNodeDead;
      if (err.value().code == StatusCode::kUnavailable) {
        return RpcOutcome::kBackpressure;
      }
      // Permanent node-side failure (strict-mode Corruption etc.): fails
      // the query, exactly as the in-process cluster propagates it.
      return Status(err.value().code, "node error: " + err.value().message);
    }
    if (reply.value().type != wire::MsgType::kQueryResponse) {
      return RpcOutcome::kNodeDead;
    }
    Result<wire::WireQueryResponse> decoded =
        wire::DecodeQueryResponse(reply.value().payload);
    if (!decoded.ok()) return RpcOutcome::kNodeDead;
    // A response must answer exactly the segments asked, with
    // correctly-shaped vectors; anything else is a protocol violation and
    // the node is treated as dead rather than trusted.
    const std::set<uint32_t> asked(segments.begin(), segments.end());
    std::set<uint32_t> answered;
    const size_t slots = strategy_ids.size() * num_metrics;
    for (const wire::WireSegmentResult& seg : decoded.value().segments) {
      if (asked.count(seg.segment) == 0 ||
          !answered.insert(seg.segment).second) {
        return RpcOutcome::kNodeDead;
      }
      if (seg.lost == 0 &&
          (seg.sums.size() != slots || seg.counts.size() != slots)) {
        return RpcOutcome::kNodeDead;
      }
    }
    if (answered.size() != asked.size()) return RpcOutcome::kNodeDead;
    *resp = std::move(decoded).value();
    return RpcOutcome::kOk;
  };

  while (true) {
    std::vector<uint32_t> requeue;
    obs::ScopedSpan wave_span("wave");
    wave_span.AddAttr("wave", static_cast<uint64_t>(wave_index++));
    waves_counter.Add();
    for (int node = 0; node < num_nodes; ++node) {
      if (!alive[node] || assignment[node].empty()) continue;
      obs::ScopedSpan rpc_span("node_rpc");
      rpc_span.AddAttr("node", static_cast<uint64_t>(node));
      rpc_span.AddAttr("segments", assignment[node].size());
      wire::WireQueryResponse resp;
      Result<RpcOutcome> outcome =
          node_rpc(node, assignment[node], &resp);
      if (!outcome.ok()) return outcome.status();
      if (deadline.expired()) {
        deadline_hit = true;
        rpc_span.AddAttr("deadline_expired", 1);
        break;
      }
      switch (outcome.value()) {
        case RpcOutcome::kOk: {
          stats.degraded.retries += static_cast<int>(resp.retries);
          stats.degraded.faults_survived +=
              static_cast<int>(resp.faults_survived);
          stats.total_cpu_seconds += resp.cpu_seconds;
          stats.bytes_from_cold += resp.bytes_from_cold;
          stats.hot_hits += resp.hot_hits;
          rpc_span.AddAttr("cold_bytes", resp.bytes_from_cold);
          rpc_span.AddAttr("hot_hits", resp.hot_hits);
          GraftRemoteSpans(resp.spans);
          static obs::Counter& seg_counter =
              obs::GetCounter("coordinator.segments_processed");
          for (const wire::WireSegmentResult& seg : resp.segments) {
            if (seg.lost != 0) {
              // Node-side degradation: the exact segment is enumerated,
              // never silently zeroed. Not requeued -- the node is alive
              // and its retries already ran.
              lost_segments.push_back(static_cast<int>(seg.segment));
              continue;
            }
            seg_counter.Add();
            size_t slot = 0;
            for (uint64_t s : strategy_ids) {
              for (uint64_t m : metric_ids) {
                BucketValues& bv = partials[{s, m}];
                bv.sums[seg.segment] = seg.sums[slot];
                bv.counts[seg.segment] = seg.counts[slot];
                ++slot;
              }
            }
            if (requeued_segments.erase(seg.segment) > 0) {
              ++stats.degraded.faults_survived;
            }
          }
          break;
        }
        case RpcOutcome::kNodeDead:
          alive[node] = false;
          ++stats.degraded.nodes_lost;
          rpc_span.AddAttr("node_dead", 1);
          crash_counter.Add();
          requeue_counter.Add(assignment[node].size());
          requeue.insert(requeue.end(), assignment[node].begin(),
                         assignment[node].end());
          break;
        case RpcOutcome::kBackpressure:
          // Alive but full: excluded for the rest of this query, its wave
          // redistributed. Not a crash.
          alive[node] = false;
          rpc_span.AddAttr("backpressure", 1);
          requeue_counter.Add(assignment[node].size());
          requeue.insert(requeue.end(), assignment[node].begin(),
                         assignment[node].end());
          break;
      }
      assignment[node].clear();
    }
    if (deadline_hit) {
      // Everything still unanswered -- this wave's leftovers plus any
      // requeue backlog -- is enumerated, never dropped quietly.
      for (int node = 0; node < num_nodes; ++node) {
        for (uint32_t seg : assignment[node]) {
          requeue.push_back(seg);
        }
        assignment[node].clear();
      }
      if (!options_.allow_degraded) {
        return Status::Unavailable("coordinator: query deadline expired");
      }
      for (uint32_t seg : requeue) {
        lost_segments.push_back(static_cast<int>(seg));
      }
      break;
    }
    if (requeue.empty()) break;
    std::vector<int> survivors;
    for (int node = 0; node < num_nodes; ++node) {
      if (alive[node]) survivors.push_back(node);
    }
    if (survivors.empty()) {
      if (!options_.allow_degraded) {
        return Status::Unavailable("coordinator: every node lost mid-query");
      }
      for (uint32_t seg : requeue) {
        lost_segments.push_back(static_cast<int>(seg));
      }
      break;
    }
    for (size_t i = 0; i < requeue.size(); ++i) {
      assignment[survivors[i % survivors.size()]].push_back(requeue[i]);
      requeued_segments.insert(requeue[i]);
    }
  }

  std::sort(lost_segments.begin(), lost_segments.end());
  lost_segments.erase(
      std::unique(lost_segments.begin(), lost_segments.end()),
      lost_segments.end());
  stats.degraded.segments_answered =
      num_segments - static_cast<int>(lost_segments.size());
  if (!lost_segments.empty()) {
    static obs::Counter& lost_counter =
        obs::GetCounter("coordinator.degraded_segments");
    lost_counter.Add(lost_segments.size());
  }
  obs::CurrentSpanAttr("waves", static_cast<uint64_t>(wave_index));
  obs::CurrentSpanAttr(
      "segments_answered",
      static_cast<uint64_t>(stats.degraded.segments_answered));
  obs::CurrentSpanAttr("lost_segments", lost_segments.size());
  obs::CurrentSpanAttr("retries",
                       static_cast<uint64_t>(stats.degraded.retries));
  obs::CurrentSpanAttr("nodes_lost",
                       static_cast<uint64_t>(stats.degraded.nodes_lost));
  stats.degraded.lost_segments = std::move(lost_segments);
  stats.results = std::move(partials);
  stats.latency_seconds = wall.ElapsedSeconds();
  return stats;
}

}  // namespace net
}  // namespace expbsi
