#ifndef EXPBSI_NET_TRANSPORT_H_
#define EXPBSI_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "net/socket.h"
#include "wire/envelope.h"

namespace expbsi {
namespace net {

// Framed envelope exchange over a socket, with the net.send fault site
// applied on the sending side (DESIGN.md §9 failure taxonomy):
//
//   drop       close the connection without writing -- the peer sees a
//              clean EOF instead of a timeout, so chaos schedules replay
//              at full speed
//   truncate   write a deterministic prefix of the frame, then close; the
//              peer fails the frame's CRC / length check
//   duplicate  write the frame twice; the receiver dedups by request_id
//   delay      sleep before writing (real wall-clock, so deadline-expiry
//              schedules exercise the actual timeout path)
//
// Fault op indices are explicit: endpoint_id * kNetOpStride + a
// per-endpoint send counter, so multi-threaded servers evaluate the same
// (site, index) stream regardless of connection interleaving.

// Per-endpoint send state; one per connection direction.
class FaultyEndpoint {
 public:
  explicit FaultyEndpoint(uint64_t endpoint_id)
      : endpoint_id_(endpoint_id) {}

  uint64_t endpoint_id() const { return endpoint_id_; }
  // Consumes and returns the next net.send op index for this endpoint.
  uint64_t NextSendIndex();

 private:
  uint64_t endpoint_id_;
  std::atomic<uint64_t> sends_{0};
};

// Encodes and writes one envelope. On an injected drop/truncate the socket
// is closed and Unavailable("net.send: injected ...") is returned -- the
// sender knows its peer will never see the frame.
Status SendEnvelope(Socket& sock, const wire::Envelope& envelope,
                    const Deadline& deadline, FaultyEndpoint* endpoint);

// Bound on mismatched-request_id frames one RecvEnvelope call will skip.
// Past it the receiver closes the connection and returns kUnavailable
// (counted in net.frames_skipped): a peer flooding stale ids must not pin
// the receiver until its deadline.
inline constexpr uint32_t kMaxSkippedFrames = 64;

// Reads one envelope: header first (validated -- CRC, magic, length cap --
// before the body read is sized), then exactly the promised body. Frames
// whose request_id is not `expected_request_id` are skipped (duplicated or
// stale replies from an abandoned exchange, up to kMaxSkippedFrames); pass
// 0 to accept any id.
Result<wire::Envelope> RecvEnvelope(Socket& sock, const Deadline& deadline,
                                    uint64_t expected_request_id);

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_TRANSPORT_H_
