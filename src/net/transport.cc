#include "net/transport.h"

#include <chrono>
#include <string>
#include <thread>

#include "common/fault_injector.h"
#include "obs/metrics.h"

namespace expbsi {
namespace net {

uint64_t FaultyEndpoint::NextSendIndex() {
  return endpoint_id_ * kNetOpStride +
         sends_.fetch_add(1, std::memory_order_relaxed);
}

Status SendEnvelope(Socket& sock, const wire::Envelope& envelope,
                    const Deadline& deadline, FaultyEndpoint* endpoint) {
  std::string frame;
  wire::EncodeEnvelope(envelope, &frame);
  int copies = 1;
  size_t bytes_to_send = frame.size();
  bool close_after = false;
  FaultInjector* const fi = FaultInjector::Get();
  if (fi != nullptr && endpoint != nullptr) {
    const FaultDecision d =
        fi->EvaluateAt(fault_sites::kNetSend, endpoint->NextSendIndex());
    if (d.delay_seconds > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(d.delay_seconds));
    }
    if (d.fail || d.crash) {
      // Drop: the frame never leaves this host. Closing (instead of
      // silently not writing) gives the peer a prompt EOF, so schedules
      // replay without waiting out a deadline.
      sock.Close();
      return Status::Unavailable("net.send: injected drop");
    }
    if (d.truncate) {
      bytes_to_send = frame.size() / 2;
      close_after = true;
    } else if (d.duplicate) {
      copies = 2;
    }
  }
  static obs::Counter& frames = obs::GetCounter("net.frames_sent");
  static obs::Counter& bytes = obs::GetCounter("net.bytes_sent");
  for (int i = 0; i < copies; ++i) {
    RETURN_IF_ERROR(SendAll(sock, frame.data(), bytes_to_send, deadline));
    frames.Add();
    bytes.Add(bytes_to_send);
  }
  if (close_after) {
    sock.Close();
    return Status::Unavailable("net.send: injected truncation");
  }
  return Status::OK();
}

Result<wire::Envelope> RecvEnvelope(Socket& sock, const Deadline& deadline,
                                    uint64_t expected_request_id) {
  static obs::Counter& frames = obs::GetCounter("net.frames_received");
  static obs::Counter& bytes = obs::GetCounter("net.bytes_received");
  static obs::Counter& dups = obs::GetCounter("net.frames_deduped");
  static obs::Counter& skip_cap = obs::GetCounter("net.frames_skipped");
  uint32_t skipped = 0;
  while (true) {
    if (skipped >= kMaxSkippedFrames) {
      // A peer streaming mismatched request_ids would otherwise pin this
      // receiver until the deadline; give up on the exchange instead.
      skip_cap.Add();
      sock.Close();
      return Status::Unavailable(
          "net.recv: skipped frame limit reached waiting for request_id");
    }
    char header[wire::kEnvelopeHeaderBytes];
    RETURN_IF_ERROR(RecvAll(sock, header, sizeof(header), deadline));
    Result<size_t> frame_size = wire::FrameSizeFromHeader(
        std::string_view(header, sizeof(header)));
    RETURN_IF_ERROR(frame_size.status());
    std::string frame(header, sizeof(header));
    frame.resize(frame_size.value());
    RETURN_IF_ERROR(RecvAll(sock, frame.data() + sizeof(header),
                            frame.size() - sizeof(header), deadline));
    Result<wire::Envelope> env = wire::DecodeEnvelope(frame);
    RETURN_IF_ERROR(env.status());
    frames.Add();
    bytes.Add(frame.size());
    if (expected_request_id != 0 &&
        env.value().request_id != expected_request_id) {
      // Duplicated or stale reply; skip it and keep reading.
      dups.Add();
      ++skipped;
      continue;
    }
    return env;
  }
}

}  // namespace net
}  // namespace expbsi
