#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace expbsi {
namespace net {

namespace {

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

// The loopback frames here are small request/response pairs; Nagle only
// adds latency to them.
void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int Deadline::RemainingMs() const {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        at_ - std::chrono::steady_clock::now())
                        .count();
  return static_cast<int>(std::max<int64_t>(left, 0));
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> Listen(uint16_t port, uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, 64) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<Socket> Accept(const Socket& listener, int deadline_ms) {
  pollfd pfd{listener.fd(), POLLIN, 0};
  const int r = ::poll(&pfd, 1, deadline_ms);
  if (r < 0) return Errno("poll(accept)");
  if (r == 0) return Status::Unavailable("accept: timed out");
  const int fd = ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return Errno("accept");
  SetNoDelay(fd);
  return Socket(fd);
}

Result<Socket> Connect(uint16_t port, const Deadline& deadline) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno != EINPROGRESS) return Errno("connect");
    pollfd pfd{fd, POLLOUT, 0};
    const int r = ::poll(&pfd, 1, deadline.RemainingMs());
    if (r < 0) return Errno("poll(connect)");
    if (r == 0) return Status::Unavailable("connect: deadline expired");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect");
    }
  }
  SetNoDelay(fd);
  return sock;
}

Status SendAll(const Socket& sock, const char* data, size_t len,
               const Deadline& deadline) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(sock.fd(), data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (deadline.expired()) {
        return Status::Unavailable("send: deadline expired");
      }
      pollfd pfd{sock.fd(), POLLOUT, 0};
      const int r = ::poll(&pfd, 1, deadline.RemainingMs());
      if (r < 0) return Errno("poll(send)");
      if (r == 0) return Status::Unavailable("send: deadline expired");
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("send");
  }
  return Status::OK();
}

Result<bool> WaitReadable(const Socket& sock, int timeout_ms) {
  pollfd pfd{sock.fd(), POLLIN, 0};
  const int r = ::poll(&pfd, 1, timeout_ms);
  if (r < 0) return Errno("poll(readable)");
  return r > 0;
}

Status RecvAll(const Socket& sock, char* buf, size_t len,
               const Deadline& deadline) {
  size_t got = 0;
  while (got < len) {
    if (deadline.expired()) {
      return Status::Unavailable("recv: deadline expired");
    }
    pollfd pfd{sock.fd(), POLLIN, 0};
    const int r = ::poll(&pfd, 1, deadline.RemainingMs());
    if (r < 0) return Errno("poll(recv)");
    if (r == 0) return Status::Unavailable("recv: deadline expired");
    const ssize_t n = ::recv(sock.fd(), buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      // Distinguish a peer that closed between frames (retryable: the node
      // dropped the frame or died) from one that died mid-frame (the bytes
      // already read are unusable -- a truncated frame).
      return got == 0 ? Status::Unavailable("recv: connection closed")
                      : Status::Corruption("recv: short read mid-frame");
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Errno("recv");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace expbsi
