#ifndef EXPBSI_NET_NODE_SERVER_H_
#define EXPBSI_NET_NODE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "net/socket.h"
#include "net/transport.h"
#include "storage/tiered_store.h"
#include "wire/messages.h"

namespace expbsi {
namespace net {

// One serving node (DESIGN.md §9): a TCP server exposing segment-scoped
// BSI query execution over the warehouse blobs it owns. The execution path
// is cluster/segment_query.* -- the exact code the in-process AdhocCluster
// runs -- so a remote scorecard is bit-identical to the in-process one.
//
// Concurrency model: one accept loop, one handler thread per connection,
// requests on a connection served in order. `max_inflight` is the node's
// backpressure valve: a query arriving while that many are already
// executing is rejected with kError/kUnavailable instead of queuing without
// bound -- the coordinator requeues the wave elsewhere.
struct NodeServerOptions {
  int node_id = 0;
  uint16_t port = 0;  // 0 = kernel-chosen ephemeral port (see port())
  int max_inflight = 4;
  size_t hot_capacity_bytes = 256u << 20;
  RetryPolicy retry;
  // Replica set this node serves (Placement::SegmentsOf). Empty = serve any
  // segment (the pre-replication behavior). When set, a query naming a
  // segment outside the set is rejected with kError(kInvalidArgument): a
  // misrouted segment must fail loudly, never resolve to silent zeros
  // against a pruned store.
  std::vector<uint32_t> owned_segments;
  // When non-empty, a query that returns any lost segment also writes a
  // node-local postmortem bundle (obs/postmortem.h) here -- the node's own
  // flight-recorder view of the failure, complementing the coordinator's
  // fleet-wide bundle.
  std::string postmortem_dir;
};

class NodeServer {
 public:
  // `cold` is the node's slice of the warehouse; not owned, must outlive
  // the server.
  NodeServer(const BsiStore* cold, NodeServerOptions options);
  ~NodeServer();

  NodeServer(const NodeServer&) = delete;
  NodeServer& operator=(const NodeServer&) = delete;

  // Binds and starts the accept loop. Fails (AlreadyExists / Unavailable)
  // without side effects.
  Status Start();
  // Stops accepting, closes the listener and joins every thread. Idempotent.
  void Stop();
  // Graceful shutdown: stops accepting new connections, keeps serving until
  // in-flight queries finish and no new query has started for a short
  // quiescence window (bounded by `max_wait_seconds`), then Stop()s. Lets a
  // chaos test distinguish a clean drain from a net.node_crash kill.
  void Drain(double max_wait_seconds = 10.0);

  uint16_t port() const { return port_; }
  // True once an injected net.node_crash killed the server: it stopped
  // serving mid-query and refuses new connections, like a dead process.
  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  uint64_t backpressure_rejections() const {
    return backpressure_rejections_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void HandleConnection(Socket conn);
  // Builds and sends the response for one query request; returns false when
  // the connection must close (injected crash or dead socket).
  bool HandleQuery(Socket& conn, uint64_t request_id,
                   const std::string& payload);
  // Serves a replica-repair pull (kSegmentFetch -> kSegmentPush); returns
  // false when the connection must close.
  bool HandleSegmentFetch(Socket& conn, uint64_t request_id,
                          const std::string& payload);
  // Serves a fleet scrape / postmortem pull (kStatsFetch -> kStatsReply):
  // the node's full registry snapshot, build/uptime info and the requested
  // flight-recorder slice (obs/fleet.h LocalStatsReply).
  bool HandleStatsFetch(Socket& conn, uint64_t request_id,
                        const std::string& payload);
  bool SendError(Socket& conn, uint64_t request_id, const Status& status);

  const BsiStore* cold_;
  NodeServerOptions options_;
  TieredStore tier_;
  Socket listener_;
  uint16_t port_ = 0;
  FaultyEndpoint send_endpoint_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<int> inflight_{0};
  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> backpressure_rejections_{0};
  // Explicit fault op counters (net.accept / net.node_crash / net.repair),
  // kept apart from the transport's send counter.
  std::atomic<uint64_t> accepts_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> repairs_{0};
  // steady_clock nanos of the last query admission; Drain's quiescence test.
  std::atomic<int64_t> last_query_ns_{0};

  std::thread accept_thread_;
  std::mutex handlers_mu_;
  std::vector<std::thread> handlers_;
};

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_NODE_SERVER_H_
