#include "net/node_server.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>
#include <utility>

#include "cluster/segment_query.h"
#include "common/fault_injector.h"
#include "common/timer.h"
#include "obs/fleet.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/postmortem.h"
#include "obs/trace.h"

namespace expbsi {
namespace net {

namespace {
// A node finishes any admitted request long before this; it only bounds a
// wedged peer.
constexpr double kServerIoDeadlineSeconds = 30.0;
}  // namespace

NodeServer::NodeServer(const BsiStore* cold, NodeServerOptions options)
    : cold_(cold),
      options_(options),
      tier_(cold, options.hot_capacity_bytes),
      send_endpoint_(static_cast<uint64_t>(options.node_id)) {}

NodeServer::~NodeServer() { Stop(); }

Status NodeServer::Start() {
  Result<Socket> listener = Listen(options_.port, &port_);
  RETURN_IF_ERROR(listener.status());
  listener_ = std::move(listener).value();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void NodeServer::Drain(double max_wait_seconds) {
  using Clock = std::chrono::steady_clock;
  // New connections stop here; established connections keep being served so
  // a request already buffered in a socket is still picked up (the handler
  // polls every 50ms, well inside the quiescence window below).
  draining_.store(true, std::memory_order_release);
  constexpr int64_t kQuiescenceNs = 500'000'000;  // 500ms without a query
  const Clock::time_point give_up =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(max_wait_seconds));
  while (Clock::now() < give_up) {
    const int64_t last = last_query_ns_.load(std::memory_order_acquire);
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    if (inflight_.load(std::memory_order_acquire) == 0 &&
        now_ns - last >= kQuiescenceNs) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  Stop();
}

void NodeServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.Close();
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

void NodeServer::AcceptLoop() {
  FaultInjector* const fi = FaultInjector::Get();
  while (!stop_.load(std::memory_order_acquire) &&
         !draining_.load(std::memory_order_acquire) && !crashed()) {
    Result<Socket> conn = Accept(listener_, /*deadline_ms=*/50);
    if (!conn.ok()) continue;  // timeout or transient; re-check stop flag
    if (fi != nullptr) {
      const uint64_t op =
          static_cast<uint64_t>(options_.node_id) * kNetOpStride +
          accepts_.fetch_add(1, std::memory_order_relaxed);
      const FaultDecision d = fi->EvaluateAt(fault_sites::kNetAccept, op);
      if (d.fail || d.crash) continue;  // connection dropped at accept
    }
    std::lock_guard<std::mutex> lock(handlers_mu_);
    handlers_.emplace_back(
        [this, c = std::move(conn).value()]() mutable {
          HandleConnection(std::move(c));
        });
  }
}

void NodeServer::HandleConnection(Socket conn) {
  while (!stop_.load(std::memory_order_acquire) && !crashed() &&
         conn.valid()) {
    // Wait in short slices so Stop() never hangs on an idle connection.
    Result<bool> readable = WaitReadable(conn, /*timeout_ms=*/50);
    if (!readable.ok()) return;
    if (!readable.value()) continue;
    Result<wire::Envelope> env = RecvEnvelope(
        conn, Deadline::After(kServerIoDeadlineSeconds),
        /*expected_request_id=*/0);
    if (!env.ok()) return;  // peer closed, truncated frame, or corrupt
    switch (env.value().type) {
      case wire::MsgType::kPing: {
        wire::Envelope pong;
        pong.type = wire::MsgType::kPong;
        pong.request_id = env.value().request_id;
        if (!SendEnvelope(conn, pong,
                          Deadline::After(kServerIoDeadlineSeconds),
                          &send_endpoint_)
                 .ok()) {
          return;
        }
        break;
      }
      case wire::MsgType::kQueryRequest:
        if (!HandleQuery(conn, env.value().request_id,
                         env.value().payload)) {
          return;
        }
        break;
      case wire::MsgType::kSegmentFetch:
        if (!HandleSegmentFetch(conn, env.value().request_id,
                                env.value().payload)) {
          return;
        }
        break;
      case wire::MsgType::kStatsFetch:
        if (!HandleStatsFetch(conn, env.value().request_id,
                              env.value().payload)) {
          return;
        }
        break;
      default:
        // A node only serves; anything else on the wire is a protocol
        // error worth reporting but not worth dying for.
        if (!SendError(conn, env.value().request_id,
                       Status::InvalidArgument(
                           "node: unexpected message type"))) {
          return;
        }
        break;
    }
  }
}

bool NodeServer::HandleSegmentFetch(Socket& conn, uint64_t request_id,
                                    const std::string& payload) {
  // Repair pulls share the node's fault surface through the net.repair
  // site (explicitly indexed, like net.node_crash).
  FaultInjector* const fi = FaultInjector::Get();
  FaultDecision fault;
  if (fi != nullptr) {
    const uint64_t op =
        static_cast<uint64_t>(options_.node_id) * kNetOpStride +
        repairs_.fetch_add(1, std::memory_order_relaxed);
    fault = fi->EvaluateAt(fault_sites::kNetRepair, op);
    if (fault.delay_seconds > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(fault.delay_seconds));
    }
    if (fault.crash) {
      crashed_.store(true, std::memory_order_release);
      conn.Close();
      return false;
    }
    if (fault.fail) {
      return SendError(conn, request_id,
                       Status::Unavailable("node: injected repair failure"));
    }
  }

  Result<wire::WireSegmentFetch> req = wire::DecodeSegmentFetch(payload);
  if (!req.ok()) return SendError(conn, request_id, req.status());
  const uint32_t segment = req.value().segment;

  wire::WireSegmentPush push;
  push.segment = segment;
  cold_->ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                          uint64_t fingerprint) {
    if (key.segment != segment) return;
    wire::WireRepairBlob blob;
    blob.kind = static_cast<uint8_t>(key.kind);
    blob.id = key.id;
    blob.date = key.date;
    blob.fingerprint = fingerprint;
    blob.bytes = bytes;
    push.blobs.push_back(std::move(blob));
  });
  if (push.blobs.empty()) {
    return SendError(conn, request_id,
                     Status::NotFound("node: segment not stored here"));
  }
  // Canonical order (also what DecodeSegmentPush enforces).
  std::sort(push.blobs.begin(), push.blobs.end(),
            [](const wire::WireRepairBlob& a, const wire::WireRepairBlob& b) {
              return std::make_tuple(a.kind, a.id, a.date) <
                     std::make_tuple(b.kind, b.id, b.date);
            });
  if (fault.corrupt && fi != nullptr) {
    // Flip bits in one blob but keep the claimed fingerprint: the receiver
    // must catch the lie by re-fingerprinting, never install the bytes.
    wire::WireRepairBlob& victim =
        push.blobs[fi->seed() % push.blobs.size()];
    fi->CorruptBlob(victim.id ^ victim.date, &victim.bytes);
  }

  static obs::Counter& served = obs::GetCounter("repair.fetches_served");
  static obs::Counter& blobs = obs::GetCounter("repair.blobs_served");
  served.Add();
  blobs.Add(push.blobs.size());
  obs::FlightRecorder::Global().RecordWithTraceId(
      obs::FlightEventKind::kRepair, segment, /*b=2: served*/ 2, request_id);

  wire::Envelope env;
  env.type = wire::MsgType::kSegmentPush;
  env.request_id = request_id;
  wire::EncodeSegmentPush(push, &env.payload);
  return SendEnvelope(conn, env, Deadline::After(kServerIoDeadlineSeconds),
                      &send_endpoint_)
      .ok();
}

bool NodeServer::HandleStatsFetch(Socket& conn, uint64_t request_id,
                                  const std::string& payload) {
  Result<wire::WireStatsFetch> req = wire::DecodeStatsFetch(payload);
  if (!req.ok()) return SendError(conn, request_id, req.status());
  static obs::Counter& fetches = obs::GetCounter("node.stats_fetches");
  fetches.Add();
  wire::WireStatsReply reply = obs::LocalStatsReply(
      req.value(), static_cast<uint32_t>(options_.node_id), queries_served(),
      backpressure_rejections());
  wire::Envelope env;
  env.type = wire::MsgType::kStatsReply;
  env.request_id = request_id;
  wire::EncodeStatsReply(reply, &env.payload);
  return SendEnvelope(conn, env, Deadline::After(kServerIoDeadlineSeconds),
                      &send_endpoint_)
      .ok();
}

bool NodeServer::SendError(Socket& conn, uint64_t request_id,
                           const Status& status) {
  wire::Envelope env;
  env.type = wire::MsgType::kError;
  env.request_id = request_id;
  wire::EncodeError(wire::WireError{status.code(), status.message()},
                    &env.payload);
  return SendEnvelope(conn, env, Deadline::After(kServerIoDeadlineSeconds),
                      &send_endpoint_)
      .ok();
}

bool NodeServer::HandleQuery(Socket& conn, uint64_t request_id,
                             const std::string& payload) {
  // Injected process kill: drop the connection mid-scatter and stop
  // serving. The coordinator sees EOF here and connection-refused on the
  // next wave -- exactly what a dead process looks like.
  last_query_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
  FaultInjector* const fi = FaultInjector::Get();
  const uint64_t query_op =
      static_cast<uint64_t>(options_.node_id) * kNetOpStride +
      requests_.fetch_add(1, std::memory_order_relaxed);
  if (fi != nullptr) {
    const FaultDecision d =
        fi->EvaluateAt(fault_sites::kNetNodeCrash, query_op);
    if (d.crash || d.fail) {
      crashed_.store(true, std::memory_order_release);
      conn.Close();
      return false;
    }
  }

  // Backpressure: reject rather than queue unboundedly; the coordinator
  // treats kUnavailable as "requeue this wave elsewhere".
  struct InflightGuard {
    std::atomic<int>& counter;
    ~InflightGuard() { counter.fetch_sub(1, std::memory_order_relaxed); }
  };
  if (inflight_.fetch_add(1, std::memory_order_relaxed) >=
      options_.max_inflight) {
    InflightGuard guard{inflight_};
    backpressure_rejections_.fetch_add(1, std::memory_order_relaxed);
    static obs::Counter& rejected =
        obs::GetCounter("node.backpressure_rejections");
    rejected.Add();
    return SendError(conn, request_id,
                     Status::Unavailable("node: at max_inflight"));
  }
  InflightGuard guard{inflight_};

  Result<wire::WireQueryRequest> req = wire::DecodeQueryRequest(payload);
  if (!req.ok()) return SendError(conn, request_id, req.status());
  if (req.value().date_lo > req.value().date_hi) {
    return SendError(conn, request_id,
                     Status::InvalidArgument("node: date_lo > date_hi"));
  }
  for (uint32_t seg : req.value().segments) {
    if (seg > UINT16_MAX) {
      return SendError(conn, request_id,
                       Status::InvalidArgument("node: segment id overflow"));
    }
    // A misrouted segment against a pruned store would execute as silent
    // zeros (NotFound reads as semantic absence); refuse it loudly instead.
    if (!options_.owned_segments.empty() &&
        std::find(options_.owned_segments.begin(),
                  options_.owned_segments.end(),
                  seg) == options_.owned_segments.end()) {
      return SendError(conn, request_id,
                       Status::InvalidArgument("node: segment not owned"));
    }
  }

  static obs::Counter& queries = obs::GetCounter("node.queries");
  queries.Add();
  queries_served_.fetch_add(1, std::memory_order_relaxed);
  // Flight events on the serving path carry the wire request_id as their
  // trace id, which is what the coordinator's postmortem correlates on.
  const uint64_t admit_seq = obs::FlightRecorder::Global().NextSeq();
  obs::FlightRecorder::Global().RecordWithTraceId(
      obs::FlightEventKind::kQueryAdmit, req.value().segments.size(), 0,
      request_id);
  const auto wall_start = std::chrono::steady_clock::now();

  wire::WireQueryResponse resp;
  Status exec_status;
  {
    // Trace the node-side execution when asked; the spans ship back in the
    // response and the coordinator grafts them under its RPC span.
    std::unique_ptr<obs::QueryTrace> trace;
    if (req.value().want_trace) {
      trace = std::make_unique<obs::QueryTrace>("node_query");
    }
    {
      obs::ScopedTrace install_trace(trace.get());
      const TieredStore::Stats io_before = tier_.stats();
      CpuTimer cpu;
      for (uint32_t seg : req.value().segments) {
        SegPartial partial;
        SegmentExecStats exec;
        Result<bool> processed = ExecuteSegmentQuery(
            tier_, static_cast<int>(seg), req.value().strategy_ids,
            req.value().metric_ids, req.value().date_lo,
            req.value().date_hi, options_.retry,
            req.value().allow_degraded, &partial, &exec);
        resp.retries += static_cast<uint32_t>(exec.retries);
        resp.faults_survived += static_cast<uint32_t>(exec.faults_survived);
        if (!processed.ok()) {
          exec_status = processed.status();
          break;
        }
        wire::WireSegmentResult out;
        out.segment = seg;
        if (processed.value()) {
          out.sums = std::move(partial.sums);
          out.counts = std::move(partial.counts);
        } else {
          out.lost = 1;  // degraded: named explicitly, never silent
        }
        resp.segments.push_back(std::move(out));
      }
      resp.cpu_seconds = cpu.ElapsedSeconds();
      const TieredStore::Stats io_after = tier_.stats();
      resp.bytes_from_cold =
          io_after.bytes_from_cold - io_before.bytes_from_cold;
      resp.hot_hits = io_after.hot_hits - io_before.hot_hits;
    }
    // ScopedTrace closed the root above, so every shipped span is closed.
    if (trace != nullptr) {
      for (const obs::QueryTrace::Span& s : trace->spans()) {
        wire::WireSpan ws;
        ws.id = s.id;
        ws.parent_id = s.parent_id;
        ws.name = s.name;
        ws.start_ns = s.start_ns;
        ws.duration_ns = s.duration_ns;
        ws.attrs = s.attrs;
        resp.spans.push_back(std::move(ws));
      }
    }
  }
  uint64_t lost = 0;
  for (const wire::WireSegmentResult& seg : resp.segments) {
    if (seg.lost != 0) ++lost;
  }
  const uint64_t wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - wall_start)
          .count());
  obs::FlightRecorder::Global().RecordWithTraceId(
      obs::FlightEventKind::kQueryFinish, wall_us, lost, request_id);
  if (!exec_status.ok()) {
    // Strict mode: a permanent failure fails the whole request.
    return SendError(conn, request_id, exec_status);
  }
  if (lost > 0) {
    obs::FlightRecorder::Global().RecordWithTraceId(
        obs::FlightEventKind::kQueryDegraded, lost, 0, request_id);
    if (!options_.postmortem_dir.empty()) {
      // Node-local view of the degradation: this node's ring around the
      // query. The coordinator writes the fleet-wide bundle; this one
      // survives even if the coordinator never asks.
      obs::PostmortemBundle bundle;
      bundle.reason = "degraded";
      bundle.trace_id = request_id;
      bundle.query = "node_query";
      bundle.duration_ms = static_cast<double>(wall_us) / 1000.0;
      for (const wire::WireSegmentResult& seg : resp.segments) {
        if (seg.lost != 0) bundle.lost_segments.push_back(seg.segment);
      }
      bundle.segments_answered = resp.segments.size() - lost;
      bundle.retries = resp.retries;
      bundle.faults_survived = resp.faults_survived;
      obs::PostmortemFlightSlice slice;
      slice.label = "local";
      slice.fetched = true;
      slice.events = obs::FlightRecorder::Global().Snapshot(admit_seq);
      slice.next_seq = obs::FlightRecorder::Global().NextSeq();
      bundle.slices.push_back(std::move(slice));
      (void)obs::WritePostmortem(options_.postmortem_dir, bundle);
    }
  }

  static obs::Counter& segs = obs::GetCounter("node.segments_served");
  segs.Add(resp.segments.size());
  wire::Envelope env;
  env.type = wire::MsgType::kQueryResponse;
  env.request_id = request_id;
  wire::EncodeQueryResponse(resp, &env.payload);
  return SendEnvelope(conn, env, Deadline::After(kServerIoDeadlineSeconds),
                      &send_endpoint_)
      .ok();
}

}  // namespace net
}  // namespace expbsi
