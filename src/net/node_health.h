#ifndef EXPBSI_NET_NODE_HEALTH_H_
#define EXPBSI_NET_NODE_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <vector>

namespace expbsi {

struct NodeHealthOptions {
  // Consecutive RPC failures before a node is marked down.
  int markdown_threshold = 2;
  // Rounds a freshly marked-down node sits out before its first probe; the
  // wait doubles after every failed probe up to the max.
  int initial_backoff_rounds = 1;
  int max_backoff_rounds = 16;
  // Latency quantile of recent successful RPCs that drives the hedge delay.
  double hedge_quantile = 0.9;
  // Ring-buffer capacity of latency samples kept per node.
  int latency_window = 64;
  // Minimum samples before the histogram overrides the default hedge delay.
  int min_latency_samples = 8;
};

// Coordinator-side node health registry (DESIGN.md §11). Tracks, per serving
// node: consecutive-failure markdown, exponential-backoff probe-to-revive,
// and a recent-latency window used to derive per-node hedge delays.
//
// State machine:
//
//   up ──(markdown_threshold consecutive failures)──> down(backoff=b0)
//   down ──(b rounds elapse)──> probing  (Usable() returns true once)
//   probing ──success──> up          probing ──failure──> down(backoff*=2)
//
// "Rounds" are scatter waves: the coordinator calls BeginRound() once per
// wave, which advances every down node's countdown. A down node whose
// countdown reached zero is probe-eligible — Usable() is true so exactly the
// normal dial path doubles as the probe. All updates flow through
// RecordSuccess/RecordFailure, so markdown state is shared across queries.
//
// Thread-safe; emits net.health.{failures,markdowns,probes,revivals}.
class NodeHealth {
 public:
  explicit NodeHealth(int num_nodes, NodeHealthOptions options = {});

  int num_nodes() const { return num_nodes_; }

  // Advances probe countdowns of marked-down nodes. Call once per wave.
  void BeginRound();

  // True when the node should be dialed: either up, or down but due for a
  // probe this round. Routing prefers usable replicas; a segment whose
  // replicas are all unusable forces a probe anyway (the alternative is
  // recording a loss without having tried).
  bool Usable(int node) const;

  bool IsMarkedDown(int node) const;
  int consecutive_failures(int node) const;

  void RecordSuccess(int node, double latency_seconds);
  void RecordFailure(int node);

  // Hedge delay for RPCs to `node`: the configured quantile of its recent
  // successful latencies, or `default_delay` until enough samples exist.
  // Never below `default_delay` * 0.1 so a momentarily fast node cannot
  // drive the delay to zero and double every RPC.
  double HedgeDelaySeconds(int node, double default_delay) const;

  // Total markdown transitions since construction. A postmortem trigger:
  // the coordinator samples it before and after a query to learn whether
  // THIS query marked a node down.
  uint64_t markdown_count() const;

  // Point-in-time per-node state for the postmortem bundle.
  struct NodeSnapshot {
    bool down = false;
    int consecutive_failures = 0;
  };
  std::vector<NodeSnapshot> Snapshot() const;

 private:
  struct NodeState {
    int consecutive_failures = 0;
    bool down = false;
    int backoff_rounds = 0;    // current backoff width
    int rounds_until_probe = 0;
    bool probe_due = false;
    std::vector<double> latencies;  // ring buffer
    int latency_next = 0;
    int latency_count = 0;
  };

  int num_nodes_;
  NodeHealthOptions options_;
  mutable std::mutex mu_;
  std::vector<NodeState> nodes_;
  uint64_t markdown_count_ = 0;  // guarded by mu_
};

}  // namespace expbsi

#endif  // EXPBSI_NET_NODE_HEALTH_H_
