#include "net/repair.h"

#include <set>
#include <string>
#include <utility>

#include "net/socket.h"
#include "net/transport.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "wire/envelope.h"
#include "wire/messages.h"

namespace expbsi {
namespace net {

namespace {

// One fetch attempt against one peer. Returns OK and fills `push` only when
// the peer answered with a fully fingerprint-verified copy of `segment`.
Status FetchVerified(uint16_t peer_port, uint32_t segment,
                     uint64_t request_id, const RepairOptions& options,
                     wire::WireSegmentPush* push, RepairStats* stats) {
  const Deadline deadline = Deadline::After(options.rpc_deadline_seconds);
  Result<Socket> conn = Connect(peer_port, deadline);
  RETURN_IF_ERROR(conn.status());
  wire::Envelope req;
  req.type = wire::MsgType::kSegmentFetch;
  req.request_id = request_id;
  wire::EncodeSegmentFetch(wire::WireSegmentFetch{segment}, &req.payload);
  // No FaultyEndpoint: repair faults are injected at the peer's net.repair
  // site, not on this side's sends, so repair schedules are independent of
  // how many query RPCs preceded them.
  RETURN_IF_ERROR(
      SendEnvelope(conn.value(), req, deadline, /*endpoint=*/nullptr));
  Result<wire::Envelope> reply =
      RecvEnvelope(conn.value(), deadline, request_id);
  RETURN_IF_ERROR(reply.status());
  if (reply.value().type == wire::MsgType::kError) {
    Result<wire::WireError> err = wire::DecodeError(reply.value().payload);
    if (!err.ok()) return err.status();
    return Status(err.value().code, err.value().message);
  }
  if (reply.value().type != wire::MsgType::kSegmentPush) {
    return Status::InvalidArgument("repair: unexpected reply type");
  }
  Result<wire::WireSegmentPush> decoded =
      wire::DecodeSegmentPush(reply.value().payload);
  RETURN_IF_ERROR(decoded.status());
  if (decoded.value().segment != segment) {
    return Status::InvalidArgument("repair: reply names wrong segment");
  }
  if (decoded.value().blobs.empty()) {
    return Status::NotFound("repair: peer has no blobs for segment");
  }
  for (const wire::WireRepairBlob& blob : decoded.value().blobs) {
    if (BlobFingerprint(blob.bytes) != blob.fingerprint) {
      if (stats != nullptr) ++stats->fingerprint_rejections;
      obs::GetCounter("repair.fingerprint_rejections").Add(1);
      return Status::Corruption(
          "repair: blob bytes do not match claimed fingerprint");
    }
  }
  *push = std::move(decoded).value();
  return Status::OK();
}

}  // namespace

std::vector<uint32_t> FindDamagedSegments(const BsiStore& store,
                                          const Placement& placement,
                                          int node_id) {
  std::set<uint32_t> present;
  std::set<uint32_t> quarantined;
  store.ForEachEntry([&](const BsiStoreKey& key, const std::string& bytes,
                         uint64_t fingerprint) {
    present.insert(key.segment);
    if (BlobFingerprint(bytes) != fingerprint) {
      quarantined.insert(key.segment);
    }
  });
  std::vector<uint32_t> damaged;
  for (uint32_t seg : placement.SegmentsOf(node_id)) {
    if (present.count(seg) == 0 || quarantined.count(seg) > 0) {
      damaged.push_back(seg);
    }
  }
  return damaged;
}

Status RepairSegments(const std::vector<uint32_t>& segments,
                      const std::vector<uint16_t>& peer_ports,
                      const RepairOptions& options, BsiStore* dest,
                      RepairStats* stats) {
  RepairStats local;
  if (stats == nullptr) stats = &local;
  static obs::Counter& repaired = obs::GetCounter("repair.segments_repaired");
  static obs::Counter& failed = obs::GetCounter("repair.segments_failed");
  static obs::Counter& installed = obs::GetCounter("repair.blobs_installed");
  static obs::Counter& peer_failures = obs::GetCounter("repair.peer_failures");
  uint64_t request_id = 1;
  for (uint32_t segment : segments) {
    ++stats->segments_attempted;
    obs::ScopedSpan span("segment_repair");
    span.AddAttr("segment", segment);
    bool healed = false;
    for (uint16_t port : peer_ports) {
      wire::WireSegmentPush push;
      Status fetched = FetchVerified(port, segment, request_id++, options,
                                     &push, stats);
      if (!fetched.ok()) {
        ++stats->peer_failures;
        peer_failures.Add();
        continue;
      }
      for (wire::WireRepairBlob& blob : push.blobs) {
        BsiStoreKey key;
        key.segment = static_cast<uint16_t>(segment);
        key.kind = static_cast<BsiKind>(blob.kind);
        key.id = blob.id;
        key.date = blob.date;
        // PutRecovered keeps the verified fingerprint and flags the blob so
        // the tiered store re-verifies it once more on first fetch.
        dest->PutRecovered(key, std::move(blob.bytes), blob.fingerprint);
        ++stats->blobs_installed;
        installed.Add();
      }
      span.AddAttr("blobs", push.blobs.size());
      span.AddAttr("peer_port", port);
      healed = true;
      break;
    }
    if (healed) {
      ++stats->segments_repaired;
      repaired.Add();
      obs::FlightRecorder::Global().Record(obs::FlightEventKind::kRepair,
                                           segment, /*b=repaired*/ 1);
    } else {
      ++stats->segments_failed;
      failed.Add();
      span.AddAttr("failed", 1);
      obs::FlightRecorder::Global().Record(obs::FlightEventKind::kRepair,
                                           segment, /*b=failed*/ 0);
    }
  }
  if (stats->segments_failed > 0) {
    return Status::Unavailable("repair: " +
                               std::to_string(stats->segments_failed) +
                               " segment(s) unrepaired");
  }
  return Status::OK();
}

}  // namespace net
}  // namespace expbsi
