#ifndef EXPBSI_NET_SOCKET_H_
#define EXPBSI_NET_SOCKET_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace expbsi {
namespace net {

// Thin POSIX TCP layer under the transport (DESIGN.md §9): loopback-only
// sockets, absolute per-query deadlines, and nothing else -- no framing
// (wire/envelope.h) and no retries (the coordinator owns recovery).

// Absolute deadline carried through every blocking call of one query, so a
// query's budget is shared across connect, send and all gather reads
// instead of resetting per call.
class Deadline {
 public:
  static Deadline After(double seconds) {
    return Deadline(std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds)));
  }
  // Milliseconds left, clamped to >= 0; the poll() timeout.
  int RemainingMs() const;
  bool expired() const { return RemainingMs() <= 0; }

 private:
  explicit Deadline(std::chrono::steady_clock::time_point at) : at_(at) {}
  std::chrono::steady_clock::time_point at_;
};

// Owning fd wrapper; close-on-destroy, move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

// Listening socket bound to 127.0.0.1:`port` (0 = kernel-chosen ephemeral
// port, reported through `bound_port`).
Result<Socket> Listen(uint16_t port, uint16_t* bound_port);

// Blocks until a connection arrives, `deadline_ms` elapses (-1 = forever)
// or the listening socket is closed by another thread. Unavailable on
// timeout/shutdown.
Result<Socket> Accept(const Socket& listener, int deadline_ms);

// Connects to 127.0.0.1:`port` within the deadline (non-blocking connect +
// poll). Unavailable on refusal or deadline expiry.
Result<Socket> Connect(uint16_t port, const Deadline& deadline);

// Writes all of `data`, polling for writability under the deadline.
Status SendAll(const Socket& sock, const char* data, size_t len,
               const Deadline& deadline);

// Polls for readability (or EOF) for up to `timeout_ms`. Returns true when
// a read would not block, false on timeout; servers use this to check a
// stop flag between requests without holding a blocking read.
Result<bool> WaitReadable(const Socket& sock, int timeout_ms);

// Reads exactly `len` bytes. A clean EOF before any byte yields
// Unavailable("connection closed"); an EOF mid-buffer yields
// Corruption("short read") -- the transport maps the latter onto a
// truncated frame. Deadline expiry yields Unavailable("deadline").
Status RecvAll(const Socket& sock, char* buf, size_t len,
               const Deadline& deadline);

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_SOCKET_H_
