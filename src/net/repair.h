#ifndef EXPBSI_NET_REPAIR_H_
#define EXPBSI_NET_REPAIR_H_

#include <cstdint>
#include <vector>

#include "cluster/placement.h"
#include "common/status.h"
#include "storage/bsi_store.h"

namespace expbsi {
namespace net {

// Replica repair client (DESIGN.md §11): a node recovering with quarantined
// or missing segments pulls fingerprint-verified copies from peer replicas
// before it starts serving, instead of serving a hole.
//
// Protocol: kSegmentFetch{segment} -> kSegmentPush{segment, blobs}, every
// blob carrying the sender's recorded BlobFingerprint. The receiver
// re-fingerprints each blob; one mismatch rejects the whole segment from
// that peer (the peer is corrupt or lying) and the next peer is tried.
// Installed blobs go in via PutRecovered, so TieredStore re-verifies them
// once more on first fetch -- the same trust level as snapshot recovery.

struct RepairOptions {
  double rpc_deadline_seconds = 10.0;
};

struct RepairStats {
  int segments_attempted = 0;
  int segments_repaired = 0;
  int segments_failed = 0;       // no peer could supply a verified copy
  int blobs_installed = 0;
  int fingerprint_rejections = 0;  // blobs whose bytes belied their claim
  int peer_failures = 0;           // dial/RPC/decode failures, per peer try
};

// Segments of `node_id`'s replica set (per `placement`) that need repair:
// absent entirely from `store`, or holding at least one blob whose bytes no
// longer match their recorded fingerprint (quarantine).
std::vector<uint32_t> FindDamagedSegments(const BsiStore& store,
                                          const Placement& placement,
                                          int node_id);

// Pulls each segment from the first peer (in `peer_ports` order) that
// returns a fully fingerprint-verified copy, installing the blobs into
// `dest`. Per-segment "segment_repair" trace spans when a trace is active;
// repair.* counters always. Returns OK when every segment was repaired,
// Unavailable naming the count otherwise (stats carry the detail either
// way).
Status RepairSegments(const std::vector<uint32_t>& segments,
                      const std::vector<uint16_t>& peer_ports,
                      const RepairOptions& options, BsiStore* dest,
                      RepairStats* stats = nullptr);

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_REPAIR_H_
