// expbsi_node: one serving node as a real process (DESIGN.md §9, §11).
//
//   expbsi_node --store=<warehouse file> --node-id=N [--port=P]
//               [--max-inflight=K]
//               [--num-nodes=N --num-segments=S [--replicas=R]]
//               [--repair-peers=port1,port2,...]
//               [--postmortem-dir=<dir>]
//               [--inject=<site>,<kind>,<p>[,<delay_s>]]... [--inject-seed=S]
//
// Loads the warehouse blobs (BsiStore::SaveToFile format), starts a
// NodeServer and prints "PORT <port>" on stdout so a parent process
// spawning it on an ephemeral port can learn where it listens.
//
// With --num-nodes/--num-segments the node derives its replica set from the
// shared rendezvous Placement, prunes the loaded store to those segments
// and rejects queries for any other segment. With --repair-peers it heals
// missing or quarantined owned segments from the listed peer replicas
// (fingerprint-verified) before it starts serving.
//
// Shutdown: runs until stdin reaches EOF (the parent holds a pipe to each
// child) or SIGTERM arrives. SIGTERM drains gracefully -- stop accepting,
// finish in-flight queries, exit 0 -- so a supervisor's rolling restart is
// distinguishable from a crash.
//
// --postmortem-dir: node-local postmortem bundles for queries this node
// answers degraded (NodeServerOptions::postmortem_dir).
//
// --inject installs a process-wide FaultInjector in THIS node only, so a
// multi-process observability test can corrupt one node's cold-tier fetches
// (`--inject=tier.fetch,corrupt,1.0`) and watch the fault surface in the
// merged fleet scrape and the coordinator's postmortem. Kinds: fail,
// corrupt, crash, delay (4th field = seconds), duplicate, truncate.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "cluster/placement.h"
#include "common/fault_injector.h"
#include "net/node_server.h"
#include "net/repair.h"
#include "storage/bsi_store.h"

namespace {

volatile std::sig_atomic_t g_sigterm = 0;

void HandleSigterm(int) { g_sigterm = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

// One --inject=<site>,<kind>,<p>[,<delay_s>] spec, parsed up front and
// applied to the injector after all flags are read (so --inject-seed can
// come in any order).
struct InjectSpec {
  std::string site;
  std::string kind;
  double p = 0.0;
  double delay_seconds = 0.01;
};

bool ParseInjectSpec(const std::string& csv, InjectSpec* out) {
  std::vector<std::string> fields;
  size_t pos = 0;
  while (pos <= csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    fields.push_back(csv.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (fields.size() < 3 || fields.size() > 4) return false;
  out->site = fields[0];
  out->kind = fields[1];
  out->p = std::atof(fields[2].c_str());
  if (fields.size() == 4) out->delay_seconds = std::atof(fields[3].c_str());
  return !out->site.empty() && out->p > 0.0;
}

bool ApplyInjectSpec(expbsi::FaultInjector* fi, const InjectSpec& spec) {
  if (spec.kind == "fail") {
    fi->SetFailProbability(spec.site, spec.p);
  } else if (spec.kind == "corrupt") {
    fi->SetCorruptProbability(spec.site, spec.p);
  } else if (spec.kind == "crash") {
    fi->SetCrashProbability(spec.site, spec.p);
  } else if (spec.kind == "delay") {
    fi->SetDelayProbability(spec.site, spec.p, spec.delay_seconds);
  } else if (spec.kind == "duplicate") {
    fi->SetDuplicateProbability(spec.site, spec.p);
  } else if (spec.kind == "truncate") {
    fi->SetTruncateProbability(spec.site, spec.p);
  } else {
    return false;
  }
  return true;
}

std::vector<uint16_t> ParsePorts(const std::string& csv) {
  std::vector<uint16_t> ports;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    ports.push_back(
        static_cast<uint16_t>(std::atoi(csv.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  std::string value;
  expbsi::net::NodeServerOptions options;
  int num_nodes = 0;
  int num_segments = 0;
  int replicas = 2;
  std::vector<uint16_t> repair_peers;
  std::vector<InjectSpec> inject_specs;
  uint64_t inject_seed = 42;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--store", &value)) {
      store_path = value;
    } else if (ParseFlag(argv[i], "--node-id", &value)) {
      options.node_id = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--max-inflight", &value)) {
      options.max_inflight = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--num-nodes", &value)) {
      num_nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--num-segments", &value)) {
      num_segments = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--replicas", &value)) {
      replicas = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--repair-peers", &value)) {
      repair_peers = ParsePorts(value);
    } else if (ParseFlag(argv[i], "--postmortem-dir", &value)) {
      options.postmortem_dir = value;
    } else if (ParseFlag(argv[i], "--inject", &value)) {
      InjectSpec spec;
      if (!ParseInjectSpec(value, &spec)) {
        std::fprintf(stderr, "expbsi_node: bad --inject spec %s\n",
                     value.c_str());
        return 2;
      }
      inject_specs.push_back(std::move(spec));
    } else if (ParseFlag(argv[i], "--inject-seed", &value)) {
      inject_seed =
          static_cast<uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "expbsi_node: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (store_path.empty()) {
    std::fprintf(stderr,
                 "usage: expbsi_node --store=<file> --node-id=N [--port=P] "
                 "[--max-inflight=K] [--num-nodes=N --num-segments=S "
                 "[--replicas=R]] [--repair-peers=p1,p2,...] "
                 "[--postmortem-dir=dir] "
                 "[--inject=site,kind,p[,delay_s]]... [--inject-seed=S]\n");
    return 2;
  }

  if (!inject_specs.empty()) {
    // Leaked deliberately: the injector must outlive every server thread.
    auto* fi = new expbsi::FaultInjector(inject_seed);
    for (const InjectSpec& spec : inject_specs) {
      if (!ApplyInjectSpec(fi, spec)) {
        std::fprintf(stderr, "expbsi_node: unknown --inject kind %s\n",
                     spec.kind.c_str());
        return 2;
      }
    }
    expbsi::FaultInjector::Install(fi);
  }

  expbsi::Result<expbsi::BsiStore> store =
      expbsi::BsiStore::LoadFromFile(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "expbsi_node: load %s: %s\n", store_path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  expbsi::BsiStore cold = std::move(store).value();

  if (num_nodes > 0 && num_segments > 0) {
    const expbsi::Placement placement(num_nodes, num_segments, replicas);
    const std::vector<uint32_t> owned =
        placement.SegmentsOf(options.node_id);
    // Prune the (typically full) warehouse file down to this node's replica
    // set: replicated serving must prove it never silently answers for a
    // segment it does not own.
    expbsi::BsiStore pruned;
    cold.ForEachEntry([&](const expbsi::BsiStoreKey& key,
                          const std::string& bytes, uint64_t fingerprint) {
      for (uint32_t seg : owned) {
        if (key.segment == seg) {
          pruned.PutRecovered(key, bytes, fingerprint);
          return;
        }
      }
    });
    cold = std::move(pruned);
    options.owned_segments = owned;

    if (!repair_peers.empty()) {
      const std::vector<uint32_t> damaged =
          expbsi::net::FindDamagedSegments(cold, placement, options.node_id);
      if (!damaged.empty()) {
        expbsi::net::RepairStats repair_stats;
        const expbsi::Status repaired = expbsi::net::RepairSegments(
            damaged, repair_peers, expbsi::net::RepairOptions{}, &cold,
            &repair_stats);
        std::fprintf(stderr,
                     "expbsi_node: repair: %d damaged, %d repaired, %d "
                     "failed (%s)\n",
                     repair_stats.segments_attempted,
                     repair_stats.segments_repaired,
                     repair_stats.segments_failed,
                     repaired.ToString().c_str());
      }
    }
  }

  expbsi::net::NodeServer server(&cold, options);
  const expbsi::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "expbsi_node: start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, HandleSigterm);
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);

  // Serve until the parent closes our stdin or SIGTERM asks for a drain.
  // poll() (not a blocking fread) so the signal flag is re-checked promptly
  // even when the parent never writes.
  while (g_sigterm == 0) {
    struct pollfd pfd;
    pfd.fd = 0;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready > 0) {
      char buf[64];
      const ssize_t n = read(0, buf, sizeof(buf));
      if (n <= 0) break;  // parent closed the pipe
    }
  }
  if (g_sigterm != 0) {
    server.Drain();
    return 0;
  }
  server.Stop();
  return 0;
}
