// expbsi_node: one serving node as a real process (DESIGN.md §9, §11).
//
//   expbsi_node --store=<warehouse file> --node-id=N [--port=P]
//               [--max-inflight=K]
//               [--num-nodes=N --num-segments=S [--replicas=R]]
//               [--repair-peers=port1,port2,...]
//
// Loads the warehouse blobs (BsiStore::SaveToFile format), starts a
// NodeServer and prints "PORT <port>" on stdout so a parent process
// spawning it on an ephemeral port can learn where it listens.
//
// With --num-nodes/--num-segments the node derives its replica set from the
// shared rendezvous Placement, prunes the loaded store to those segments
// and rejects queries for any other segment. With --repair-peers it heals
// missing or quarantined owned segments from the listed peer replicas
// (fingerprint-verified) before it starts serving.
//
// Shutdown: runs until stdin reaches EOF (the parent holds a pipe to each
// child) or SIGTERM arrives. SIGTERM drains gracefully -- stop accepting,
// finish in-flight queries, exit 0 -- so a supervisor's rolling restart is
// distinguishable from a crash.

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "cluster/placement.h"
#include "net/node_server.h"
#include "net/repair.h"
#include "storage/bsi_store.h"

namespace {

volatile std::sig_atomic_t g_sigterm = 0;

void HandleSigterm(int) { g_sigterm = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

std::vector<uint16_t> ParsePorts(const std::string& csv) {
  std::vector<uint16_t> ports;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    ports.push_back(
        static_cast<uint16_t>(std::atoi(csv.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  std::string value;
  expbsi::net::NodeServerOptions options;
  int num_nodes = 0;
  int num_segments = 0;
  int replicas = 2;
  std::vector<uint16_t> repair_peers;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--store", &value)) {
      store_path = value;
    } else if (ParseFlag(argv[i], "--node-id", &value)) {
      options.node_id = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--max-inflight", &value)) {
      options.max_inflight = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--num-nodes", &value)) {
      num_nodes = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--num-segments", &value)) {
      num_segments = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--replicas", &value)) {
      replicas = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--repair-peers", &value)) {
      repair_peers = ParsePorts(value);
    } else {
      std::fprintf(stderr, "expbsi_node: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (store_path.empty()) {
    std::fprintf(stderr,
                 "usage: expbsi_node --store=<file> --node-id=N [--port=P] "
                 "[--max-inflight=K] [--num-nodes=N --num-segments=S "
                 "[--replicas=R]] [--repair-peers=p1,p2,...]\n");
    return 2;
  }

  expbsi::Result<expbsi::BsiStore> store =
      expbsi::BsiStore::LoadFromFile(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "expbsi_node: load %s: %s\n", store_path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  expbsi::BsiStore cold = std::move(store).value();

  if (num_nodes > 0 && num_segments > 0) {
    const expbsi::Placement placement(num_nodes, num_segments, replicas);
    const std::vector<uint32_t> owned =
        placement.SegmentsOf(options.node_id);
    // Prune the (typically full) warehouse file down to this node's replica
    // set: replicated serving must prove it never silently answers for a
    // segment it does not own.
    expbsi::BsiStore pruned;
    cold.ForEachEntry([&](const expbsi::BsiStoreKey& key,
                          const std::string& bytes, uint64_t fingerprint) {
      for (uint32_t seg : owned) {
        if (key.segment == seg) {
          pruned.PutRecovered(key, bytes, fingerprint);
          return;
        }
      }
    });
    cold = std::move(pruned);
    options.owned_segments = owned;

    if (!repair_peers.empty()) {
      const std::vector<uint32_t> damaged =
          expbsi::net::FindDamagedSegments(cold, placement, options.node_id);
      if (!damaged.empty()) {
        expbsi::net::RepairStats repair_stats;
        const expbsi::Status repaired = expbsi::net::RepairSegments(
            damaged, repair_peers, expbsi::net::RepairOptions{}, &cold,
            &repair_stats);
        std::fprintf(stderr,
                     "expbsi_node: repair: %d damaged, %d repaired, %d "
                     "failed (%s)\n",
                     repair_stats.segments_attempted,
                     repair_stats.segments_repaired,
                     repair_stats.segments_failed,
                     repaired.ToString().c_str());
      }
    }
  }

  expbsi::net::NodeServer server(&cold, options);
  const expbsi::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "expbsi_node: start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, HandleSigterm);
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);

  // Serve until the parent closes our stdin or SIGTERM asks for a drain.
  // poll() (not a blocking fread) so the signal flag is re-checked promptly
  // even when the parent never writes.
  while (g_sigterm == 0) {
    struct pollfd pfd;
    pfd.fd = 0;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, 100);
    if (ready < 0 && errno != EINTR) break;
    if (ready > 0) {
      char buf[64];
      const ssize_t n = read(0, buf, sizeof(buf));
      if (n <= 0) break;  // parent closed the pipe
    }
  }
  if (g_sigterm != 0) {
    server.Drain();
    return 0;
  }
  server.Stop();
  return 0;
}
