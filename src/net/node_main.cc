// expbsi_node: one serving node as a real process (DESIGN.md §9).
//
//   expbsi_node --store=<warehouse file> --node-id=N [--port=P]
//               [--max-inflight=K]
//
// Loads the warehouse blobs (BsiStore::SaveToFile format), starts a
// NodeServer and prints "PORT <port>" on stdout so a parent process
// spawning it on an ephemeral port can learn where it listens. Runs until
// stdin reaches EOF -- the parent holds a pipe to each child, so killing
// the parent (or closing the pipe) cleanly shuts the node down. The
// cross-process differential test drives a coordinator against several of
// these.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/node_server.h"
#include "storage/bsi_store.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path;
  std::string value;
  expbsi::net::NodeServerOptions options;
  for (int i = 1; i < argc; ++i) {
    if (ParseFlag(argv[i], "--store", &value)) {
      store_path = value;
    } else if (ParseFlag(argv[i], "--node-id", &value)) {
      options.node_id = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(argv[i], "--max-inflight", &value)) {
      options.max_inflight = std::atoi(value.c_str());
    } else {
      std::fprintf(stderr, "expbsi_node: unknown argument %s\n", argv[i]);
      return 2;
    }
  }
  if (store_path.empty()) {
    std::fprintf(stderr,
                 "usage: expbsi_node --store=<file> --node-id=N [--port=P] "
                 "[--max-inflight=K]\n");
    return 2;
  }

  expbsi::Result<expbsi::BsiStore> store =
      expbsi::BsiStore::LoadFromFile(store_path);
  if (!store.ok()) {
    std::fprintf(stderr, "expbsi_node: load %s: %s\n", store_path.c_str(),
                 store.status().ToString().c_str());
    return 1;
  }
  expbsi::BsiStore cold = std::move(store).value();

  expbsi::net::NodeServer server(&cold, options);
  const expbsi::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "expbsi_node: start: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("PORT %u\n", server.port());
  std::fflush(stdout);

  // Serve until the parent closes our stdin.
  char buf[64];
  while (std::fread(buf, 1, sizeof(buf), stdin) > 0) {
  }
  server.Stop();
  return 0;
}
