#ifndef EXPBSI_NET_COORDINATOR_H_
#define EXPBSI_NET_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/adhoc_cluster.h"
#include "cluster/placement.h"
#include "net/node_health.h"
#include "net/socket.h"
#include "net/transport.h"

namespace expbsi {
namespace net {

// Scatter/gather coordinator over remote node servers (DESIGN.md §9, §11):
// the network promotion of AdhocCluster::QueryBsi, now replication-aware.
// Placement is the shared rendezvous table (cluster/placement.h): each
// segment maps to `replication_factor` distinct nodes in failover-preference
// order, and every wave routes a segment to the healthiest alive replica it
// has not tried yet. Scorecard assembly is the same partial-merge as the
// in-process cluster, so QueryStats are bit-identical to AdhocCluster on a
// fault-free run (only the primary replica is ever dialed then).
//
// Failure taxonomy per node RPC:
//   connect refused / EOF / truncated or corrupt frame  -> node dead for
//       this query (and one NodeHealth failure): its segments fail over to
//       their next untried replica
//   kError(kUnavailable) reply (backpressure)           -> node excluded
//       for the rest of this query, segments fail over; not a crash and
//       not a health failure
//   kError(other) reply                                 -> permanent:
//       fails the query (strict semantics, as in-process)
//   response with lost=1 segments (node-side degraded)  -> those segments
//       fail over to the next replica; only when every replica has been
//       tried are they recorded in DegradedInfo::lost_segments
//   all replicas of a segment down                      -> strict: the
//       query fails Unavailable; degraded: the exact segment is enumerated
//   per-query deadline expires                          -> strict: fails
//       Unavailable; degraded: every unanswered segment is enumerated
//
// DegradedInfo is therefore reachable only when all `replication_factor`
// replicas of some segment are down (or the deadline expires) -- any single
// node failure with R >= 2 yields a complete, bit-identical scorecard.
//
// Hedged reads (off by default, `hedge_reads`): when a node's response has
// not arrived within its hedge delay -- the configured quantile of that
// node's recent latencies via NodeHealth, falling back to
// `hedge_delay_seconds` -- the outstanding segments are re-sent to their
// next untried replica and the first valid response wins per segment
// (request_id dedup already drops the straggler). Hedge sends draw op
// indices from kNetHedgeEndpointBase so enabling hedging does not perturb
// primary fault schedules.
struct CoordinatorOptions {
  std::vector<uint16_t> node_ports;  // 127.0.0.1, index = node id
  int num_segments = 0;
  // Replicas per segment (clamped to [1, num_nodes]). Nodes must serve the
  // matching replica set (Placement::SegmentsOf) or the full store.
  int replication_factor = 2;
  double query_deadline_seconds = 10.0;
  // Admission control: queries beyond this many running concurrently are
  // rejected Unavailable up front instead of queuing.
  int max_concurrent_queries = 8;
  bool allow_degraded = false;
  bool want_trace = true;  // graft node span trees into the query trace
  // Hedged reads: re-send slow outstanding RPCs to the next replica after
  // the per-node hedge delay. Off by default -- hedges allocate request ids
  // from racing threads, so determinism suites leave this off.
  bool hedge_reads = false;
  double hedge_delay_seconds = 0.02;
  // When non-empty, a query that comes back degraded, marks a node down, or
  // trips the slow-query threshold (EXPBSI_SLOW_QUERY_MS) writes a
  // postmortem bundle (obs/postmortem.h) here: the finished trace tree,
  // the health registry, the coordinator's flight-recorder slice and one
  // slice pulled from every node the query touched (kStatsFetch with
  // coordinator-held since-seq cursors). The path lands in
  // QueryStats::postmortem_path.
  std::string postmortem_dir;
  // Deadline for each postmortem kStatsFetch pull; kept short so a dead
  // node delays the bundle, never the query (the bundle is written after
  // QueryStats are final).
  double postmortem_fetch_deadline_seconds = 1.0;
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);

  // Scatter the scorecard query over the nodes, gather and merge. Shapes
  // and semantics match AdhocCluster::QueryBsi; latency_seconds is real
  // wall time here (there is an actual network).
  Result<AdhocCluster::QueryStats> QueryBsi(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

  uint64_t admission_rejections() const {
    return admission_rejections_.load(std::memory_order_relaxed);
  }

  const Placement& placement() const { return placement_; }
  // Cross-query health state (markdown / probe / latency windows).
  NodeHealth& health() { return health_; }

 private:
  // The scatter/gather body. Holds the query's ScopedTrace, so by the time
  // it returns the root span is closed and the slow-query check has run --
  // the postmortem (written by the QueryBsi wrapper) sees a finished trace.
  // `involved_nodes` collects every node id an RPC attempt completed
  // against, the set whose flight recorders a postmortem pulls.
  Result<AdhocCluster::QueryStats> QueryBsiInternal(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi,
      std::vector<int>* involved_nodes);
  // Evaluates the postmortem triggers against finished stats and, when one
  // fires and postmortem_dir is set, assembles + writes the bundle and
  // records its path in the stats. `markdowns_before` is
  // health_.markdown_count() sampled at admission.
  void MaybeWritePostmortem(AdhocCluster::QueryStats* stats,
                            uint64_t markdowns_before,
                            const std::vector<int>& involved_nodes);

  CoordinatorOptions options_;
  Placement placement_;
  NodeHealth health_;
  // Per-node flight-recorder cursors used by postmortem pulls, so each
  // bundle ships only events unseen by previous bundles. Guarded by pm_mu_
  // (concurrent queries may trigger postmortems concurrently).
  std::mutex pm_mu_;
  std::vector<uint64_t> pm_cursors_;
  std::atomic<int> running_queries_{0};
  std::atomic<uint64_t> admission_rejections_{0};
  std::atomic<uint64_t> next_request_id_{1};
  // One send endpoint per node link, so coordinator-side net.send indices
  // are stable per node regardless of query interleaving; hedge sends get
  // their own endpoints so hedging never shifts primary schedules.
  std::vector<std::unique_ptr<FaultyEndpoint>> endpoints_;
  std::vector<std::unique_ptr<FaultyEndpoint>> hedge_endpoints_;
};

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_COORDINATOR_H_
