#ifndef EXPBSI_NET_COORDINATOR_H_
#define EXPBSI_NET_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "cluster/adhoc_cluster.h"
#include "net/socket.h"
#include "net/transport.h"

namespace expbsi {
namespace net {

// Scatter/gather coordinator over remote node servers (DESIGN.md §9): the
// network promotion of AdhocCluster::QueryBsi. Placement is the same
// segment-per-node mapping (segment % num_nodes), failure handling the
// same wave-by-wave requeue onto survivors, and the scorecard assembly the
// same partial-merge -- so its QueryStats (reused from AdhocCluster) are
// bit-identical to the in-process cluster's on a fault-free run.
//
// Failure taxonomy per node RPC:
//   connect refused / EOF / truncated or corrupt frame  -> node dead: its
//       whole wave requeues onto survivors (next wave)
//   kError(kUnavailable) reply (backpressure)           -> same requeue,
//       node excluded for the rest of this query
//   kError(other) reply                                 -> permanent:
//       fails the query (strict semantics, as in-process)
//   response with lost=1 segments (degraded mode)       -> those exact
//       segments recorded in DegradedInfo::lost_segments; NOT requeued
//       (the node is alive; retries already ran node-side)
//   per-query deadline expires                          -> strict: the
//       query fails Unavailable; degraded: every unanswered segment is
//       enumerated as lost
struct CoordinatorOptions {
  std::vector<uint16_t> node_ports;  // 127.0.0.1, index = node id
  int num_segments = 0;
  double query_deadline_seconds = 10.0;
  // Admission control: queries beyond this many running concurrently are
  // rejected Unavailable up front instead of queuing.
  int max_concurrent_queries = 8;
  bool allow_degraded = false;
  bool want_trace = true;  // graft node span trees into the query trace
};

class Coordinator {
 public:
  explicit Coordinator(CoordinatorOptions options);

  // Scatter the scorecard query over the nodes, gather and merge. Shapes
  // and semantics match AdhocCluster::QueryBsi; latency_seconds is real
  // wall time here (there is an actual network).
  Result<AdhocCluster::QueryStats> QueryBsi(
      const std::vector<uint64_t>& strategy_ids,
      const std::vector<uint64_t>& metric_ids, Date date_lo, Date date_hi);

  uint64_t admission_rejections() const {
    return admission_rejections_.load(std::memory_order_relaxed);
  }

 private:
  CoordinatorOptions options_;
  std::atomic<int> running_queries_{0};
  std::atomic<uint64_t> admission_rejections_{0};
  std::atomic<uint64_t> next_request_id_{1};
  // One send endpoint per node link, so coordinator-side net.send indices
  // are stable per node regardless of query interleaving.
  std::vector<std::unique_ptr<FaultyEndpoint>> endpoints_;
};

}  // namespace net
}  // namespace expbsi

#endif  // EXPBSI_NET_COORDINATOR_H_
