#ifndef EXPBSI_STATS_BUCKET_STATS_H_
#define EXPBSI_STATS_BUCKET_STATS_H_

#include <cstdint>
#include <vector>

namespace expbsi {

// Bucket-based statistical inference (§3.3 and the companion covariance
// paper [23]): under SUTVA, the deterministic bucketing of randomization
// units yields B independent replicates of the experiment, so the variance
// (and covariance) of any metric can be estimated from its per-bucket
// values -- no per-unit variance bookkeeping needed.

// Per-bucket aggregation state of one (strategy, metric): the numerator
// (metric sum) and denominator (exposed-unit count) of each bucket.
struct BucketValues {
  std::vector<double> sums;    // sum of metric values per bucket
  std::vector<double> counts;  // exposed analysis units per bucket

  int num_buckets() const { return static_cast<int>(sums.size()); }
  double total_sum() const;
  double total_count() const;

  // Element-wise merge (for combining segments when segment != bucket).
  void MergeFrom(const BucketValues& other);
};

// A metric estimate with its sampling uncertainty.
struct MetricEstimate {
  double mean = 0.0;         // ratio estimate: total sum / total count
  double var_of_mean = 0.0;  // delta-method variance of `mean`
  double df = 0.0;           // replicate degrees of freedom (buckets - 1)
  double total_sum = 0.0;
  double total_count = 0.0;
};

// Sample mean / variance / covariance over replicate vectors.
double Mean(const std::vector<double>& xs);
double SampleVariance(const std::vector<double>& xs);
double SampleCovariance(const std::vector<double>& xs,
                        const std::vector<double>& ys);

// Ratio-metric estimate from bucket replicates: mean = sum(S_b)/sum(N_b),
// with the delta-method variance
//   Var(R) = (Var(s) + R^2 Var(n) - 2 R Cov(s, n)) / (B * nbar^2)
// where s, n are per-bucket sums/counts and nbar their mean. Buckets whose
// count is zero still participate (they are legitimate replicates).
MetricEstimate EstimateRatio(const BucketValues& buckets);

// Covariance of two metric ratio estimates computed over the SAME buckets
// (needed for CUPED and for metric-covariance reporting). Returns the
// delta-method covariance of the two means.
double EstimateRatioCovariance(const BucketValues& x, const BucketValues& y);

}  // namespace expbsi

#endif  // EXPBSI_STATS_BUCKET_STATS_H_
