#ifndef EXPBSI_STATS_CUPED_H_
#define EXPBSI_STATS_CUPED_H_

#include "stats/bucket_stats.h"

namespace expbsi {

// CUPED variance reduction (Deng, Xu, Kohavi & Walker 2013; paper §4.3):
// uses the same metric computed over the C days BEFORE the experiment start
// as a covariate X to reduce the variance of the experiment metric Y:
//
//   Y_adj = Y - theta * (X - E[X]),  theta = Cov(Y, X) / Var(X).
//
// Here both Y and X are ratio metrics estimated from bucket replicates, so
// theta and the adjusted variance come straight from the bucket-level
// variance/covariance estimators of bucket_stats.h.
struct CupedResult {
  double theta = 0.0;
  // Adjusted estimate: mean is centered so E[adjustment] = 0 within the arm;
  // cross-arm differences of adjusted means remove the covariate noise.
  MetricEstimate adjusted;
  MetricEstimate unadjusted;
  // 1 - Var_adj/Var_raw: fraction of variance removed (rho^2).
  double variance_reduction = 0.0;
};

// y: experiment-period bucket values; x: pre-experiment bucket values over
// the SAME buckets. `theta_override` < 0 means estimate theta from the
// buckets (pass the pooled theta when adjusting multiple arms so the
// adjustment is identical across arms, as CUPED requires).
CupedResult ApplyCuped(const BucketValues& y, const BucketValues& x,
                       double theta_override = -1.0);

// Pooled theta from several arms' bucket values (e.g. treatment + control):
// sums the covariances and variances across arms before taking the ratio.
double PooledCupedTheta(const std::vector<const BucketValues*>& ys,
                        const std::vector<const BucketValues*>& xs);

}  // namespace expbsi

#endif  // EXPBSI_STATS_CUPED_H_
