#include "stats/ttest.h"

#include <cmath>

#include "common/check.h"

namespace expbsi {
namespace {

// log Gamma via Lanczos approximation.
double LogGamma(double x) {
  static const double kCoeffs[6] = {76.18009172947146,  -86.50532032941677,
                                    24.01409824083091,  -1.231739572450155,
                                    0.1208650973866179e-2,
                                    -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double ser = 1.000000000190015;
  for (double coeff : kCoeffs) ser += coeff / ++y;
  return -tmp + std::log(2.5066282746310005 * ser / x);
}

// Continued fraction for the incomplete beta (Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Regularized lower incomplete gamma P(a, x) by its power series; converges
// fast for x < a + 1 (Numerical Recipes gser).
double GammaPBySeries(double a, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3.0e-12;
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIterations; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Regularized upper incomplete gamma Q(a, x) by Lentz continued fraction;
// converges fast for x >= a + 1 (Numerical Recipes gcf).
double GammaQByContinuedFraction(double a, double x) {
  constexpr int kMaxIterations = 500;
  constexpr double kEps = 3.0e-12;
  constexpr double kFpMin = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double RegularizedIncompleteBeta(double a, double b, double x) {
  CHECK_GT(a, 0.0);
  CHECK_GT(b, 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double df) {
  CHECK_GT(df, 0.0);
  const double x = df / (df + t * t);
  const double p = 0.5 * RegularizedIncompleteBeta(df / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - p : p;
}

double ChiSquareSurvival(double x, double df) {
  CHECK_GT(df, 0.0);
  if (x <= 0.0) return 1.0;
  const double a = df / 2.0;
  const double half_x = x / 2.0;
  // Pick the representation that converges on this side of the a+1 split so
  // we never compute a tail as 1 - (something that rounds to 1).
  if (half_x < a + 1.0) return 1.0 - GammaPBySeries(a, half_x);
  return GammaQByContinuedFraction(a, half_x);
}

TTestResult WelchTTest(double mean_treat, double var_of_mean_treat,
                       double df_treat, double mean_control,
                       double var_of_mean_control, double df_control) {
  TTestResult r;
  r.mean_diff = mean_treat - mean_control;
  r.relative_diff =
      mean_control != 0.0 ? r.mean_diff / mean_control : 0.0;
  const double var_sum = var_of_mean_treat + var_of_mean_control;
  r.std_error = std::sqrt(std::max(0.0, var_sum));
  if (r.std_error <= 0.0) {
    // Degenerate data (no variance): the difference is either exactly zero
    // or trivially "significant"; report accordingly.
    r.t_stat = 0.0;
    r.df = df_treat + df_control;
    r.p_value = r.mean_diff == 0.0 ? 1.0 : 0.0;
    return r;
  }
  r.t_stat = r.mean_diff / r.std_error;
  // Welch-Satterthwaite degrees of freedom.
  const double num = var_sum * var_sum;
  double denom = 0.0;
  if (df_treat > 0.0) {
    denom += var_of_mean_treat * var_of_mean_treat / df_treat;
  }
  if (df_control > 0.0) {
    denom += var_of_mean_control * var_of_mean_control / df_control;
  }
  r.df = denom > 0.0 ? num / denom : df_treat + df_control;
  r.p_value = 2.0 * (1.0 - StudentTCdf(std::fabs(r.t_stat), r.df));
  return r;
}

}  // namespace expbsi
