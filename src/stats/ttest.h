#ifndef EXPBSI_STATS_TTEST_H_
#define EXPBSI_STATS_TTEST_H_

namespace expbsi {

// Standard normal CDF.
double NormalCdf(double x);

// Regularized incomplete beta function I_x(a, b), a,b > 0, x in [0,1].
// Continued-fraction evaluation (Lentz); the basis of the Student-t CDF.
double RegularizedIncompleteBeta(double a, double b, double x);

// CDF of Student's t distribution with `df` degrees of freedom.
double StudentTCdf(double t, double df);

// Survival function P(X >= x) of the chi-square distribution with `df`
// degrees of freedom, i.e. the regularized upper incomplete gamma
// Q(df/2, x/2). Used by the SRM monitor (src/obs/srm.h) to turn the
// goodness-of-fit statistic over arm counts into a p-value.
double ChiSquareSurvival(double x, double df);

// Welch's two-sample t-test on two estimates, each given as a mean, the
// variance OF THE MEAN (already divided by the replicate count), and the
// replicate degrees of freedom. In this system the replicates are the 1024
// statistical buckets (§3.3), so df is typically num_buckets - 1.
struct TTestResult {
  double mean_diff = 0.0;     // treatment - control
  double relative_diff = 0.0; // mean_diff / control mean (0 if control is 0)
  double std_error = 0.0;
  double t_stat = 0.0;
  double df = 0.0;            // Welch-Satterthwaite
  double p_value = 1.0;       // two-sided
};

TTestResult WelchTTest(double mean_treat, double var_of_mean_treat,
                       double df_treat, double mean_control,
                       double var_of_mean_control, double df_control);

}  // namespace expbsi

#endif  // EXPBSI_STATS_TTEST_H_
