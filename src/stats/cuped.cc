#include "stats/cuped.h"

#include <cmath>

#include "common/check.h"

namespace expbsi {
namespace {

// Per-bucket ratio values y_b = S_b / N_b. Buckets with a zero denominator
// in either series are skipped in the paired covariance computation.
std::vector<double> BucketRatios(const BucketValues& v) {
  std::vector<double> out(v.sums.size(), 0.0);
  for (size_t b = 0; b < v.sums.size(); ++b) {
    out[b] = v.counts[b] > 0.0 ? v.sums[b] / v.counts[b] : 0.0;
  }
  return out;
}

void PairedSeries(const BucketValues& y, const BucketValues& x,
                  std::vector<double>* ys, std::vector<double>* xs) {
  CHECK_EQ(y.sums.size(), x.sums.size());
  ys->clear();
  xs->clear();
  for (size_t b = 0; b < y.sums.size(); ++b) {
    if (y.counts[b] > 0.0 && x.counts[b] > 0.0) {
      ys->push_back(y.sums[b] / y.counts[b]);
      xs->push_back(x.sums[b] / x.counts[b]);
    }
  }
}

MetricEstimate ReplicateEstimate(const std::vector<double>& values) {
  MetricEstimate est;
  const int b = static_cast<int>(values.size());
  est.mean = Mean(values);
  est.df = b > 1 ? b - 1 : 0;
  est.var_of_mean = b > 1 ? SampleVariance(values) / b : 0.0;
  est.total_count = b;
  est.total_sum = est.mean * b;
  return est;
}

}  // namespace

CupedResult ApplyCuped(const BucketValues& y, const BucketValues& x,
                       double theta_override) {
  CupedResult result;
  std::vector<double> ys, xs;
  PairedSeries(y, x, &ys, &xs);
  if (ys.size() < 2) {
    result.unadjusted = ReplicateEstimate(BucketRatios(y));
    result.adjusted = result.unadjusted;
    return result;
  }
  const double var_x = SampleVariance(xs);
  const double cov_yx = SampleCovariance(ys, xs);
  result.theta = theta_override >= 0.0
                     ? theta_override
                     : (var_x > 0.0 ? cov_yx / var_x : 0.0);
  const double mean_x = Mean(xs);
  std::vector<double> adjusted(ys.size());
  for (size_t i = 0; i < ys.size(); ++i) {
    adjusted[i] = ys[i] - result.theta * (xs[i] - mean_x);
  }
  result.unadjusted = ReplicateEstimate(ys);
  result.adjusted = ReplicateEstimate(adjusted);
  if (result.unadjusted.var_of_mean > 0.0) {
    result.variance_reduction =
        1.0 - result.adjusted.var_of_mean / result.unadjusted.var_of_mean;
  }
  return result;
}

double PooledCupedTheta(const std::vector<const BucketValues*>& ys,
                        const std::vector<const BucketValues*>& xs) {
  CHECK_EQ(ys.size(), xs.size());
  double cov_total = 0.0;
  double var_total = 0.0;
  for (size_t arm = 0; arm < ys.size(); ++arm) {
    std::vector<double> y_vals, x_vals;
    PairedSeries(*ys[arm], *xs[arm], &y_vals, &x_vals);
    if (y_vals.size() < 2) continue;
    const double weight = static_cast<double>(y_vals.size() - 1);
    cov_total += SampleCovariance(y_vals, x_vals) * weight;
    var_total += SampleVariance(x_vals) * weight;
  }
  return var_total > 0.0 ? cov_total / var_total : 0.0;
}

}  // namespace expbsi
