#include "stats/bucket_stats.h"

#include <cmath>

#include "common/check.h"

namespace expbsi {

double BucketValues::total_sum() const {
  double total = 0.0;
  for (double s : sums) total += s;
  return total;
}

double BucketValues::total_count() const {
  double total = 0.0;
  for (double c : counts) total += c;
  return total;
}

void BucketValues::MergeFrom(const BucketValues& other) {
  if (sums.empty()) {
    sums.assign(other.sums.size(), 0.0);
    counts.assign(other.counts.size(), 0.0);
  }
  CHECK_EQ(sums.size(), other.sums.size());
  CHECK_EQ(counts.size(), other.counts.size());
  for (size_t b = 0; b < sums.size(); ++b) {
    sums[b] += other.sums[b];
    counts[b] += other.counts[b];
  }
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double total = 0.0;
  for (double x : xs) total += x;
  return total / static_cast<double>(xs.size());
}

double SampleVariance(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mean = Mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(n - 1);
}

double SampleCovariance(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  CHECK_EQ(xs.size(), ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double ss = 0.0;
  for (size_t i = 0; i < n; ++i) ss += (xs[i] - mx) * (ys[i] - my);
  return ss / static_cast<double>(n - 1);
}

MetricEstimate EstimateRatio(const BucketValues& buckets) {
  CHECK_EQ(buckets.sums.size(), buckets.counts.size());
  MetricEstimate est;
  const int b = buckets.num_buckets();
  est.total_sum = buckets.total_sum();
  est.total_count = buckets.total_count();
  est.df = b > 1 ? b - 1 : 0;
  if (est.total_count <= 0.0) return est;
  est.mean = est.total_sum / est.total_count;
  if (b < 2) return est;
  const double nbar = est.total_count / b;
  const double var_s = SampleVariance(buckets.sums);
  const double var_n = SampleVariance(buckets.counts);
  const double cov_sn = SampleCovariance(buckets.sums, buckets.counts);
  const double r = est.mean;
  est.var_of_mean = (var_s + r * r * var_n - 2.0 * r * cov_sn) /
                    (static_cast<double>(b) * nbar * nbar);
  est.var_of_mean = std::max(0.0, est.var_of_mean);
  return est;
}

double EstimateRatioCovariance(const BucketValues& x, const BucketValues& y) {
  CHECK_EQ(x.sums.size(), y.sums.size());
  const int b = x.num_buckets();
  if (b < 2) return 0.0;
  const double nx = x.total_count();
  const double ny = y.total_count();
  if (nx <= 0.0 || ny <= 0.0) return 0.0;
  const double rx = x.total_sum() / nx;
  const double ry = y.total_sum() / ny;
  const double nbar_x = nx / b;
  const double nbar_y = ny / b;
  // Delta method on (Sx - rx*Nx) and (Sy - ry*Ny), the linearized residuals.
  double ss = 0.0;
  const double mean_sx = Mean(x.sums), mean_nx = Mean(x.counts);
  const double mean_sy = Mean(y.sums), mean_ny = Mean(y.counts);
  for (int i = 0; i < b; ++i) {
    const double ex = (x.sums[i] - mean_sx) - rx * (x.counts[i] - mean_nx);
    const double ey = (y.sums[i] - mean_sy) - ry * (y.counts[i] - mean_ny);
    ss += ex * ey;
  }
  const double cov_resid = ss / static_cast<double>(b - 1);
  return cov_resid / (static_cast<double>(b) * nbar_x * nbar_y);
}

}  // namespace expbsi
