#include "wire/messages.h"

#include <tuple>

#include "obs/flight_recorder.h"
#include "wire/byte_io.h"
#include "wire/envelope.h"

namespace expbsi {
namespace wire {

namespace {

// Shared helpers. Every vector is [count u32][elements]; ReadCount rejects
// any count whose payload cannot fit in the remaining bytes, so resize() is
// always bounded by the frame the transport already capped.

bool ReadU64Vec(ByteReader* r, std::vector<uint64_t>* out) {
  uint32_t n = 0;
  if (!r->ReadCount(&n, 8)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r->ReadU64(&(*out)[i])) return false;
  }
  return true;
}

void PutU64Vec(std::string* out, const std::vector<uint64_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (uint64_t x : v) PutU64(out, x);
}

bool ReadU32Vec(ByteReader* r, std::vector<uint32_t>* out) {
  uint32_t n = 0;
  if (!r->ReadCount(&n, 4)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r->ReadU32(&(*out)[i])) return false;
  }
  return true;
}

void PutU32Vec(std::string* out, const std::vector<uint32_t>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) PutU32(out, x);
}

bool ReadF64Vec(ByteReader* r, std::vector<double>* out) {
  uint32_t n = 0;
  if (!r->ReadCount(&n, 8)) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r->ReadF64(&(*out)[i])) return false;
  }
  return true;
}

void PutF64Vec(std::string* out, const std::vector<double>& v) {
  PutU32(out, static_cast<uint32_t>(v.size()));
  for (double x : v) PutF64(out, x);
}

// Bools are a single byte that must be exactly 0 or 1: any other value
// would re-encode differently and break the canonical round trip.
bool ReadBool(ByteReader* r, bool* out) {
  uint8_t b = 0;
  if (!r->ReadU8(&b) || b > 1) return false;
  *out = (b == 1);
  return true;
}

}  // namespace

void EncodeQueryRequest(const WireQueryRequest& req, std::string* out) {
  PutU64Vec(out, req.strategy_ids);
  PutU64Vec(out, req.metric_ids);
  PutU32(out, req.date_lo);
  PutU32(out, req.date_hi);
  PutU32Vec(out, req.segments);
  PutU8(out, req.allow_degraded ? 1 : 0);
  PutU8(out, req.want_trace ? 1 : 0);
}

Result<WireQueryRequest> DecodeQueryRequest(std::string_view payload) {
  ByteReader r(payload);
  WireQueryRequest req;
  if (!ReadU64Vec(&r, &req.strategy_ids) ||
      !ReadU64Vec(&r, &req.metric_ids) || !r.ReadU32(&req.date_lo) ||
      !r.ReadU32(&req.date_hi) || !ReadU32Vec(&r, &req.segments) ||
      !ReadBool(&r, &req.allow_degraded) || !ReadBool(&r, &req.want_trace) ||
      !r.empty()) {
    return Status::Corruption("wire request: malformed payload");
  }
  return req;
}

void EncodeQueryResponse(const WireQueryResponse& resp, std::string* out) {
  PutU32(out, static_cast<uint32_t>(resp.segments.size()));
  for (const WireSegmentResult& seg : resp.segments) {
    PutU32(out, seg.segment);
    PutU8(out, seg.lost);
    PutF64Vec(out, seg.sums);
    PutF64Vec(out, seg.counts);
  }
  PutU32(out, resp.retries);
  PutU32(out, resp.faults_survived);
  PutU64(out, resp.bytes_from_cold);
  PutU64(out, resp.hot_hits);
  PutF64(out, resp.cpu_seconds);
  PutU32(out, static_cast<uint32_t>(resp.spans.size()));
  for (const WireSpan& s : resp.spans) {
    PutU32(out, s.id);
    PutU32(out, s.parent_id);
    PutString(out, s.name);
    PutU64(out, s.start_ns);
    PutU64(out, s.duration_ns);
    PutU32(out, static_cast<uint32_t>(s.attrs.size()));
    for (const auto& [key, value] : s.attrs) {
      PutString(out, key);
      PutU64(out, value);
    }
  }
}

Result<WireQueryResponse> DecodeQueryResponse(std::string_view payload) {
  ByteReader r(payload);
  WireQueryResponse resp;
  const Status malformed =
      Status::Corruption("wire response: malformed payload");
  uint32_t num_segments = 0;
  // A segment result is at least 4+1+4+4 bytes (id, lost, two empty vecs).
  if (!r.ReadCount(&num_segments, 13)) return malformed;
  resp.segments.resize(num_segments);
  for (WireSegmentResult& seg : resp.segments) {
    if (!r.ReadU32(&seg.segment) || !r.ReadU8(&seg.lost) || seg.lost > 1 ||
        !ReadF64Vec(&r, &seg.sums) || !ReadF64Vec(&r, &seg.counts)) {
      return malformed;
    }
  }
  if (!r.ReadU32(&resp.retries) || !r.ReadU32(&resp.faults_survived) ||
      !r.ReadU64(&resp.bytes_from_cold) || !r.ReadU64(&resp.hot_hits) ||
      !r.ReadF64(&resp.cpu_seconds)) {
    return malformed;
  }
  uint32_t num_spans = 0;
  // A span is at least 4+4+4+8+8+4 bytes (ids, empty name, times, attrs).
  if (!r.ReadCount(&num_spans, 32)) return malformed;
  resp.spans.resize(num_spans);
  for (WireSpan& s : resp.spans) {
    if (!r.ReadU32(&s.id) || !r.ReadU32(&s.parent_id) ||
        !r.ReadString(&s.name, kMaxWireStringBytes) ||
        !r.ReadU64(&s.start_ns) || !r.ReadU64(&s.duration_ns)) {
      return malformed;
    }
    uint32_t num_attrs = 0;
    if (!r.ReadCount(&num_attrs, 12)) return malformed;  // key + u64
    s.attrs.resize(num_attrs);
    for (auto& [key, value] : s.attrs) {
      if (!r.ReadString(&key, kMaxWireStringBytes) || !r.ReadU64(&value)) {
        return malformed;
      }
    }
  }
  if (!r.empty()) return malformed;
  return resp;
}

void EncodeSegmentFetch(const WireSegmentFetch& fetch, std::string* out) {
  PutU32(out, fetch.segment);
}

Result<WireSegmentFetch> DecodeSegmentFetch(std::string_view payload) {
  ByteReader r(payload);
  WireSegmentFetch fetch;
  // Segment ids are u16 in the store key; a wider id never names real data.
  if (!r.ReadU32(&fetch.segment) || fetch.segment > UINT16_MAX ||
      !r.empty()) {
    return Status::Corruption("wire segment fetch: malformed payload");
  }
  return fetch;
}

void EncodeSegmentPush(const WireSegmentPush& push, std::string* out) {
  PutU32(out, push.segment);
  PutU32(out, static_cast<uint32_t>(push.blobs.size()));
  for (const WireRepairBlob& b : push.blobs) {
    PutU8(out, b.kind);
    PutU64(out, b.id);
    PutU32(out, b.date);
    PutU64(out, b.fingerprint);
    PutString(out, b.bytes);
  }
}

Result<WireSegmentPush> DecodeSegmentPush(std::string_view payload) {
  ByteReader r(payload);
  WireSegmentPush push;
  const Status malformed =
      Status::Corruption("wire segment push: malformed payload");
  if (!r.ReadU32(&push.segment) || push.segment > UINT16_MAX) {
    return malformed;
  }
  uint32_t num_blobs = 0;
  // A blob is at least 1+8+4+8+4 bytes (kind, id, date, fingerprint, empty
  // bytes), so the count is bounded before the resize.
  if (!r.ReadCount(&num_blobs, 25)) return malformed;
  push.blobs.resize(num_blobs);
  for (uint32_t i = 0; i < num_blobs; ++i) {
    WireRepairBlob& b = push.blobs[i];
    if (!r.ReadU8(&b.kind) || b.kind > 3 || !r.ReadU64(&b.id) ||
        !r.ReadU32(&b.date) || !r.ReadU64(&b.fingerprint) ||
        !r.ReadString(&b.bytes, kMaxRepairBlobBytes)) {
      return malformed;
    }
    // Blobs must be strictly (kind, id, date)-ascending: one canonical
    // encoding per segment and no duplicate-key smuggling.
    if (i > 0) {
      const WireRepairBlob& prev = push.blobs[i - 1];
      auto key = [](const WireRepairBlob& x) {
        return std::make_tuple(x.kind, x.id, x.date);
      };
      if (!(key(prev) < key(b))) return malformed;
    }
  }
  if (!r.empty()) return malformed;
  return push;
}

void EncodeStatsFetch(const WireStatsFetch& fetch, std::string* out) {
  PutU64(out, fetch.since_seq);
  PutU8(out, fetch.want_metrics ? 1 : 0);
  PutU8(out, fetch.want_events ? 1 : 0);
}

Result<WireStatsFetch> DecodeStatsFetch(std::string_view payload) {
  ByteReader r(payload);
  WireStatsFetch fetch;
  if (!r.ReadU64(&fetch.since_seq) || !ReadBool(&r, &fetch.want_metrics) ||
      !ReadBool(&r, &fetch.want_events) || !r.empty()) {
    return Status::Corruption("wire stats fetch: malformed payload");
  }
  return fetch;
}

void EncodeStatsReply(const WireStatsReply& reply, std::string* out) {
  PutU32(out, reply.node_id);
  PutF64(out, reply.uptime_seconds);
  PutString(out, reply.build_info);
  PutU64(out, reply.queries_served);
  PutU64(out, reply.backpressure_rejections);
  PutU32(out, static_cast<uint32_t>(reply.counters.size()));
  for (const auto& [name, v] : reply.counters) {
    PutString(out, name);
    PutU64(out, v);
  }
  PutU32(out, static_cast<uint32_t>(reply.gauges.size()));
  for (const auto& [name, v] : reply.gauges) {
    PutString(out, name);
    PutF64(out, v);
  }
  PutU32(out, static_cast<uint32_t>(reply.histograms.size()));
  for (const WireHistogram& h : reply.histograms) {
    PutString(out, h.name);
    PutU64(out, h.count);
    PutU64(out, h.sum);
    PutU32(out, static_cast<uint32_t>(h.buckets.size()));
    for (const auto& [le, n] : h.buckets) {
      PutU64(out, le);
      PutU64(out, n);
    }
  }
  PutU32(out, static_cast<uint32_t>(reply.events.size()));
  for (const WireFlightEvent& e : reply.events) {
    PutU64(out, e.seq);
    PutU64(out, e.t_ns);
    PutU64(out, e.trace_id);
    PutU8(out, e.kind);
    PutU64(out, e.a);
    PutU64(out, e.b);
  }
  PutU64(out, reply.next_seq);
}

Result<WireStatsReply> DecodeStatsReply(std::string_view payload) {
  ByteReader r(payload);
  WireStatsReply reply;
  const Status malformed =
      Status::Corruption("wire stats reply: malformed payload");
  if (!r.ReadU32(&reply.node_id) || !r.ReadF64(&reply.uptime_seconds) ||
      !r.ReadString(&reply.build_info, kMaxWireStringBytes) ||
      !r.ReadU64(&reply.queries_served) ||
      !r.ReadU64(&reply.backpressure_rejections)) {
    return malformed;
  }
  // Metric names inside each section must be strictly ascending: one
  // canonical encoding per snapshot and no duplicate-name smuggling.
  uint32_t num_counters = 0;
  if (!r.ReadCount(&num_counters, 12)) return malformed;  // name + u64
  reply.counters.resize(num_counters);
  for (uint32_t i = 0; i < num_counters; ++i) {
    auto& [name, v] = reply.counters[i];
    if (!r.ReadString(&name, kMaxWireStringBytes) || !r.ReadU64(&v)) {
      return malformed;
    }
    if (i > 0 && !(reply.counters[i - 1].first < name)) return malformed;
  }
  uint32_t num_gauges = 0;
  if (!r.ReadCount(&num_gauges, 12)) return malformed;  // name + f64
  reply.gauges.resize(num_gauges);
  for (uint32_t i = 0; i < num_gauges; ++i) {
    auto& [name, v] = reply.gauges[i];
    if (!r.ReadString(&name, kMaxWireStringBytes) || !r.ReadF64(&v)) {
      return malformed;
    }
    if (i > 0 && !(reply.gauges[i - 1].first < name)) return malformed;
  }
  uint32_t num_histograms = 0;
  // A histogram is at least 4+8+8+4 bytes (empty name, count, sum, empty
  // bucket vector).
  if (!r.ReadCount(&num_histograms, 24)) return malformed;
  reply.histograms.resize(num_histograms);
  for (uint32_t i = 0; i < num_histograms; ++i) {
    WireHistogram& h = reply.histograms[i];
    if (!r.ReadString(&h.name, kMaxWireStringBytes) || !r.ReadU64(&h.count) ||
        !r.ReadU64(&h.sum)) {
      return malformed;
    }
    if (i > 0 && !(reply.histograms[i - 1].name < h.name)) return malformed;
    uint32_t num_buckets = 0;
    if (!r.ReadCount(&num_buckets, 16)) return malformed;  // le + n
    h.buckets.resize(num_buckets);
    uint64_t total = 0;
    for (uint32_t j = 0; j < num_buckets; ++j) {
      auto& [le, n] = h.buckets[j];
      if (!r.ReadU64(&le) || !r.ReadU64(&n)) return malformed;
      // Only non-empty buckets are shipped, in strictly ascending le order,
      // and they must account for the claimed count exactly.
      if (n == 0) return malformed;
      if (j > 0 && !(h.buckets[j - 1].first < le)) return malformed;
      // total <= count is a loop invariant, so this rejects any overshoot
      // without u64 overflow.
      if (n > h.count - total) return malformed;
      total += n;
    }
    if (total != h.count) return malformed;
  }
  uint32_t num_events = 0;
  // An event is 8+8+8+1+8+8 = 41 bytes.
  if (!r.ReadCount(&num_events, 41)) return malformed;
  reply.events.resize(num_events);
  for (uint32_t i = 0; i < num_events; ++i) {
    WireFlightEvent& e = reply.events[i];
    if (!r.ReadU64(&e.seq) || !r.ReadU64(&e.t_ns) ||
        !r.ReadU64(&e.trace_id) || !r.ReadU8(&e.kind) ||
        e.kind > obs::kMaxFlightEventKind || !r.ReadU64(&e.a) ||
        !r.ReadU64(&e.b)) {
      return malformed;
    }
    if (i > 0 && !(reply.events[i - 1].seq < e.seq)) return malformed;
  }
  if (!r.ReadU64(&reply.next_seq) || !r.empty()) return malformed;
  // Every shipped event precedes the advertised cursor.
  if (!reply.events.empty() && reply.events.back().seq >= reply.next_seq) {
    return malformed;
  }
  return reply;
}

}  // namespace wire
}  // namespace expbsi
