#ifndef EXPBSI_WIRE_BYTE_IO_H_
#define EXPBSI_WIRE_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace expbsi {
namespace wire {

// Little-endian byte IO for the wire protocol (DESIGN.md §9). Same
// byte-order and framing idioms as the WAL and snapshot formats, factored
// out because the envelope codec, the message payload codecs and their fuzz
// harness all need one canonical encoding: every value has exactly one byte
// representation, so "decode then re-encode" is bit-identity -- the
// round-trip contract the decode fuzzer asserts.

inline void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

inline void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

// Doubles cross the wire as their IEEE-754 bit pattern, so a scorecard
// value computed on a node is BIT-identical after the round trip (the
// cross-process differential sweep compares with ==, not a tolerance).
inline void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

inline uint8_t ReadU8(const char* p) { return static_cast<uint8_t>(p[0]); }

inline uint16_t ReadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint16_t>(
                                    static_cast<uint8_t>(p[1]))
                                << 8));
}

inline uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

inline uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

inline double ReadF64(const char* p) {
  const uint64_t bits = ReadU64(p);
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Bounds-checked cursor over an untrusted payload. Every Read* returns
// false once the remaining bytes run out; no length or count read from the
// buffer is ever trusted before it is checked against `remaining()` -- the
// same "cap before allocation" hardening as BsiStore::LoadFromFile.
class ByteReader {
 public:
  explicit ByteReader(std::string_view bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  size_t remaining() const { return static_cast<size_t>(end_ - p_); }
  bool empty() const { return p_ == end_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = wire::ReadU8(p_);
    p_ += 1;
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = wire::ReadU16(p_);
    p_ += 2;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = wire::ReadU32(p_);
    p_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = wire::ReadU64(p_);
    p_ += 8;
    return true;
  }
  bool ReadF64(double* v) {
    if (remaining() < 8) return false;
    *v = wire::ReadF64(p_);
    p_ += 8;
    return true;
  }
  // Length-prefixed string: [len u32][bytes]. `max_len` caps the length
  // BEFORE the allocation; the remaining-bytes check rejects a length that
  // overruns the payload.
  bool ReadString(std::string* out, uint32_t max_len) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > max_len || remaining() < len) return false;
    out->assign(p_, len);
    p_ += len;
    return true;
  }
  // Count prefix for an array of `elem_bytes`-sized elements: rejects any
  // count whose payload could not fit in the remaining bytes, so the
  // caller's reserve/resize is always bounded by the frame size.
  bool ReadCount(uint32_t* count, size_t elem_bytes) {
    if (!ReadU32(count)) return false;
    return elem_bytes == 0 ||
           static_cast<uint64_t>(*count) * elem_bytes <= remaining();
  }

 private:
  const char* p_;
  const char* end_;
};

inline void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

}  // namespace wire
}  // namespace expbsi

#endif  // EXPBSI_WIRE_BYTE_IO_H_
