#include "wire/envelope.h"

#include "common/crc32c.h"
#include "wire/byte_io.h"

namespace expbsi {
namespace wire {

namespace {
// Bytes of the header covered by the header CRC (everything before it).
constexpr size_t kHeaderCrcOffset = kEnvelopeHeaderBytes - 4;
}  // namespace

void EncodeEnvelope(const Envelope& envelope, std::string* out) {
  const size_t header_start = out->size();
  PutU32(out, kEnvelopeMagic);
  PutU8(out, kWireFormatVersion);
  PutU8(out, static_cast<uint8_t>(envelope.type));
  PutU16(out, envelope.flags);
  PutU64(out, envelope.request_id);
  PutU32(out, static_cast<uint32_t>(envelope.payload.size()));
  PutU32(out, Crc32c(out->data() + header_start, kHeaderCrcOffset));
  out->append(envelope.payload);
  PutU32(out, Crc32c(envelope.payload.data(), envelope.payload.size()));
}

Result<size_t> FrameSizeFromHeader(std::string_view header) {
  if (header.size() != kEnvelopeHeaderBytes) {
    return Status::Corruption("envelope: short header");
  }
  const char* p = header.data();
  const uint32_t stored_crc = ReadU32(p + kHeaderCrcOffset);
  if (stored_crc != Crc32c(p, kHeaderCrcOffset)) {
    return Status::Corruption("envelope: header crc mismatch");
  }
  if (ReadU32(p) != kEnvelopeMagic) {
    return Status::Corruption("envelope: bad magic");
  }
  if (ReadU8(p + 4) != kWireFormatVersion) {
    return Status::Corruption("envelope: unsupported version");
  }
  if (ReadU8(p + 5) > kMaxMsgType) {
    return Status::Corruption("envelope: unknown message type");
  }
  const uint32_t payload_len = ReadU32(p + 16);
  if (payload_len > kMaxEnvelopePayloadBytes) {
    return Status::Corruption("envelope: payload length over cap");
  }
  return kEnvelopeHeaderBytes + static_cast<size_t>(payload_len) + 4;
}

Result<Envelope> DecodeEnvelope(std::string_view frame) {
  if (frame.size() < kEnvelopeHeaderBytes + 4) {
    return Status::Corruption("envelope: frame shorter than header");
  }
  auto size = FrameSizeFromHeader(frame.substr(0, kEnvelopeHeaderBytes));
  RETURN_IF_ERROR(size.status());
  if (frame.size() != size.value()) {
    return Status::Corruption(frame.size() < size.value()
                                  ? "envelope: truncated payload"
                                  : "envelope: trailing bytes after frame");
  }
  const char* p = frame.data();
  const uint32_t payload_len = ReadU32(p + 16);
  const char* payload = p + kEnvelopeHeaderBytes;
  const uint32_t stored_payload_crc = ReadU32(payload + payload_len);
  if (stored_payload_crc != Crc32c(payload, payload_len)) {
    return Status::Corruption("envelope: payload crc mismatch");
  }
  Envelope env;
  env.type = static_cast<MsgType>(ReadU8(p + 5));
  env.flags = ReadU16(p + 6);
  env.request_id = ReadU64(p + 8);
  env.payload.assign(payload, payload_len);
  return env;
}

void EncodeError(const WireError& error, std::string* out) {
  PutU8(out, static_cast<uint8_t>(error.code));
  PutString(out, std::string_view(error.message)
                     .substr(0, kMaxWireStringBytes));
}

Result<WireError> DecodeError(std::string_view payload) {
  ByteReader r(payload);
  uint8_t code = 0;
  WireError err;
  if (!r.ReadU8(&code) ||
      !r.ReadString(&err.message, kMaxWireStringBytes) || !r.empty()) {
    return Status::Corruption("wire error: malformed payload");
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Corruption("wire error: unknown status code");
  }
  err.code = static_cast<StatusCode>(code);
  return err;
}

}  // namespace wire
}  // namespace expbsi
