#ifndef EXPBSI_WIRE_MESSAGES_H_
#define EXPBSI_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "expdata/schema.h"

namespace expbsi {
namespace wire {

// Payload codecs for the serving protocol (DESIGN.md §9). Like the
// envelope, every encoding is canonical -- decode-then-re-encode is
// bit-identical -- and every decode is hardened: counts and string lengths
// are checked against the remaining payload bytes BEFORE any allocation,
// and trailing bytes fail the decode.

// Coordinator -> node: execute `segments` of a scorecard query against the
// node's local tier. One request covers one scatter wave on one node.
struct WireQueryRequest {
  std::vector<uint64_t> strategy_ids;
  std::vector<uint64_t> metric_ids;
  Date date_lo = 0;
  Date date_hi = 0;
  std::vector<uint32_t> segments;
  // Degraded-mode flag from the coordinator's config: the node either
  // reports unrecoverable segments as lost (true) or fails the request
  // with a kError envelope (false, the strict default).
  bool allow_degraded = false;
  // Ship the node's span tree back in the response so the coordinator can
  // graft it under its per-node RPC span.
  bool want_trace = false;

  friend bool operator==(const WireQueryRequest& a,
                         const WireQueryRequest& b) {
    return a.strategy_ids == b.strategy_ids && a.metric_ids == b.metric_ids &&
           a.date_lo == b.date_lo && a.date_hi == b.date_hi &&
           a.segments == b.segments && a.allow_degraded == b.allow_degraded &&
           a.want_trace == b.want_trace;
  }
};

// One trace span crossing the wire (obs::QueryTrace::Span minus the open
// flag: only closed spans are shipped).
struct WireSpan {
  uint32_t id = 0;
  uint32_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> attrs;

  friend bool operator==(const WireSpan& a, const WireSpan& b) {
    return a.id == b.id && a.parent_id == b.parent_id && a.name == b.name &&
           a.start_ns == b.start_ns && a.duration_ns == b.duration_ns &&
           a.attrs == b.attrs;
  }
};

// One segment's result inside a response. `lost == 1` means the node could
// not recover the segment after retries (degraded mode); its vectors are
// empty and the coordinator records the exact segment id as lost -- the
// explicit enumeration that makes degraded results non-silent.
struct WireSegmentResult {
  uint32_t segment = 0;
  uint8_t lost = 0;
  std::vector<double> sums;    // [si * num_metrics + mi], strategy-major
  std::vector<double> counts;

  friend bool operator==(const WireSegmentResult& a,
                         const WireSegmentResult& b) {
    // Doubles cross the wire as bit patterns; compare them the same way so
    // NaNs round-trip as equal.
    auto bits_equal = [](const std::vector<double>& x,
                         const std::vector<double>& y) {
      if (x.size() != y.size()) return false;
      for (size_t i = 0; i < x.size(); ++i) {
        uint64_t xb, yb;
        __builtin_memcpy(&xb, &x[i], 8);
        __builtin_memcpy(&yb, &y[i], 8);
        if (xb != yb) return false;
      }
      return true;
    };
    return a.segment == b.segment && a.lost == b.lost &&
           bits_equal(a.sums, b.sums) && bits_equal(a.counts, b.counts);
  }
};

// Node -> coordinator: per-segment partials plus the node-side accounting
// the coordinator folds into QueryStats, and (on request) the span tree.
struct WireQueryResponse {
  std::vector<WireSegmentResult> segments;
  uint32_t retries = 0;
  uint32_t faults_survived = 0;
  uint64_t bytes_from_cold = 0;
  uint64_t hot_hits = 0;
  double cpu_seconds = 0.0;
  std::vector<WireSpan> spans;

  friend bool operator==(const WireQueryResponse& a,
                         const WireQueryResponse& b) {
    uint64_t ab, bb;
    __builtin_memcpy(&ab, &a.cpu_seconds, 8);
    __builtin_memcpy(&bb, &b.cpu_seconds, 8);
    return a.segments == b.segments && a.retries == b.retries &&
           a.faults_survived == b.faults_survived &&
           a.bytes_from_cold == b.bytes_from_cold &&
           a.hot_hits == b.hot_hits && ab == bb && a.spans == b.spans;
  }
};

// Recovering node -> peer replica: send me your copy of `segment`.
struct WireSegmentFetch {
  uint32_t segment = 0;

  friend bool operator==(const WireSegmentFetch& a,
                         const WireSegmentFetch& b) {
    return a.segment == b.segment;
  }
};

// Per-blob serialized-BSI cap inside a kSegmentPush. Individual blobs are
// whole serialized BSI columns and routinely exceed kMaxWireStringBytes;
// they get their own, larger bound (the envelope payload cap still closes
// the total).
inline constexpr uint32_t kMaxRepairBlobBytes = 8u << 20;

// One fingerprinted store entry inside a kSegmentPush: the BsiStore key
// fields plus the serialized bytes and the sender's BlobFingerprint of
// those bytes. The receiver re-fingerprints before installing, so a blob
// corrupted in flight (or by a lying peer) is rejected, never served.
struct WireRepairBlob {
  uint8_t kind = 0;   // BsiKind, <= 3 on the wire
  uint64_t id = 0;    // strategy or metric id
  uint32_t date = 0;
  uint64_t fingerprint = 0;
  std::string bytes;

  friend bool operator==(const WireRepairBlob& a, const WireRepairBlob& b) {
    return a.kind == b.kind && a.id == b.id && a.date == b.date &&
           a.fingerprint == b.fingerprint && a.bytes == b.bytes;
  }
};

// Peer replica -> recovering node: every blob of the requested segment,
// sorted by (kind, id, date) so the encoding is canonical.
struct WireSegmentPush {
  uint32_t segment = 0;
  std::vector<WireRepairBlob> blobs;

  friend bool operator==(const WireSegmentPush& a, const WireSegmentPush& b) {
    return a.segment == b.segment && a.blobs == b.blobs;
  }
};

// Coordinator -> node: fleet-observability pull (DESIGN.md "Fleet
// observability"). One message serves both the periodic fleet scrape
// (want_metrics, since_seq = cursor so flight events are shipped
// incrementally) and the postmortem slice fetch (want_events only).
struct WireStatsFetch {
  // Ship flight events with seq >= since_seq (0 = everything in the ring).
  uint64_t since_seq = 0;
  bool want_metrics = true;
  bool want_events = true;

  friend bool operator==(const WireStatsFetch& a, const WireStatsFetch& b) {
    return a.since_seq == b.since_seq && a.want_metrics == b.want_metrics &&
           a.want_events == b.want_events;
  }
};

// One histogram family inside a kStatsReply: obs::MetricsSnapshot's
// HistogramView plus its name. Buckets are strictly le-ascending, non-empty
// only, and their counts must total `count` -- the decoder enforces all
// three, so one snapshot has one encoding.
struct WireHistogram {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<std::pair<uint64_t, uint64_t>> buckets;  // (le, n)

  friend bool operator==(const WireHistogram& a, const WireHistogram& b) {
    return a.name == b.name && a.count == b.count && a.sum == b.sum &&
           a.buckets == b.buckets;
  }
};

// One flight-recorder event crossing the wire (obs::FlightEvent mirror;
// `kind` is bounds-checked against the event catalog on decode).
struct WireFlightEvent {
  uint64_t seq = 0;
  uint64_t t_ns = 0;
  uint64_t trace_id = 0;
  uint8_t kind = 0;
  uint64_t a = 0;
  uint64_t b = 0;

  friend bool operator==(const WireFlightEvent& x, const WireFlightEvent& y) {
    return x.seq == y.seq && x.t_ns == y.t_ns && x.trace_id == y.trace_id &&
           x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

// Node -> coordinator: the node's identity, health counters, full metrics
// snapshot (names strictly ascending per section) and flight-recorder slice
// (seq strictly ascending, all below next_seq). An EXPBSI_NO_METRICS node
// replies with empty sections -- identity and next_seq are still real.
struct WireStatsReply {
  uint32_t node_id = 0;
  double uptime_seconds = 0.0;
  std::string build_info;
  uint64_t queries_served = 0;
  uint64_t backpressure_rejections = 0;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<WireHistogram> histograms;
  std::vector<WireFlightEvent> events;
  // The node's FlightRecorder::NextSeq() at reply time: the scraper's
  // cursor for the next incremental fetch.
  uint64_t next_seq = 0;

  friend bool operator==(const WireStatsReply& a, const WireStatsReply& b) {
    // Doubles cross the wire as bit patterns; compare them the same way.
    auto dbits = [](double d) {
      uint64_t b64;
      __builtin_memcpy(&b64, &d, 8);
      return b64;
    };
    if (a.gauges.size() != b.gauges.size()) return false;
    for (size_t i = 0; i < a.gauges.size(); ++i) {
      if (a.gauges[i].first != b.gauges[i].first ||
          dbits(a.gauges[i].second) != dbits(b.gauges[i].second)) {
        return false;
      }
    }
    return a.node_id == b.node_id &&
           dbits(a.uptime_seconds) == dbits(b.uptime_seconds) &&
           a.build_info == b.build_info &&
           a.queries_served == b.queries_served &&
           a.backpressure_rejections == b.backpressure_rejections &&
           a.counters == b.counters && a.histograms == b.histograms &&
           a.events == b.events && a.next_seq == b.next_seq;
  }
};

void EncodeQueryRequest(const WireQueryRequest& req, std::string* out);
Result<WireQueryRequest> DecodeQueryRequest(std::string_view payload);

void EncodeQueryResponse(const WireQueryResponse& resp, std::string* out);
Result<WireQueryResponse> DecodeQueryResponse(std::string_view payload);

void EncodeSegmentFetch(const WireSegmentFetch& fetch, std::string* out);
Result<WireSegmentFetch> DecodeSegmentFetch(std::string_view payload);

void EncodeSegmentPush(const WireSegmentPush& push, std::string* out);
Result<WireSegmentPush> DecodeSegmentPush(std::string_view payload);

void EncodeStatsFetch(const WireStatsFetch& fetch, std::string* out);
Result<WireStatsFetch> DecodeStatsFetch(std::string_view payload);

void EncodeStatsReply(const WireStatsReply& reply, std::string* out);
Result<WireStatsReply> DecodeStatsReply(std::string_view payload);

}  // namespace wire
}  // namespace expbsi

#endif  // EXPBSI_WIRE_MESSAGES_H_
