#ifndef EXPBSI_WIRE_MESSAGES_H_
#define EXPBSI_WIRE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "expdata/schema.h"

namespace expbsi {
namespace wire {

// Payload codecs for the serving protocol (DESIGN.md §9). Like the
// envelope, every encoding is canonical -- decode-then-re-encode is
// bit-identical -- and every decode is hardened: counts and string lengths
// are checked against the remaining payload bytes BEFORE any allocation,
// and trailing bytes fail the decode.

// Coordinator -> node: execute `segments` of a scorecard query against the
// node's local tier. One request covers one scatter wave on one node.
struct WireQueryRequest {
  std::vector<uint64_t> strategy_ids;
  std::vector<uint64_t> metric_ids;
  Date date_lo = 0;
  Date date_hi = 0;
  std::vector<uint32_t> segments;
  // Degraded-mode flag from the coordinator's config: the node either
  // reports unrecoverable segments as lost (true) or fails the request
  // with a kError envelope (false, the strict default).
  bool allow_degraded = false;
  // Ship the node's span tree back in the response so the coordinator can
  // graft it under its per-node RPC span.
  bool want_trace = false;

  friend bool operator==(const WireQueryRequest& a,
                         const WireQueryRequest& b) {
    return a.strategy_ids == b.strategy_ids && a.metric_ids == b.metric_ids &&
           a.date_lo == b.date_lo && a.date_hi == b.date_hi &&
           a.segments == b.segments && a.allow_degraded == b.allow_degraded &&
           a.want_trace == b.want_trace;
  }
};

// One trace span crossing the wire (obs::QueryTrace::Span minus the open
// flag: only closed spans are shipped).
struct WireSpan {
  uint32_t id = 0;
  uint32_t parent_id = 0;
  std::string name;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, uint64_t>> attrs;

  friend bool operator==(const WireSpan& a, const WireSpan& b) {
    return a.id == b.id && a.parent_id == b.parent_id && a.name == b.name &&
           a.start_ns == b.start_ns && a.duration_ns == b.duration_ns &&
           a.attrs == b.attrs;
  }
};

// One segment's result inside a response. `lost == 1` means the node could
// not recover the segment after retries (degraded mode); its vectors are
// empty and the coordinator records the exact segment id as lost -- the
// explicit enumeration that makes degraded results non-silent.
struct WireSegmentResult {
  uint32_t segment = 0;
  uint8_t lost = 0;
  std::vector<double> sums;    // [si * num_metrics + mi], strategy-major
  std::vector<double> counts;

  friend bool operator==(const WireSegmentResult& a,
                         const WireSegmentResult& b) {
    // Doubles cross the wire as bit patterns; compare them the same way so
    // NaNs round-trip as equal.
    auto bits_equal = [](const std::vector<double>& x,
                         const std::vector<double>& y) {
      if (x.size() != y.size()) return false;
      for (size_t i = 0; i < x.size(); ++i) {
        uint64_t xb, yb;
        __builtin_memcpy(&xb, &x[i], 8);
        __builtin_memcpy(&yb, &y[i], 8);
        if (xb != yb) return false;
      }
      return true;
    };
    return a.segment == b.segment && a.lost == b.lost &&
           bits_equal(a.sums, b.sums) && bits_equal(a.counts, b.counts);
  }
};

// Node -> coordinator: per-segment partials plus the node-side accounting
// the coordinator folds into QueryStats, and (on request) the span tree.
struct WireQueryResponse {
  std::vector<WireSegmentResult> segments;
  uint32_t retries = 0;
  uint32_t faults_survived = 0;
  uint64_t bytes_from_cold = 0;
  uint64_t hot_hits = 0;
  double cpu_seconds = 0.0;
  std::vector<WireSpan> spans;

  friend bool operator==(const WireQueryResponse& a,
                         const WireQueryResponse& b) {
    uint64_t ab, bb;
    __builtin_memcpy(&ab, &a.cpu_seconds, 8);
    __builtin_memcpy(&bb, &b.cpu_seconds, 8);
    return a.segments == b.segments && a.retries == b.retries &&
           a.faults_survived == b.faults_survived &&
           a.bytes_from_cold == b.bytes_from_cold &&
           a.hot_hits == b.hot_hits && ab == bb && a.spans == b.spans;
  }
};

// Recovering node -> peer replica: send me your copy of `segment`.
struct WireSegmentFetch {
  uint32_t segment = 0;

  friend bool operator==(const WireSegmentFetch& a,
                         const WireSegmentFetch& b) {
    return a.segment == b.segment;
  }
};

// Per-blob serialized-BSI cap inside a kSegmentPush. Individual blobs are
// whole serialized BSI columns and routinely exceed kMaxWireStringBytes;
// they get their own, larger bound (the envelope payload cap still closes
// the total).
inline constexpr uint32_t kMaxRepairBlobBytes = 8u << 20;

// One fingerprinted store entry inside a kSegmentPush: the BsiStore key
// fields plus the serialized bytes and the sender's BlobFingerprint of
// those bytes. The receiver re-fingerprints before installing, so a blob
// corrupted in flight (or by a lying peer) is rejected, never served.
struct WireRepairBlob {
  uint8_t kind = 0;   // BsiKind, <= 3 on the wire
  uint64_t id = 0;    // strategy or metric id
  uint32_t date = 0;
  uint64_t fingerprint = 0;
  std::string bytes;

  friend bool operator==(const WireRepairBlob& a, const WireRepairBlob& b) {
    return a.kind == b.kind && a.id == b.id && a.date == b.date &&
           a.fingerprint == b.fingerprint && a.bytes == b.bytes;
  }
};

// Peer replica -> recovering node: every blob of the requested segment,
// sorted by (kind, id, date) so the encoding is canonical.
struct WireSegmentPush {
  uint32_t segment = 0;
  std::vector<WireRepairBlob> blobs;

  friend bool operator==(const WireSegmentPush& a, const WireSegmentPush& b) {
    return a.segment == b.segment && a.blobs == b.blobs;
  }
};

void EncodeQueryRequest(const WireQueryRequest& req, std::string* out);
Result<WireQueryRequest> DecodeQueryRequest(std::string_view payload);

void EncodeQueryResponse(const WireQueryResponse& resp, std::string* out);
Result<WireQueryResponse> DecodeQueryResponse(std::string_view payload);

void EncodeSegmentFetch(const WireSegmentFetch& fetch, std::string* out);
Result<WireSegmentFetch> DecodeSegmentFetch(std::string_view payload);

void EncodeSegmentPush(const WireSegmentPush& push, std::string* out);
Result<WireSegmentPush> DecodeSegmentPush(std::string_view payload);

}  // namespace wire
}  // namespace expbsi

#endif  // EXPBSI_WIRE_MESSAGES_H_
