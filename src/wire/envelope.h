#ifndef EXPBSI_WIRE_ENVELOPE_H_
#define EXPBSI_WIRE_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace expbsi {
namespace wire {

// Request/response envelope of the serving protocol (DESIGN.md §9): every
// message on a node connection is one length-prefixed, CRC32C-closed frame.
//
//   header   [magic u32][version u8][type u8][flags u16]
//            [request_id u64][payload_len u32][header crc u32]   (24 bytes)
//   body     [payload_len payload bytes][payload crc u32]
//
// The header CRC closes the first 20 header bytes and is verified BEFORE
// any header field is trusted -- in particular before payload_len sizes a
// read or allocation (the same order of operations as the WAL record
// scanner). The payload CRC closes the payload, so a truncated or
// bitflipped frame is classified at the envelope layer and never reaches a
// payload decoder as silently-wrong bytes.
//
// The encoding is canonical: one byte representation per envelope, so
// Decode followed by Encode reproduces the input frame bit for bit (the
// fuzz harness contract).

enum class MsgType : uint8_t {
  kPing = 0,          // health check; empty payload
  kPong = 1,          // reply to kPing; empty payload
  kQueryRequest = 2,  // WireQueryRequest payload (wire/messages.h)
  kQueryResponse = 3, // WireQueryResponse payload
  kError = 4,         // WireError payload: the request failed before a
                      // typed response could be built
  kSegmentFetch = 5,  // WireSegmentFetch payload: replica repair pull
  kSegmentPush = 6,   // WireSegmentPush payload: fingerprinted blobs
  kStatsFetch = 7,    // WireStatsFetch payload: fleet-scrape pull
  kStatsReply = 8,    // WireStatsReply payload: metrics + flight events
};
inline constexpr uint8_t kMaxMsgType =
    static_cast<uint8_t>(MsgType::kStatsReply);

inline constexpr uint32_t kEnvelopeMagic = 0x45424e56;  // "VNBE" LE = EBNV
inline constexpr uint8_t kWireFormatVersion = 1;
// [magic u32][version u8][type u8][flags u16][request_id u64]
// [payload_len u32] + header crc u32.
inline constexpr size_t kEnvelopeHeaderBytes = 4 + 1 + 1 + 2 + 8 + 4 + 4;
// Hard cap on payload_len, checked against the frame before any
// allocation: a scorecard response for a whole node stays far below this.
inline constexpr uint32_t kMaxEnvelopePayloadBytes = 64u << 20;

struct Envelope {
  MsgType type = MsgType::kPing;
  // Reserved for future use; carried verbatim (and covered by the header
  // CRC) so old coordinators round-trip frames from newer nodes.
  uint16_t flags = 0;
  // Correlates a response with its request: a gather loop drops frames
  // whose request_id it is not waiting for (duplicated replies, responses
  // to an abandoned wave) instead of misattributing them.
  uint64_t request_id = 0;
  std::string payload;

  friend bool operator==(const Envelope& a, const Envelope& b) {
    return a.type == b.type && a.flags == b.flags &&
           a.request_id == b.request_id && a.payload == b.payload;
  }
};

// Appends the framed envelope to `*out`.
void EncodeEnvelope(const Envelope& envelope, std::string* out);

// Decodes one complete frame. Rejects (Corruption) short buffers, header
// CRC mismatches, bad magic/version/type, payload_len beyond the cap or
// disagreeing with the buffer size, trailing bytes, and payload CRC
// mismatches -- in that order, so no untrusted length is used first.
Result<Envelope> DecodeEnvelope(std::string_view frame);

// Transport-side header peek: validates the 24 header bytes (CRC first)
// and returns the total frame size, so the receiver can read exactly the
// body it was promised. `header` must be exactly kEnvelopeHeaderBytes.
Result<size_t> FrameSizeFromHeader(std::string_view header);

// Payload of a kError envelope: the failure Status of the remote step.
struct WireError {
  StatusCode code = StatusCode::kUnavailable;
  std::string message;
};

void EncodeError(const WireError& error, std::string* out);
Result<WireError> DecodeError(std::string_view payload);

// Error-string cap (also the cap for every other string on the wire).
inline constexpr uint32_t kMaxWireStringBytes = 1u << 16;

}  // namespace wire
}  // namespace expbsi

#endif  // EXPBSI_WIRE_ENVELOPE_H_
