#include "engine/preexperiment.h"

#include "bsi/bsi_aggregate.h"
#include "bsi/bsi_group_by.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expbsi {
namespace {

// Adds the (pre-period sum, exposed count) contribution of one segment given
// the already-folded pre-period value BSI.
void AccumulatePrePeriod(const ExperimentBsiData& data, int segment,
                         const ExposeBsi& expose, const Bsi& pre_sum,
                         Date as_of_date, BucketValues* out) {
  const RoaringBitmap mask = expose.ExposedOnOrBefore(as_of_date);
  if (mask.IsEmpty()) return;
  if (data.bucket_equals_segment) {
    out->sums[segment] += static_cast<double>(pre_sum.SumUnderMask(mask));
    out->counts[segment] += static_cast<double>(mask.Cardinality());
  } else {
    const std::vector<uint64_t> sums =
        GroupSumByBucket(pre_sum, expose.bucket, data.num_buckets, mask);
    const std::vector<uint64_t> counts =
        GroupCountByBucket(expose.bucket, data.num_buckets, mask);
    for (int b = 0; b < data.num_buckets; ++b) {
      out->sums[b] += static_cast<double>(sums[b]);
      out->counts[b] += static_cast<double>(counts[b]);
    }
  }
}

BucketValues MakeEmptyBuckets(const ExperimentBsiData& data) {
  BucketValues out;
  out.sums.assign(data.effective_buckets(), 0.0);
  out.counts.assign(data.effective_buckets(), 0.0);
  return out;
}

}  // namespace

BucketValues ComputePreExperimentBsi(const ExperimentBsiData& data,
                                     uint64_t strategy_id, uint64_t metric_id,
                                     Date expt_start, int lookback_days,
                                     Date as_of_date) {
  CHECK_GT(lookback_days, 0);
  CHECK_GE(expt_start, static_cast<Date>(lookback_days));
  obs::ScopedSpan span("preexperiment");
  span.AddAttr("lookback_days", static_cast<uint64_t>(lookback_days));
  static obs::Counter& runs = obs::GetCounter("engine.preexperiment_folds");
  runs.Add();
  BucketValues out = MakeEmptyBuckets(data);
  const Date pre_lo = expt_start - lookback_days;
  const Date pre_hi = expt_start - 1;
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    const ExposeBsi* expose = sbd.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    // sumBSI over the C pre-period days: one multi-operand kernel call over
    // every day's BSI instead of a chain of pairwise Add materializations.
    std::vector<const Bsi*> days;
    days.reserve(static_cast<size_t>(lookback_days));
    for (Date date = pre_lo; date <= pre_hi; ++date) {
      const MetricBsi* metric = sbd.FindMetric(metric_id, date);
      if (metric != nullptr) days.push_back(&metric->value);
    }
    const Bsi pre_sum = SumBsi(days);
    AccumulatePrePeriod(data, seg, *expose, pre_sum, as_of_date, &out);
  }
  return out;
}

PreAggIndex BuildPreAggIndex(const ExperimentBsiData& data, uint64_t metric_id,
                             Date first_date, Date last_date) {
  CHECK_LE(first_date, last_date);
  PreAggIndex index;
  index.metric_id = metric_id;
  index.first_date = first_date;
  index.last_date = last_date;
  index.per_segment.reserve(data.num_segments);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    std::vector<Bsi> leaves;
    leaves.reserve(last_date - first_date + 1);
    for (Date date = first_date; date <= last_date; ++date) {
      const MetricBsi* metric = data.segments[seg].FindMetric(metric_id, date);
      leaves.push_back(metric != nullptr ? metric->value : Bsi());
    }
    index.per_segment.emplace_back(
        std::move(leaves),
        [](const Bsi& a, const Bsi& b) { return SumBsi(a, b); },
        [](const std::vector<const Bsi*>& nodes) { return SumBsi(nodes); });
  }
  return index;
}

BucketValues ComputePreExperimentWithTree(const ExperimentBsiData& data,
                                          const PreAggIndex& index,
                                          uint64_t strategy_id,
                                          Date expt_start, int lookback_days,
                                          Date as_of_date) {
  CHECK_GT(lookback_days, 0);
  CHECK_GE(expt_start, static_cast<Date>(lookback_days));
  const Date pre_lo = expt_start - lookback_days;
  const Date pre_hi = expt_start - 1;
  CHECK_GE(pre_lo, index.first_date);
  CHECK_LE(pre_hi, index.last_date);
  obs::ScopedSpan span("preexperiment_tree");
  span.AddAttr("lookback_days", static_cast<uint64_t>(lookback_days));
  static obs::Counter& runs = obs::GetCounter("engine.preexperiment_folds");
  runs.Add();
  BucketValues out = MakeEmptyBuckets(data);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const ExposeBsi* expose = data.segments[seg].FindExpose(strategy_id);
    if (expose == nullptr) continue;
    const Bsi pre_sum = index.per_segment[seg].Query(
        static_cast<int>(pre_lo - index.first_date),
        static_cast<int>(pre_hi - index.first_date));
    AccumulatePrePeriod(data, seg, *expose, pre_sum, as_of_date, &out);
  }
  return out;
}

CupedScorecardEntry CompareWithCuped(uint64_t metric_id,
                                     uint64_t treatment_id,
                                     const BucketValues& treatment_y,
                                     const BucketValues& treatment_x,
                                     uint64_t control_id,
                                     const BucketValues& control_y,
                                     const BucketValues& control_x) {
  CupedScorecardEntry entry;
  entry.raw = CompareStrategies(metric_id, treatment_id, treatment_y,
                                control_id, control_y);
  entry.theta = PooledCupedTheta({&treatment_y, &control_y},
                                 {&treatment_x, &control_x});
  const CupedResult treat =
      ApplyCuped(treatment_y, treatment_x, entry.theta);
  const CupedResult control = ApplyCuped(control_y, control_x, entry.theta);
  entry.treatment_adjusted = treat.adjusted;
  entry.control_adjusted = control.adjusted;
  entry.treatment_variance_reduction = treat.variance_reduction;
  entry.control_variance_reduction = control.variance_reduction;
  entry.adjusted_ttest = WelchTTest(
      treat.adjusted.mean, treat.adjusted.var_of_mean, treat.adjusted.df,
      control.adjusted.mean, control.adjusted.var_of_mean,
      control.adjusted.df);
  return entry;
}

}  // namespace expbsi
