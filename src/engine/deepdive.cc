#include "engine/deepdive.h"

#include "bsi/bsi_group_by.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expbsi {

namespace {

// Inclusive-bound views of a dimension predicate (the same bound-pair
// fusion as query/executor.cc): >=/> normalizes to a lower bound, <=/< to
// an upper bound, so a pair over one dimension becomes one RangeBetween
// three-way partition scan instead of two range scans + an intersection.
bool DimLowerBound(const DimensionPredicate& pred, uint64_t* lo) {
  if (pred.op == DimensionPredicate::Op::kGe) {
    *lo = pred.value;
    return true;
  }
  if (pred.op == DimensionPredicate::Op::kGt && pred.value != ~uint64_t{0}) {
    *lo = pred.value + 1;
    return true;
  }
  return false;
}

bool DimUpperBound(const DimensionPredicate& pred, uint64_t* hi) {
  if (pred.op == DimensionPredicate::Op::kLe) {
    *hi = pred.value;
    return true;
  }
  if (pred.op == DimensionPredicate::Op::kLt && pred.value != 0) {
    *hi = pred.value - 1;
    return true;
  }
  return false;
}

}  // namespace

RoaringBitmap DimensionFilterMask(const SegmentBsiData& segment,
                                  const std::vector<DimensionPredicate>& preds,
                                  Date date) {
  CHECK(!preds.empty());
  // Pair each one-sided bound with a later complementary bound on the same
  // dimension; the pair evaluates once, as a Between.
  std::vector<int> partner(preds.size(), -1);
  std::vector<char> consumed(preds.size(), 0);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (consumed[i]) continue;
    uint64_t bound;
    const bool is_lo = DimLowerBound(preds[i], &bound);
    const bool is_hi = !is_lo && DimUpperBound(preds[i], &bound);
    if (!is_lo && !is_hi) continue;
    for (size_t j = i + 1; j < preds.size(); ++j) {
      if (consumed[j] || preds[j].dimension_id != preds[i].dimension_id) {
        continue;
      }
      if ((is_lo && DimUpperBound(preds[j], &bound)) ||
          (is_hi && DimLowerBound(preds[j], &bound))) {
        partner[i] = static_cast<int>(j);
        consumed[j] = 1;
        break;
      }
    }
  }

  RoaringBitmap mask;
  bool first = true;
  for (size_t i = 0; i < preds.size(); ++i) {
    if (consumed[i]) continue;
    const DimensionPredicate& pred = preds[i];
    const DimensionBsi* dim =
        segment.FindDimension(pred.dimension_id, date);
    if (dim == nullptr) return RoaringBitmap();  // no data -> nothing passes
    RoaringBitmap filter;
    if (partner[i] >= 0) {
      uint64_t lo = 0, hi = 0;
      if (!DimLowerBound(pred, &lo)) DimLowerBound(preds[partner[i]], &lo);
      if (!DimUpperBound(pred, &hi)) DimUpperBound(preds[partner[i]], &hi);
      // An inverted interval is empty by definition (filter stays empty).
      if (lo <= hi) filter = dim->value.RangeBetween(lo, hi);
    } else {
      switch (pred.op) {
        case DimensionPredicate::Op::kEq:
          filter = dim->value.RangeEq(pred.value);
          break;
        case DimensionPredicate::Op::kNe:
          filter = dim->value.RangeNe(pred.value);
          break;
        case DimensionPredicate::Op::kLt:
          filter = dim->value.RangeLt(pred.value);
          break;
        case DimensionPredicate::Op::kLe:
          filter = dim->value.RangeLe(pred.value);
          break;
        case DimensionPredicate::Op::kGt:
          filter = dim->value.RangeGt(pred.value);
          break;
        case DimensionPredicate::Op::kGe:
          filter = dim->value.RangeGe(pred.value);
          break;
      }
    }
    if (first) {
      mask = std::move(filter);
      first = false;
    } else {
      mask.AndInPlace(filter);  // mulBSI of binary filters = intersection
    }
    if (mask.IsEmpty()) break;
  }
  return mask;
}

BucketValues ComputeStrategyMetricBsiFiltered(
    const ExperimentBsiData& data, uint64_t strategy_id, uint64_t metric_id,
    Date date_lo, Date date_hi,
    const std::vector<DimensionPredicate>& preds, Date dim_date) {
  CHECK_LE(date_lo, date_hi);
  BucketValues out;
  out.sums.assign(data.effective_buckets(), 0.0);
  out.counts.assign(data.effective_buckets(), 0.0);
  for (int seg = 0; seg < data.num_segments; ++seg) {
    const SegmentBsiData& sbd = data.segments[seg];
    const ExposeBsi* expose = sbd.FindExpose(strategy_id);
    if (expose == nullptr) continue;
    const RoaringBitmap dim_mask = DimensionFilterMask(sbd, preds, dim_date);
    if (dim_mask.IsEmpty()) continue;
    for (Date date = date_lo; date <= date_hi; ++date) {
      const MetricBsi* metric = sbd.FindMetric(metric_id, date);
      if (metric == nullptr) continue;
      RoaringBitmap mask = expose->ExposedOnOrBefore(date);
      mask.AndInPlace(dim_mask);
      if (mask.IsEmpty()) continue;
      if (data.bucket_equals_segment) {
        out.sums[seg] += static_cast<double>(metric->value.SumUnderMask(mask));
      } else {
        const std::vector<uint64_t> sums = GroupSumByBucket(
            metric->value, expose->bucket, data.num_buckets, mask);
        for (int b = 0; b < data.num_buckets; ++b) {
          out.sums[b] += static_cast<double>(sums[b]);
        }
      }
    }
    RoaringBitmap count_mask = expose->ExposedOnOrBefore(date_hi);
    count_mask.AndInPlace(dim_mask);
    if (data.bucket_equals_segment) {
      out.counts[seg] += static_cast<double>(count_mask.Cardinality());
    } else {
      const std::vector<uint64_t> counts =
          GroupCountByBucket(expose->bucket, data.num_buckets, count_mask);
      for (int b = 0; b < data.num_buckets; ++b) {
        out.counts[b] += static_cast<double>(counts[b]);
      }
    }
  }
  return out;
}

std::vector<DimensionBreakdownEntry> ComputeDimensionBreakdown(
    const ExperimentBsiData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi, uint32_t dimension_id,
    const std::vector<uint64_t>& dim_values, Date dim_date) {
  obs::ScopedSpan span("dimension_breakdown");
  span.AddAttr("dimension_id", dimension_id);
  span.AddAttr("values", dim_values.size());
  static obs::Counter& runs = obs::GetCounter("engine.deepdive_breakdowns");
  runs.Add();
  std::vector<DimensionBreakdownEntry> out;
  out.reserve(dim_values.size());
  for (uint64_t value : dim_values) {
    const std::vector<DimensionPredicate> preds = {
        {dimension_id, DimensionPredicate::Op::kEq, value}};
    const BucketValues treat = ComputeStrategyMetricBsiFiltered(
        data, treatment_id, metric_id, date_lo, date_hi, preds, dim_date);
    const BucketValues control = ComputeStrategyMetricBsiFiltered(
        data, control_id, metric_id, date_lo, date_hi, preds, dim_date);
    out.push_back(DimensionBreakdownEntry{
        value, CompareStrategies(metric_id, treatment_id, treat, control_id,
                                 control)});
  }
  return out;
}

std::vector<ScorecardEntry> ComputeDailyBreakdown(
    const ExperimentBsiData& data, uint64_t control_id, uint64_t treatment_id,
    uint64_t metric_id, Date date_lo, Date date_hi) {
  obs::ScopedSpan span("daily_breakdown");
  span.AddAttr("days", static_cast<uint64_t>(date_hi - date_lo + 1));
  static obs::Counter& runs = obs::GetCounter("engine.deepdive_breakdowns");
  runs.Add();
  std::vector<ScorecardEntry> out;
  out.reserve(date_hi - date_lo + 1);
  for (Date date = date_lo; date <= date_hi; ++date) {
    const BucketValues treat =
        ComputeStrategyMetricBsi(data, treatment_id, metric_id, date, date);
    const BucketValues control =
        ComputeStrategyMetricBsi(data, control_id, metric_id, date, date);
    out.push_back(
        CompareStrategies(metric_id, treatment_id, treat, control_id,
                          control));
  }
  return out;
}

}  // namespace expbsi
